"""End-to-end CLI coverage for the ``repro index`` family and ``--index``.

Drives the real argument parser: build/verify/info on real artifacts,
``align --index`` byte-identity against index-less runs (``@PG``
stripped — the tag intentionally names the fingerprint), the
``--rebuild-index`` ladder rung, and the typed refusal without it.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.faults.indexfaults import bitflip_section


def _strip_pg(path):
    return [
        line
        for line in path.read_text().splitlines()
        if not line.startswith("@PG")
    ]


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli_index")
    ref = str(root / "ref.fasta")
    reads = str(root / "reads.fastq")
    assert (
        main(
            [
                "simulate",
                "--length",
                "12000",
                "--reads",
                "12",
                "--seed",
                "7",
                "--out-reference",
                ref,
                "--out-reads",
                reads,
            ]
        )
        == 0
    )
    idx = str(root / "ref.rpidx")
    assert main(["index", "build", "--reference", ref, "--out", idx]) == 0
    return root, ref, reads, idx


class TestIndexSubcommands:
    def test_verify_passes_on_fresh_build(self, workload, capsys):
        _, _, _, idx = workload
        assert main(["index", "verify", "--index", idx]) == 0
        assert "intact" in capsys.readouterr().out

    def test_verify_fails_typed_on_corruption(
        self, workload, tmp_path, capsys
    ):
        root, _, _, idx = workload
        from pathlib import Path

        bad = bitflip_section(Path(idx), tmp_path / "bad.rpidx", "sa")
        assert main(["index", "verify", "--index", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "IndexCorruptError" in err
        assert "sa" in err

    def test_info_json_names_every_section(self, workload, capsys):
        _, _, _, idx = workload
        assert main(["index", "info", "--index", idx, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        from repro.index import SECTION_NAMES

        assert set(payload["sections"]) == set(SECTION_NAMES)
        assert payload["schema_version"] == 1
        assert len(payload["fingerprint"]) == 8


class TestAlignWithIndex:
    @pytest.mark.parametrize("workers", ("1", "2"))
    def test_sam_identical_to_index_less_run(self, workload, workers):
        root, ref, reads, idx = workload
        plain = root / f"plain{workers}.sam"
        indexed = root / f"indexed{workers}.sam"
        base = [
            "align", "--reference", ref, "--reads", reads,
            "--workers", workers, "--batch-size", "6",
        ]
        assert main(base + ["--out", str(plain)]) == 0
        assert main(base + ["--out", str(indexed), "--index", idx]) == 0
        assert _strip_pg(indexed) == _strip_pg(plain)

    def test_pg_line_names_the_fingerprint(self, workload):
        root, ref, reads, idx = workload
        out = root / "tagged.sam"
        assert (
            main(
                [
                    "align", "--reference", ref, "--reads", reads,
                    "--out", str(out), "--index", idx,
                ]
            )
            == 0
        )
        from repro.index import read_header

        header = read_header(idx)
        (pg,) = [
            line
            for line in out.read_text().splitlines()
            if line.startswith("@PG")
        ]
        assert f"index={header.fingerprint}" in pg
        assert "schema=1" in pg

    def test_corrupt_index_refused_without_rebuild_flag(
        self, workload, tmp_path
    ):
        _, ref, reads, _ = workload
        from pathlib import Path

        _, _, _, idx = workload
        bad = bitflip_section(
            Path(idx), tmp_path / "bad.rpidx", "fm_occ"
        )
        with pytest.raises(SystemExit):
            main(
                [
                    "align", "--reference", ref, "--reads", reads,
                    "--out", str(tmp_path / "out.sam"),
                    "--index", str(bad),
                ]
            )

    def test_rebuild_flag_recovers_in_place(self, workload, tmp_path):
        root, ref, reads, idx = workload
        from pathlib import Path

        bad = bitflip_section(
            Path(idx), tmp_path / "bad.rpidx", "kmer_positions"
        )
        out = tmp_path / "out.sam"
        assert (
            main(
                [
                    "align", "--reference", ref, "--reads", reads,
                    "--out", str(out), "--index", str(bad),
                    "--rebuild-index",
                ]
            )
            == 0
        )
        assert main(["index", "verify", "--index", str(bad)]) == 0
        plain = root / "plain1.sam"
        if plain.exists():
            assert _strip_pg(out) == _strip_pg(plain)


class TestServeStatus:
    def test_status_payload_carries_index_meta(self, workload):
        from repro.aligner.pipeline import Aligner
        from repro.cli import _load_reference
        from repro.index import load_index
        from repro.serve.server import AlignmentServer

        _, ref, _, idx = workload
        _, reference = _load_reference(ref)
        loaded = load_index(idx)
        server = AlignmentServer(Aligner(reference, index=loaded))
        assert server.status()["index"] == loaded.meta()
        bare = AlignmentServer(Aligner(reference))
        assert bare.status()["index"] is None
