"""Artifact format: roundtrip fidelity, determinism, atomicity.

The store's value proposition is "build once, load anywhere, trust
always": a loaded index must answer every seeding query exactly like
a freshly built one, identical inputs must produce identical bytes
(the fingerprint is content-addressed), and a crashed build must
never leave a torn artifact behind.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.durability.journal import atomic_write_bytes
from repro.index import (
    SCHEMA_VERSION,
    SECTION_NAMES,
    build_index,
    load_index,
    read_header,
    reference_crc,
    verify_artifact,
)
from repro.seeding.fmindex import FMIndex
from repro.seeding.kmer_index import KmerIndex


class TestRoundtrip:
    def test_header_records_identity(self, reference, artifact):
        path, loaded = artifact
        header = read_header(path)
        assert header.schema_version == SCHEMA_VERSION
        assert header.reference_length == len(reference)
        assert header.reference_crc == reference_crc(reference)
        assert header.fingerprint == loaded.fingerprint
        assert set(header.sections) == set(SECTION_NAMES)

    def test_reference_section_is_the_reference(self, reference, artifact):
        _, loaded = artifact
        assert np.array_equal(np.asarray(loaded.reference), reference)

    def test_fm_index_answers_like_a_fresh_build(self, reference, artifact):
        _, loaded = artifact
        fresh = FMIndex(reference)
        fm = loaded.fm_index()
        for start in (0, 137, 5_000, len(reference) - 40):
            pattern = reference[start : start + 30]
            assert fm.count(pattern) == fresh.count(pattern)
            assert fm.find(pattern) == fresh.find(pattern)

    def test_kmer_index_seeds_like_a_fresh_build(self, reference, artifact):
        _, loaded = artifact
        fresh = KmerIndex(reference.astype(np.int64), k=19)
        km = loaded.kmer_index()
        rng = np.random.default_rng(5)
        for _ in range(5):
            start = int(rng.integers(0, len(reference) - 120))
            query = reference[start : start + 100].copy()
            got = [(s.qbegin, s.qend, s.rbegin) for s in km.seed_read(query)]
            want = [
                (s.qbegin, s.qend, s.rbegin) for s in fresh.seed_read(query)
            ]
            assert got == want

    def test_mmap_and_memory_modes_agree(self, reference, artifact):
        path, _ = artifact
        mapped = load_index(path, mmap=True)
        copied = load_index(path, mmap=False)
        pattern = reference[200:240]
        assert mapped.fm_index().find(pattern) == copied.fm_index().find(
            pattern
        )
        assert isinstance(mapped.fm_index().tables()["occ"], np.memmap)
        assert not isinstance(copied.fm_index().tables()["occ"], np.memmap)


class TestDeterminism:
    def test_same_inputs_same_bytes(self, reference, tmp_path):
        a, b = tmp_path / "a.rpidx", tmp_path / "b.rpidx"
        build_index(reference, a)
        build_index(reference, b)
        assert a.read_bytes() == b.read_bytes()

    def test_fingerprint_tracks_content(self, reference, tmp_path):
        base = build_index(reference, tmp_path / "base.rpidx")
        other_k = build_index(reference, tmp_path / "k.rpidx", k=21)
        other_rate = build_index(
            reference, tmp_path / "r.rpidx", sa_sample_rate=4
        )
        edited = reference.copy()
        edited[0] = (edited[0] + 1) % 4
        other_ref = build_index(edited, tmp_path / "e.rpidx")
        prints = {
            base.fingerprint,
            other_k.fingerprint,
            other_rate.fingerprint,
            other_ref.fingerprint,
        }
        assert len(prints) == 4

    def test_rebuilt_artifact_keeps_its_fingerprint(
        self, reference, tmp_path
    ):
        path = tmp_path / "ref.rpidx"
        first = build_index(reference, path).fingerprint
        path.unlink()
        assert build_index(reference, path).fingerprint == first


class TestAtomicity:
    def test_no_temp_droppings_after_build(self, reference, tmp_path):
        path = tmp_path / "ref.rpidx"
        build_index(reference, path)
        assert [p.name for p in tmp_path.iterdir()] == ["ref.rpidx"]

    def test_build_over_existing_replaces_whole_file(
        self, reference, tmp_path
    ):
        path = tmp_path / "ref.rpidx"
        atomic_write_bytes(path, b"junk that is not an artifact")
        build_index(reference, path)
        verify_artifact(path)

    def test_verify_passes_on_fresh_build(self, artifact):
        path, loaded = artifact
        header = verify_artifact(path)
        assert header.fingerprint == loaded.fingerprint


class TestValidation:
    def test_section_set_is_closed(self, reference):
        from repro.index.format import encode_artifact

        with pytest.raises(ValueError, match="section set"):
            encode_artifact(
                {"reference": reference},
                reference_crc(reference),
                len(reference),
                {"k": 19},
            )
