"""Persistent index store tests: format, corruption chaos, identity."""
