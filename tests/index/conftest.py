"""Shared fixtures: one reference, one built artifact per module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.genome.synth import ReadSimulator, synthesize_reference
from repro.index import build_index


@pytest.fixture(scope="module")
def reference():
    """A repeat-bearing synthetic reference (module-scoped: read-only)."""
    rng = np.random.default_rng(41)
    return synthesize_reference(15_000, rng, repeat_fraction=0.05)


@pytest.fixture(scope="module")
def reads(reference):
    """A small Platinum-like corpus over the module reference."""
    sim = ReadSimulator(reference, seed=42)
    return [(r.name, r.codes) for r in sim.simulate(16)]


@pytest.fixture(scope="module")
def artifact(reference, tmp_path_factory):
    """One built artifact, shared read-only by a module's tests."""
    path = tmp_path_factory.mktemp("index") / "ref.rpidx"
    loaded = build_index(reference, path)
    return path, loaded
