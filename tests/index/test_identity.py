"""Differential identity: an index artifact changes nothing but speed.

The store's contract with the rest of the pipeline is *zero new
semantics*: SAM output with ``--index`` must be byte-identical to an
index-less run across seeding backends, engines (scalar full-band and
the batched wave scheduler), dispatch modes (in-process, forked
shards, spawned shards), and load modes (mmap vs private in-memory
copies).  Any divergence fails the byte comparison immediately.
"""

from __future__ import annotations

import multiprocessing as mp

import pytest

from repro.aligner.engines import BatchedEngine, FullBandEngine
from repro.aligner.parallel import EngineSpec
from repro.index import load_index
from tests.helpers import sam_bytes


def _baseline(reference, reads, seeding):
    return sam_bytes(reference, reads, FullBandEngine(), seeding=seeding)


class TestInProcess:
    @pytest.mark.parametrize("seeding", ("kmer", "smem"))
    def test_scalar_engine(self, reference, reads, artifact, seeding):
        _, loaded = artifact
        assert sam_bytes(
            reference,
            reads,
            FullBandEngine(),
            seeding=seeding,
            index=loaded,
        ) == _baseline(reference, reads, seeding)

    @pytest.mark.parametrize("seeding", ("kmer", "smem"))
    def test_batched_engine(self, reference, reads, artifact, seeding):
        _, loaded = artifact
        assert sam_bytes(
            reference,
            reads,
            BatchedEngine(),
            batch_size=5,
            seeding=seeding,
            index=loaded,
        ) == _baseline(reference, reads, seeding)

    @pytest.mark.parametrize("mmap_mode", (True, False))
    def test_mmap_vs_in_memory(self, reference, reads, artifact, mmap_mode):
        path, _ = artifact
        loaded = load_index(path, mmap=mmap_mode)
        assert sam_bytes(
            reference, reads, FullBandEngine(), index=loaded
        ) == _baseline(reference, reads, "kmer")


class TestSharded:
    @pytest.mark.parametrize(
        "start_method",
        [
            m
            for m in ("fork", "spawn")
            if m in mp.get_all_start_methods()
        ],
    )
    @pytest.mark.parametrize("seeding", ("kmer", "smem"))
    def test_workers_with_handle(
        self, reference, reads, artifact, start_method, seeding
    ):
        _, loaded = artifact
        assert sam_bytes(
            reference,
            reads,
            EngineSpec(kind="batched"),
            workers=2,
            batch_size=5,
            seeding=seeding,
            start_method=start_method,
            index=loaded.handle(),
        ) == _baseline(reference, reads, seeding)
