"""Corruption chaos: every injected fault detected, zero silent seeds.

The acceptance bar of the persistent store: for every corruption seam
(a bit flipped in *any* section, truncation at any depth, stale magic,
a foreign schema version, a tampered header) the load ladder must
raise exactly the right typed error — and no code path, including a
full aligner constructed over the damaged artifact, may ever emit a
seed derived from the damaged bytes.
"""

from __future__ import annotations

import pickle

import pytest

from repro.faults.indexfaults import (
    bitflip_section,
    stale_magic,
    stale_version,
    tamper_header,
    truncate_at,
)
from repro.index import (
    SECTION_NAMES,
    IndexArtifactError,
    IndexCorruptError,
    IndexMissingError,
    IndexVersionError,
    load_index,
    verify_artifact,
)
from repro.index.format import _FIXED

pytestmark = pytest.mark.chaos


class TestBitflips:
    @pytest.mark.parametrize("section", SECTION_NAMES)
    @pytest.mark.parametrize("at", (0.0, 0.5, 0.999))
    def test_every_section_every_position_detected(
        self, artifact, tmp_path, section, at
    ):
        src, _ = artifact
        bad = bitflip_section(src, tmp_path / "bad.rpidx", section, at=at)
        with pytest.raises(IndexCorruptError) as excinfo:
            load_index(bad)
        assert excinfo.value.section == section
        assert excinfo.value.offset is not None

    @pytest.mark.parametrize("section", SECTION_NAMES)
    def test_verify_names_the_damaged_section(
        self, artifact, tmp_path, section
    ):
        src, _ = artifact
        bad = bitflip_section(src, tmp_path / "bad.rpidx", section)
        with pytest.raises(IndexCorruptError) as excinfo:
            verify_artifact(bad)
        assert excinfo.value.section == section


class TestTruncation:
    @pytest.mark.parametrize(
        "nbytes",
        (0, 4, _FIXED.size, _FIXED.size + 10, 200, 4096, 100_000),
    )
    def test_truncated_artifact_refused(self, artifact, tmp_path, nbytes):
        src, _ = artifact
        assert nbytes < src.stat().st_size
        bad = truncate_at(src, tmp_path / "bad.rpidx", nbytes)
        with pytest.raises((IndexCorruptError, IndexVersionError)):
            load_index(bad)

    def test_one_byte_short_is_refused(self, artifact, tmp_path):
        src, _ = artifact
        bad = truncate_at(
            src, tmp_path / "bad.rpidx", src.stat().st_size - 1
        )
        with pytest.raises(IndexCorruptError):
            load_index(bad)


class TestStaleFiles:
    def test_wrong_magic_is_a_version_error(self, artifact, tmp_path):
        src, _ = artifact
        bad = stale_magic(src, tmp_path / "bad.rpidx")
        with pytest.raises(IndexVersionError):
            load_index(bad)

    def test_future_schema_is_a_version_error(self, artifact, tmp_path):
        src, _ = artifact
        bad = stale_version(src, tmp_path / "bad.rpidx", version=999)
        with pytest.raises(IndexVersionError) as excinfo:
            load_index(bad)
        assert excinfo.value.found == 999

    def test_tampered_header_is_corrupt(self, artifact, tmp_path):
        src, _ = artifact
        bad = tamper_header(src, tmp_path / "bad.rpidx")
        with pytest.raises(IndexCorruptError) as excinfo:
            load_index(bad)
        assert excinfo.value.section == "header"

    def test_missing_artifact_is_typed_and_oserror(self, tmp_path):
        with pytest.raises(IndexMissingError) as excinfo:
            load_index(tmp_path / "never-built.rpidx")
        assert isinstance(excinfo.value, OSError)
        assert excinfo.value.path is not None


class TestNoSilentSeeds:
    """A damaged artifact must never reach the seeding stage at all."""

    @pytest.mark.parametrize("section", SECTION_NAMES)
    def test_aligner_over_corrupt_handle_raises_before_seeding(
        self, reference, artifact, tmp_path, section
    ):
        from repro.aligner.pipeline import Aligner
        from repro.index.store import IndexHandle

        src, loaded = artifact
        bad = bitflip_section(src, tmp_path / "bad.rpidx", section)
        handle = IndexHandle(
            path=str(bad),
            fingerprint=loaded.fingerprint,
            schema_version=loaded.header.schema_version,
        )
        with pytest.raises(IndexArtifactError):
            Aligner(reference, index=handle.open(verify=True))

    def test_sharded_run_over_vanished_artifact_fails_typed(
        self, reference, reads, tmp_path
    ):
        from repro.aligner.parallel import EngineSpec, align_sharded
        from repro.index import build_index

        path = tmp_path / "ref.rpidx"
        handle = build_index(reference, path).handle()
        path.unlink()
        with pytest.raises(IndexMissingError):
            align_sharded(
                reference,
                reads,
                spec=EngineSpec(kind="full"),
                workers=2,
                index=handle,
            )


class TestErrorPickling:
    """Typed errors cross process boundaries from spawn workers."""

    def test_each_error_roundtrips_with_payload(self):
        errors = [
            IndexVersionError("msg", found=2, expected=1),
            IndexCorruptError("msg", section="sa", offset=64),
            IndexMissingError("msg", path="/x/y.rpidx"),
        ]
        from repro.index import IndexDriftError

        errors.append(
            IndexDriftError("msg", field="k", found=21, expected=19)
        )
        for exc in errors:
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert clone.args == exc.args
            assert vars(clone) == vars(exc)
