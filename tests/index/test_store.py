"""Store semantics: handles, drift pins, and the worker handoff.

An :class:`IndexHandle` is a *capability*: path plus pinned content
fingerprint.  These tests pin its contract — picklable, re-openable,
and impossible to satisfy with a different artifact than the one the
parent validated — alongside the drift rules that keep an intact
artifact from serving the wrong run.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.index import (
    IndexDriftError,
    IndexMissingError,
    build_index,
    load_index,
)
from repro.index.store import IndexHandle


class TestHandles:
    def test_handle_roundtrips_through_pickle(self, artifact):
        _, loaded = artifact
        handle = loaded.handle()
        clone = pickle.loads(pickle.dumps(handle))
        assert clone == handle
        assert clone.open().fingerprint == loaded.fingerprint

    def test_vanished_artifact_is_missing(self, reference, tmp_path):
        path = tmp_path / "ref.rpidx"
        handle = build_index(reference, path).handle()
        path.unlink()
        with pytest.raises(IndexMissingError):
            handle.open()

    def test_swapped_artifact_refused_by_fingerprint_pin(
        self, reference, tmp_path
    ):
        path = tmp_path / "ref.rpidx"
        handle = build_index(reference, path).handle()
        build_index(reference, path, k=23)  # same path, different content
        with pytest.raises(IndexDriftError) as excinfo:
            handle.open()
        assert excinfo.value.field == "fingerprint"

    def test_fast_open_skips_section_read_but_keeps_the_pin(
        self, artifact
    ):
        path, loaded = artifact
        fast = loaded.handle().open(verify=False)
        assert fast.fingerprint == loaded.fingerprint


class TestDriftRules:
    def test_reference_edit_refused(self, reference, artifact):
        _, loaded = artifact
        edited = reference.copy()
        edited[100] = (edited[100] + 1) % 4
        with pytest.raises(IndexDriftError) as excinfo:
            loaded.check_reference(edited)
        assert excinfo.value.field == "reference_crc"

    def test_reference_length_refused_first(self, reference, artifact):
        _, loaded = artifact
        with pytest.raises(IndexDriftError) as excinfo:
            loaded.check_reference(reference[:-10])
        assert excinfo.value.field == "reference_length"

    def test_kmer_size_refused(self, artifact):
        _, loaded = artifact
        with pytest.raises(IndexDriftError) as excinfo:
            loaded.check_kmer_size(25)
        assert excinfo.value.field == "k"
        loaded.check_kmer_size(19)  # the built size passes

    def test_aligner_refuses_drifted_reference(self, reference, artifact):
        from repro.aligner.pipeline import Aligner

        _, loaded = artifact
        edited = reference.copy()
        edited[0] = (edited[0] + 1) % 4
        with pytest.raises(IndexDriftError):
            Aligner(edited, index=loaded)

    def test_aligner_refuses_kmer_size_mismatch(self, reference, artifact):
        from repro.aligner.pipeline import Aligner

        _, loaded = artifact
        with pytest.raises(IndexDriftError):
            Aligner(
                reference, seeding="kmer", min_seed_length=25, index=loaded
            )


class TestMeta:
    def test_meta_names_the_artifact(self, artifact):
        path, loaded = artifact
        meta = loaded.meta()
        assert meta["path"] == str(path)
        assert meta["fingerprint"] == loaded.fingerprint
        assert meta["schema_version"] == 1
        assert meta["mode"] == "mmap"
        assert load_index(path, mmap=False).meta()["mode"] == "memory"

    def test_aligner_exposes_index_meta(self, reference, artifact):
        from repro.aligner.pipeline import Aligner

        _, loaded = artifact
        with_index = Aligner(reference, index=loaded)
        without = Aligner(reference)
        assert with_index.index_meta == loaded.meta()
        assert without.index_meta is None

    def test_suffix_array_section_matches_fresh_build(
        self, reference, artifact
    ):
        from repro.seeding.suffixarray import build_suffix_array

        _, loaded = artifact
        assert np.array_equal(
            np.asarray(loaded.suffix_array), build_suffix_array(reference)
        )
