"""Resume semantics: a journaled run pins its index by *content*.

``run_fingerprint`` carries the index fingerprint, so ``--resume``
against a swapped or rebuilt-with-different-params artifact is refused
by the journal's configuration check — while deleting the artifact and
rebuilding it byte-identically still resumes, because the pin is
content-addressed rather than path- or mtime-based.
"""

from __future__ import annotations

import pytest

from repro.aligner.parallel import EngineSpec
from repro.durability.journal import JournalError
from repro.durability.runner import (
    fingerprint_reads,
    run_fingerprint,
    run_journaled,
)
from repro.index import build_index


def _fingerprint(reads, index_fingerprint):
    return {
        "test": 1,
        "reads": fingerprint_reads(reads),
        "index": index_fingerprint,
    }


def _run(tmp_path, reference, reads, loaded, *, resume=False):
    return run_journaled(
        tmp_path / "run",
        reference,
        reads,
        _fingerprint(reads, loaded.fingerprint),
        tmp_path / "out.sam",
        "chr1",
        workers=1,
        batch_size=8,
        resume=resume,
        index=loaded.handle(),
    )


class TestFingerprintContract:
    def test_run_fingerprint_records_the_index(self, tmp_path):
        ref = tmp_path / "ref.fasta"
        reads = tmp_path / "reads.fastq"
        ref.write_text(">chr1\nACGT\n")
        reads.write_text("@r\nACGT\n+\n!!!!\n")
        spec = EngineSpec(kind="full")
        bare = run_fingerprint(ref, reads, spec, 8, "kmer")
        pinned = run_fingerprint(
            ref, reads, spec, 8, "kmer", index_fingerprint="deadbeef"
        )
        assert bare["index"] is None
        assert pinned["index"] == "deadbeef"
        assert bare != pinned

    def test_identical_rebuild_keeps_the_pin(self, reference, tmp_path):
        path = tmp_path / "ref.rpidx"
        first = build_index(reference, path).fingerprint
        path.unlink()
        assert build_index(reference, path).fingerprint == first


class TestJournaledRuns:
    def test_resume_refuses_a_drifted_index(
        self, reference, reads, tmp_path
    ):
        loaded = build_index(reference, tmp_path / "ref.rpidx")
        _run(tmp_path, reference, reads, loaded)
        drifted = build_index(
            reference, tmp_path / "drifted.rpidx", sa_sample_rate=4
        )
        with pytest.raises(JournalError, match="configuration changed"):
            _run(tmp_path, reference, reads, drifted, resume=True)

    def test_resume_accepts_a_content_identical_rebuild(
        self, reference, reads, tmp_path
    ):
        path = tmp_path / "ref.rpidx"
        loaded = build_index(reference, path)
        _run(tmp_path, reference, reads, loaded)
        path.unlink()
        rebuilt = build_index(reference, path)
        report = _run(tmp_path, reference, reads, rebuilt, resume=True)
        assert report.resumed
        assert report.skipped_windows == report.total_windows
