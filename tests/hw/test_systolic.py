"""Validation of the cycle-level systolic array model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING
from repro.genome.sequence import encode, random_sequence
from repro.hw.systolic import SystolicBSW
from tests.helpers import mutate

SEQ = st.lists(st.integers(0, 3), min_size=2, max_size=18).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestFunctionalEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(q=SEQ, t=SEQ, h0=st.integers(1, 30), w=st.integers(1, 8))
    def test_matches_software_kernel_or_flags_exception(
        self, q, t, h0, w
    ):
        """The hardware contract: bit-equal scores, or exception."""
        run = SystolicBSW(w, BWA_MEM_SCORING).run(q, t, h0)
        if run.exception:
            return
        sw = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
        assert run.result.scores() == sw.scores()
        assert (run.result.boundary_e == sw.boundary_e).all()

    def test_without_speculation_always_matches(self):
        rng = np.random.default_rng(2)
        for _ in range(60):
            q = random_sequence(int(rng.integers(2, 20)), rng)
            t = mutate(q, rng, subs=2, ins=1, dels=1)
            if len(t) == 0:
                t = q.copy()
            arr = SystolicBSW(5, BWA_MEM_SCORING,
                              speculative_termination=False)
            run = arr.run(q, t, 15)
            sw = banded.extend(q, t, BWA_MEM_SCORING, 15, w=5)
            assert not run.exception
            assert run.result.scores() == sw.scores()

    def test_exceptions_are_rare_on_real_workloads(self):
        rng = np.random.default_rng(3)
        exceptions = 0
        for _ in range(150):
            q = random_sequence(30, rng)
            t = mutate(q, rng, subs=1, dels=1)
            t = np.concatenate(
                [t, random_sequence(8, rng)]
            ).astype(np.uint8)
            run = SystolicBSW(6, BWA_MEM_SCORING).run(q, t, 25)
            exceptions += run.exception
        assert exceptions < 15  # well under 10%


class TestTelemetry:
    def test_cycle_count_scales_with_wavefronts(self):
        q = encode("ACGTACGTACGTACGT")
        run = SystolicBSW(4, BWA_MEM_SCORING).run(q, q, 20)
        # fill + one cycle per anti-diagonal + drain.
        assert run.cycles <= len(q) * 2 + 2 * (4 + 1) + 2
        assert run.cycles >= len(q)

    def test_utilization_bounded(self):
        q = encode("ACGTACGTAC")
        run = SystolicBSW(3, BWA_MEM_SCORING).run(q, q, 20)
        assert 0.0 < run.utilization <= 1.0

    def test_pe_count(self):
        assert SystolicBSW(41, BWA_MEM_SCORING).pe_count == 42

    def test_rejects_bad_band(self):
        with pytest.raises(ValueError):
            SystolicBSW(0, BWA_MEM_SCORING)

    def test_rejects_negative_h0(self):
        arr = SystolicBSW(3, BWA_MEM_SCORING)
        q = encode("ACGT")
        with pytest.raises(ValueError):
            arr.run(q, q, -1)

    def test_early_termination_reduces_cells(self):
        rng = np.random.default_rng(4)
        q = random_sequence(30, rng)
        t = random_sequence(40, rng)  # unrelated: dies fast
        spec = SystolicBSW(8, BWA_MEM_SCORING).run(q, t, 5)
        plain = SystolicBSW(
            8, BWA_MEM_SCORING, speculative_termination=False
        ).run(q, t, 5)
        assert spec.cells_computed <= plain.cells_computed
