"""Calibration tests: the cost models must hit the paper's numbers."""

import pytest

from repro import constants as paper
from repro.hw import area, timing


class TestAreaModel:
    def test_band_scaling_is_affine_increasing(self):
        values = [area.bsw_core_luts(w) for w in (5, 20, 41, 80, 101)]
        assert all(b > a for a, b in zip(values, values[1:]))
        # Affine: equal increments for equal band steps.
        d1 = area.bsw_core_luts(21) - area.bsw_core_luts(11)
        d2 = area.bsw_core_luts(31) - area.bsw_core_luts(21)
        assert d1 == pytest.approx(d2)

    def test_seedex_core_improvement_is_2_3x(self):
        ratio = area.full_band_core_luts() / area.seedex_core_luts()
        assert ratio == pytest.approx(
            paper.SEEDEX_CORE_LUT_IMPROVEMENT, rel=0.01
        )

    def test_edit_machine_overhead_is_5_53_percent(self):
        assert area.edit_machine_overhead() == pytest.approx(
            paper.EDIT_MACHINE_AREA_OVERHEAD, rel=0.01
        )

    def test_edit_optimization_ladder(self):
        base = area.edit_core_luts(41, "baseline")
        assert base / area.edit_core_luts(41, "reduced-scoring") == (
            pytest.approx(paper.EDIT_REDUCED_SCORING_FACTOR)
        )
        assert base / area.edit_core_luts(41, "delta") == pytest.approx(
            paper.EDIT_DELTA_ENCODING_FACTOR
        )
        assert base / area.edit_core_luts(41, "half-width") == (
            pytest.approx(paper.EDIT_HALF_WIDTH_FACTOR)
        )

    def test_unknown_optimization_rejected(self):
        with pytest.raises(ValueError):
            area.edit_core_luts(41, "quantum")

    def test_table2_core_percentage(self):
        model = area.table2_model()
        published = paper.TABLE2_UTILIZATION["SeedEx: SeedEx Core"]["LUT"]
        assert model["SeedEx: SeedEx Core"] == pytest.approx(
            published, rel=0.01
        )

    def test_breakdown_sums_to_parts(self):
        b = area.seedex_fpga_breakdown()
        total = sum(b.as_dict().values())
        assert b.bsw_cores / total > 0.3  # compute dominates

    def test_asic_totals_match_table3(self):
        a, p = area.asic_seedex_totals()
        assert a == pytest.approx(
            paper.TABLE3_SEEDEX_TOTAL["area_mm2"], rel=0.05
        )
        sys_a, sys_p = area.asic_system_totals()
        assert sys_a == pytest.approx(
            paper.TABLE3_TOTAL["area_mm2"], rel=0.05
        )

    def test_band_rejected_below_one(self):
        with pytest.raises(ValueError):
            area.bsw_core_luts(0)


class TestTimingModel:
    def test_device_throughput_is_43_9M(self):
        assert timing.fpga_throughput() == pytest.approx(
            paper.SEEDEX_THROUGHPUT_EXT_PER_S, rel=0.01
        )

    def test_iso_area_speedup_is_6x(self):
        assert timing.iso_area_speedup() == pytest.approx(
            paper.ISO_AREA_THROUGHPUT_SPEEDUP, rel=0.01
        )

    def test_latency_improvement_is_1_9x(self):
        assert timing.latency_improvement() == pytest.approx(
            paper.SEEDEX_LATENCY_IMPROVEMENT, rel=0.01
        )

    def test_initiation_interval_increases_with_band(self):
        assert timing.initiation_interval_cycles(
            101
        ) > timing.initiation_interval_cycles(41)

    def test_compute_latency_near_100_cycles(self):
        """Section V-A: ~100-cycle compute hides the 40-cycle AXI."""
        ii = timing.initiation_interval_cycles(paper.DEFAULT_BAND)
        assert 80 < ii < 130
        assert ii > paper.AXI_READ_LATENCY_CYCLES

    def test_band_rejected_below_one(self):
        with pytest.raises(ValueError):
            timing.initiation_interval_cycles(0)

    def test_throughput_scales_linearly_with_cores(self):
        one = timing.fpga_throughput(n_bsw_cores=12)
        three = timing.fpga_throughput(n_bsw_cores=36)
        assert three == pytest.approx(3 * one)

    def test_figure18_ordering(self):
        bars = {c.name: c for c in timing.figure18_comparators()}
        seedex = bars["ERT+SeedEx"]
        sillax = bars["ERT+Sillax"]
        genax = bars["GenAx"]
        assert seedex.kernel_kexts_per_s_per_mm2 == pytest.approx(
            20 * sillax.kernel_kexts_per_s_per_mm2
        )
        assert (
            seedex.app_kreads_per_s_per_mm2
            > sillax.app_kreads_per_s_per_mm2
            > genax.app_kreads_per_s_per_mm2
        )
        # Energy: SeedEx beats both; GenAx beats Sillax (2.11x < 2.45x).
        assert seedex.energy_kreads_per_j > genax.energy_kreads_per_j
        assert seedex.energy_kreads_per_j > sillax.energy_kreads_per_j
        assert genax.energy_kreads_per_j > sillax.energy_kreads_per_j
