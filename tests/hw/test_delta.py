"""Property tests for the modulo-circle residue arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.delta import (
    DELTA_MODULUS,
    MAX_DELTA,
    AugmentationUnit,
    checked_dmax,
    dmax2,
    dmax3,
    encode_residue,
)


class TestDmax2:
    @settings(max_examples=300)
    @given(
        base=st.integers(-1000, 1000),
        d=st.integers(-MAX_DELTA, MAX_DELTA),
    )
    def test_orders_bounded_pairs(self, base, d):
        x1, x2 = base, base + d
        res, second = dmax2(
            encode_residue(x1), encode_residue(x2)
        )
        assert res == max(x1, x2) % DELTA_MODULUS
        if d > 0:
            assert second

    def test_equal_inputs(self):
        res, second = dmax2(5, 5)
        assert res == 5
        assert not second

    @settings(max_examples=200)
    @given(
        base=st.integers(-500, 500),
        d1=st.integers(-MAX_DELTA, MAX_DELTA),
        d2=st.integers(-MAX_DELTA, MAX_DELTA),
    )
    def test_dmax3(self, base, d1, d2):
        xs = [base, base + d1, base + d2]
        if max(xs) - min(xs) > MAX_DELTA:
            # The 3-input unit redefines delta as the max *pairwise*
            # difference (paper Figure 9, right); out-of-range trios
            # are excluded by the scoring co-design.
            return
        res = dmax3(*[encode_residue(x) for x in xs])
        assert res == max(xs) % DELTA_MODULUS

    def test_checked_dmax_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="exceeds delta"):
            checked_dmax([0, MAX_DELTA + 1])

    @settings(max_examples=100)
    @given(
        base=st.integers(-100, 100),
        ds=st.lists(
            st.integers(-MAX_DELTA, MAX_DELTA), min_size=1, max_size=5
        ),
    )
    def test_checked_dmax_chain(self, base, ds):
        # Chains stay valid as long as all values share one window.
        vals = [base] + [base + d for d in ds]
        lo, hi = min(vals), max(vals)
        if hi - lo > MAX_DELTA:
            return
        assert checked_dmax(vals) == max(vals) % DELTA_MODULUS


class TestAugmentation:
    @settings(max_examples=200)
    @given(
        start=st.integers(-100, 1000),
        steps=st.lists(
            st.integers(-MAX_DELTA, MAX_DELTA), min_size=0, max_size=50
        ),
    )
    def test_decodes_bounded_walks_exactly(self, start, steps):
        aug = AugmentationUnit(start)
        value = start
        for d in steps:
            value += d
            assert aug.decode(encode_residue(value)) == value

    def test_rejects_bad_residue(self):
        aug = AugmentationUnit(10)
        with pytest.raises(ValueError):
            aug.decode(DELTA_MODULUS)

    def test_unbounded_step_decodes_wrong(self):
        """Sanity: the circle genuinely cannot follow a big jump."""
        aug = AugmentationUnit(0)
        jumped = MAX_DELTA + 2
        assert aug.decode(encode_residue(jumped)) != jumped
