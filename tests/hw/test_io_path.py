"""Tests for job packing, the arbiter, and the output coalescer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.synth import ExtensionJob
from repro.hw.io_path import (
    CHARS_PER_LINE,
    LINE_BYTES,
    Arbiter,
    coalesce_results,
    lines_per_job,
    pack_job,
    unpack_job,
)

SEQ = st.lists(st.integers(0, 4), min_size=1, max_size=200).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


def _job(q, t, h0):
    return ExtensionJob(query=q, target=t, h0=h0)


class TestPacking:
    @settings(max_examples=150, deadline=None)
    @given(q=SEQ, t=SEQ, h0=st.integers(0, 200))
    def test_roundtrip(self, q, t, h0):
        job = _job(q, t, h0)
        lines = pack_job(job)
        assert all(len(line) == LINE_BYTES for line in lines)
        back = unpack_job(lines)
        assert (back.query == job.query).all()
        assert (back.target == job.target).all()
        assert back.h0 == job.h0

    def test_typical_job_fits_few_lines(self):
        # 101bp query + 149bp target: 250 chars at 3 bits ~ 94 bytes
        # + header => 2 lines, matching the paper's bandwidth budget.
        q = np.zeros(101, dtype=np.uint8)
        t = np.zeros(149, dtype=np.uint8)
        assert lines_per_job(_job(q, t, 25)) == 2

    def test_rejects_out_of_range(self):
        q = np.zeros(4, dtype=np.uint8)
        with pytest.raises(ValueError):
            pack_job(_job(q, q, 1 << 16))
        bad = np.array([9], dtype=np.uint8)
        with pytest.raises(ValueError):
            pack_job(_job(bad, q, 5))

    def test_truncated_input_rejected(self):
        q = np.zeros(120, dtype=np.uint8)
        lines = pack_job(_job(q, q, 5))
        with pytest.raises(ValueError):
            unpack_job(lines[:1])
        with pytest.raises(ValueError):
            unpack_job([lines[0][:4]])


class TestArbiter:
    def _lines(self, n, tag):
        return [bytes([tag]) * LINE_BYTES for _ in range(n)]

    def test_streams_reassemble_in_order(self):
        arb = Arbiter()
        arb.add_stream(0, self._lines(5, 1))
        arb.add_stream(1, self._lines(3, 2))
        report = arb.run()
        assert report.lines_delivered == 8
        assert arb.streams[0].delivered == self._lines(5, 1)
        assert arb.streams[1].delivered == self._lines(3, 2)

    def test_round_robin_fairness(self):
        arb = Arbiter()
        arb.add_stream(0, self._lines(50, 1))
        arb.add_stream(1, self._lines(50, 2))
        arb.run()
        # After the drain both got everything; fairness shows in the
        # interleaving: neither stream finished twice as fast.
        assert len(arb.streams[0].delivered) == 50
        assert len(arb.streams[1].delivered) == 50

    def test_no_stalls_without_latency(self):
        arb = Arbiter()
        arb.add_stream(0, self._lines(10, 1))
        report = arb.run()
        assert report.stalls == 0
        assert report.efficiency == 1.0

    def test_prefetch_pipe_fill_stalls_once(self):
        arb = Arbiter(prefetch_latency_lines=4)
        arb.add_stream(0, self._lines(20, 1))
        report = arb.run()
        assert report.stalls == 4  # only the pipe fill
        assert report.lines_delivered == 20

    def test_second_stream_hides_the_pipe_fill(self):
        """The state manager's whole point: another ready stream
        absorbs a stalled one's latency."""
        solo = Arbiter(prefetch_latency_lines=4)
        solo.add_stream(0, self._lines(20, 1))
        solo_report = solo.run()
        duo = Arbiter(prefetch_latency_lines=4)
        duo.add_stream(0, self._lines(20, 1))
        duo.add_stream(1, self._lines(20, 2))
        duo_report = duo.run()
        assert duo_report.efficiency >= solo_report.efficiency

    def test_duplicate_stream_rejected(self):
        arb = Arbiter()
        arb.add_stream(0, self._lines(1, 1))
        with pytest.raises(ValueError):
            arb.add_stream(0, self._lines(1, 1))


class TestCoalescer:
    def test_five_to_one(self):
        report = coalesce_results(100)
        assert report.lines_written == 20
        assert report.bytes_saved_fraction == pytest.approx(0.8)

    def test_remainder_line(self):
        assert coalesce_results(6).lines_written == 2

    def test_zero(self):
        assert coalesce_results(0).lines_written == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            coalesce_results(-1)


# -- CRC framing and the faultable seams --------------------------------


class TestCorruptionDetection:
    """pack -> corrupt -> unpack must always raise, never mis-parse."""

    @settings(max_examples=120, deadline=None)
    @given(
        q=SEQ,
        t=SEQ,
        h0=st.integers(0, 200),
        bit=st.integers(0, 10_000),
    )
    def test_any_single_bitflip_detected(self, q, t, h0, bit):
        from repro.hw.io_path import CorruptLineError

        lines = pack_job(_job(q, t, h0))
        blob = bytearray(b"".join(lines))
        bit %= len(blob) * 8
        blob[bit // 8] ^= 1 << (bit % 8)
        corrupted = [
            bytes(blob[k : k + LINE_BYTES])
            for k in range(0, len(blob), LINE_BYTES)
        ]
        with pytest.raises(CorruptLineError):
            unpack_job(corrupted)

    @settings(max_examples=60, deadline=None)
    @given(q=SEQ, t=SEQ, h0=st.integers(0, 200), drop=st.integers(0, 99))
    def test_dropped_line_detected(self, q, t, h0, drop):
        from repro.hw.io_path import CorruptLineError

        lines = pack_job(_job(q, t, h0))
        del lines[drop % len(lines)]
        with pytest.raises((CorruptLineError, ValueError)):
            unpack_job(lines)

    @settings(max_examples=60, deadline=None)
    @given(q=SEQ, t=SEQ, h0=st.integers(0, 200), cut=st.integers(0, 63))
    def test_truncated_line_detected(self, q, t, h0, cut):
        from repro.hw.io_path import CorruptLineError

        lines = pack_job(_job(q, t, h0))
        lines[-1] = lines[-1][:cut]
        with pytest.raises((CorruptLineError, ValueError)):
            unpack_job(lines)

    def test_reordered_lines_detected(self):
        from repro.hw.io_path import CorruptLineError

        rng = np.random.default_rng(8)
        q = rng.integers(0, 4, size=101).astype(np.uint8)
        t = rng.integers(0, 4, size=149).astype(np.uint8)
        lines = pack_job(_job(q, t, 25))
        assert len(lines) >= 2
        lines[0], lines[1] = lines[1], lines[0]
        with pytest.raises(CorruptLineError):
            unpack_job(lines)

    def test_error_carries_field_and_offset(self):
        from repro.hw.io_path import CorruptLineError

        q = np.zeros(120, dtype=np.uint8)
        lines = pack_job(_job(q, q, 5))
        assert len(lines) == 2
        with pytest.raises(CorruptLineError) as err:
            unpack_job(lines[:1])
        assert err.value.field
        blob = bytearray(b"".join(lines))
        blob[-1] ^= 0x01  # flip inside the padding: CRC still sees it
        with pytest.raises(CorruptLineError) as err:
            unpack_job(
                [bytes(blob[k : k + LINE_BYTES]) for k in range(0, len(blob), LINE_BYTES)]
            )
        assert err.value.field == "crc"


class TestResultRecord:
    def _record(self):
        from repro.hw.io_path import ResultRecord

        return ResultRecord(lscore=87, lpos=(93, 101), gscore=83, gpos=99)

    def test_roundtrip(self):
        from repro.hw.io_path import RESULT_BYTES, ResultRecord

        rec = self._record()
        blob = rec.pack()
        assert len(blob) == RESULT_BYTES
        assert ResultRecord.unpack(blob) == rec

    @settings(max_examples=120, deadline=None)
    @given(
        lscore=st.integers(-(2**15), 2**15 - 1),
        li=st.integers(0, 2**16 - 1),
        lj=st.integers(0, 2**16 - 1),
        gscore=st.integers(-(2**15), 2**15 - 1),
        gpos=st.integers(-(2**15), 2**15 - 1),
        bit=st.integers(0, 95),
    )
    def test_any_record_bitflip_detected(
        self, lscore, li, lj, gscore, gpos, bit
    ):
        from repro.hw.io_path import CorruptRecordError, ResultRecord

        rec = ResultRecord(
            lscore=lscore, lpos=(li, lj), gscore=gscore, gpos=gpos
        )
        blob = bytearray(rec.pack())
        blob[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(CorruptRecordError):
            ResultRecord.unpack(bytes(blob))

    def test_truncation_detected(self):
        from repro.hw.io_path import CorruptRecordError, ResultRecord

        blob = self._record().pack()
        for cut in range(len(blob)):
            with pytest.raises(CorruptRecordError):
                ResultRecord.unpack(blob[:cut])

    def test_out_of_range_rejected_at_pack(self):
        from repro.hw.io_path import ResultRecord

        with pytest.raises(ValueError):
            ResultRecord(lscore=2**15, lpos=(0, 0), gscore=0, gpos=0).pack()
        with pytest.raises(ValueError):
            ResultRecord(lscore=0, lpos=(2**16, 0), gscore=0, gpos=0).pack()

    def test_from_result_matches_engine_fields(self):
        from repro.align import banded
        from repro.align.scoring import BWA_MEM_SCORING
        from repro.hw.io_path import ResultRecord

        rng = np.random.default_rng(21)
        q = rng.integers(0, 4, size=60).astype(np.uint8)
        res = banded.extend(q, q.copy(), BWA_MEM_SCORING, 30)
        rec = ResultRecord.from_result(res)
        back = ResultRecord.unpack(rec.pack())
        assert back.lscore == res.lscore
        assert back.lpos == tuple(res.lpos)
        assert back.gscore == res.gscore
        assert back.gpos == res.gpos


class TestRecordCoalescer:
    def test_roundtrip_five_to_one(self):
        from repro.hw.io_path import (
            ResultRecord,
            coalesce_record_lines,
            split_record_lines,
        )

        records = [
            ResultRecord(lscore=k, lpos=(k, k + 1), gscore=-k, gpos=k).pack()
            for k in range(13)
        ]
        lines = coalesce_record_lines(records)
        assert len(lines) == 3  # ceil(13 / 5)
        assert all(len(line) == LINE_BYTES for line in lines)
        assert split_record_lines(lines, 13) == records

    def test_lost_output_line_detected(self):
        from repro.hw.io_path import (
            CorruptRecordError,
            ResultRecord,
            coalesce_record_lines,
            split_record_lines,
        )

        records = [
            ResultRecord(lscore=k, lpos=(0, 0), gscore=0, gpos=0).pack()
            for k in range(10)
        ]
        lines = coalesce_record_lines(records)
        with pytest.raises(CorruptRecordError):
            split_record_lines(lines[:1], 10)
