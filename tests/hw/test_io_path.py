"""Tests for job packing, the arbiter, and the output coalescer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.synth import ExtensionJob
from repro.hw.io_path import (
    CHARS_PER_LINE,
    LINE_BYTES,
    Arbiter,
    coalesce_results,
    lines_per_job,
    pack_job,
    unpack_job,
)

SEQ = st.lists(st.integers(0, 4), min_size=1, max_size=200).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


def _job(q, t, h0):
    return ExtensionJob(query=q, target=t, h0=h0)


class TestPacking:
    @settings(max_examples=150, deadline=None)
    @given(q=SEQ, t=SEQ, h0=st.integers(0, 200))
    def test_roundtrip(self, q, t, h0):
        job = _job(q, t, h0)
        lines = pack_job(job)
        assert all(len(line) == LINE_BYTES for line in lines)
        back = unpack_job(lines)
        assert (back.query == job.query).all()
        assert (back.target == job.target).all()
        assert back.h0 == job.h0

    def test_typical_job_fits_few_lines(self):
        # 101bp query + 149bp target: 250 chars at 3 bits ~ 94 bytes
        # + header => 2 lines, matching the paper's bandwidth budget.
        q = np.zeros(101, dtype=np.uint8)
        t = np.zeros(149, dtype=np.uint8)
        assert lines_per_job(_job(q, t, 25)) == 2

    def test_rejects_out_of_range(self):
        q = np.zeros(4, dtype=np.uint8)
        with pytest.raises(ValueError):
            pack_job(_job(q, q, 1 << 16))
        bad = np.array([9], dtype=np.uint8)
        with pytest.raises(ValueError):
            pack_job(_job(bad, q, 5))

    def test_truncated_input_rejected(self):
        q = np.zeros(120, dtype=np.uint8)
        lines = pack_job(_job(q, q, 5))
        with pytest.raises(ValueError):
            unpack_job(lines[:1])
        with pytest.raises(ValueError):
            unpack_job([lines[0][:4]])


class TestArbiter:
    def _lines(self, n, tag):
        return [bytes([tag]) * LINE_BYTES for _ in range(n)]

    def test_streams_reassemble_in_order(self):
        arb = Arbiter()
        arb.add_stream(0, self._lines(5, 1))
        arb.add_stream(1, self._lines(3, 2))
        report = arb.run()
        assert report.lines_delivered == 8
        assert arb.streams[0].delivered == self._lines(5, 1)
        assert arb.streams[1].delivered == self._lines(3, 2)

    def test_round_robin_fairness(self):
        arb = Arbiter()
        arb.add_stream(0, self._lines(50, 1))
        arb.add_stream(1, self._lines(50, 2))
        arb.run()
        # After the drain both got everything; fairness shows in the
        # interleaving: neither stream finished twice as fast.
        assert len(arb.streams[0].delivered) == 50
        assert len(arb.streams[1].delivered) == 50

    def test_no_stalls_without_latency(self):
        arb = Arbiter()
        arb.add_stream(0, self._lines(10, 1))
        report = arb.run()
        assert report.stalls == 0
        assert report.efficiency == 1.0

    def test_prefetch_pipe_fill_stalls_once(self):
        arb = Arbiter(prefetch_latency_lines=4)
        arb.add_stream(0, self._lines(20, 1))
        report = arb.run()
        assert report.stalls == 4  # only the pipe fill
        assert report.lines_delivered == 20

    def test_second_stream_hides_the_pipe_fill(self):
        """The state manager's whole point: another ready stream
        absorbs a stalled one's latency."""
        solo = Arbiter(prefetch_latency_lines=4)
        solo.add_stream(0, self._lines(20, 1))
        solo_report = solo.run()
        duo = Arbiter(prefetch_latency_lines=4)
        duo.add_stream(0, self._lines(20, 1))
        duo.add_stream(1, self._lines(20, 2))
        duo_report = duo.run()
        assert duo_report.efficiency >= solo_report.efficiency

    def test_duplicate_stream_rejected(self):
        arb = Arbiter()
        arb.add_stream(0, self._lines(1, 1))
        with pytest.raises(ValueError):
            arb.add_stream(0, self._lines(1, 1))


class TestCoalescer:
    def test_five_to_one(self):
        report = coalesce_results(100)
        assert report.lines_written == 20
        assert report.bytes_saved_fraction == pytest.approx(0.8)

    def test_remainder_line(self):
        assert coalesce_results(6).lines_written == 2

    def test_zero(self):
        assert coalesce_results(0).lines_written == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            coalesce_results(-1)
