"""Validation of the delta-encoded edit machine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.editdp import left_entry_scores
from repro.align.scoring import BWA_MEM_SCORING
from repro.core.editcheck import exact_left_seeds
from repro.genome.sequence import random_sequence
from repro.hw.edit_machine import EditMachine
from tests.helpers import mutate

SEQ = st.lists(st.integers(0, 3), min_size=2, max_size=16).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestDecodedEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(
        q=SEQ,
        t=SEQ,
        band=st.integers(1, 6),
        seed_val=st.integers(0, 30),
    )
    def test_constant_seed_matches_software(self, q, t, band, seed_val):
        """3-bit residues must decode to the full-width DP exactly."""
        run = EditMachine(band).run(q, t, seed_val)
        sw = left_entry_scores(q, t, band, seed_val)
        assert run.scores.best == sw.best
        assert (run.scores.last_column == sw.last_column).all()

    @settings(max_examples=100, deadline=None)
    @given(q=SEQ, t=SEQ, band=st.integers(1, 6), h0=st.integers(1, 35))
    def test_exact_seeds_match_software(self, q, t, band, h0):
        seed = exact_left_seeds(h0, BWA_MEM_SCORING)
        run = EditMachine(band).run(q, t, seed)
        sw = left_entry_scores(q, t, band, seed)
        assert run.scores.best == sw.best
        assert (run.scores.last_column == sw.last_column).all()

    def test_realistic_corpus_never_violates_delta_range(self):
        """The relaxed scoring was co-designed to fit the 3-bit circle;
        no realistic input may trigger DeltaRangeError."""
        rng = np.random.default_rng(0)
        for _ in range(100):
            q = random_sequence(int(rng.integers(5, 30)), rng)
            t = mutate(q, rng, subs=2, ins=1, dels=2)
            t = np.concatenate(
                [t, random_sequence(int(rng.integers(0, 20)), rng)]
            ).astype(np.uint8)
            if len(t) == 0:
                t = q.copy()
            seed = exact_left_seeds(int(rng.integers(1, 40)),
                                    BWA_MEM_SCORING)
            EditMachine(int(rng.integers(1, 8))).run(q, t, seed)


class TestConstruction:
    def test_rejects_costly_insertions(self):
        with pytest.raises(ValueError):
            EditMachine(3, scoring=BWA_MEM_SCORING)

    def test_rejects_bad_band(self):
        with pytest.raises(ValueError):
            EditMachine(0)

    def test_half_width_pe_count(self):
        em = EditMachine(4)
        assert em.pe_count(100) == 51  # half the full-width array

    def test_empty_half_matrix(self):
        em = EditMachine(10)
        q = random_sequence(5, np.random.default_rng(0))
        run = em.run(q, q, 7)
        assert run.scores.best == 0
        assert run.cells_computed == 0
