"""Tests for the BSW core / SeedEx core / accelerator hierarchy."""

import numpy as np
import pytest

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING
from repro.core.checker import CheckOutcome
from repro.genome.synth import ExtensionJob, extension_corpus
from repro.hw.accelerator import AcceleratorConfig, SeedExAccelerator
from repro.hw.bsw_core import BSWCore
from repro.hw.seedex_core import SeedExCore


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(77)
    return extension_corpus(
        120, rng, query_length=60, reference_length=60_000
    )


class TestBSWCore:
    def test_fast_and_cycle_modes_agree(self, corpus):
        fast = BSWCore(8, BWA_MEM_SCORING, mode="fast")
        cyc = BSWCore(8, BWA_MEM_SCORING, mode="cycle")
        for job in corpus[:10]:
            a = fast.run(job.query, job.target, job.h0)
            b = cyc.run(job.query, job.target, job.h0)
            if not b.exception:
                assert a.result.scores() == b.result.scores()

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            BSWCore(8, BWA_MEM_SCORING, mode="turbo")

    def test_busy_cycles_accumulate(self, corpus):
        core = BSWCore(8, BWA_MEM_SCORING)
        for job in corpus[:5]:
            core.run(job.query, job.target, job.h0)
        assert core.jobs == 5
        assert core.busy_cycles > 0


class TestSeedExCore:
    def test_round_robin_across_bsw_cores(self, corpus):
        core = SeedExCore(band=10)
        core.process_batch(corpus[:9])
        assert [c.jobs for c in core.bsw_cores] == [3, 3, 3]

    def test_accepted_results_are_optimal(self, corpus):
        core = SeedExCore(band=10)
        for out in core.process_batch(corpus):
            if out.accepted:
                full = banded.extend(
                    out.job.query,
                    out.job.target,
                    BWA_MEM_SCORING,
                    out.job.h0,
                )
                assert out.result.scores() == full.scores()

    def test_telemetry_consistency(self, corpus):
        core = SeedExCore(band=10)
        core.process_batch(corpus)
        t = core.telemetry
        assert t.jobs == len(corpus)
        assert t.accepted + t.rerun == t.jobs
        assert sum(t.outcome_counts.values()) == t.jobs
        edit_visits = t.outcome_counts.get(
            CheckOutcome.PASS_CHECKS, 0
        ) + t.outcome_counts.get(CheckOutcome.FAIL_EDIT, 0)
        assert t.edit_machine_jobs == edit_visits


class TestAccelerator:
    def test_final_results_always_optimal(self, corpus):
        acc = SeedExAccelerator(AcceleratorConfig(band=10))
        report = acc.run(corpus)
        for idx, job in enumerate(corpus):
            full = banded.extend(
                job.query, job.target, BWA_MEM_SCORING, job.h0
            )
            assert report.final_result(idx).scores() == full.scores()

    def test_throughput_positive_and_prefetch_hidden(self, corpus):
        acc = SeedExAccelerator()
        report = acc.run(corpus, rerun_on_host=False)
        assert report.throughput_ext_per_s > 0
        assert report.prefetch_hidden  # 40-cycle AXI < ~100-cycle job

    def test_rerun_fraction_matches_outputs(self, corpus):
        acc = SeedExAccelerator(AcceleratorConfig(band=10))
        report = acc.run(corpus)
        failed = sum(1 for o in report.outputs if not o.accepted)
        assert report.rerun_fraction == failed / len(corpus)
        assert len(report.rerun_results) == failed

    def test_device_shape(self):
        cfg = AcceleratorConfig()
        assert cfg.n_cores == 12
        assert cfg.n_bsw_cores == 36
        acc = SeedExAccelerator(cfg)
        assert len(acc.cores) == 12

    def test_io_path_does_not_change_results(self, corpus):
        """Routing jobs through the memory-line pack/arbiter/unpack
        path must be invisible to the compute results."""
        plain = SeedExAccelerator(AcceleratorConfig(band=10)).run(
            corpus[:40], rerun_on_host=False
        )
        through_io = SeedExAccelerator(AcceleratorConfig(band=10)).run(
            corpus[:40], rerun_on_host=False, model_io=True
        )
        for a, b in zip(plain.outputs, through_io.outputs):
            assert a.result.scores() == b.result.scores()
            assert a.accepted == b.accepted
