"""Property tests for the DTW/LCS SeedEx-style checks (Sec VII-D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.dtw import (
    banded_dtw,
    dtw_optimality_check,
    dtw_with_guarantee,
    full_dtw,
)
from repro.apps.lcs import (
    banded_lcs,
    full_lcs,
    lcs_optimality_check,
    lcs_with_guarantee,
)

SIGNAL = st.lists(
    st.floats(-5, 5, allow_nan=False), min_size=2, max_size=18
).map(np.array)
STRING = st.lists(st.integers(0, 3), min_size=1, max_size=18).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestDtw:
    @settings(max_examples=150, deadline=None)
    @given(x=SIGNAL, y=SIGNAL, band=st.integers(0, 8))
    def test_guarantee_theorem(self, x, y, band):
        """The check's central property: accepted => optimal."""
        if band < abs(len(x) - len(y)):
            return
        result = dtw_with_guarantee(x, y, band)
        assert result.cost == pytest.approx(full_dtw(x, y))

    @settings(max_examples=80, deadline=None)
    @given(x=SIGNAL, y=SIGNAL, band=st.integers(0, 8))
    def test_check_admissibility(self, x, y, band):
        """The outside bound never exceeds a real outside path cost —
        when it accepts, the banded cost equals the full cost."""
        if band < abs(len(x) - len(y)):
            return
        cost_nb, upper, lower = banded_dtw(x, y, band)
        check = dtw_optimality_check(x, y, band, cost_nb, upper, lower)
        if check.optimal:
            assert cost_nb == pytest.approx(full_dtw(x, y))

    def test_identical_signals_pass_with_tiny_band(self):
        x = np.sin(np.linspace(0, 6, 60))
        result = dtw_with_guarantee(x, x, band=1)
        assert result.cost == 0
        assert result.optimal_by_check
        assert not result.rerun

    def test_time_shifted_signal_forces_rerun_or_passes(self):
        t = np.linspace(0, 6, 60)
        x = np.sin(t)
        y = np.sin(t - 1.5)  # warped by ~15 samples
        narrow = dtw_with_guarantee(x, y, band=2)
        assert narrow.cost == pytest.approx(full_dtw(x, y))

    def test_band_narrower_than_length_gap_rejected(self):
        with pytest.raises(ValueError):
            banded_dtw(np.ones(10), np.ones(3), band=2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            banded_dtw(np.ones(0), np.ones(3), band=5)


class TestLcs:
    @settings(max_examples=150, deadline=None)
    @given(a=STRING, b=STRING, band=st.integers(0, 8))
    def test_guarantee_theorem(self, a, b, band):
        result = lcs_with_guarantee(a, b, band)
        assert result.length == full_lcs(a, b)

    @settings(max_examples=80, deadline=None)
    @given(a=STRING, b=STRING, band=st.integers(0, 8))
    def test_check_admissibility(self, a, b, band):
        length, edges = banded_lcs(a, b, band)
        check = lcs_optimality_check(len(a), len(b), length, edges)
        if check.optimal:
            assert length == full_lcs(a, b)

    def test_full_lcs_known_values(self):
        a = np.array([0, 1, 2, 3, 0, 1], dtype=np.uint8)
        b = np.array([1, 2, 0, 3, 1], dtype=np.uint8)
        assert full_lcs(a, b) == 4  # e.g. 1,2,3,1

    def test_identical_strings(self):
        a = np.array([0, 1, 2, 3] * 5, dtype=np.uint8)
        result = lcs_with_guarantee(a, a.copy(), band=0)
        assert result.length == len(a)
        assert result.optimal_by_check

    def test_shifted_repeat_needs_wide_band(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 4, size=30).astype(np.uint8)
        b = np.concatenate(
            [rng.integers(0, 4, size=12), a]
        ).astype(np.uint8)
        narrow = lcs_with_guarantee(a, b, band=2)
        assert narrow.length == full_lcs(a, b)
        assert narrow.rerun  # the check correctly refused the band

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            banded_lcs(np.ones(3, dtype=np.uint8),
                       np.ones(3, dtype=np.uint8), band=-1)
