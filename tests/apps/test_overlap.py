"""Unit tests for the all-vs-all overlap driver.

The kernel-level DP is swept in ``tests/align`` and conformance-tested
in ``tests/kernels``; these tests pin the *driver*: k-mer indexing and
its repeat guard, diagonal voting and its tie-breaks, the accept
thresholds, and the two-stage speculate-and-test verification the
emitted TSV records.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro import obs
from repro.apps.overlap import (
    OverlapParams,
    _index_reads,
    _vote_candidates,
    find_overlaps,
    write_overlaps,
)
from repro.genome.sequence import encode
from repro.genome.synth import fragment_corpus, synthesize_reference


def _reads(*seqs):
    return [(f"r{k}", encode(s)) for k, s in enumerate(seqs)]


@pytest.fixture(scope="module")
def tiling():
    rng = np.random.default_rng(23)
    reference = synthesize_reference(3_000, rng)
    frags = fragment_corpus(
        reference, rng, length=250, step=180, substitution_rate=0.01
    )
    return [(f.name, f.codes) for f in frags]


class TestIndex:
    def test_positions_recorded(self):
        reads = _reads("ACGTACGTACGT")
        params = OverlapParams(k=8)
        table = _index_reads(reads, params)
        hits = [hit for hits in table.values() for hit in hits]
        # 5 k-mers of length 8 in a 12-mer; all from read 0.
        assert len(hits) == 5
        assert all(idx == 0 for idx, _ in hits)

    def test_ambiguous_kmers_skipped(self):
        reads = _reads("ACGTNACGTACG")
        table = _index_reads(reads, OverlapParams(k=8))
        positions = {pos for hits in table.values() for _, pos in hits}
        # Windows 0..4 all contain the N at index 4.
        assert positions.isdisjoint(set(range(0, 5)) - {0})
        assert all(pos == 0 or pos >= 5 for pos in positions)

    def test_repeat_guard_drops_hot_kmers(self):
        reads = _reads(*("A" * 30 for _ in range(5)))
        table = _index_reads(reads, OverlapParams(k=15, max_occurrences=4))
        assert table == {}

    def test_short_reads_skipped(self):
        reads = _reads("ACG")
        assert _index_reads(reads, OverlapParams(k=15)) == {}


class TestVoting:
    def _candidates(self, reads, **kw):
        params = OverlapParams(**{"k": 8, "min_shared": 2,
                                  "min_overlap": 10, **kw})
        table = _index_reads(reads, params)
        return params, _vote_candidates(reads, table, params)

    def test_suffix_prefix_pair_voted(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 4, size=60).astype(np.uint8)
        b = np.concatenate([a[30:], rng.integers(0, 4, size=30)]).astype(
            np.uint8
        )
        reads = [("A", a), ("B", b)]
        _, cands = self._candidates(reads)
        pair = {(c.a, c.b): c for c in cands}
        assert (0, 1) in pair
        assert pair[(0, 1)].a_start == 30

    def test_min_overlap_filters_short_diagonals(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 4, size=60).astype(np.uint8)
        b = np.concatenate([a[48:], rng.integers(0, 4, size=40)]).astype(
            np.uint8
        )
        reads = [("A", a), ("B", b)]
        _, cands = self._candidates(reads, min_overlap=30)
        assert all((c.a, c.b) != (0, 1) for c in cands)

    def test_min_shared_filters_chance_hits(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 4, size=40).astype(np.uint8)
        b = rng.integers(0, 4, size=40).astype(np.uint8)
        reads = [("A", a), ("B", b)]
        _, cands = self._candidates(reads, min_shared=3)
        assert cands == []


class TestFindOverlaps:
    def test_adjacent_fragments_all_found(self, tiling):
        overlaps = find_overlaps(tiling, OverlapParams(min_overlap=50))
        found = {(o.a_name, o.b_name) for o in overlaps}
        for k in range(len(tiling) - 1):
            assert (f"frag{k:05d}", f"frag{k + 1:05d}") in found
        for o in overlaps:
            assert o.a_end == o.a_len
            assert o.b_start == 0
            assert o.b_end >= 50
            assert o.score > 0

    def test_output_is_sorted_and_stable_across_batch_sizes(self, tiling):
        base = find_overlaps(tiling, OverlapParams(min_overlap=50))
        keys = [(o.a_name, o.b_name, o.a_start) for o in base]
        assert keys == sorted(keys)
        small = find_overlaps(
            tiling, OverlapParams(min_overlap=50, batch_size=3)
        )
        assert small == base

    def test_band_only_moves_verdict_columns(self, tiling):
        """Narrow bands rerun more but never change what is reported —
        the guarantee the PAF consumer relies on."""
        wide = find_overlaps(tiling, OverlapParams(min_overlap=50, band=64))
        narrow = find_overlaps(tiling, OverlapParams(min_overlap=50, band=4))
        def core(o):
            return (o.a_name, o.a_start, o.b_name, o.b_end, o.score)
        assert [core(o) for o in narrow] == [core(o) for o in wide]

    def test_accept_floor_filters_weak_overlaps(self, tiling):
        permissive = find_overlaps(
            tiling, OverlapParams(min_overlap=50, accept=0.1)
        )
        strict = find_overlaps(
            tiling, OverlapParams(min_overlap=50, accept=0.95)
        )
        assert len(strict) <= len(permissive)
        for o in strict:
            qlen = o.a_len - o.a_start
            assert o.score >= int(0.95 * qlen)

    def test_counters_emitted(self, tiling):
        obs.reset()
        obs.enable()
        try:
            find_overlaps(tiling[:6], OverlapParams(min_overlap=50))
            snap = obs.get_registry().snapshot()
            assert snap["counters"]["overlap.candidates.total"] >= 5
            assert snap["counters"]["overlap.accepted.total"] >= 5
            assert "overlap.run.seconds" in snap["histograms"]
            assert any(
                key.startswith("overlap.verify.wave.seconds")
                for key in snap["histograms"]
            )
        finally:
            obs.disable()
            obs.reset()

    def test_write_overlaps_tsv_shape(self, tiling):
        overlaps = find_overlaps(tiling[:4], OverlapParams(min_overlap=50))
        buf = io.StringIO()
        write_overlaps(buf, overlaps)
        lines = buf.getvalue().splitlines()
        assert len(lines) == len(overlaps)
        assert all(len(line.split("\t")) == 12 for line in lines)
