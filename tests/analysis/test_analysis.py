"""Tests for band analysis, passing-rate sweeps, and reporting."""

import numpy as np
import pytest

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING
from repro.analysis.band_analysis import (
    FIG2_BUCKET_LABELS,
    band_distribution,
    estimated_band,
    minimal_band,
)
from repro.analysis.passing import passing_point, passing_sweep
from repro.analysis.report import (
    PaperComparison,
    format_table,
)
from repro.core.checker import CheckConfig
from repro.genome.synth import ExtensionJob, extension_corpus


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(42)
    return extension_corpus(
        80, rng, query_length=60, reference_length=80_000
    )


class TestEstimatedBand:
    def test_grows_with_query_length(self):
        assert estimated_band(101) > estimated_band(20)

    def test_is_conservative(self):
        # The estimate must never be below what any alignment needs.
        assert estimated_band(101) >= 90

    def test_capped_at_query_length(self):
        assert estimated_band(10) <= 10


class TestMinimalBand:
    def test_exact_match_needs_tiny_band(self):
        rng = np.random.default_rng(0)
        q = rng.integers(0, 4, size=50).astype(np.uint8)
        job = ExtensionJob(query=q, target=q.copy(), h0=20)
        assert minimal_band(job) <= 1

    def test_deletion_demands_its_size(self):
        rng = np.random.default_rng(1)
        q = rng.integers(0, 4, size=50).astype(np.uint8)
        t = np.concatenate(
            [q[:10], rng.integers(0, 4, size=15), q[10:]]
        ).astype(np.uint8)
        job = ExtensionJob(query=q, target=t, h0=40)
        w = minimal_band(job)
        assert w >= 10  # a 15-char deletion needs most of its span

    def test_band_is_minimal(self, corpus):
        for job in corpus[:10]:
            w = minimal_band(job)
            full = banded.extend(
                job.query, job.target, BWA_MEM_SCORING, job.h0
            )
            at_w = banded.extend(
                job.query, job.target, BWA_MEM_SCORING, job.h0, w=w
            )
            assert at_w.scores() == full.scores()
            if w > 1:
                below = banded.extend(
                    job.query,
                    job.target,
                    BWA_MEM_SCORING,
                    job.h0,
                    w=w - 1,
                )
                assert below.scores() != full.scores()


class TestBandDistribution:
    def test_fractions_sum_to_one(self, corpus):
        dist = band_distribution(corpus)
        assert sum(dist.estimated) == pytest.approx(1.0)
        assert sum(dist.used) == pytest.approx(1.0)
        assert dist.labels == FIG2_BUCKET_LABELS

    def test_figure2_shape(self, corpus):
        """Estimated bands are conservative; used bands are small."""
        dist = band_distribution(corpus)
        assert dist.estimated[-1] > 0.5  # most estimates land in >40
        assert dist.fraction_used_at_most(10) > 0.80

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            band_distribution([])


class TestPassingSweep:
    def test_rates_increase_with_band(self, corpus):
        points = passing_sweep(corpus, [5, 15, 30, 60])
        overall = [p.overall for p in points]
        assert overall == sorted(overall)

    def test_checks_beat_threshold_only(self, corpus):
        point = passing_point(corpus, band=15)
        assert point.overall >= point.threshold_only
        assert point.edit_check_boost == pytest.approx(
            point.overall - point.threshold_only
        )

    def test_outcome_counts_total(self, corpus):
        point = passing_point(corpus, band=15)
        assert sum(point.outcome_counts.values()) == len(corpus)

    def test_ablation_reduces_rate(self, corpus):
        full = passing_point(corpus, band=15)
        ablated = passing_point(
            corpus,
            band=15,
            config=CheckConfig(use_edit_check=False),
        )
        assert ablated.overall <= full.overall
        assert ablated.threshold_only == full.threshold_only


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(
            ("a", "metric"), [(1, 2.5), ("xx", 1234.0)]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) <= 2

    def test_paper_comparison_error(self):
        c = PaperComparison("speedup", paper=6.0, measured=5.7)
        assert c.relative_error == pytest.approx(0.05)
        assert c.row()[3] == "5.0%"

    def test_zero_paper_value(self):
        c = PaperComparison("diffs", paper=0.0, measured=0.0)
        assert c.relative_error == 0.0
