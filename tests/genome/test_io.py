"""Tests for FASTA/FASTQ parsing and SAM records."""

import io

import pytest

from repro.genome.io_fasta import (
    FastaRecord,
    FastqRecord,
    parse_fasta,
    parse_fastq,
    write_fasta,
    write_fastq,
)
from repro.genome.sam import SamRecord, diff_records, write_sam


class TestFasta:
    def test_roundtrip_multiline(self):
        records = [
            FastaRecord("chr1", "ACGT" * 50),
            FastaRecord("chr2", "TTTT"),
        ]
        buf = io.StringIO()
        write_fasta(buf, records, width=60)
        buf.seek(0)
        assert list(parse_fasta(buf)) == records

    def test_header_takes_first_token(self):
        buf = io.StringIO(">chr1 description here\nACGT\n")
        (rec,) = parse_fasta(buf)
        assert rec.name == "chr1"

    def test_sequence_before_header_rejected(self):
        with pytest.raises(ValueError):
            list(parse_fasta(io.StringIO("ACGT\n>x\nAC\n")))

    def test_empty_header_rejected(self):
        with pytest.raises(ValueError):
            list(parse_fasta(io.StringIO(">\nACGT\n")))

    def test_blank_lines_skipped(self):
        buf = io.StringIO(">a\nAC\n\nGT\n")
        (rec,) = parse_fasta(buf)
        assert rec.sequence == "ACGT"


class TestFastq:
    def test_roundtrip(self):
        records = [
            FastqRecord("r1", "ACGT", "IIII"),
            FastqRecord("r2", "TT", "##"),
        ]
        buf = io.StringIO()
        write_fastq(buf, records)
        buf.seek(0)
        assert list(parse_fastq(buf)) == records

    def test_quality_length_enforced(self):
        with pytest.raises(ValueError):
            FastqRecord("r", "ACGT", "II")

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            list(parse_fastq(io.StringIO("r1\nACGT\n+\nIIII\n")))

    def test_bad_separator_rejected(self):
        with pytest.raises(ValueError):
            list(parse_fastq(io.StringIO("@r1\nACGT\nIIII\nIIII\n")))


class TestSam:
    def _record(self, **kw):
        base = dict(
            qname="r1",
            flag=0,
            rname="chr1",
            pos=99,
            mapq=60,
            cigar="101M",
            seq="A" * 101,
        )
        base.update(kw)
        return SamRecord(**base)

    def test_line_is_one_based(self):
        line = self._record().to_line()
        assert line.split("\t")[3] == "100"

    def test_line_roundtrip(self):
        rec = self._record(tags=("AS:i:95",))
        assert SamRecord.from_line(rec.to_line()) == rec

    def test_unmapped(self):
        rec = SamRecord.unmapped("r2", "ACGT")
        assert rec.is_unmapped
        fields = rec.to_line().split("\t")
        assert fields[2] == "*"
        assert fields[5] == "*"

    def test_mapq_range_enforced(self):
        with pytest.raises(ValueError):
            self._record(mapq=300)

    def test_write_sam_header(self):
        buf = io.StringIO()
        write_sam(buf, [self._record()], "chr1", 1000)
        lines = buf.getvalue().splitlines()
        assert lines[0].startswith("@HD")
        assert "SN:chr1" in lines[1]
        assert "LN:1000" in lines[1]
        assert len(lines) == 4

    def test_diff_records(self):
        a = [self._record(), self._record(qname="r2")]
        b = [self._record(), self._record(qname="r2", pos=100)]
        assert diff_records(a, a) == 0
        assert diff_records(a, b) == 1

    def test_diff_records_length_mismatch(self):
        with pytest.raises(ValueError):
            diff_records([self._record()], [])
