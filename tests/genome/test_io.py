"""Tests for FASTA/FASTQ parsing and SAM records."""

import io

import pytest

from repro.genome.io_fasta import (
    FastaRecord,
    FastqRecord,
    MalformedRecordError,
    parse_fasta,
    parse_fastq,
    write_fasta,
    write_fastq,
)
from repro.genome.sam import SamRecord, diff_records, write_sam


class TestFasta:
    def test_roundtrip_multiline(self):
        records = [
            FastaRecord("chr1", "ACGT" * 50),
            FastaRecord("chr2", "TTTT"),
        ]
        buf = io.StringIO()
        write_fasta(buf, records, width=60)
        buf.seek(0)
        assert list(parse_fasta(buf)) == records

    def test_header_takes_first_token(self):
        buf = io.StringIO(">chr1 description here\nACGT\n")
        (rec,) = parse_fasta(buf)
        assert rec.name == "chr1"

    def test_sequence_before_header_rejected(self):
        with pytest.raises(ValueError):
            list(parse_fasta(io.StringIO("ACGT\n>x\nAC\n")))

    def test_empty_header_rejected(self):
        with pytest.raises(ValueError):
            list(parse_fasta(io.StringIO(">\nACGT\n")))

    def test_blank_lines_skipped(self):
        buf = io.StringIO(">a\nAC\n\nGT\n")
        (rec,) = parse_fasta(buf)
        assert rec.sequence == "ACGT"


class TestFastq:
    def test_roundtrip(self):
        records = [
            FastqRecord("r1", "ACGT", "IIII"),
            FastqRecord("r2", "TT", "##"),
        ]
        buf = io.StringIO()
        write_fastq(buf, records)
        buf.seek(0)
        assert list(parse_fastq(buf)) == records

    def test_quality_length_enforced(self):
        with pytest.raises(ValueError):
            FastqRecord("r", "ACGT", "II")

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            list(parse_fastq(io.StringIO("r1\nACGT\n+\nIIII\n")))

    def test_bad_separator_rejected(self):
        with pytest.raises(ValueError):
            list(parse_fastq(io.StringIO("@r1\nACGT\nIIII\nIIII\n")))

    def test_length_mismatch_rejected(self):
        with pytest.raises(MalformedRecordError, match="quality length"):
            list(parse_fastq(io.StringIO("@r1\nACGT\n+\nII\n")))


class TestMalformedRecordError:
    def test_carries_location(self):
        bad = io.StringIO("@r1\nACGT\n+\nIIII\nr2\nTT\n+\n##\n")
        with pytest.raises(MalformedRecordError) as excinfo:
            list(parse_fastq(bad, path="reads.fq"))
        err = excinfo.value
        assert err.path == "reads.fq"
        assert err.line == 5
        assert "bad FASTQ header" in err.reason
        assert str(err).startswith("reads.fq:5:")

    def test_stream_path_placeholder(self):
        err = MalformedRecordError("broken", line=3)
        assert err.path is None
        assert str(err) == "<stream>:3: broken"

    def test_is_a_value_error(self):
        assert issubclass(MalformedRecordError, ValueError)


class TestFastqQuarantineMode:
    """``on_bad`` parsing: report, resync, keep going."""

    def _parse(self, text):
        bad = []
        records = list(parse_fastq(io.StringIO(text), on_bad=bad.append))
        return records, bad

    def test_clean_stream_reports_nothing(self):
        records, bad = self._parse("@r1\nACGT\n+\nIIII\n")
        assert [r.name for r in records] == ["r1"]
        assert bad == []

    def test_missing_separator_skips_only_bad_record(self):
        text = "@r1\nACGT\nIIII\n@r2\nTTTT\n+\n####\n"
        records, bad = self._parse(text)
        assert [r.name for r in records] == ["r2"]
        assert len(bad) == 1
        assert "separator" in bad[0].reason

    def test_length_mismatch_skips_only_bad_record(self):
        text = "@r1\nACGT\n+\nII\n@r2\nTT\n+\n##\n"
        records, bad = self._parse(text)
        assert [r.name for r in records] == ["r2"]
        assert "quality length" in bad[0].reason

    def test_quality_line_starting_with_at_not_a_header(self):
        # r1's quality line begins with '@' but is not a record start;
        # resync must not treat it as one.
        text = "@r1\nACGT\nIIII\n@@II\n@r2\nTT\n+\n##\n"
        records, bad = self._parse(text)
        assert [r.name for r in records] == ["r2"]
        assert len(bad) == 1

    def test_trailing_garbage_reported_not_eaten(self):
        text = "@r1\nACGT\n+\nIIII\n@r2\nTTTT\n"
        records, bad = self._parse(text)
        assert [r.name for r in records] == ["r1"]
        assert len(bad) == 1
        assert "r2" in bad[0].reason

    def test_bad_record_between_good_ones(self):
        text = (
            "@r1\nAC\n+\n##\n"
            "@bad\nACGT\n+\nII\n"
            "@r2\nGG\n+\n!!\n"
        )
        records, bad = self._parse(text)
        assert [r.name for r in records] == ["r1", "r2"]
        assert len(bad) == 1
        assert "bad" in bad[0].reason


class TestSam:
    def _record(self, **kw):
        base = dict(
            qname="r1",
            flag=0,
            rname="chr1",
            pos=99,
            mapq=60,
            cigar="101M",
            seq="A" * 101,
        )
        base.update(kw)
        return SamRecord(**base)

    def test_line_is_one_based(self):
        line = self._record().to_line()
        assert line.split("\t")[3] == "100"

    def test_line_roundtrip(self):
        rec = self._record(tags=("AS:i:95",))
        assert SamRecord.from_line(rec.to_line()) == rec

    def test_unmapped(self):
        rec = SamRecord.unmapped("r2", "ACGT")
        assert rec.is_unmapped
        fields = rec.to_line().split("\t")
        assert fields[2] == "*"
        assert fields[5] == "*"

    def test_mapq_range_enforced(self):
        with pytest.raises(ValueError):
            self._record(mapq=300)

    def test_write_sam_header(self):
        buf = io.StringIO()
        write_sam(buf, [self._record()], "chr1", 1000)
        lines = buf.getvalue().splitlines()
        assert lines[0].startswith("@HD")
        assert "SN:chr1" in lines[1]
        assert "LN:1000" in lines[1]
        assert len(lines) == 4

    def test_diff_records(self):
        a = [self._record(), self._record(qname="r2")]
        b = [self._record(), self._record(qname="r2", pos=100)]
        assert diff_records(a, a) == 0
        assert diff_records(a, b) == 1

    def test_diff_records_length_mismatch(self):
        with pytest.raises(ValueError):
            diff_records([self._record()], [])
