"""Tests for the synthetic genome and read simulator."""

import numpy as np
import pytest

from repro.genome.synth import (
    CLEAN,
    PLATINUM_LIKE,
    ReadProfile,
    ReadSimulator,
    extension_corpus,
    synthesize_reference,
)


class TestReference:
    def test_length_and_alphabet(self):
        rng = np.random.default_rng(0)
        ref = synthesize_reference(10_000, rng)
        assert len(ref) == 10_000
        assert ref.max() <= 3

    def test_rejects_empty(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            synthesize_reference(0, rng)

    def test_repeats_are_planted(self):
        rng = np.random.default_rng(1)
        ref = synthesize_reference(
            50_000, rng, repeat_fraction=0.2, repeat_length=500
        )
        # A 500-long window should appear twice somewhere; count exact
        # duplicate 100-mers as a proxy.
        view = ref[: 49_900]
        kmers = {}
        dup = 0
        step = 50
        for i in range(0, len(view) - 100, step):
            key = bytes(view[i : i + 100])
            dup += key in kmers
            kmers[key] = i
        assert dup > 0

    def test_deterministic_given_rng_seed(self):
        a = synthesize_reference(5_000, np.random.default_rng(7))
        b = synthesize_reference(5_000, np.random.default_rng(7))
        assert (a == b).all()


class TestReadSimulator:
    def _sim(self, profile, n=200, seed=0):
        rng = np.random.default_rng(123)
        ref = synthesize_reference(100_000, rng)
        return ref, ReadSimulator(ref, profile, seed=seed).simulate(n)

    def test_read_length(self):
        _, reads = self._sim(PLATINUM_LIKE)
        assert all(len(r.codes) == 101 for r in reads)

    def test_clean_reads_match_reference(self):
        ref, reads = self._sim(CLEAN, n=50)
        from repro.genome.sequence import reverse_complement

        for r in reads:
            codes = reverse_complement(r.codes) if r.reverse else r.codes
            window = ref[r.true_pos : r.true_pos + len(codes)]
            assert (codes == window).all()
            assert r.edits == 0

    def test_error_rates_in_expected_range(self):
        _, reads = self._sim(PLATINUM_LIKE, n=2000)
        subs = np.mean([r.substitutions for r in reads])
        assert 0.5 < subs < 2.0  # ~1% of 101bp
        large = sum(1 for r in reads if r.indel_span >= 8)
        assert 10 <= large <= 80  # ~2% of 2000

    def test_both_strands_sampled(self):
        _, reads = self._sim(PLATINUM_LIKE, n=200)
        rev = sum(r.reverse for r in reads)
        assert 50 < rev < 150

    def test_rejects_tiny_reference(self):
        rng = np.random.default_rng(0)
        ref = synthesize_reference(50, rng)
        with pytest.raises(ValueError):
            ReadSimulator(ref, PLATINUM_LIKE)

    def test_names_unique(self):
        _, reads = self._sim(PLATINUM_LIKE, n=100)
        assert len({r.name for r in reads}) == 100


class TestExtensionCorpus:
    def test_shape_and_h0(self):
        rng = np.random.default_rng(5)
        jobs = extension_corpus(50, rng, query_length=60)
        assert len(jobs) == 50
        for job in jobs:
            assert len(job.query) == 60
            assert len(job.target) >= 60
            assert 19 <= job.h0 < 40

    def test_queries_align_to_targets(self):
        """Most corpus jobs should extend cleanly against their target."""
        from repro.align import banded
        from repro.align.scoring import BWA_MEM_SCORING

        rng = np.random.default_rng(6)
        jobs = extension_corpus(40, rng, query_length=60)
        good = 0
        for job in jobs:
            res = banded.extend(job.query, job.target, BWA_MEM_SCORING, job.h0)
            if res.gscore > job.h0 + len(job.query) // 2:
                good += 1
        assert good > 25


class TestLongReadLengthSpread:
    def _reads(self, sd, seed=21):
        from repro.genome.synth import LongReadProfile, simulate_long_reads

        rng = np.random.default_rng(seed)
        ref = synthesize_reference(30_000, rng)
        profile = LongReadProfile(read_length=1000, length_sd=sd)
        return simulate_long_reads(ref, 12, rng, profile)

    def test_zero_sd_keeps_fixed_lengths(self):
        reads = self._reads(0.0)
        # Indel errors move individual lengths a little, but the
        # sampled fragment is always exactly read_length.
        assert all(abs(len(r.codes) - 1000) < 120 for r in reads)

    def test_zero_sd_preserves_legacy_rng_stream(self):
        """``length_sd=0`` must not draw from the rng at all — seeded
        corpora generated before the knob existed stay bit-identical."""
        from repro.genome.synth import LongReadProfile, simulate_long_reads

        rng1 = np.random.default_rng(33)
        ref1 = synthesize_reference(30_000, rng1)
        legacy = simulate_long_reads(ref1, 6, rng1)
        rng2 = np.random.default_rng(33)
        ref2 = synthesize_reference(30_000, rng2)
        explicit = simulate_long_reads(
            ref2, 6, rng2, LongReadProfile(length_sd=0.0)
        )
        assert len(legacy) == len(explicit)
        for a, b in zip(legacy, explicit):
            assert a.true_pos == b.true_pos
            np.testing.assert_array_equal(a.codes, b.codes)

    def test_positive_sd_spreads_lengths(self):
        reads = self._reads(300.0)
        lengths = [len(r.codes) for r in reads]
        assert max(lengths) - min(lengths) > 200
        assert all(n >= 250 for n in lengths)  # floor at 300 pre-indel

    def test_deterministic_given_seed(self):
        a = self._reads(250.0, seed=8)
        b = self._reads(250.0, seed=8)
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.codes, rb.codes)


class TestFragmentCorpus:
    def _frags(self, **kw):
        from repro.genome.synth import fragment_corpus

        rng = np.random.default_rng(13)
        ref = synthesize_reference(5_000, rng)
        return ref, fragment_corpus(ref, rng, **kw)

    def test_tiling_geometry(self):
        ref, frags = self._frags(length=300, step=220)
        assert len(frags) == (len(ref) - 300) // 220 + 1
        for k, frag in enumerate(frags):
            assert frag.true_pos == k * 220
            assert len(frag.codes) == 300
            assert frag.name == f"frag{k:05d}"

    def test_fragments_match_reference_closely(self):
        ref, frags = self._frags(
            length=300, step=220, substitution_rate=0.01
        )
        for frag in frags:
            window = ref[frag.true_pos : frag.true_pos + 300]
            mismatches = int((frag.codes != window).sum())
            assert mismatches <= 12

    def test_count_caps_fragments(self):
        _, frags = self._frags(length=300, step=220, count=3)
        assert len(frags) == 3

    def test_bad_step_rejected(self):
        import pytest as _pytest

        from repro.genome.synth import fragment_corpus

        rng = np.random.default_rng(0)
        ref = synthesize_reference(2_000, rng)
        with _pytest.raises(ValueError):
            fragment_corpus(ref, rng, length=200, step=0)
        with _pytest.raises(ValueError):
            fragment_corpus(ref, rng, length=200, step=250)
