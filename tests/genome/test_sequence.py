"""Unit and property tests for DNA sequence encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.sequence import (
    AMBIGUOUS_CODE,
    decode,
    encode,
    hamming,
    pack_2bit,
    pack_3bit,
    random_sequence,
    reverse_complement,
    reverse_complement_str,
    unpack_2bit,
)

DNA = st.text(alphabet="ACGTN", min_size=0, max_size=50)
PURE_DNA = st.text(alphabet="ACGT", min_size=0, max_size=50)


class TestEncodeDecode:
    def test_known_codes(self):
        assert list(encode("ACGTN")) == [0, 1, 2, 3, AMBIGUOUS_CODE]

    def test_lowercase_accepted(self):
        assert list(encode("acgt")) == [0, 1, 2, 3]

    def test_invalid_character_rejected(self):
        with pytest.raises(ValueError, match="invalid DNA"):
            encode("ACGX")

    @settings(max_examples=100)
    @given(s=DNA)
    def test_roundtrip(self, s):
        assert decode(encode(s)) == s

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            decode(np.array([9], dtype=np.uint8))


class TestReverseComplement:
    def test_known(self):
        assert reverse_complement_str("ACGT") == "ACGT"
        assert reverse_complement_str("AACC") == "GGTT"
        assert reverse_complement_str("AN") == "NT"

    @settings(max_examples=100)
    @given(s=DNA)
    def test_involution(self, s):
        codes = encode(s)
        assert decode(reverse_complement(reverse_complement(codes))) == s


class TestPacking:
    @settings(max_examples=100)
    @given(s=PURE_DNA)
    def test_2bit_roundtrip(self, s):
        codes = encode(s)
        packed = pack_2bit(codes)
        assert packed.size == (len(s) + 3) // 4
        assert (unpack_2bit(packed, len(s)) == codes).all()

    def test_2bit_rejects_ambiguous(self):
        with pytest.raises(ValueError):
            pack_2bit(encode("ACGN"))

    def test_unpack_length_guard(self):
        packed = pack_2bit(encode("ACGT"))
        with pytest.raises(ValueError):
            unpack_2bit(packed, 5)

    def test_3bit_range_guard(self):
        pack_3bit(np.array([0, 7], dtype=np.uint8))
        with pytest.raises(ValueError):
            pack_3bit(np.array([8], dtype=np.uint8))


class TestUtilities:
    def test_random_sequence_is_pure(self):
        rng = np.random.default_rng(0)
        s = random_sequence(1000, rng)
        assert s.max() <= 3
        # All four bases should appear in 1000 draws.
        assert set(np.unique(s)) == {0, 1, 2, 3}

    def test_hamming(self):
        assert hamming(encode("ACGT"), encode("ACGT")) == 0
        assert hamming(encode("ACGT"), encode("TCGA")) == 2

    def test_hamming_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming(encode("ACG"), encode("ACGT"))
