"""End-to-end tests of the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.genome.io_fasta import read_fasta, read_fastq
from repro.genome.sam import SamRecord


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    ref = str(root / "ref.fasta")
    reads = str(root / "reads.fastq")
    rc = main(
        [
            "simulate",
            "--length",
            "20000",
            "--reads",
            "25",
            "--seed",
            "5",
            "--out-reference",
            ref,
            "--out-reads",
            reads,
        ]
    )
    assert rc == 0
    return root, ref, reads


class TestSimulate:
    def test_outputs_parse(self, workload):
        _, ref, reads = workload
        (record,) = read_fasta(ref)
        assert record.name == "chr1"
        assert len(record.sequence) == 20000
        fq = read_fastq(reads)
        assert len(fq) == 25
        assert all(len(r.sequence) == 101 for r in fq)

    def test_deterministic(self, workload, tmp_path):
        _, ref, _ = workload
        ref2 = str(tmp_path / "ref2.fasta")
        reads2 = str(tmp_path / "reads2.fastq")
        main(
            [
                "simulate",
                "--length",
                "20000",
                "--reads",
                "25",
                "--seed",
                "5",
                "--out-reference",
                ref2,
                "--out-reads",
                reads2,
            ]
        )
        assert read_fasta(ref)[0] == read_fasta(ref2)[0]


class TestAlign:
    def _sam_records(self, path):
        with open(path) as handle:
            return [
                SamRecord.from_line(line)
                for line in handle
                if not line.startswith("@")
            ]

    def test_align_produces_sam(self, workload):
        root, ref, reads = workload
        out = str(root / "out.sam")
        rc = main(
            ["align", "--reference", ref, "--reads", reads, "--out", out]
        )
        assert rc == 0
        records = self._sam_records(out)
        assert len(records) == 25
        mapped = [r for r in records if not r.is_unmapped]
        assert len(mapped) >= 23

    def test_seedex_equals_full(self, workload):
        root, ref, reads = workload
        out_seedex = str(root / "seedex.sam")
        out_full = str(root / "full.sam")
        main(
            ["align", "--reference", ref, "--reads", reads,
             "--out", out_seedex, "--engine", "seedex", "--band", "9"]
        )
        main(
            ["align", "--reference", ref, "--reads", reads,
             "--out", out_full, "--engine", "full"]
        )
        assert self._sam_records(out_seedex) == self._sam_records(
            out_full
        )

    def test_missing_reference_errors(self, workload, tmp_path):
        root, _, reads = workload
        empty = tmp_path / "empty.fasta"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(
                ["align", "--reference", str(empty), "--reads", reads,
                 "--out", str(tmp_path / "x.sam")]
            )


class TestPaired:
    def test_paired_roundtrip(self, tmp_path):
        ref = str(tmp_path / "ref.fasta")
        reads = str(tmp_path / "pairs.fastq")
        out = str(tmp_path / "pairs.sam")
        rc = main(
            ["simulate", "--length", "20000", "--reads", "10",
             "--paired", "--seed", "3",
             "--out-reference", ref, "--out-reads", reads]
        )
        assert rc == 0
        fq = read_fastq(reads)
        assert len(fq) == 20  # interleaved mates
        assert fq[0].name.endswith("/1")
        assert fq[1].name.endswith("/2")
        rc = main(
            ["align", "--reference", ref, "--reads", reads,
             "--out", out, "--paired"]
        )
        assert rc == 0
        with open(out) as handle:
            records = [
                SamRecord.from_line(line)
                for line in handle
                if not line.startswith("@")
            ]
        assert len(records) == 20
        proper = sum(1 for r in records if r.flag & 0x2)
        assert proper >= 16

    def test_paired_odd_count_rejected(self, tmp_path, workload):
        _, ref, reads = workload
        with pytest.raises(SystemExit):
            main(
                ["align", "--reference", ref, "--reads", reads,
                 "--out", str(tmp_path / "x.sam"), "--paired"]
            )


class TestAnalyze:
    def test_analyze_runs(self, workload, capsys):
        _, ref, reads = workload
        rc = main(
            ["analyze", "--reference", ref, "--reads", reads,
             "--band", "41"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "overall passing rate" in out
        assert "band: 41" in out
        # The passing-rate report is a shared-format table now.
        assert "metric" in out and "value" in out


class TestObservability:
    def _sam_records(self, path):
        with open(path) as handle:
            return [
                line for line in handle if not line.startswith("@")
            ]

    def test_metrics_and_trace_outputs(self, workload, tmp_path):
        root, ref, reads = workload
        out = str(tmp_path / "obs.sam")
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        rc = main(
            ["align", "--reference", ref, "--reads", reads,
             "--out", out, "--metrics-out", str(metrics),
             "--trace-out", str(trace)]
        )
        assert rc == 0
        snap = json.loads(metrics.read_text())
        counters = snap["counters"]
        assert counters["aligner.reads.total"] == 25
        assert counters["seedex.extensions.total"] > 0
        assert any(
            key.startswith("seedex.check.outcome{") for key in counters
        )
        hists = snap["histograms"]
        assert hists["extend.narrow.seconds"]["count"] > 0
        assert (
            hists["seedex.cells.per_extension{stage=narrow}"]["count"]
            > 0
        )
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"], "trace must contain spans"
        assert all(e["ph"] == "X" for e in doc["traceEvents"])

    def test_sam_identical_with_and_without_obs(self, workload, tmp_path):
        _, ref, reads = workload
        plain = str(tmp_path / "plain.sam")
        observed = str(tmp_path / "observed.sam")
        main(["align", "--reference", ref, "--reads", reads,
              "--out", plain])
        main(["align", "--reference", ref, "--reads", reads,
              "--out", observed,
              "--metrics-out", str(tmp_path / "m.json"),
              "--trace-out", str(tmp_path / "t.json")])
        assert self._sam_records(observed) == self._sam_records(plain)

    def test_stats_pretty_printer(self, workload, tmp_path, capsys):
        _, ref, reads = workload
        metrics = tmp_path / "m.json"
        main(["align", "--reference", ref, "--reads", reads,
              "--out", str(tmp_path / "x.sam"),
              "--metrics-out", str(metrics)])
        capsys.readouterr()
        rc = main(["stats", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== counters ==" in out
        assert "aligner.reads.total" in out
        assert "== histograms ==" in out
        assert "p50" in out


class TestDurableCli:
    def _sam_bytes(self, path):
        with open(path, "rb") as handle:
            return handle.read()

    def test_durable_run_matches_plain_align(self, workload, tmp_path):
        _, ref, reads = workload
        plain = str(tmp_path / "plain.sam")
        durable = str(tmp_path / "durable.sam")
        main(["align", "--reference", ref, "--reads", reads,
              "--out", plain, "--batch-size", "8"])
        rc = main(["align", "--reference", ref, "--reads", reads,
                   "--out", durable, "--batch-size", "8",
                   "--workers", "2",
                   "--run-dir", str(tmp_path / "run")])
        assert rc == 0
        assert self._sam_bytes(durable) == self._sam_bytes(plain)
        assert (tmp_path / "run" / "manifest.json").exists()

    def test_reusing_run_dir_without_resume_errors(
        self, workload, tmp_path
    ):
        _, ref, reads = workload
        out = str(tmp_path / "out.sam")
        argv = ["align", "--reference", ref, "--reads", reads,
                "--out", out, "--batch-size", "8",
                "--run-dir", str(tmp_path / "run")]
        assert main(argv) == 0
        with pytest.raises(SystemExit, match="already holds"):
            main(argv)

    def test_resume_of_finished_run_reuses_every_window(
        self, workload, tmp_path, capsys
    ):
        _, ref, reads = workload
        out = str(tmp_path / "out.sam")
        argv = ["align", "--reference", ref, "--reads", reads,
                "--out", out, "--batch-size", "8",
                "--run-dir", str(tmp_path / "run")]
        assert main(argv) == 0
        first = self._sam_bytes(out)
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        assert "windows reused from the journal" in capsys.readouterr().out
        assert self._sam_bytes(out) == first

    def test_resume_without_run_dir_rejected(self, workload, tmp_path):
        _, ref, reads = workload
        with pytest.raises(SystemExit, match="--resume needs"):
            main(["align", "--reference", ref, "--reads", reads,
                  "--out", str(tmp_path / "x.sam"), "--resume"])


class TestBadRecordPolicy:
    CORRUPT = (
        "@good1\nACGTACGT\n+\nIIIIIIII\n"
        "@broken\nACGT\nIIII\n"          # missing '+' separator
        "@good2\nTTTTACGT\n+\n########\n"
    )

    def _workload(self, tmp_path):
        ref = tmp_path / "ref.fasta"
        ref.write_text(">chr1\n" + "ACGTTGCA" * 200 + "\n")
        reads = tmp_path / "reads.fastq"
        reads.write_text(self.CORRUPT)
        return str(ref), str(reads)

    def test_fail_policy_aborts(self, tmp_path):
        ref, reads = self._workload(tmp_path)
        with pytest.raises(SystemExit, match="on-bad-record"):
            main(["align", "--reference", ref, "--reads", reads,
                  "--out", str(tmp_path / "x.sam")])

    def test_quarantine_policy_skips_and_reports(
        self, tmp_path, capsys
    ):
        ref, reads = self._workload(tmp_path)
        out = tmp_path / "out.sam"
        rc = main(["align", "--reference", ref, "--reads", reads,
                   "--out", str(out), "--on-bad-record", "quarantine",
                   "--run-dir", str(tmp_path / "run")])
        assert rc == 0
        assert "skipped bad record" in capsys.readouterr().err
        body = [
            line for line in out.read_text().splitlines()
            if not line.startswith("@")
        ]
        assert [line.split("\t")[0] for line in body] == [
            "good1", "good2"
        ]
        sidecar = (tmp_path / "run" / "bad_records.tsv").read_text()
        assert "separator" in sidecar
