"""End-to-end tests of the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.genome.io_fasta import read_fasta, read_fastq
from repro.genome.sam import SamRecord


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    ref = str(root / "ref.fasta")
    reads = str(root / "reads.fastq")
    rc = main(
        [
            "simulate",
            "--length",
            "20000",
            "--reads",
            "25",
            "--seed",
            "5",
            "--out-reference",
            ref,
            "--out-reads",
            reads,
        ]
    )
    assert rc == 0
    return root, ref, reads


class TestSimulate:
    def test_outputs_parse(self, workload):
        _, ref, reads = workload
        (record,) = read_fasta(ref)
        assert record.name == "chr1"
        assert len(record.sequence) == 20000
        fq = read_fastq(reads)
        assert len(fq) == 25
        assert all(len(r.sequence) == 101 for r in fq)

    def test_deterministic(self, workload, tmp_path):
        _, ref, _ = workload
        ref2 = str(tmp_path / "ref2.fasta")
        reads2 = str(tmp_path / "reads2.fastq")
        main(
            [
                "simulate",
                "--length",
                "20000",
                "--reads",
                "25",
                "--seed",
                "5",
                "--out-reference",
                ref2,
                "--out-reads",
                reads2,
            ]
        )
        assert read_fasta(ref)[0] == read_fasta(ref2)[0]


class TestAlign:
    def _sam_records(self, path):
        with open(path) as handle:
            return [
                SamRecord.from_line(line)
                for line in handle
                if not line.startswith("@")
            ]

    def test_align_produces_sam(self, workload):
        root, ref, reads = workload
        out = str(root / "out.sam")
        rc = main(
            ["align", "--reference", ref, "--reads", reads, "--out", out]
        )
        assert rc == 0
        records = self._sam_records(out)
        assert len(records) == 25
        mapped = [r for r in records if not r.is_unmapped]
        assert len(mapped) >= 23

    def test_seedex_equals_full(self, workload):
        root, ref, reads = workload
        out_seedex = str(root / "seedex.sam")
        out_full = str(root / "full.sam")
        main(
            ["align", "--reference", ref, "--reads", reads,
             "--out", out_seedex, "--engine", "seedex", "--band", "9"]
        )
        main(
            ["align", "--reference", ref, "--reads", reads,
             "--out", out_full, "--engine", "full"]
        )
        assert self._sam_records(out_seedex) == self._sam_records(
            out_full
        )

    def test_missing_reference_errors(self, workload, tmp_path):
        root, _, reads = workload
        empty = tmp_path / "empty.fasta"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(
                ["align", "--reference", str(empty), "--reads", reads,
                 "--out", str(tmp_path / "x.sam")]
            )


class TestPaired:
    def test_paired_roundtrip(self, tmp_path):
        ref = str(tmp_path / "ref.fasta")
        reads = str(tmp_path / "pairs.fastq")
        out = str(tmp_path / "pairs.sam")
        rc = main(
            ["simulate", "--length", "20000", "--reads", "10",
             "--paired", "--seed", "3",
             "--out-reference", ref, "--out-reads", reads]
        )
        assert rc == 0
        fq = read_fastq(reads)
        assert len(fq) == 20  # interleaved mates
        assert fq[0].name.endswith("/1")
        assert fq[1].name.endswith("/2")
        rc = main(
            ["align", "--reference", ref, "--reads", reads,
             "--out", out, "--paired"]
        )
        assert rc == 0
        with open(out) as handle:
            records = [
                SamRecord.from_line(line)
                for line in handle
                if not line.startswith("@")
            ]
        assert len(records) == 20
        proper = sum(1 for r in records if r.flag & 0x2)
        assert proper >= 16

    def test_paired_odd_count_rejected(self, tmp_path, workload):
        _, ref, reads = workload
        with pytest.raises(SystemExit):
            main(
                ["align", "--reference", ref, "--reads", reads,
                 "--out", str(tmp_path / "x.sam"), "--paired"]
            )


class TestAnalyze:
    def test_analyze_runs(self, workload, capsys):
        _, ref, reads = workload
        rc = main(
            ["analyze", "--reference", ref, "--reads", reads,
             "--band", "41"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "overall passing rate" in out
        assert "band: 41" in out
        # The passing-rate report is a shared-format table now.
        assert "metric" in out and "value" in out


class TestObservability:
    def _sam_records(self, path):
        with open(path) as handle:
            return [
                line for line in handle if not line.startswith("@")
            ]

    def test_metrics_and_trace_outputs(self, workload, tmp_path):
        root, ref, reads = workload
        out = str(tmp_path / "obs.sam")
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        rc = main(
            ["align", "--reference", ref, "--reads", reads,
             "--out", out, "--metrics-out", str(metrics),
             "--trace-out", str(trace)]
        )
        assert rc == 0
        snap = json.loads(metrics.read_text())
        counters = snap["counters"]
        assert counters["aligner.reads.total"] == 25
        assert counters["seedex.extensions.total"] > 0
        assert any(
            key.startswith("seedex.check.outcome{") for key in counters
        )
        hists = snap["histograms"]
        assert hists["extend.narrow.seconds"]["count"] > 0
        assert (
            hists["seedex.cells.per_extension{stage=narrow}"]["count"]
            > 0
        )
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"], "trace must contain spans"
        assert all(e["ph"] == "X" for e in doc["traceEvents"])

    def test_sam_identical_with_and_without_obs(self, workload, tmp_path):
        _, ref, reads = workload
        plain = str(tmp_path / "plain.sam")
        observed = str(tmp_path / "observed.sam")
        main(["align", "--reference", ref, "--reads", reads,
              "--out", plain])
        main(["align", "--reference", ref, "--reads", reads,
              "--out", observed,
              "--metrics-out", str(tmp_path / "m.json"),
              "--trace-out", str(tmp_path / "t.json")])
        assert self._sam_records(observed) == self._sam_records(plain)

    def test_stats_pretty_printer(self, workload, tmp_path, capsys):
        _, ref, reads = workload
        metrics = tmp_path / "m.json"
        main(["align", "--reference", ref, "--reads", reads,
              "--out", str(tmp_path / "x.sam"),
              "--metrics-out", str(metrics)])
        capsys.readouterr()
        rc = main(["stats", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== counters ==" in out
        assert "aligner.reads.total" in out
        assert "== histograms ==" in out
        assert "p50" in out


class TestDurableCli:
    def _sam_bytes(self, path):
        with open(path, "rb") as handle:
            return handle.read()

    def test_durable_run_matches_plain_align(self, workload, tmp_path):
        _, ref, reads = workload
        plain = str(tmp_path / "plain.sam")
        durable = str(tmp_path / "durable.sam")
        main(["align", "--reference", ref, "--reads", reads,
              "--out", plain, "--batch-size", "8"])
        rc = main(["align", "--reference", ref, "--reads", reads,
                   "--out", durable, "--batch-size", "8",
                   "--workers", "2",
                   "--run-dir", str(tmp_path / "run")])
        assert rc == 0
        assert self._sam_bytes(durable) == self._sam_bytes(plain)
        assert (tmp_path / "run" / "manifest.json").exists()

    def test_reusing_run_dir_without_resume_errors(
        self, workload, tmp_path
    ):
        _, ref, reads = workload
        out = str(tmp_path / "out.sam")
        argv = ["align", "--reference", ref, "--reads", reads,
                "--out", out, "--batch-size", "8",
                "--run-dir", str(tmp_path / "run")]
        assert main(argv) == 0
        with pytest.raises(SystemExit, match="already holds"):
            main(argv)

    def test_resume_of_finished_run_reuses_every_window(
        self, workload, tmp_path, capsys
    ):
        _, ref, reads = workload
        out = str(tmp_path / "out.sam")
        argv = ["align", "--reference", ref, "--reads", reads,
                "--out", out, "--batch-size", "8",
                "--run-dir", str(tmp_path / "run")]
        assert main(argv) == 0
        first = self._sam_bytes(out)
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        assert "windows reused from the journal" in capsys.readouterr().out
        assert self._sam_bytes(out) == first

    def test_resume_without_run_dir_rejected(self, workload, tmp_path):
        _, ref, reads = workload
        with pytest.raises(SystemExit, match="--resume needs"):
            main(["align", "--reference", ref, "--reads", reads,
                  "--out", str(tmp_path / "x.sam"), "--resume"])


class TestBadRecordPolicy:
    CORRUPT = (
        "@good1\nACGTACGT\n+\nIIIIIIII\n"
        "@broken\nACGT\nIIII\n"          # missing '+' separator
        "@good2\nTTTTACGT\n+\n########\n"
    )

    def _workload(self, tmp_path):
        ref = tmp_path / "ref.fasta"
        ref.write_text(">chr1\n" + "ACGTTGCA" * 200 + "\n")
        reads = tmp_path / "reads.fastq"
        reads.write_text(self.CORRUPT)
        return str(ref), str(reads)

    def test_fail_policy_aborts(self, tmp_path):
        ref, reads = self._workload(tmp_path)
        with pytest.raises(SystemExit, match="on-bad-record"):
            main(["align", "--reference", ref, "--reads", reads,
                  "--out", str(tmp_path / "x.sam")])

    def test_quarantine_policy_skips_and_reports(
        self, tmp_path, capsys
    ):
        ref, reads = self._workload(tmp_path)
        out = tmp_path / "out.sam"
        rc = main(["align", "--reference", ref, "--reads", reads,
                   "--out", str(out), "--on-bad-record", "quarantine",
                   "--run-dir", str(tmp_path / "run")])
        assert rc == 0
        assert "skipped bad record" in capsys.readouterr().err
        body = [
            line for line in out.read_text().splitlines()
            if not line.startswith("@")
        ]
        assert [line.split("\t")[0] for line in body] == [
            "good1", "good2"
        ]
        sidecar = (tmp_path / "run" / "bad_records.tsv").read_text()
        assert "separator" in sidecar


class TestScorecardCli:
    def _sam_bytes(self, path):
        with open(path, "rb") as handle:
            return handle.read()

    def test_simulate_writes_truth_sidecar(self, workload):
        from repro.scorecard import read_truth

        _, _, reads = workload
        truth = read_truth(reads + ".truth.tsv")
        assert len(truth) == 25
        assert all(row.true_pos >= 0 for row in truth.values())

    def test_no_truth_suppresses_sidecar(self, tmp_path):
        ref = str(tmp_path / "ref.fasta")
        reads = str(tmp_path / "reads.fastq")
        rc = main(
            ["simulate", "--length", "5000", "--reads", "5",
             "--seed", "1", "--no-truth",
             "--out-reference", ref, "--out-reads", reads]
        )
        assert rc == 0
        assert not (tmp_path / "reads.fastq.truth.tsv").exists()

    def test_scoring_never_changes_the_sam(self, workload, tmp_path):
        _, ref, reads = workload
        plain = str(tmp_path / "plain.sam")
        scored = str(tmp_path / "scored.sam")
        main(["align", "--reference", ref, "--reads", reads,
              "--out", plain])
        card_out = tmp_path / "scorecard.json"
        rc = main(["align", "--reference", ref, "--reads", reads,
                   "--out", scored, "--scorecard-out", str(card_out)])
        assert rc == 0
        assert self._sam_bytes(scored) == self._sam_bytes(plain)
        payload = json.loads(card_out.read_text())
        assert payload["schema"] == 1
        assert sum(payload["outcomes"].values()) == 25
        assert payload["rates"]["correct_locus"] >= 0.9

    def test_score_subcommand_grades_existing_sam(
        self, workload, tmp_path, capsys
    ):
        _, ref, reads = workload
        out = str(tmp_path / "run.sam")
        main(["align", "--reference", ref, "--reads", reads,
              "--out", out])
        capsys.readouterr()
        rc = main(["score", "--sam", out,
                   "--truth", reads + ".truth.tsv"])
        assert rc == 0
        assert "correct-locus" in capsys.readouterr().out

    def test_score_subcommand_bad_sidecar_exits_2(
        self, workload, tmp_path, capsys
    ):
        _, ref, reads = workload
        out = str(tmp_path / "run.sam")
        main(["align", "--reference", ref, "--reads", reads,
              "--out", out])
        bad = tmp_path / "bad.tsv"
        bad.write_text("this is not a sidecar\n")
        assert main(["score", "--sam", out, "--truth", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_log_json_emits_wave_progress(
        self, workload, tmp_path, capsys
    ):
        _, ref, reads = workload
        rc = main(["align", "--reference", ref, "--reads", reads,
                   "--out", str(tmp_path / "x.sam"),
                   "--batch-size", "8", "--log-json"])
        assert rc == 0
        events = [
            json.loads(line)
            for line in capsys.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        waves = [e for e in events if e.get("event") == "wave"]
        assert len(waves) >= 3  # 25 reads / batch 8
        last = waves[-1]
        assert last["reads_done"] == 25
        assert last["reads_total"] == 25
        assert last["reads_per_s"] >= 0
        assert set(last) >= {"wave", "eta_s", "elapsed_s"}


class TestBenchCli:
    """`repro bench` end to end over a stub benchmarks directory.

    The stub hook returns constants so the throughput legs are
    deterministic; the accuracy leg still runs the real fixed-seed
    quick corpus.
    """

    def _stub_dir(self, tmp_path):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_stub.py").write_text(
            "def tier1_bench(quick=False):\n"
            "    return {'stub.ops_per_s': 10.0}\n"
        )
        return str(bench_dir)

    def test_first_run_appends_and_gate_skips(
        self, tmp_path, capsys
    ):
        history = tmp_path / "history.jsonl"
        rc = main(["bench", "--quick", "--check",
                   "--benchmarks-dir", self._stub_dir(tmp_path),
                   "--history", str(history),
                   "--scorecard-out", str(tmp_path / "card.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bench gate: pass" in out
        assert "not gated" in out  # empty history -> skip, never silent
        from repro.bench import load_records

        (record,) = load_records(history)
        assert record["metrics"]["stub.ops_per_s"] == 10.0
        assert record["metrics"]["accuracy.correct_locus_rate"] >= 0.99
        assert (tmp_path / "card.json").exists()

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        """The acceptance demo at the CLI layer: a baseline 10x faster
        than what the next run measures must flip the gate to exit 4,
        while an honest baseline passes."""
        history = tmp_path / "history.jsonl"
        bench_dir = self._stub_dir(tmp_path)
        argv = ["bench", "--quick", "--benchmarks-dir", bench_dir,
                "--history", str(history)]
        assert main(argv) == 0

        # Honest re-run against its own record: gate passes.
        assert main(argv + ["--check", "--no-append"]) == 0

        # Forge the baseline: same fingerprint/host, 10x throughput.
        record = json.loads(history.read_text())
        record["metrics"]["stub.ops_per_s"] = 100.0
        history.write_text(json.dumps(record) + "\n")
        capsys.readouterr()
        rc = main(argv + ["--check", "--no-append"])
        assert rc == 4
        out = capsys.readouterr().out
        assert "bench gate: FAIL" in out
        assert "stub.ops_per_s" in out


@pytest.fixture(scope="module")
def long_workload(tmp_path_factory):
    """A small long-read corpus with its truth sidecar."""
    root = tmp_path_factory.mktemp("cli_long")
    ref = str(root / "ref.fasta")
    reads = str(root / "long.fastq")
    rc = main(
        ["simulate", "--length", "15000", "--reads", "8", "--seed", "9",
         "--long", "--long-length", "900", "--length-sd", "150",
         "--out-reference", ref, "--out-reads", reads]
    )
    assert rc == 0
    return root, ref, reads


class TestSimulateLong:
    def test_long_reads_have_spread_lengths(self, long_workload):
        _, _, reads = long_workload
        fq = read_fastq(reads)
        assert len(fq) == 8
        lengths = {len(r.sequence) for r in fq}
        assert len(lengths) > 1  # --length-sd actually spread them
        assert all(300 <= n <= 900 + 4 * 150 for n in lengths)

    def test_truth_sidecar_written(self, long_workload):
        root, _, reads = long_workload
        truth = reads + ".truth.tsv"
        with open(truth) as handle:
            rows = [
                line.split("\t") for line in handle
                if not line.startswith("#")
            ]
        assert len(rows) == 8

    def test_long_and_paired_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["simulate", "--length", "15000", "--reads", "4",
                 "--long", "--paired",
                 "--out-reference", str(tmp_path / "r.fa"),
                 "--out-reads", str(tmp_path / "r.fq")]
            )


class TestLongReadCli:
    def _run(self, long_workload, tmp_path, *extra):
        _, ref, reads = long_workload
        out = str(tmp_path / "long.sam")
        rc = main(
            ["longread", "--reference", ref, "--reads", reads,
             "--out", out, *extra]
        )
        assert rc == 0
        with open(out) as handle:
            return handle.read()

    def test_batched_matches_scalar_engine(self, long_workload, tmp_path):
        scalar = self._run(
            long_workload, tmp_path, "--engine", "scalar"
        )
        batched = self._run(
            long_workload, tmp_path,
            "--engine", "batched", "--kernel", "striped",
        )
        strip = lambda text: [
            line for line in text.splitlines()
            if not line.startswith("@PG")
        ]
        assert strip(batched) == strip(scalar)
        mapped = [
            line for line in scalar.splitlines()
            if not line.startswith("@") and "\t4\t" not in line[:40]
        ]
        assert len(mapped) >= 7

    def test_scorecard_grades_the_run(self, long_workload, tmp_path):
        _, ref, reads = long_workload
        out = str(tmp_path / "long.sam")
        card = str(tmp_path / "card.json")
        rc = main(
            ["longread", "--reference", ref, "--reads", reads,
             "--out", out, "--scorecard-out", card,
             "--truth-tolerance", "80"]
        )
        assert rc == 0
        with open(card) as handle:
            score = json.load(handle)
        assert score["total"] == 8
        assert score["rates"]["correct_locus"] >= 0.8


class TestOverlapCli:
    @pytest.fixture(scope="class")
    def fragments(self, tmp_path_factory):
        """Tiling fragments of a fresh reference: known overlaps."""
        import numpy as np

        from repro.genome.io_fasta import FastqRecord, write_fastq
        from repro.genome.sequence import decode
        from repro.genome.synth import fragment_corpus, synthesize_reference

        root = tmp_path_factory.mktemp("cli_overlap")
        rng = np.random.default_rng(11)
        reference = synthesize_reference(4_000, rng)
        frags = fragment_corpus(
            reference, rng, length=300, step=220,
            substitution_rate=0.01,
        )
        reads = str(root / "frags.fastq")
        with open(reads, "w") as handle:
            write_fastq(
                handle,
                [
                    FastqRecord(f.name, decode(f.codes), "I" * len(f.codes))
                    for f in frags
                ],
            )
        return reads, len(frags)

    def test_overlap_finds_adjacent_fragments(self, fragments, tmp_path):
        reads, n_frags = fragments
        out = str(tmp_path / "overlap.tsv")
        rc = main(["overlap", "--reads", reads, "--out", out])
        assert rc == 0
        with open(out) as handle:
            rows = [line.rstrip("\n").split("\t") for line in handle]
        assert len(rows) >= n_frags - 1
        for row in rows:
            assert len(row) == 12
            assert row[4] == "+"
            assert row[11] in ("proved", "rerun")
            assert int(row[8]) >= 50  # b_end >= --min-overlap

    def test_overlap_kernel_independent(self, fragments, tmp_path):
        reads, _ = fragments
        outputs = {}
        for kernel in ("scalar", "numpy", "striped"):
            out = str(tmp_path / f"overlap.{kernel}.tsv")
            rc = main(
                ["overlap", "--reads", reads, "--out", out,
                 "--kernel", kernel]
            )
            assert rc == 0
            with open(out) as handle:
                outputs[kernel] = handle.read()
        assert outputs["scalar"] == outputs["numpy"]
        assert outputs["scalar"] == outputs["striped"]
