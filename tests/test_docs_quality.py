"""Documentation quality gates.

Deliverable (e) requires doc comments on every public item; this test
makes that a property of the build rather than a hope.  It walks every
module under ``repro`` and asserts that public modules, classes, and
functions carry docstrings.
"""

import importlib
import inspect
import pkgutil

import repro


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports documented at their definition site
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = [
            m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()
        ]
        assert missing == []

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in _walk_modules():
            for name, obj in _public_members(module):
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert missing == [], f"undocumented public items: {missing}"

    def test_public_methods_documented(self):
        """Public methods of public classes need docstrings too
        (dataclass-generated members excepted)."""
        missing = []
        for module in _walk_modules():
            for cname, cls in _public_members(module):
                if not inspect.isclass(cls):
                    continue
                for mname, member in vars(cls).items():
                    if mname.startswith("_"):
                        continue
                    func = None
                    if inspect.isfunction(member):
                        func = member
                    elif isinstance(member, property):
                        func = member.fget
                    if func is None:
                        continue
                    if not (func.__doc__ or "").strip():
                        missing.append(
                            f"{module.__name__}.{cname}.{mname}"
                        )
        # Properties/methods are allowed to be undocumented only when
        # their name says it all; keep the pressure on regardless by
        # bounding the count rather than listing exceptions.
        assert len(missing) <= 40, (
            f"{len(missing)} undocumented methods, e.g. {missing[:10]}"
        )
