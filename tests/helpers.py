"""Shared test utilities: generators and a brute-force path oracle.

The brute-force enumerator walks every monotone path of a small DP
matrix and scores it with exact affine-gap accounting.  It is the
independent ground truth used to validate both the DP kernels and the
admissibility of every SeedEx bound: kernels and checks are only
trusted because they agree with this enumeration on small inputs.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from repro.align.scoring import AffineGap


def sam_bytes(
    reference: np.ndarray,
    reads,
    engine,
    *,
    workers: int = 1,
    batch_size: int | None = None,
    seeding: str = "kmer",
    reference_name: str = "chr1",
    **aligner_opts,
) -> bytes:
    """SAM output of one pipeline configuration, as comparable bytes.

    The differential suite's single entry point: every configuration —
    scalar or wave-scheduled, one process or sharded — renders through
    the same writer so outputs are directly ``==``-comparable.

    ``engine`` is an engine instance for in-process runs, or a
    picklable :class:`~repro.aligner.parallel.EngineSpec` (mandatory
    when ``workers > 1``).  ``batch_size=None`` runs the scalar path;
    an integer routes reads through the deferred-extension wave
    scheduler in windows of that size.
    """
    from repro.aligner.parallel import EngineSpec, align_sharded
    from repro.aligner.pipeline import Aligner
    from repro.genome.sam import write_sam

    if workers > 1:
        if not isinstance(engine, EngineSpec):
            raise TypeError("workers > 1 requires an EngineSpec")
        records = align_sharded(
            reference,
            reads,
            spec=engine,
            workers=workers,
            batch_size=batch_size if batch_size is not None else 4096,
            seeding=seeding,
            reference_name=reference_name,
            **aligner_opts,
        )
    else:
        built = engine.build() if isinstance(engine, EngineSpec) else engine
        aligner = Aligner(
            reference,
            built,
            seeding=seeding,
            reference_name=reference_name,
            **aligner_opts,
        )
        if batch_size is None:
            records = aligner.align(reads)
        else:
            records = aligner.align_batched(reads, batch_size=batch_size)
    buf = io.StringIO()
    write_sam(buf, records, reference_name, len(reference))
    return buf.getvalue().encode()


def mutate(
    seq: np.ndarray,
    rng: np.random.Generator,
    subs: int = 0,
    ins: int = 0,
    dels: int = 0,
) -> np.ndarray:
    """Apply random substitutions/insertions/deletions to a sequence."""
    out = list(int(b) for b in seq)
    for _ in range(subs):
        if not out:
            break
        pos = int(rng.integers(0, len(out)))
        out[pos] = int(rng.integers(0, 4))
    for _ in range(dels):
        if not out:
            break
        pos = int(rng.integers(0, len(out)))
        del out[pos]
    for _ in range(ins):
        pos = int(rng.integers(0, len(out) + 1))
        out.insert(pos, int(rng.integers(0, 4)))
    return np.array(out, dtype=np.uint8)


def related_pair(
    rng: np.random.Generator,
    qlen: int,
    extra_target: int = 0,
    subs: int = 1,
    ins: int = 0,
    dels: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """A (query, target) pair where target is a mutated copy of query."""
    from repro.genome.sequence import random_sequence

    query = random_sequence(qlen, rng)
    target = mutate(query, rng, subs=subs, ins=ins, dels=dels)
    if extra_target:
        target = np.concatenate(
            [target, random_sequence(extra_target, rng)]
        ).astype(np.uint8)
    if len(target) == 0:
        target = random_sequence(1, rng)
    return query, target


@dataclass
class PathRecord:
    """One monotone path prefix: endpoint, score, and band excursion."""

    i: int
    j: int
    score: int
    min_diag: int
    max_diag: int
    first_departure: tuple[str, int] | None
    """('up'|'down', column) of the first step outside band ``w`` —
    filled by the caller-supplied band; None when never outside."""


def enumerate_paths(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int,
    band: int,
    dead_at_zero: bool = True,
) -> list[PathRecord]:
    """Enumerate every alive monotone path prefix from the origin.

    Returns a record per (path, endpoint) visit.  ``min_diag``/
    ``max_diag`` track the excursion of ``i - j``; ``first_departure``
    reports how the path first left the band of half-width ``band``.
    Exponential — callers must keep ``len(query) * len(target)`` tiny.
    """
    qlen = len(query)
    tlen = len(target)
    out: list[PathRecord] = []

    def step(i, j, score, gap_state, min_d, max_d, first_dep):
        out.append(PathRecord(i, j, score, min_d, max_d, first_dep))
        # Diagonal.
        if i < tlen and j < qlen:
            s = score + scoring.substitution(int(target[i]), int(query[j]))
            if not dead_at_zero or s > 0:
                d = (i + 1) - (j + 1)
                dep = first_dep
                step(i + 1, j + 1, s, None, min(min_d, d), max(max_d, d), dep)
        # Vertical (deletion: consumes target).
        if i < tlen:
            cost = scoring.gap_extend_del
            if gap_state != "del":
                cost += scoring.gap_open
            s = score - cost
            if not dead_at_zero or s > 0:
                d = (i + 1) - j
                dep = first_dep
                if dep is None and d > band:
                    dep = ("down", j)
                step(i + 1, j, s, "del", min(min_d, d), max(max_d, d), dep)
        # Horizontal (insertion: consumes query).
        if j < qlen:
            cost = scoring.gap_extend_ins
            if gap_state != "ins":
                cost += scoring.gap_open
            s = score - cost
            if not dead_at_zero or s > 0:
                d = i - (j + 1)
                dep = first_dep
                if dep is None and d < -band:
                    dep = ("up", j + 1)
                step(i, j + 1, s, "ins", min(min_d, d), max(max_d, d), dep)

    step(0, 0, h0, None, 0, 0, None)
    return out


def brute_cell_scores(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int,
) -> np.ndarray:
    """Best alive-path score per cell, by exhaustive enumeration."""
    qlen = len(query)
    tlen = len(target)
    best = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
    for rec in enumerate_paths(
        query, target, scoring, h0, band=max(qlen, tlen)
    ):
        if rec.score > best[rec.i][rec.j]:
            best[rec.i][rec.j] = rec.score
    return best


def brute_band_demand(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int,
) -> tuple[int, int]:
    """(lscore, gscore) over all paths regardless of band; sanity aid."""
    records = enumerate_paths(
        query, target, scoring, h0, band=max(len(query), len(target))
    )
    lscore = max((r.score for r in records), default=0)
    gscore = max(
        (r.score for r in records if r.j == len(query)), default=0
    )
    return lscore, gscore
