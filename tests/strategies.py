"""Hypothesis strategies for the cross-kernel conformance suite.

The kernel backends (:mod:`repro.kernels`) promise bit-identical
results, so the conformance tests are pure differential properties:
any input is a test case.  The strategies here are deliberately biased
toward the inputs where banded DP implementations historically
diverge — band edges, degenerate sequences, and scores that land
exactly on the S1/S2 acceptance thresholds:

* **all-N sequences** — the ambiguous code never matches, even
  against itself, which a naive ``==`` comparison gets wrong;
* **homopolymers** — every diagonal substitution is a match, so
  tie-breaking between equal-scoring endpoints is fully exercised;
* **read longer than reference** — the band's lower-right clamp and
  the semi-global row ``|i - qlen| <= w`` degenerate;
* **zero-length extension** — a seed flush against the read end:
  ``qlen == 0`` jobs must still produce the ``h0`` row semantics;
* **threshold-edge jobs** — constructed so the narrow-band score
  lands *exactly* on S1 or S2, where an off-by-one in the threshold
  comparison flips the accept/rerun verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from hypothesis import strategies as st

from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.genome.sequence import AMBIGUOUS_CODE

EDGE_SCORING = AffineGap(match=1, mismatch=1, gap_open=0, gap_extend=1)
"""Unit-cost scheme whose score arithmetic makes exact S1/S2 hits easy
to construct (see :func:`threshold_edge_jobs`)."""


@st.composite
def sequences(draw, min_size: int = 0, max_size: int = 48) -> np.ndarray:
    """Encoded sequences, biased toward degenerate shapes.

    Roughly half the draws are plain random base strings (including
    N); the rest are the structured shapes listed in the module
    docstring.
    """
    kind = draw(
        st.sampled_from(
            ("random", "random", "random", "all_n", "homopolymer",
             "alternating")
        )
    )
    n = draw(st.integers(min_size, max_size))
    if kind == "all_n":
        return np.full(n, AMBIGUOUS_CODE, dtype=np.uint8)
    if kind == "homopolymer":
        base = draw(st.integers(0, 3))
        return np.full(n, base, dtype=np.uint8)
    if kind == "alternating":
        a, b = draw(st.tuples(st.integers(0, 4), st.integers(0, 4)))
        out = np.full(n, a, dtype=np.uint8)
        out[1::2] = b
        return out
    codes = draw(
        st.lists(st.integers(0, 4), min_size=n, max_size=n)
    )
    return np.array(codes, dtype=np.uint8)


def scoring_configs() -> st.SearchStrategy[AffineGap]:
    """Affine-gap schemes: the production default plus small ones.

    Small magnitudes keep brute-force cross-checks cheap while still
    covering asymmetric extension costs (including the relaxed-edit
    shape ``gap_extend_ins=0`` used by the edit machine).
    """
    small = st.builds(
        AffineGap,
        match=st.integers(1, 2),
        mismatch=st.integers(0, 4),
        gap_open=st.integers(0, 6),
        gap_extend=st.integers(1, 2),
        gap_extend_ins=st.one_of(st.none(), st.integers(0, 2)),
        gap_extend_del=st.one_of(st.none(), st.integers(1, 2)),
    )
    return st.one_of(st.just(BWA_MEM_SCORING), small)


def bands() -> st.SearchStrategy[int]:
    """Band half-widths, weighted toward the tiny ones where the
    first/last-diagonal clamps actually bind."""
    return st.one_of(
        st.integers(1, 8), st.sampled_from((15, 41))
    )


def h0s(max_value: int = 60) -> st.SearchStrategy[int]:
    """Seed scores, zero included (the dead-at-origin edge)."""
    return st.integers(0, max_value)


@dataclass(frozen=True)
class ExtensionJob:
    """One extension job plus the configuration it should run under."""

    query: np.ndarray
    target: np.ndarray
    h0: int
    scoring: AffineGap
    band: int


@st.composite
def extension_jobs(draw, max_len: int = 48) -> ExtensionJob:
    """Full extension jobs biased toward band-edge geometry."""
    shape = draw(
        st.sampled_from(
            ("generic", "generic", "generic", "read_longer",
             "zero_query", "perfect")
        )
    )
    scoring = draw(scoring_configs())
    band = draw(bands())
    h0 = draw(h0s())
    if shape == "zero_query":
        query = np.zeros(0, dtype=np.uint8)
        target = draw(sequences(min_size=1, max_size=12))
    elif shape == "read_longer":
        target = draw(sequences(min_size=1, max_size=12))
        extra = draw(st.integers(1, 12))
        query = draw(
            sequences(min_size=len(target) + extra,
                      max_size=len(target) + extra)
        )
    elif shape == "perfect":
        query = draw(sequences(min_size=1, max_size=max_len))
        suffix = draw(sequences(min_size=0, max_size=8))
        target = np.concatenate([query, suffix]).astype(np.uint8)
    else:
        query = draw(sequences(min_size=0, max_size=max_len))
        target = draw(sequences(min_size=1, max_size=max_len + 8))
    return ExtensionJob(query, target, int(h0), scoring, band)


@dataclass(frozen=True)
class RaggedBatch:
    """One batch of mixed-shape jobs sharing a scoring scheme and band."""

    queries: list[np.ndarray]
    targets: list[np.ndarray]
    h0s: list[int]
    scoring: AffineGap
    band: int | None


_PAD_BOUNDARY_LENGTHS = (15, 16, 17, 31, 32, 33, 63, 64, 65)
"""Lengths straddling the striped kernel's power-of-two shape-class
boundaries — one off either side of each pad edge."""


@st.composite
def ragged_batches(draw, max_jobs: int = 8) -> RaggedBatch:
    """Batches biased toward the striped kernel's bucketing edges.

    Beyond generic mixed-length batches, the structured draws cover:
    the empty batch, the single-job batch, the all-identical batch
    (one bucket, zero ragged padding), one job per shape bucket (every
    bucket below its occupancy floor), and jobs whose lengths land
    exactly on the power-of-two pad boundaries.
    """
    kind = draw(
        st.sampled_from(
            ("mixed", "mixed", "mixed", "empty", "single",
             "identical", "per_bucket", "pad_boundary")
        )
    )
    scoring = draw(scoring_configs())
    band = draw(st.one_of(st.none(), bands()))
    if kind == "empty":
        return RaggedBatch([], [], [], scoring, band)
    if kind == "single":
        jobs = [draw(_batch_job())]
    elif kind == "identical":
        q, t, h0 = draw(_batch_job())
        jobs = [(q.copy(), t.copy(), h0)] * draw(
            st.integers(2, max_jobs)
        )
    elif kind == "per_bucket":
        # Distinct power-of-two classes: 16, 32, 64, ... one job each.
        n_buckets = draw(st.integers(2, 4))
        jobs = []
        for b in range(n_buckets):
            lo = 1 if b == 0 else (16 << (b - 1)) + 1
            hi = 16 << b
            tlen = draw(st.integers(lo, hi))
            qlen = draw(st.integers(0, tlen + 4))
            jobs.append(
                (
                    draw(sequences(min_size=qlen, max_size=qlen)),
                    draw(sequences(min_size=tlen, max_size=tlen)),
                    draw(h0s()),
                )
            )
    elif kind == "pad_boundary":
        jobs = []
        for _ in range(draw(st.integers(1, max_jobs))):
            tlen = draw(st.sampled_from(_PAD_BOUNDARY_LENGTHS))
            qlen = draw(
                st.one_of(
                    st.sampled_from(_PAD_BOUNDARY_LENGTHS),
                    st.integers(0, 20),
                )
            )
            jobs.append(
                (
                    draw(sequences(min_size=qlen, max_size=qlen)),
                    draw(sequences(min_size=tlen, max_size=tlen)),
                    draw(h0s()),
                )
            )
    else:
        jobs = draw(
            st.lists(_batch_job(), min_size=1, max_size=max_jobs)
        )
    return RaggedBatch(
        [q for q, _, _ in jobs],
        [t for _, t, _ in jobs],
        [h0 for _, _, h0 in jobs],
        scoring,
        band,
    )


@st.composite
def _batch_job(draw) -> tuple[np.ndarray, np.ndarray, int]:
    """One generic (query, target, h0) triple for ragged batches."""
    return (
        draw(sequences(max_size=40)),
        draw(sequences(min_size=1, max_size=48)),
        draw(h0s()),
    )


@dataclass(frozen=True)
class OverlapPair:
    """One suffix-prefix overlap job plus its verification band."""

    query: np.ndarray
    target: np.ndarray
    scoring: AffineGap
    band: int | None


@st.composite
def overlap_pairs(draw, max_len: int = 36) -> OverlapPair:
    """Overlap jobs biased toward the dovetail geometry's edges.

    Beyond generic pairs the structured draws cover: containment (the
    query sits strictly inside the target, so the best end leaves a
    real overhang), zero-overhang dovetails (query == target, the end
    lands on the corner), empty sequences on either side, all-N pairs
    (nothing ever matches, the whole matrix is gap arithmetic), and
    pairs whose length difference straddles the band exactly — where
    the last-column capture window ``|i - qlen| <= w`` degenerates.
    """
    shape = draw(
        st.sampled_from(
            ("generic", "generic", "generic", "containment",
             "zero_overhang", "empty", "all_n", "band_edge")
        )
    )
    scoring = draw(scoring_configs())
    band = draw(st.one_of(st.none(), bands()))
    if shape == "containment":
        inner = draw(sequences(min_size=1, max_size=max_len // 2))
        pad = draw(sequences(min_size=1, max_size=8))
        tail = draw(sequences(min_size=1, max_size=8))
        query = inner
        target = np.concatenate([pad, inner, tail]).astype(np.uint8)
    elif shape == "zero_overhang":
        query = draw(sequences(min_size=1, max_size=max_len))
        target = query.copy()
    elif shape == "empty":
        which = draw(st.sampled_from(("query", "target", "both")))
        query = (
            np.zeros(0, dtype=np.uint8)
            if which in ("query", "both")
            else draw(sequences(min_size=1, max_size=12))
        )
        target = (
            np.zeros(0, dtype=np.uint8)
            if which in ("target", "both")
            else draw(sequences(min_size=1, max_size=12))
        )
    elif shape == "all_n":
        qlen = draw(st.integers(0, max_len))
        tlen = draw(st.integers(0, max_len))
        query = np.full(qlen, AMBIGUOUS_CODE, dtype=np.uint8)
        target = np.full(tlen, AMBIGUOUS_CODE, dtype=np.uint8)
    elif shape == "band_edge":
        w = draw(bands())
        band = w
        qlen = draw(st.integers(1, max_len))
        delta = w + draw(st.integers(-1, 1))
        if draw(st.booleans()):
            tlen = qlen + delta
        else:
            tlen = max(0, qlen - delta)
        query = draw(sequences(min_size=qlen, max_size=qlen))
        target = draw(sequences(min_size=tlen, max_size=tlen))
    else:
        query = draw(sequences(min_size=0, max_size=max_len))
        target = draw(sequences(min_size=0, max_size=max_len + 8))
    return OverlapPair(query, target, scoring, band)


@dataclass(frozen=True)
class GapBatch:
    """One wave of global gap-fill jobs sharing a scoring and band."""

    queries: list[np.ndarray]
    targets: list[np.ndarray]
    scoring: AffineGap
    band: int | None


@st.composite
def gap_job_batches(draw, max_jobs: int = 6) -> GapBatch:
    """Gap-fill waves biased toward the lockstep bucketing hazards.

    The structured draws cover the empty wave, all-identical jobs (one
    bucket, no ragged padding), both-sides-empty gaps and one-sided
    gaps (pure insertion/deletion fills, where the corner lives on a
    matrix edge), and — the important one — heterogeneous-clamp waves:
    jobs sharing a shape bucket whose ``max(w, |tlen - qlen|)`` clamps
    differ wildly, the geometry where an unmasked lockstep F-scan
    leaks a wide bucket-mate's cells into a narrow job's band.
    """
    kind = draw(
        st.sampled_from(
            ("mixed", "mixed", "mixed", "empty_batch", "identical",
             "degenerate", "hetero_clamp")
        )
    )
    scoring = draw(scoring_configs())
    band = draw(st.one_of(st.none(), bands()))
    if kind == "empty_batch":
        return GapBatch([], [], scoring, band)
    if kind == "identical":
        q = draw(sequences(max_size=24))
        t = draw(sequences(max_size=24))
        n = draw(st.integers(2, max_jobs))
        jobs = [(q.copy(), t.copy()) for _ in range(n)]
    elif kind == "degenerate":
        jobs = []
        for _ in range(draw(st.integers(1, max_jobs))):
            side = draw(
                st.sampled_from(("both_empty", "ins_only", "del_only"))
            )
            if side == "both_empty":
                jobs.append(
                    (np.zeros(0, dtype=np.uint8),
                     np.zeros(0, dtype=np.uint8))
                )
            elif side == "ins_only":
                jobs.append(
                    (draw(sequences(min_size=1, max_size=20)),
                     np.zeros(0, dtype=np.uint8))
                )
            else:
                jobs.append(
                    (np.zeros(0, dtype=np.uint8),
                     draw(sequences(min_size=1, max_size=20)))
                )
    elif kind == "hetero_clamp":
        # Same shape bucket (every length <= 16 pads to class 16) but
        # clamps far apart: one near-square job rides the requested
        # band while a skewed bucket-mate's |tlen - qlen| forces a
        # much wider sweep over the shared padded columns.
        band = draw(st.integers(1, 4))
        square = draw(st.integers(8, 16))
        skew_t = draw(st.integers(10, 16))
        skew_q = draw(st.integers(0, 3))
        jobs = [
            (draw(sequences(min_size=square, max_size=square)),
             draw(sequences(min_size=square, max_size=square))),
            (draw(sequences(min_size=skew_q, max_size=skew_q)),
             draw(sequences(min_size=skew_t, max_size=skew_t))),
        ]
        if draw(st.booleans()):
            extra_q = draw(st.integers(10, 16))
            extra_t = draw(st.integers(0, 3))
            jobs.append(
                (draw(sequences(min_size=extra_q, max_size=extra_q)),
                 draw(sequences(min_size=extra_t, max_size=extra_t)))
            )
    else:
        jobs = [
            (draw(sequences(max_size=30)), draw(sequences(max_size=30)))
            for _ in range(draw(st.integers(1, max_jobs)))
        ]
    return GapBatch(
        [q for q, _ in jobs], [t for _, t in jobs], scoring, band
    )


@st.composite
def threshold_edge_jobs(draw) -> ExtensionJob:
    """Jobs whose narrow-band score lands exactly on S1 or S2.

    Under :data:`EDGE_SCORING` (``m=1, x=1, go=0, ge=1``) a read that
    is the target prefix with ``k`` planted mismatches scores
    ``h0 + qlen - 2k`` along the main diagonal, while
    ``S1 = h0 - band + (qlen - band)`` and ``S2 = h0 + qlen - band``.
    Planting ``k = band`` mismatches puts the diagonal score exactly
    on S1; ``k = band/2`` (even bands) exactly on S2.  Gapped detours
    can still beat the diagonal — that only moves the score off the
    edge, never breaks the differential property.
    """
    on_s2 = draw(st.booleans())
    if on_s2:
        band = 2 * draw(st.integers(1, 3))
        k = band // 2
    else:
        band = draw(st.integers(1, 5))
        k = band
    qlen = band + k + 1 + draw(st.integers(0, 4))
    tail = draw(st.integers(1, 4))
    target = draw(
        sequences(min_size=qlen + tail, max_size=qlen + tail)
    )
    query = target[:qlen].copy()
    positions = draw(
        st.lists(
            st.integers(0, qlen - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    for pos in positions:
        query[pos] = (int(query[pos]) + 1) % 4
    h0 = draw(h0s(20))
    return ExtensionJob(query, target, int(h0), EDGE_SCORING, band)
