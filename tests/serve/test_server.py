"""Integration tests for the resident server: the ISSUE's acceptance bar.

Real sockets, real threads, an in-process :class:`AlignmentServer`.
The load shape that matters is pinned here: a queue of capacity Q hit
with 4×Q concurrent requests must shed the excess with typed
rejections (not crash, not stall), every accepted response must be
byte-identical to batch-mode ``repro align`` output, and a drain must
answer all in-flight requests before shutdown.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.aligner.engines import BatchedEngine
from repro.aligner.pipeline import Aligner
from repro.durability.breaker import BreakerState
from repro.durability.wal import WAL_NAME, RequestWAL
from repro.faults.netfaults import NetFaultPlan, NetFaultPolicy
from repro.genome.sequence import decode
from repro.genome.synth import ReadSimulator, synthesize_reference
from repro.serve.client import request_status, run_load
from repro.serve.protocol import (
    E_BAD_REQUEST,
    E_BREAKER_OPEN,
    E_DEADLINE,
    E_DRAINING,
    E_ENGINE,
    E_OVERLOADED,
    E_QUOTA,
    align_request,
    encode,
)
from repro.serve.server import AlignmentServer, ServeConfig

HOST = "127.0.0.1"


@pytest.fixture(scope="module")
def corpus():
    """Reference, reads, and the batch-mode truth SAM lines."""
    rng = np.random.default_rng(7)
    reference = synthesize_reference(12_000, rng)
    sim = ReadSimulator(reference, seed=8)
    reads = sim.simulate(24)
    pairs = [(r.name, decode(r.codes)) for r in reads]
    truth_aligner = Aligner(
        reference, BatchedEngine(), seeding="kmer", reference_name="chr1"
    )
    truth = {
        rec.qname: rec.to_line()
        for rec in truth_aligner.align_batched(
            [(r.name, r.codes) for r in reads]
        )
    }
    return reference, pairs, truth


def _aligner(reference) -> Aligner:
    return Aligner(
        reference, BatchedEngine(), seeding="kmer", reference_name="chr1"
    )


@contextmanager
def running(reference, **cfg):
    """A started server on an ephemeral port, always shut down."""
    server = AlignmentServer(_aligner(reference), ServeConfig(**cfg))
    port = server.start()
    try:
        yield server, port
    finally:
        server.shutdown()


def _wait_counter(server, key: str, value: int, timeout_s: float = 10.0):
    """Wait for a stats counter: counters tick just after the send."""
    deadline = time.monotonic() + timeout_s
    while (
        server.stats.snapshot()[key] < value
        and time.monotonic() < deadline
    ):
        time.sleep(0.01)


def _exchange(port: int, payloads: list[dict], expect: int) -> list[dict]:
    """Send frames on one connection; read ``expect`` responses."""
    with socket.create_connection((HOST, port), timeout=10) as sock:
        for payload in payloads:
            sock.sendall(encode(payload))
        stream = sock.makefile("rb")
        return [json.loads(stream.readline()) for _ in range(expect)]


class TestServing:
    def test_concurrent_burst_is_byte_identical_to_batch_mode(
        self, corpus
    ):
        reference, pairs, truth = corpus
        with running(reference, max_batch=8, linger_ms=5) as (_, port):
            report = run_load(
                HOST, port, pairs, connections=3, client="t1"
            )
        assert report.unanswered == []
        assert report.shed_total == 0
        assert len(report.ok) == len(pairs)
        for sam in report.ok.values():
            name = sam.split("\t")[0]
            assert sam == truth[name]

    def test_status_verb_reports_health(self, corpus):
        reference, pairs, _ = corpus
        with running(reference, linger_ms=5) as (server, port):
            run_load(HOST, port, pairs[:4], client="t2")
            _wait_counter(server, "served", 4)
            status = request_status(HOST, port)
        assert status["state"] == "serving"
        assert status["breaker"] == BreakerState.CLOSED
        assert status["counters"]["served"] == 4
        assert status["counters"]["requests"]["ALIGN"] == 4

    def test_bad_frame_gets_typed_error_and_connection_survives(
        self, corpus
    ):
        reference, _, _ = corpus
        with running(reference) as (_, port):
            with socket.create_connection((HOST, port), timeout=10) as s:
                s.sendall(b"this is not json\n")
                s.sendall(
                    encode({"v": 1, "verb": "PING", "id": "p1"})
                )
                stream = s.makefile("rb")
                first = json.loads(stream.readline())
                second = json.loads(stream.readline())
        assert first["ok"] is False
        assert first["error"] == E_BAD_REQUEST
        assert second["ok"] is True
        assert second["pong"] is True


class TestOverload:
    def test_four_x_capacity_sheds_typed_and_serves_the_rest(
        self, corpus
    ):
        """The acceptance-criteria load shape: Q capacity, 4Q offered."""
        reference, pairs, truth = corpus
        capacity = 8
        burst = [
            (f"{name}", seq)
            for name, seq in (pairs * 2)[: 4 * capacity]
        ]
        with running(
            reference,
            queue_capacity=capacity,
            high_water=capacity,
            max_batch=capacity,
            linger_ms=300,
        ) as (server, port):
            report = run_load(HOST, port, burst, client="flood")
            status = request_status(HOST, port)
        # Every request was answered: served or typed rejection.
        assert report.unanswered == []
        assert len(report.ok) + report.shed_total == 4 * capacity
        # The excess was shed fast with the typed overload code and a
        # retry-after hint, and the server survived to answer STATUS.
        assert report.shed(E_OVERLOADED) > 0
        for payload in report.errors.values():
            assert payload["error"] == E_OVERLOADED
            assert payload["retry_after_ms"] >= 1
        assert status["counters"]["shed"][E_OVERLOADED] == report.shed(
            E_OVERLOADED
        )
        # Accepted responses are still byte-identical to batch mode.
        assert len(report.ok) >= capacity
        for sam in report.ok.values():
            assert sam == truth[sam.split("\t")[0]]

    def test_queue_depth_never_exceeds_capacity(self, corpus):
        reference, pairs, _ = corpus
        with running(
            reference,
            queue_capacity=4,
            high_water=2,
            linger_ms=200,
            max_batch=4,
        ) as (server, port):
            run_load(HOST, port, pairs[:16], client="depth")
            assert server.queue.depth() <= 4


class TestDeadlines:
    def test_expired_requests_get_typed_timeout_not_a_wave(self, corpus):
        reference, pairs, _ = corpus
        with running(reference, linger_ms=300, max_batch=64) as (
            server,
            port,
        ):
            report = run_load(
                HOST, port, pairs[:4], client="late", deadline_ms=1
            )
            status = request_status(HOST, port)
        assert report.shed(E_DEADLINE) == 4
        assert status["counters"]["timeouts"] == 4
        assert status["counters"]["served"] == 0
        for payload in report.errors.values():
            assert payload["error"] == E_DEADLINE


class TestQuotas:
    def test_over_quota_client_sheds_with_retry_hint(self, corpus):
        reference, pairs, _ = corpus
        burst = (pairs * 2)[:10]
        with running(
            reference, quota_rate=1.0, quota_burst=2, linger_ms=5
        ) as (_, port):
            report = run_load(HOST, port, burst, client="greedy")
        assert report.unanswered == []
        assert report.shed(E_QUOTA) >= 7
        assert len(report.ok) >= 2
        for payload in report.errors.values():
            assert payload["error"] == E_QUOTA
            assert payload["retry_after_ms"] >= 1

    def test_quota_is_per_client(self, corpus):
        reference, pairs, _ = corpus
        with running(
            reference, quota_rate=1.0, quota_burst=4, linger_ms=5
        ) as (_, port):
            first = run_load(HOST, port, pairs[:4], client="one")
            second = run_load(HOST, port, pairs[:4], client="two")
        assert len(first.ok) == 4
        assert len(second.ok) == 4


class TestDrain:
    def test_drain_answers_stragglers_then_rejects_new_work(
        self, corpus
    ):
        reference, pairs, truth = corpus
        server = AlignmentServer(
            _aligner(reference),
            ServeConfig(linger_ms=400, max_batch=64, queue_capacity=64),
        )
        port = server.start()
        try:
            report_box: list = []
            loader = threading.Thread(
                target=lambda: report_box.append(
                    run_load(HOST, port, pairs[:12], client="drain")
                ),
                daemon=True,
            )
            loader.start()
            # Let the burst be admitted into the lingering wave, then
            # drain: close admission, flush the queue.
            deadline = time.monotonic() + 5.0
            while (
                server.stats.snapshot()["admitted"] < 12
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            server.drain()
            loader.join(timeout=30)
            report = report_box[0]
            # Every in-flight request was answered before exit...
            assert report.unanswered == []
            assert len(report.ok) == 12
            for sam in report.ok.values():
                assert sam == truth[sam.split("\t")[0]]
            # ...and new work is refused with the typed draining code.
            late = run_load(HOST, port, pairs[:1], client="late")
            assert late.shed(E_DRAINING) == 1
        finally:
            server.shutdown()
        assert server._drained.is_set()


class TestEngineDegradation:
    class _BrokenAligner:
        """An aligner whose seeding always explodes."""

        def _seeds(self, query):
            raise RuntimeError("kernel down")

    def test_failing_waves_answer_typed_then_breaker_opens(self):
        server = AlignmentServer(
            self._BrokenAligner(),
            ServeConfig(
                max_batch=1, linger_ms=0, breaker_threshold=2
            ),
        )
        port = server.start()
        try:
            codes = []
            for i in range(4):
                [resp] = _exchange(
                    port,
                    [align_request(f"r{i}", f"read{i}", "ACGTACGT")],
                    expect=1,
                )
                assert resp["ok"] is False
                codes.append(resp["error"])
            # Two failing waves trip the breaker; later requests are
            # rejected without touching the engine.
            assert codes[:2] == [E_ENGINE, E_ENGINE]
            assert E_BREAKER_OPEN in codes[2:]
            assert server.breaker.state == BreakerState.OPEN
            status = request_status(HOST, port)
            assert status["breaker"] == BreakerState.OPEN
        finally:
            server.shutdown()


class TestDisconnectTolerance:
    def test_vanished_clients_cost_nothing(self, corpus):
        reference, pairs, _ = corpus
        server = AlignmentServer(
            _aligner(reference), ServeConfig(linger_ms=5)
        )
        server.fault_plan = NetFaultPlan(
            NetFaultPolicy(disconnect_rate=1.0)
        )
        port = server.start()
        try:
            report = run_load(HOST, port, pairs[:4], client="ghost")
            # Every response send found the client gone.  The client
            # sees EOF immediately, so wait for the wave to retire.
            assert len(report.ok) == 0
            assert len(report.unanswered) == 4
            _wait_counter(server, "served", 4)
            snap = server.stats.snapshot()
            assert snap["served"] == 4
            assert snap["disconnects"] == 4
            assert server.fault_plan.disconnects == 4
            # The server itself is unharmed: healthy clients still work.
            server.fault_plan = None
            healthy = run_load(HOST, port, pairs[:2], client="ok")
            assert len(healthy.ok) == 2
        finally:
            server.shutdown()

    def test_stall_plan_delays_but_still_answers(self, corpus):
        reference, pairs, _ = corpus
        server = AlignmentServer(
            _aligner(reference), ServeConfig(linger_ms=5)
        )
        server.fault_plan = NetFaultPlan(
            NetFaultPolicy(stall_rate=1.0, stall_s=0.01)
        )
        port = server.start()
        try:
            report = run_load(HOST, port, pairs[:3], client="slow")
            assert len(report.ok) == 3
            assert server.fault_plan.stalls >= 3
        finally:
            server.shutdown()


class TestWal:
    def test_clean_run_retires_every_admitted_request(
        self, corpus, tmp_path
    ):
        reference, pairs, _ = corpus
        wal_dir = tmp_path / "wal"
        with running(reference, wal_dir=str(wal_dir), linger_ms=5) as (
            server,
            port,
        ):
            run_load(HOST, port, pairs[:6], client="walled")
        replay = RequestWAL.scan(wal_dir / WAL_NAME)
        assert len(replay.admitted) == 6
        assert replay.completed == set(replay.admitted)
        assert replay.lost == []

    def test_restart_reports_lost_requests_from_previous_wal(
        self, corpus, tmp_path
    ):
        reference, _, _ = corpus
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        # Fabricate a crashed run: two admits, one done, a torn tail.
        wal = RequestWAL(wal_dir / WAL_NAME)
        wal.admit("answered", "c", "read0")
        wal.admit("lost-1", "c", "read1")
        wal.done("answered")
        wal.close()
        with open(wal_dir / WAL_NAME, "ab") as handle:
            handle.write(b"deadbeef {\"torn")
        with running(reference, wal_dir=str(wal_dir)) as (server, port):
            assert [
                rec["id"] for rec in server.lost_on_restart
            ] == ["lost-1"]
            status = request_status(HOST, port)
            assert status["lost_on_restart"] == ["lost-1"]
        # The crashed log was rotated aside, not silently overwritten.
        assert (wal_dir / "requests.wal.prev").exists()
