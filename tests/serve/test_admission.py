"""Admission-control policy tests: shedding, deadlines, drain, quotas.

All time is injected (a scriptable clock), so the load-shedding and
deadline semantics are pinned deterministically — no sleeps, no
real sockets.
"""

from __future__ import annotations

import pytest

from repro.aligner.batching import MicroBatchPolicy
from repro.serve.admission import AdmissionQueue, Ticket
from repro.serve.protocol import (
    E_DRAINING,
    E_OVERLOADED,
    Request,
    parse_request,
)
from repro.serve.protocol import align_request, encode
from repro.serve.quotas import QuotaTable, TokenBucket


def _ticket(rid: str, deadline: float | None = None) -> Ticket:
    request = Request(verb="ALIGN", id=rid, name=rid, seq="ACGT")
    return Ticket(
        request=request, session=None, admitted_at=0.0, deadline=deadline
    )


class TestAdmissionQueue:
    def test_admits_until_high_water_then_sheds_typed(self):
        q = AdmissionQueue(capacity=4, high_water=2)
        assert q.try_admit(_ticket("a")).admitted
        assert q.try_admit(_ticket("b")).admitted
        decision = q.try_admit(_ticket("c"))
        assert not decision.admitted
        assert decision.code == E_OVERLOADED
        assert decision.depth == 2
        assert q.depth() == 2

    def test_closed_queue_sheds_with_draining(self):
        q = AdmissionQueue(capacity=4)
        q.close()
        decision = q.try_admit(_ticket("a"))
        assert not decision.admitted
        assert decision.code == E_DRAINING

    def test_pop_wave_batches_up_to_max(self):
        q = AdmissionQueue(capacity=8)
        for i in range(5):
            q.try_admit(_ticket(f"r{i}"))
        wave = q.pop_wave(max_batch=3, linger_s=0.0, clock=lambda: 1.0)
        assert [t.request.id for t in wave.batch] == ["r0", "r1", "r2"]
        assert q.depth() == 2

    def test_expired_tickets_split_out_never_batched(self):
        q = AdmissionQueue(capacity=8)
        q.try_admit(_ticket("dead", deadline=0.5))
        q.try_admit(_ticket("alive", deadline=100.0))
        wave = q.pop_wave(max_batch=8, linger_s=0.0, clock=lambda: 1.0)
        assert [t.request.id for t in wave.expired] == ["dead"]
        assert [t.request.id for t in wave.batch] == ["alive"]

    def test_drain_pops_remaining_then_signals_closed(self):
        q = AdmissionQueue(capacity=8)
        q.try_admit(_ticket("a"))
        q.close()
        wave = q.pop_wave(max_batch=8, linger_s=5.0, clock=lambda: 0.0)
        assert [t.request.id for t in wave.batch] == ["a"]
        assert not wave.closed
        assert q.pop_wave(
            max_batch=8, linger_s=0.0, clock=lambda: 0.0
        ).closed

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=4, high_water=5)
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=4).pop_wave(
                max_batch=0, linger_s=0.0, clock=lambda: 0.0
            )


class TestTokenBucket:
    def test_burst_then_refusal_with_retry_hint(self):
        bucket = TokenBucket(rate=2.0, burst=2)
        assert bucket.take(0.0).allowed
        assert bucket.take(0.0).allowed
        refused = bucket.take(0.0)
        assert not refused.allowed
        assert refused.retry_after_ms == 500  # 1 token / (2 per s)

    def test_refill_restores_tokens(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.take(0.0).allowed
        assert not bucket.take(0.5).allowed
        assert bucket.take(1.6).allowed

    def test_burst_is_capped(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        assert bucket.take(1000.0).allowed
        assert bucket.take(1000.0).allowed
        assert not bucket.take(1000.0).allowed


class TestQuotaTable:
    def test_disabled_table_always_allows(self):
        table = QuotaTable(rate=None)
        assert not table.enabled
        for _ in range(100):
            assert table.take("anyone", 0.0).allowed

    def test_per_client_isolation(self):
        table = QuotaTable(rate=1.0, burst=1)
        assert table.take("a", 0.0).allowed
        assert not table.take("a", 0.0).allowed
        assert table.take("b", 0.0).allowed  # b has its own bucket

    def test_anonymous_clients_share_one_bucket(self):
        table = QuotaTable(rate=1.0, burst=1)
        assert table.take("", 0.0).allowed
        assert not table.take("", 0.0).allowed

    def test_idle_buckets_evicted_past_horizon(self):
        table = QuotaTable(rate=1.0, burst=1)
        for i in range(1025):
            table.take(f"client-{i}", 0.0)
        # The next draw far in the future triggers eviction of all
        # idle buckets; only the fresh one remains.
        table.take("fresh", QuotaTable.IDLE_EVICT_S + 1.0)
        assert len(table._buckets) == 1


class TestMicroBatchPolicy:
    def test_linger_seconds_conversion(self):
        assert MicroBatchPolicy(max_batch=4, linger_ms=250.0).linger_s == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatchPolicy(linger_ms=-1.0)


def test_ticket_expiry_round_trips_through_the_wire_shape():
    """A parsed request's deadline drives ticket expiry as expected."""
    req = parse_request(
        encode(align_request("r1", "read0", "ACGT", deadline_ms=250))
    )
    ticket = Ticket(
        request=req,
        session=None,
        admitted_at=10.0,
        deadline=10.0 + req.deadline_ms / 1000.0,
    )
    assert not ticket.expired(10.2)
    assert ticket.expired(10.25)
