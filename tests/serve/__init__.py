"""Tests for the resident alignment server (``repro serve``)."""
