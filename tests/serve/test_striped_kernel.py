"""Serve-path regression for the striped kernel backend.

The resident server batches admitted requests into waves and pushes
them through the engine's batch kernel — exactly the path where the
striped backend's shape-bucketing reorders work internally.  This test
pins the end-to-end contract: a striped-kernel server under concurrent
clients answers every request with bytes identical to striped-kernel
batch mode (which the conformance suite in turn proves identical to
the scalar oracle).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aligner.engines import BatchedEngine
from repro.aligner.pipeline import Aligner
from repro.genome.sequence import decode
from repro.genome.synth import ReadSimulator, synthesize_reference
from repro.serve.client import run_load
from repro.serve.server import AlignmentServer, ServeConfig

HOST = "127.0.0.1"


@pytest.fixture(scope="module")
def corpus():
    """Reference, reads, and striped-kernel batch-mode truth lines."""
    rng = np.random.default_rng(7)
    reference = synthesize_reference(12_000, rng)
    sim = ReadSimulator(reference, seed=8)
    reads = sim.simulate(24)
    pairs = [(r.name, decode(r.codes)) for r in reads]
    truth_aligner = Aligner(
        reference,
        BatchedEngine(kernel="striped"),
        seeding="kmer",
        reference_name="chr1",
    )
    truth = {
        rec.qname: rec.to_line()
        for rec in truth_aligner.align_batched(
            [(r.name, r.codes) for r in reads]
        )
    }
    return reference, pairs, truth


def test_striped_server_matches_striped_batch_mode(corpus):
    reference, pairs, truth = corpus
    aligner = Aligner(
        reference,
        BatchedEngine(kernel="striped"),
        seeding="kmer",
        reference_name="chr1",
    )
    server = AlignmentServer(
        aligner, ServeConfig(max_batch=8, linger_ms=5)
    )
    port = server.start()
    try:
        report = run_load(
            HOST, port, pairs, connections=3, client="striped"
        )
    finally:
        server.shutdown()
    assert report.unanswered == []
    assert report.shed_total == 0
    assert len(report.ok) == len(pairs)
    for sam in report.ok.values():
        assert sam == truth[sam.split("\t")[0]]
