"""The wire protocol's contract: strict parsing, typed errors.

Every rejection the server can utter is a member of the closed
``ERROR_CODES`` set, and every malformed frame must fail validation
with a :class:`ProtocolError` rather than reaching the aligner — the
parser is the server's first line of defense against hostile input.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    E_BAD_REQUEST,
    E_OVERLOADED,
    ProtocolError,
    align_request,
    encode,
    error,
    ok_align,
    ok_pong,
    ok_status,
    parse_request,
    status_request,
)


class TestParseRequest:
    def test_align_round_trip(self):
        line = encode(
            align_request(
                "r1", "read0", "ACGTN", client="c1", deadline_ms=500
            )
        )
        req = parse_request(line)
        assert req.verb == "ALIGN"
        assert req.id == "r1"
        assert req.client == "c1"
        assert req.name == "read0"
        assert req.seq == "ACGTN"
        assert req.deadline_ms == 500

    def test_status_and_ping_need_no_sequence(self):
        assert parse_request(encode(status_request("s1"))).verb == "STATUS"
        ping = {"v": PROTOCOL_VERSION, "verb": "PING", "id": "p1"}
        assert parse_request(encode(ping)).verb == "PING"

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.update(v=99),
            lambda p: p.update(verb="EXTEND"),
            lambda p: p.update(id=""),
            lambda p: p.update(id=7),
            lambda p: p.update(seq="ACGT!"),
            lambda p: p.update(seq=""),
            lambda p: p.update(name=""),
            lambda p: p.update(deadline_ms=0),
            lambda p: p.update(deadline_ms="soon"),
            lambda p: p.update(client=3),
        ],
    )
    def test_invalid_fields_raise_typed_errors(self, mutate):
        payload = align_request("r1", "read0", "ACGT", deadline_ms=10)
        mutate(payload)
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(encode(payload))
        assert excinfo.value.code == E_BAD_REQUEST

    def test_non_json_and_non_object_raise(self):
        with pytest.raises(ProtocolError):
            parse_request(b"not json\n")
        with pytest.raises(ProtocolError):
            parse_request(b"[1, 2]\n")
        with pytest.raises(ProtocolError):
            parse_request(b"\xff\xfe\n")

    def test_oversized_line_rejected(self):
        big = encode(
            align_request("r1", "read0", "A" * (MAX_LINE_BYTES + 10))
        )
        with pytest.raises(ProtocolError):
            parse_request(big)

    def test_error_message_never_echoes_the_sequence(self):
        payload = align_request("r1", "read0", "ACGT" * 100 + "!")
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(encode(payload))
        assert "ACGTACGT" not in str(excinfo.value)


class TestResponses:
    def test_ok_shapes_mirror_the_request_id(self):
        assert ok_align("r1", "x\t0")["id"] == "r1"
        assert ok_status("s1", {"state": "serving"})["ok"] is True
        assert ok_pong("p1")["pong"] is True

    def test_error_requires_a_known_code(self):
        payload = error("r1", E_OVERLOADED, "busy", retry_after_ms=40)
        assert payload["error"] == E_OVERLOADED
        assert payload["retry_after_ms"] == 40
        with pytest.raises(ValueError):
            error("r1", "made_up_code", "nope")

    def test_error_codes_are_a_closed_unique_set(self):
        assert len(set(ERROR_CODES)) == len(ERROR_CODES)

    def test_encode_is_one_terminated_json_line(self):
        raw = encode({"v": 1, "id": "x", "ok": True})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1
        assert json.loads(raw)["id"] == "x"
