"""Chaos tier: SIGKILL the server mid-load and audit the WAL.

The durability contract under the harshest failure (``SIGKILL``, no
cleanup code runs): every request the server admitted but never
answered must be named by the WAL's lost set, and every response that
*did* arrive before the kill must be byte-identical to batch-mode
output.  A restarted server over the same WAL directory must report
exactly those lost requests over the STATUS verb.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.aligner.engines import BatchedEngine
from repro.aligner.pipeline import Aligner
from repro.durability.wal import WAL_NAME, RequestWAL
from repro.genome.io_fasta import FastaRecord, write_fasta
from repro.genome.sequence import decode
from repro.genome.synth import ReadSimulator, synthesize_reference
from repro.serve.client import request_status, run_load

pytestmark = pytest.mark.chaos
"""Chaos tier: selected by the CI chaos job via ``-m chaos``."""

HOST = "127.0.0.1"

_CLI = [
    sys.executable,
    "-c",
    "from repro.cli import main; raise SystemExit(main())",
]


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _wait_for_port(port_file: Path, timeout_s: float = 60.0) -> int:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise TimeoutError(f"server never wrote {port_file}")


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """An on-disk reference plus batch-mode truth for its reads."""
    root = tmp_path_factory.mktemp("chaos-kill")
    rng = np.random.default_rng(11)
    reference = synthesize_reference(10_000, rng)
    ref_path = root / "ref.fa"
    with open(ref_path, "w") as handle:
        write_fasta(handle, [FastaRecord("chr1", decode(reference))])
    reads = ReadSimulator(reference, seed=12).simulate(30)
    pairs = [(r.name, decode(r.codes)) for r in reads]
    aligner = Aligner(
        reference, BatchedEngine(), seeding="kmer", reference_name="chr1"
    )
    truth = {
        rec.qname: rec.to_line()
        for rec in aligner.align_batched([(r.name, r.codes) for r in reads])
    }
    return ref_path, pairs, truth


def test_sigkill_mid_load_loses_nothing_silently(corpus, tmp_path):
    ref_path, pairs, truth = corpus
    wal_dir = tmp_path / "wal"
    port_file = tmp_path / "port"
    proc = subprocess.Popen(
        _CLI
        + [
            "serve",
            "--reference",
            str(ref_path),
            "--seeding",
            "kmer",
            "--port-file",
            str(port_file),
            "--wal-dir",
            str(wal_dir),
            "--max-batch",
            "8",
            "--linger-ms",
            "50",
        ],
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        port = _wait_for_port(port_file)
        # Enough offered work that the kill lands mid-stream: ~240
        # requests at >=50ms per 8-read wave is seconds of backlog.
        burst = (pairs * 8)[:240]
        box: list = []
        loader = threading.Thread(
            target=lambda: box.append(
                run_load(
                    HOST, port, burst, client="kill", timeout_s=30.0
                )
            ),
            daemon=True,
        )
        loader.start()
        time.sleep(0.4)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        loader.join(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == -signal.SIGKILL
    report = box[0]

    replay = RequestWAL.scan(wal_dir / WAL_NAME)
    assert len(replay.admitted) > 0

    # Invariant 1: the WAL names every admitted-but-unanswered
    # request (it may also conservatively name requests whose `done`
    # record didn't survive the kill — over-reporting is allowed).
    answered = set(report.ok) | set(report.errors)
    lost_ids = {rec["id"] for rec in replay.lost}
    for rid in replay.admitted:
        if rid not in answered:
            assert rid in lost_ids, (
                f"{rid} was admitted, never answered, and the WAL "
                "does not report it lost"
            )

    # Invariant 2: every response that did arrive is byte-identical
    # to batch-mode `repro align` output for the same read.
    assert len(report.ok) > 0, "kill landed before any response"
    for sam in report.ok.values():
        assert sam == truth[sam.split("\t")[0]]

    # A restarted server over the same WAL directory reports exactly
    # the lost set via STATUS, then drains cleanly on SIGTERM.
    port_file2 = tmp_path / "port2"
    proc2 = subprocess.Popen(
        _CLI
        + [
            "serve",
            "--reference",
            str(ref_path),
            "--seeding",
            "kmer",
            "--port-file",
            str(port_file2),
            "--wal-dir",
            str(wal_dir),
        ],
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        port2 = _wait_for_port(port_file2)
        status = request_status(HOST, port2)
        assert set(status["lost_on_restart"]) == lost_ids
        proc2.send_signal(signal.SIGTERM)
        assert proc2.wait(timeout=60) == 0
    finally:
        if proc2.poll() is None:
            proc2.kill()
