"""ResilientDispatcher: retry, backoff, timeout, fallback, dead-letter."""

import numpy as np
import pytest

from repro.align.banded import ExtensionResult
from repro.aligner.engines import FullBandEngine, make_resilient
from repro.align.scoring import BWA_MEM_SCORING
from repro.faults.errors import (
    DeadLetterError,
    StalledStreamFault,
    TransientAcceleratorFault,
)
from repro.faults.resilience import (
    ResilienceStats,
    ResilientDispatcher,
    RetryPolicy,
)

pytestmark = pytest.mark.chaos
"""Chaos tier: selected by the CI chaos job via ``-m chaos``."""

Q = np.array([0, 1, 2, 3] * 5, dtype=np.uint8)
T = np.array([0, 1, 2, 3] * 6, dtype=np.uint8)


class FlakyEngine:
    """Raises a scripted fault sequence, then computes for real."""

    name = "flaky"
    scoring = BWA_MEM_SCORING

    def __init__(self, faults):
        self.faults = list(faults)
        self.calls = 0
        self.inner = FullBandEngine()

    def extend(self, query, target, h0):
        self.calls += 1
        if self.faults:
            raise self.faults.pop(0)
        return self.inner.extend(query, target, h0)


def _stall(seconds):
    return StalledStreamFault(seconds, site="stream.stall")


def _transient():
    return TransientAcceleratorFault("batch failed", site="batch.transient")


def _dispatcher(engine, **kwargs):
    kwargs.setdefault("sleep", lambda s: None)
    return ResilientDispatcher(engine, **kwargs)


def _same_result(a, b):
    """Field equality on what the pipeline consumes downstream."""
    return (
        a.lscore == b.lscore
        and a.lpos == b.lpos
        and a.gscore == b.gscore
        and a.gpos == b.gpos
    )


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)

    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(
            backoff_base_s=0.001, backoff_cap_s=0.004, jitter=0.0
        )
        rng = np.random.default_rng(0)
        delays = [policy.backoff_seconds(a, rng) for a in (1, 2, 3, 4, 5)]
        assert delays == [0.001, 0.002, 0.004, 0.004, 0.004]

    def test_jitter_bounded(self):
        policy = RetryPolicy(
            backoff_base_s=0.001, backoff_cap_s=0.001, jitter=0.5
        )
        rng = np.random.default_rng(1)
        for _ in range(50):
            d = policy.backoff_seconds(1, rng)
            assert 0.001 <= d <= 0.0015


class TestRetryLadder:
    def test_transient_fault_retried_to_success(self):
        engine = FlakyEngine([_transient(), _transient()])
        disp = _dispatcher(engine, policy=RetryPolicy(max_retries=3))
        res = disp.extend(Q, T, 10)
        assert isinstance(res, ExtensionResult)
        assert engine.calls == 3
        assert disp.stats.retries == 2
        assert disp.stats.detected_total == 2
        assert disp.stats.fallbacks == 0

    def test_backoff_sleeps_between_retries(self):
        slept = []
        engine = FlakyEngine([_transient(), _transient()])
        disp = _dispatcher(
            engine,
            policy=RetryPolicy(max_retries=3),
            sleep=slept.append,
        )
        disp.extend(Q, T, 10)
        assert len(slept) == 2
        assert slept[1] > slept[0] > 0  # exponential growth

    def test_exhausted_retries_fall_back_to_host(self):
        engine = FlakyEngine([_transient()] * 10)
        disp = _dispatcher(engine, policy=RetryPolicy(max_retries=2))
        res = disp.extend(Q, T, 10)
        expected = FullBandEngine().extend(Q, T, 10)
        assert _same_result(res, expected)
        assert engine.calls == 3  # 1 try + 2 retries
        assert disp.stats.fallbacks == 1
        assert disp.stats.dead_letters == 0

    def test_short_stall_tolerated_without_retry(self):
        engine = FlakyEngine([_stall(0.01)])
        disp = _dispatcher(
            engine, policy=RetryPolicy(max_retries=0, timeout_s=0.25)
        )
        disp.extend(Q, T, 10)
        assert disp.stats.tolerated_total == 1
        assert disp.stats.retries == 0
        assert disp.stats.timeouts == 0

    def test_long_stall_is_a_timeout(self):
        engine = FlakyEngine([_stall(5.0)])
        disp = _dispatcher(
            engine, policy=RetryPolicy(max_retries=3, timeout_s=0.25)
        )
        disp.extend(Q, T, 10)
        assert disp.stats.timeouts == 1
        assert disp.stats.retries == 1

    def test_always_stalling_stream_cannot_loop(self):
        engine = FlakyEngine([_stall(0.01)] * 100)
        disp = _dispatcher(
            engine,
            policy=RetryPolicy(
                max_retries=1, timeout_s=0.25, max_tolerated_stalls=4
            ),
        )
        res = disp.extend(Q, T, 10)  # must terminate down the ladder
        assert _same_result(res, FullBandEngine().extend(Q, T, 10))
        assert disp.stats.tolerated_total == 4  # then stalls escalate

    def test_dead_letter_when_host_queue_refuses(self):
        engine = FlakyEngine([_transient()] * 20)
        disp = _dispatcher(
            engine,
            policy=RetryPolicy(max_retries=1),
            host_queue_capacity=0,
        )
        with pytest.raises(DeadLetterError) as err:
            disp.extend(Q, T, 10)
        assert err.value.site == "batch.transient"
        assert disp.stats.dead_letters == 1
        assert len(disp.dead_letters) == 1
        letter = disp.dead_letters[0]
        assert (letter.query == Q).all()
        assert letter.reason

    def test_non_fault_errors_propagate(self):
        engine = FlakyEngine([RuntimeError("real bug")])
        disp = _dispatcher(engine)
        with pytest.raises(RuntimeError, match="real bug"):
            disp.extend(Q, T, 10)
        assert disp.stats.retries == 0  # genuine bugs are not retried


class TestDisabledNoOp:
    def test_faults_disabled_is_byte_identical(self):
        base = FullBandEngine()
        disp = make_resilient(base, fault_rate=0.0)
        for h0 in (0, 10, 40):
            assert _same_result(disp.extend(Q, T, h0), base.extend(Q, T, h0))
        assert disp.stats.jobs == 3
        assert disp.stats.injected_total == 0
        assert disp.injector is None

    def test_make_resilient_attaches_chaos_when_rate_positive(self):
        disp = make_resilient(FullBandEngine(), fault_rate=0.2, fault_seed=1)
        assert disp.injector is not None
        assert disp.name.startswith("resilient(chaos(")
        assert disp.injector.sink is disp.stats


class TestStats:
    def test_accounting_invariant_api(self):
        stats = ResilienceStats()
        stats.record_injected("line.bitflip")
        assert not stats.accounted()
        stats.record_detected("line.bitflip")
        assert stats.accounted()
        stats.record_injected("stream.stall")
        stats.record_tolerated("stream.stall")
        assert stats.accounted()

    def test_shared_registry_exports_counters(self):
        from repro.obs import names
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        engine = FlakyEngine([_transient()])
        disp = _dispatcher(engine, registry=reg)
        disp.extend(Q, T, 10)
        counters = reg.snapshot()["counters"]
        assert counters[names.RESILIENCE_JOBS] == 1
        assert counters[names.RESILIENCE_RETRIES] == 1


class TestAcceleratorBatchPath:
    """Fault injection through the device-level batch model."""

    def _jobs(self, n=60):
        from repro.genome.synth import ExtensionJob

        rng = np.random.default_rng(17)
        out = []
        for _ in range(n):
            q = rng.integers(0, 4, size=80).astype(np.uint8)
            t = rng.integers(0, 4, size=120).astype(np.uint8)
            out.append(ExtensionJob(query=q, target=t, h0=20))
        return out

    def test_corrupted_jobs_degrade_to_host_rerun(self):
        from repro.faults.injector import FaultInjector
        from repro.hw.accelerator import SeedExAccelerator

        jobs = self._jobs()
        inj = FaultInjector(rate=0.3, seed=5)
        report = SeedExAccelerator().run(jobs, injector=inj)
        assert report.faults_detected > 0
        assert report.dead_letter_indices == ()
        # Every job still has a result, corrupted or not.
        for k in range(len(jobs)):
            report.final_result(k)
        # Injection accounting holds on the batch path too.
        assert inj.total_injected >= report.faults_detected

    def test_clean_run_matches_faulted_run_results(self):
        from repro.faults.injector import FaultInjector
        from repro.hw.accelerator import SeedExAccelerator

        jobs = self._jobs(30)
        clean = SeedExAccelerator().run(jobs)
        inj = FaultInjector(rate=0.3, seed=6)
        chaos = SeedExAccelerator().run(jobs, injector=inj)
        for k in range(len(jobs)):
            assert _same_result(
                clean.final_result(k), chaos.final_result(k)
            )

    def test_bounded_rerun_queue_dead_letters(self):
        from repro.faults.injector import FaultInjector
        from repro.hw.accelerator import SeedExAccelerator

        jobs = self._jobs()
        inj = FaultInjector(rate=0.5, seed=7)
        report = SeedExAccelerator().run(
            jobs, injector=inj, rerun_queue_capacity=2
        )
        assert report.dead_letter_indices
        dead = report.dead_letter_indices[0]
        with pytest.raises(KeyError):
            report.final_result(dead)
