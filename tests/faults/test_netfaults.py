"""Network-fault seam tests: seeded, deterministic, validated."""

from __future__ import annotations

import pytest

from repro.faults.netfaults import NetFaultPlan, NetFaultPolicy


class _FakeSession:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class TestNetFaultPolicy:
    def test_defaults_are_inert(self):
        policy = NetFaultPolicy()
        assert policy.disconnect_rate == 0.0
        assert policy.stall_rate == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"disconnect_rate": -0.1},
            {"disconnect_rate": 1.5},
            {"stall_rate": 2.0},
            {"stall_s": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NetFaultPolicy(**kwargs)


class TestNetFaultPlan:
    def test_no_policy_always_sends(self):
        plan = NetFaultPlan()
        session = _FakeSession()
        assert all(plan.before_send(session) for _ in range(50))
        assert not session.closed

    def test_certain_disconnect_closes_and_suppresses(self):
        plan = NetFaultPlan(NetFaultPolicy(disconnect_rate=1.0))
        session = _FakeSession()
        assert plan.before_send(session) is False
        assert session.closed
        assert plan.disconnects == 1

    def test_certain_stall_sleeps_then_sends(self):
        naps: list[float] = []
        plan = NetFaultPlan(
            NetFaultPolicy(stall_rate=1.0, stall_s=0.25),
            sleep=naps.append,
        )
        session = _FakeSession()
        assert plan.before_send(session) is True
        assert naps == [0.25]
        assert plan.stalls == 1
        assert not session.closed

    def test_same_seed_same_fault_schedule(self):
        def schedule(seed: int) -> list[bool]:
            plan = NetFaultPlan(
                NetFaultPolicy(seed=seed, disconnect_rate=0.5)
            )
            return [
                plan.before_send(_FakeSession()) for _ in range(40)
            ]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
