"""Headline chaos property: SAM bit-identity under injected faults.

The resilience contract of the whole PR: with the degradation ladder
in place, a SeedEx aligner whose datapath is being actively corrupted
still emits records bit-identical to the trusted full-band software
aligner — at 0%, 1%, and 10% fault rates across multiple fault seeds —
and every injected fault is accounted for (detected or tolerated;
never silent).
"""

import numpy as np
import pytest

from repro.aligner.engines import (
    FullBandEngine,
    SeedExEngine,
    make_resilient,
)
from repro.aligner.pipeline import Aligner
from repro.genome.sam import diff_records
from repro.genome.synth import synthesize_reference

pytestmark = pytest.mark.chaos
"""Chaos tier: selected by the CI chaos job via ``-m chaos``."""

N_READS = 18
READ_LEN = 101

FAULT_RATES = (0.0, 0.01, 0.1)
FAULT_SEEDS = (1, 2, 3)


@pytest.fixture(scope="module")
def reference():
    rng = np.random.default_rng(1234)
    return synthesize_reference(15_000, rng)


@pytest.fixture(scope="module")
def reads(reference):
    rng = np.random.default_rng(77)
    out = []
    for k in range(N_READS):
        pos = int(rng.integers(0, len(reference) - READ_LEN))
        read = reference[pos : pos + READ_LEN].copy()
        # A couple of substitutions so extensions do real work.
        for site in rng.choice(READ_LEN, size=2, replace=False):
            read[site] = (read[site] + 1 + rng.integers(3)) % 4
        out.append((f"r{k}", read))
    return out


@pytest.fixture(scope="module")
def baseline(reference, reads):
    aligner = Aligner(reference, FullBandEngine(), seeding="kmer")
    return [aligner.align_read(codes, name) for name, codes in reads]


@pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
@pytest.mark.parametrize("fault_rate", FAULT_RATES)
def test_sam_bit_identity_under_chaos(
    reference, reads, baseline, fault_rate, fault_seed
):
    """diff_records == 0 at every fault rate, for every fault seed."""
    engine = make_resilient(
        SeedExEngine(band=9),
        fault_rate=fault_rate,
        fault_seed=fault_seed,
        max_retries=3,
        sleep=lambda s: None,
    )
    aligner = Aligner(reference, engine, seeding="kmer")
    records = [aligner.align_read(codes, name) for name, codes in reads]

    assert diff_records(baseline, records) == 0

    stats = engine.stats
    if fault_rate == 0.0:
        assert stats.injected_total == 0
        assert engine.injector is None
    else:
        # No silent corruption: every injection was either detected
        # by a CRC/timeout or provably absorbed at its seam.
        assert stats.accounted(), (
            f"injected={stats.injected_total} != "
            f"detected={stats.detected_total} + "
            f"tolerated={stats.tolerated_total}"
        )
        assert stats.dead_letters == 0  # unbounded host queue


def test_high_rate_chaos_actually_exercised(reference, reads, baseline):
    """At 10% the ladder must really fire — the suite is not vacuous."""
    engine = make_resilient(
        SeedExEngine(band=9),
        fault_rate=0.1,
        fault_seed=1,
        sleep=lambda s: None,
    )
    aligner = Aligner(reference, engine, seeding="kmer")
    records = [aligner.align_read(codes, name) for name, codes in reads]
    stats = engine.stats
    assert diff_records(baseline, records) == 0
    assert stats.injected_total > 10
    assert stats.detected_total > 0
    assert stats.retries > 0


def test_chaos_fault_sequence_is_reproducible(reference, reads):
    """Same (rate, seed) → identical injection counts and records."""

    def run():
        engine = make_resilient(
            SeedExEngine(band=9),
            fault_rate=0.1,
            fault_seed=2,
            sleep=lambda s: None,
        )
        aligner = Aligner(reference, engine, seeding="kmer")
        recs = [aligner.align_read(codes, name) for name, codes in reads]
        return recs, dict(engine.injector.injected)

    recs_a, injected_a = run()
    recs_b, injected_b = run()
    assert injected_a == injected_b
    assert diff_records(recs_a, recs_b) == 0


def test_degradation_to_unmapped_never_crashes(reference, reads):
    """With a zero-capacity host queue the ladder's last rung holds:
    reads come back unmapped-with-reason instead of raising."""
    from repro.aligner.pipeline import DEGRADED_TAG

    engine = make_resilient(
        SeedExEngine(band=9),
        fault_rate=0.9,
        fault_seed=3,
        max_retries=0,
        host_queue_capacity=0,
        sleep=lambda s: None,
    )
    aligner = Aligner(reference, engine, seeding="kmer")
    records = [aligner.align_read(codes, name) for name, codes in reads]
    assert len(records) == len(reads)
    degraded = [r for r in records if DEGRADED_TAG in r.tags]
    assert degraded, "a 90% fault rate must dead-letter something"
    assert all(r.is_unmapped for r in degraded)
    assert engine.stats.dead_letters == len(engine.dead_letters) > 0
