"""FaultInjector: determinism, rates, sites, corruption operators."""

import numpy as np
import pytest

from repro.faults.injector import (
    ALL_SITES,
    DATAPATH_SITES,
    LINE_SITES,
    RECORD_SITES,
    FaultInjector,
)
from repro.genome.synth import ExtensionJob
from repro.hw.io_path import pack_job

pytestmark = pytest.mark.chaos
"""Chaos tier: selected by the CI chaos job via ``-m chaos``."""


def _lines(n_chars=250):
    q = np.zeros(101, dtype=np.uint8)
    t = np.arange(n_chars - 101, dtype=np.uint8) % 4
    return pack_job(ExtensionJob(query=q, target=t.astype(np.uint8), h0=25))


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = FaultInjector(rate=0.3, seed=42)
        b = FaultInjector(rate=0.3, seed=42)
        assert [a.draw() for _ in range(200)] == [
            b.draw() for _ in range(200)
        ]

    def test_different_seeds_diverge(self):
        a = FaultInjector(rate=0.3, seed=1)
        b = FaultInjector(rate=0.3, seed=2)
        assert [a.draw() for _ in range(200)] != [
            b.draw() for _ in range(200)
        ]

    def test_reset_restarts_the_stream(self):
        inj = FaultInjector(rate=0.3, seed=7)
        first = [inj.draw() for _ in range(50)]
        counted = dict(inj.injected)
        inj.reset()
        assert inj.injected == {}
        assert [inj.draw() for _ in range(50)] == first
        assert inj.injected == counted


class TestRatesAndSites:
    def test_zero_rate_never_fires(self):
        inj = FaultInjector(rate=0.0, seed=0)
        assert all(inj.draw() is None for _ in range(500))
        assert not inj.overflow()
        assert inj.total_injected == 0

    def test_rate_one_always_fires_first_site(self):
        inj = FaultInjector(rate=1.0, seed=0)
        assert inj.draw() == DATAPATH_SITES[0]

    def test_observed_rate_tracks_configured_rate(self):
        inj = FaultInjector(rate=0.05, seed=3)
        n = 4000
        hits = sum(inj.draw() is not None for _ in range(n))
        # P(any site) = 1 - (1-rate)^len(sites) ~ 0.37 for 9 sites.
        expected = 1.0 - (1.0 - 0.05) ** len(DATAPATH_SITES)
        assert abs(hits / n - expected) < 0.05

    def test_site_restriction_honored(self):
        inj = FaultInjector(rate=0.5, seed=5, sites=("line.bitflip",))
        drawn = {inj.draw() for _ in range(200)}
        assert drawn <= {None, "line.bitflip"}

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(sites=("line.bitflip", "bogus.site"))

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)

    def test_overflow_only_fires_when_opted_in(self):
        off = FaultInjector(rate=1.0, seed=0)
        assert not off.overflow()
        on = FaultInjector(rate=1.0, seed=0, sites=ALL_SITES)
        assert on.overflow()
        assert on.injected["queue.overflow"] == 1

    def test_draw_never_picks_queue_overflow(self):
        inj = FaultInjector(rate=1.0, seed=0, sites=ALL_SITES)
        assert all(inj.draw() != "queue.overflow" for _ in range(100))

    def test_every_injection_is_counted(self):
        inj = FaultInjector(rate=0.4, seed=9)
        drawn = [s for s in (inj.draw() for _ in range(300)) if s]
        assert inj.total_injected == len(drawn)
        assert set(inj.injected) <= set(DATAPATH_SITES)


class TestCorruptionOperators:
    def test_bitflip_changes_exactly_one_bit(self):
        inj = FaultInjector(rate=1.0, seed=1)
        lines = _lines()
        out = inj.corrupt_lines("line.bitflip", lines)
        diffs = [
            bin(a ^ b).count("1")
            for la, lb in zip(lines, out)
            for a, b in zip(la, lb)
        ]
        assert sum(diffs) == 1

    def test_truncate_shortens_a_line(self):
        inj = FaultInjector(rate=1.0, seed=2)
        lines = _lines()
        out = inj.corrupt_lines("line.truncate", lines)
        assert sum(len(line) for line in out) < sum(
            len(line) for line in lines
        )

    def test_drop_removes_a_line(self):
        inj = FaultInjector(rate=1.0, seed=3)
        lines = _lines()
        assert len(inj.corrupt_lines("line.drop", lines)) == len(lines) - 1

    def test_reorder_single_line_is_tolerated(self):
        inj = FaultInjector(rate=1.0, seed=4)
        lines = _lines(30)[:1]
        assert inj.corrupt_lines("stream.reorder", lines) == lines
        assert inj.tolerated.get("stream.reorder") == 1

    def test_reorder_identical_lines_is_tolerated(self):
        inj = FaultInjector(rate=1.0, seed=4)
        lines = [b"\x00" * 64, b"\x00" * 64]
        assert inj.corrupt_lines("stream.reorder", lines) == lines
        assert inj.tolerated.get("stream.reorder") == 1

    def test_record_sites(self):
        inj = FaultInjector(rate=1.0, seed=6)
        blob = bytes(range(12))
        flipped = inj.corrupt_record("record.bitflip", blob)
        assert flipped != blob and len(flipped) == len(blob)
        assert len(inj.corrupt_record("record.truncate", blob)) < 12
        assert inj.corrupt_record("record.drop", blob) is None

    def test_wrong_site_class_rejected(self):
        inj = FaultInjector()
        with pytest.raises(ValueError):
            inj.corrupt_lines("record.bitflip", _lines())
        with pytest.raises(ValueError):
            inj.corrupt_record("line.bitflip", b"x" * 12)

    def test_site_classes_partition_the_datapath(self):
        assert LINE_SITES.isdisjoint(RECORD_SITES)
        assert LINE_SITES | RECORD_SITES < set(ALL_SITES)


class TestSinkMirroring:
    class _Sink:
        def __init__(self):
            self.events = []

        def record_injected(self, site):
            self.events.append(("injected", site))

        def record_tolerated(self, site):
            self.events.append(("tolerated", site))

    def test_sink_sees_every_injection(self):
        sink = self._Sink()
        inj = FaultInjector(rate=0.5, seed=11, sink=sink)
        for _ in range(100):
            inj.draw()
        injected = [e for e in sink.events if e[0] == "injected"]
        assert len(injected) == inj.total_injected > 0
