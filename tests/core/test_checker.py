"""Workflow tests for the Figure 6 checker state machine."""

import numpy as np

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING
from repro.core.checker import CheckConfig, CheckOutcome, OptimalityChecker
from repro.genome.sequence import encode, random_sequence
from tests.helpers import related_pair


def run_check(q, t, h0, w, config=None):
    checker = OptimalityChecker(BWA_MEM_SCORING, config)
    res = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
    return checker.check(q, t, res), res


class TestOutcomes:
    def test_clean_match_passes_s2(self):
        q = encode("ACGTACGTACGTACGTACGT")
        t = encode("ACGTACGTACGTACGTACGTAC")
        decision, _ = run_check(q, t, 25, 5)
        assert decision.outcome == CheckOutcome.PASS_S2
        assert decision.passed

    def test_dead_extension_fails(self):
        q = encode("AAAAAAAAAA")
        t = encode("TTTTTTTTTTTT")
        decision, _ = run_check(q, t, 3, 3)
        assert decision.outcome in (
            CheckOutcome.FAIL_DEAD,
            CheckOutcome.FAIL_S1,
        )
        assert decision.needs_rerun

    def test_distant_alignment_fails_checks(self):
        q = encode("ACGTACGTAC")
        t = encode("GGGGGGGG" + "ACGTACGTAC")
        decision, _ = run_check(q, t, 30, 2)
        assert decision.needs_rerun

    def test_checks_rescue_case_c(self):
        rng = np.random.default_rng(21)
        rescued = 0
        for _ in range(200):
            q, t = related_pair(
                rng, 24, extra_target=6, subs=2, ins=1, dels=1
            )
            decision, _ = run_check(q, t, 20, 6)
            if decision.outcome == CheckOutcome.PASS_CHECKS:
                rescued += 1
        assert rescued > 0

    def test_deep_deletion_is_rescued(self):
        """The canonical case-c input — a band-deep deletion right after
        the seed with a clean suffix — must pass via the checks, not a
        rerun (this is the scenario the edit machine exists for)."""
        rng = np.random.default_rng(42)
        for _ in range(50):
            q = random_sequence(40, rng)
            t = np.concatenate(
                [q[:3], random_sequence(10, rng), q[3:],
                 random_sequence(5, rng)]
            ).astype(np.uint8)
            decision, _ = run_check(q, t, 30, 10)
            assert decision.outcome == CheckOutcome.PASS_CHECKS


class TestConfigAblations:
    def test_disabling_escore_forces_rerun_in_case_c(self):
        rng = np.random.default_rng(22)
        cfg = CheckConfig(use_escore=False)
        saw_case_c = False
        for _ in range(200):
            q, t = related_pair(rng, 24, extra_target=6, subs=2, dels=1)
            decision, _ = run_check(q, t, 20, 6, cfg)
            if decision.outcome == CheckOutcome.FAIL_ESCORE:
                saw_case_c = True
                assert decision.score_max_e is None
        assert saw_case_c

    def test_disabling_edit_check_forces_rerun_after_escore(self):
        rng = np.random.default_rng(23)
        cfg = CheckConfig(use_edit_check=False)
        base = CheckConfig()
        downgraded = 0
        for _ in range(200):
            q, t = related_pair(rng, 24, extra_target=6, subs=2, dels=1)
            with_edit, _ = run_check(q, t, 20, 6, base)
            without, _ = run_check(q, t, 20, 6, cfg)
            if with_edit.outcome == CheckOutcome.PASS_CHECKS:
                assert without.outcome == CheckOutcome.FAIL_EDIT
                downgraded += 1
            if with_edit.outcome == CheckOutcome.PASS_S2:
                assert without.outcome == CheckOutcome.PASS_S2
        assert downgraded > 0

    def test_ablations_never_accept_more(self):
        """Disabling checks can only reduce the accept set."""
        rng = np.random.default_rng(24)
        weak = CheckConfig(use_escore=False, use_edit_check=False)
        for _ in range(150):
            q, t = related_pair(rng, 20, extra_target=5, subs=2, ins=1)
            full_cfg, _ = run_check(q, t, 18, 5)
            weak_cfg, _ = run_check(q, t, 18, 5, weak)
            if weak_cfg.passed:
                assert full_cfg.passed


class TestDecisionRecord:
    def test_records_intermediate_scores(self):
        rng = np.random.default_rng(25)
        seen_full_record = False
        for _ in range(300):
            q, t = related_pair(rng, 24, extra_target=6, subs=2, dels=1)
            decision, _ = run_check(q, t, 20, 6)
            if decision.outcome == CheckOutcome.PASS_CHECKS:
                assert decision.score_max_e is not None
                assert decision.score_ed is not None
                assert decision.score_max_e < decision.score_nb
                assert decision.score_ed < decision.score_nb
                seen_full_record = True
        assert seen_full_record

    def test_pass_s2_skips_downstream_checks(self):
        q = encode("ACGTACGTACGTACGTACGT")
        t = encode("ACGTACGTACGTACGTACGTAC")
        decision, _ = run_check(q, t, 25, 5)
        assert decision.score_max_e is None
        assert decision.score_ed is None
