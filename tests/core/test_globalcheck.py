"""The global-mode theorem and admissibility tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.globalband import global_align
from repro.align.scoring import BWA_MEM_SCORING
from repro.core.globalcheck import (
    GlobalChecker,
    GlobalOutcome,
    GlobalSeedEx,
    above_band_bound,
    below_band_bound,
)
from repro.genome.sequence import random_sequence
from tests.helpers import enumerate_paths, mutate

SEQ = st.lists(st.integers(0, 3), min_size=1, max_size=20).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)
TINY = st.lists(st.integers(0, 3), min_size=1, max_size=6).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestGlobalTheorem:
    @settings(max_examples=250, deadline=None)
    @given(q=SEQ, t=SEQ, h0=st.integers(0, 25), w=st.integers(0, 10))
    def test_accepted_equals_full_band(self, q, t, h0, w):
        """The global guarantee: the returned score never depends on
        the band."""
        gx = GlobalSeedEx(band=w)
        out = gx.align(q, t, h0)
        full = global_align(q, t, BWA_MEM_SCORING, h0)
        assert out.result.score == full.score
        if not out.rerun:
            assert out.narrow_result.score == full.score

    @settings(max_examples=150, deadline=None)
    @given(
        q=SEQ,
        edits=st.tuples(
            st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)
        ),
        seed=st.integers(0, 2**31),
        w=st.integers(0, 10),
    )
    def test_related_pairs(self, q, edits, seed, w):
        rng = np.random.default_rng(seed)
        subs, ins, dels = edits
        t = mutate(q, rng, subs=subs, ins=ins, dels=dels)
        if len(t) == 0:
            t = q.copy()
        gx = GlobalSeedEx(band=w)
        out = gx.align(q, t, 10)
        assert out.result.score == global_align(
            q, t, BWA_MEM_SCORING, 10
        ).score


class TestBoundAdmissibility:
    @settings(max_examples=100, deadline=None)
    @given(q=TINY, t=TINY, h0=st.integers(0, 15), w=st.integers(0, 4))
    def test_sweeps_bound_departing_global_paths(self, q, t, h0, w):
        """Brute force: every band-leaving path reaching the corner
        scores at most the corresponding sweep bound."""
        if abs(len(t) - len(q)) > w:
            return
        res = global_align(q, t, BWA_MEM_SCORING, h0, w=w)
        below = below_band_bound(q, t, res, BWA_MEM_SCORING)
        above = above_band_bound(q, t, res, BWA_MEM_SCORING)
        for rec in enumerate_paths(
            q, t, BWA_MEM_SCORING, h0, w, dead_at_zero=False
        ):
            if rec.first_departure is None:
                continue
            if rec.i != len(t) or rec.j != len(q):
                continue
            side = rec.first_departure[0]
            if side == "down":
                assert rec.score <= below
            else:
                assert rec.score <= above


class TestCanonicalScenarios:
    def test_band_deep_deletion_with_early_noise_passes(self):
        """The case-c input the global checks exist for: a deletion at
        the band limit, substitutions near the start, clean suffix."""
        rng = np.random.default_rng(5)
        w = 12
        for _ in range(30):
            ref = random_sequence(160, rng)
            q = np.concatenate(
                [ref[:30], ref[30 + w : 120]]
            ).astype(np.uint8)
            for p in (2, 5, 9):
                q[p] = (q[p] + 1) % 4
            t = ref[:120]
            gx = GlobalSeedEx(band=w)
            out = gx.align(q, t, 0)
            assert out.decision.outcome == GlobalOutcome.PASS_CHECKS
            assert not out.rerun

    def test_out_of_band_excursion_reruns(self):
        """A 40-char deletion offset by a 35-char insertion keeps the
        endpoint diagonal small but the optimal path 40 deep — far
        outside a w=10 band.  The checker must refuse and rerun."""
        rng = np.random.default_rng(6)
        ref = random_sequence(200, rng)
        q = np.concatenate(
            [ref[:30], ref[70:110], random_sequence(35, rng)]
        ).astype(np.uint8)
        t = ref[:115]  # d0 = 10 fits the band; the path does not
        gx = GlobalSeedEx(band=10)
        out = gx.align(q, t, 0)
        full = global_align(q, t, BWA_MEM_SCORING, 0)
        assert out.result.score == full.score
        assert out.narrow_result.score < full.score
        assert out.rerun

    def test_clean_pair_passes_threshold(self):
        rng = np.random.default_rng(7)
        q = random_sequence(80, rng)
        gx = GlobalSeedEx(band=5)
        out = gx.align(q, q.copy(), 0)
        assert out.decision.outcome == GlobalOutcome.PASS_THRESHOLD
        assert out.result.score == 80

    def test_stats_accounting(self):
        rng = np.random.default_rng(8)
        gx = GlobalSeedEx(band=4)
        for _ in range(40):
            q = random_sequence(30, rng)
            t = mutate(q, rng, subs=2, dels=2)
            if len(t) == 0:
                t = q.copy()
            gx.align(q, t, 5)
        assert gx.stats.total == 40
        assert gx.stats.passed + gx.stats.reruns == 40
        assert 0.0 <= gx.stats.passing_rate <= 1.0

    def test_checker_reports_bounds_in_case_c(self):
        rng = np.random.default_rng(9)
        w = 12
        ref = random_sequence(160, rng)
        q = np.concatenate([ref[:30], ref[30 + w : 120]]).astype(np.uint8)
        for p in (2, 5, 9):
            q[p] = (q[p] + 1) % 4
        t = ref[:120]
        res = global_align(q, t, BWA_MEM_SCORING, 0, w=w)
        decision = GlobalChecker(BWA_MEM_SCORING).check(q, t, res)
        assert decision.outcome == GlobalOutcome.PASS_CHECKS
        assert decision.below_bound is not None
        assert decision.above_bound is not None
        assert decision.below_bound < decision.score_nb
        assert decision.above_bound < decision.score_nb
