"""Mutation tests: the theorem harness must catch unsound checkers.

A property test that never fails could be vacuous.  These tests
deliberately break each bound and verify a counterexample exists —
i.e., the central theorem genuinely depends on every check being
admissible, and our corpora genuinely exercise the failure modes.
"""

import numpy as np

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING
from repro.core.checker import CheckDecision, CheckOutcome, OptimalityChecker
from repro.core.thresholds import Thresholds
from repro.genome.sequence import random_sequence
from tests.helpers import mutate


class LaxS2Checker(OptimalityChecker):
    """Unsound: relaxes S2, accepting scores the threshold should send
    to further checks."""

    def __init__(self, scoring, slack: int) -> None:
        super().__init__(scoring)
        self.slack = slack

    def thresholds_for(self, result):
        th = super().thresholds_for(result)
        s2 = None if th.s2 is None else th.s2 - self.slack
        return Thresholds(s1=th.s1, s2=s2)


class SkipChecksChecker(OptimalityChecker):
    """Unsound: treats every case-c input as passing."""

    def check(self, query, target, result):
        decision = super().check(query, target, result)
        if decision.outcome in (
            CheckOutcome.FAIL_ESCORE,
            CheckOutcome.FAIL_EDIT,
        ):
            return CheckDecision(
                CheckOutcome.PASS_CHECKS,
                decision.score_nb,
                decision.thresholds,
                decision.score_max_e,
                decision.score_ed,
            )
        return decision


def _adversarial_case_c(rng, w=6, h0=25):
    """An input where the narrow band is genuinely suboptimal *and*
    the score lands in case c.

    ``query = A ++ homopolymer``; the target interposes 8 junk bases
    before the homopolymer, the last two crafted so that a band-6
    6-deletion alignment survives with exactly one mismatch
    (p_in = 17, inside the case-c window) while the true optimum — an
    8-deletion, outside the band — pays only p_out = 14.  A sound
    checker must send this to rerun; any checker that accepts it
    returns the wrong score.
    """
    prefix = random_sequence(20, rng)
    homo = np.zeros(10, dtype=np.uint8)  # 'A' * 10
    query = np.concatenate([prefix, homo]).astype(np.uint8)
    junk = (random_sequence(6, rng) % 3) + 1  # never 'A'
    bridge = np.array([1, 0], dtype=np.uint8)  # one mismatch, one 'A'
    target = np.concatenate(
        [prefix, junk, bridge, homo]
    ).astype(np.uint8)
    return query, target, h0, w


def _violates(checker, query, target, h0, w):
    narrow = banded.extend(query, target, BWA_MEM_SCORING, h0, w=w)
    decision = checker.check(query, target, narrow)
    if not decision.passed:
        return False
    full = banded.extend(query, target, BWA_MEM_SCORING, h0)
    return narrow.scores() != full.scores()


class TestHarnessSensitivity:
    def _trials(self, checker, n=50):
        rng = np.random.default_rng(0)
        return sum(
            _violates(checker, *_adversarial_case_c(rng))
            for _ in range(n)
        )

    def test_adversarial_input_has_the_advertised_shape(self):
        rng = np.random.default_rng(1)
        q, t, h0, w = _adversarial_case_c(rng)
        narrow = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
        full = banded.extend(q, t, BWA_MEM_SCORING, h0)
        assert full.gscore > narrow.gscore  # band genuinely too small
        checker = OptimalityChecker(BWA_MEM_SCORING)
        decision = checker.check(q, t, narrow)
        th = decision.thresholds
        assert th.s1 < narrow.gscore <= th.s2  # lands in case c
        assert not decision.passed  # the sound checker refuses it

    def test_sound_checker_never_violates(self):
        assert self._trials(OptimalityChecker(BWA_MEM_SCORING)) == 0

    def test_lax_s2_is_caught(self):
        """Shaving a few points off S2 must produce wrong accepts."""
        assert self._trials(LaxS2Checker(BWA_MEM_SCORING, slack=6)) > 0

    def test_skipping_case_c_checks_is_caught(self):
        """Accepting every case-c input must produce wrong accepts —
        i.e., the E-score/edit checks reject real threats, not noise."""
        assert self._trials(SkipChecksChecker(BWA_MEM_SCORING)) > 0

    def test_random_inputs_never_violate_sound_checker(self):
        rng = np.random.default_rng(2)
        checker = OptimalityChecker(BWA_MEM_SCORING)
        for _ in range(500):
            q = random_sequence(int(rng.integers(2, 30)), rng)
            t = mutate(q, rng, subs=2, ins=1, dels=1)
            if len(t) == 0:
                t = q.copy()
            assert not _violates(
                checker, q, t, int(rng.integers(1, 35)),
                int(rng.integers(1, 8)),
            )
