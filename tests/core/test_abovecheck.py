"""Admissibility tests for the above-band machinery (local target)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING
from repro.core.editcheck import above_check, edit_check
from repro.core.escore import NO_THREAT
from repro.core.thresholds import semiglobal_thresholds
from repro.genome.sequence import encode
from tests.helpers import enumerate_paths

TINY = st.lists(st.integers(0, 3), min_size=1, max_size=6).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestBoundaryFCap:
    @settings(max_examples=120, deadline=None)
    @given(q=TINY, t=TINY, h0=st.integers(1, 20), w=st.integers(0, 4))
    def test_caps_upward_crossing_arrivals(self, q, t, h0, w):
        """Every path's score at its first upward crossing into cell
        (i, i+w+1) is at most boundary_f[i]."""
        res = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
        go = BWA_MEM_SCORING.gap_open
        ge = BWA_MEM_SCORING.gap_extend_ins
        for rec in enumerate_paths(q, t, BWA_MEM_SCORING, h0, w):
            dep = rec.first_departure
            if dep is None or dep[0] != "up":
                continue
            # Only check records AT the crossing cell itself.
            if rec.j - rec.i != w + 1:
                continue
            if rec.j != dep[1]:
                continue
            i = rec.i
            if i < res.boundary_f.size:
                assert rec.score <= res.boundary_f[i], (
                    f"arrival {rec.score} at row {i} exceeds cap "
                    f"{res.boundary_f[i]}"
                )


class TestAboveSweep:
    @settings(max_examples=120, deadline=None)
    @given(q=TINY, t=TINY, h0=st.integers(1, 20), w=st.integers(0, 4))
    def test_bounds_upward_departing_paths_anywhere(self, q, t, h0, w):
        """The above sweep's bound covers every upward-departing path
        at every endpoint (the local target's requirement)."""
        res = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
        ab = above_check(q, t, res, BWA_MEM_SCORING)
        for rec in enumerate_paths(q, t, BWA_MEM_SCORING, h0, w):
            dep = rec.first_departure
            if dep is None or dep[0] != "up":
                continue
            assert rec.score <= max(ab.score_ed, 0), (
                f"path score {rec.score} beats above bound "
                f"{ab.score_ed}"
            )

    def test_no_region_no_threat(self):
        q = encode("ACG")
        t = encode("ACGTACGT")
        res = banded.extend(q, t, BWA_MEM_SCORING, 10, w=5)
        ab = above_check(q, t, res, BWA_MEM_SCORING)
        assert ab.score_ed == NO_THREAT


class TestTopSeededBelowSweep:
    @settings(max_examples=120, deadline=None)
    @given(q=TINY, t=TINY, h0=st.integers(1, 20), w=st.integers(0, 4))
    def test_bounds_all_downward_departures(self, q, t, h0, w):
        """With top seeds, the below sweep bounds downward departures
        at every column (0 included) and every endpoint."""
        res = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
        th = semiglobal_thresholds(
            BWA_MEM_SCORING, len(q), len(t), w, h0
        )
        ed = edit_check(
            q, t, res, BWA_MEM_SCORING, th.s1, include_top_seeds=True
        )
        for rec in enumerate_paths(q, t, BWA_MEM_SCORING, h0, w):
            dep = rec.first_departure
            if dep is None or dep[0] != "down":
                continue
            assert rec.score <= max(ed.score_ed, 0)
