"""Threshold formula tests plus brute-force admissibility proofs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.scoring import BWA_MEM_SCORING
from repro.core.thresholds import (
    Thresholds,
    global_thresholds,
    semiglobal_thresholds,
)
from tests.helpers import enumerate_paths

TINY = st.lists(st.integers(0, 3), min_size=1, max_size=6).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestFormulas:
    def test_paper_example_values(self):
        # S1 = h0 - (go + w*ge) + (N - w)*m ; S2 adds w*m more matches.
        th = semiglobal_thresholds(BWA_MEM_SCORING, 101, 120, 41, 30)
        assert th.s1 == 30 - (6 + 41) + 60
        assert th.s2 == 30 - (6 + 41) + 101

    def test_s2_minus_s1_is_band_matches(self):
        th = semiglobal_thresholds(BWA_MEM_SCORING, 80, 100, 10, 25)
        assert th.s2 - th.s1 == 10 * BWA_MEM_SCORING.match

    def test_regions_disappear_with_wide_band(self):
        th = semiglobal_thresholds(BWA_MEM_SCORING, 10, 10, 12, 20)
        assert th.s1 is None
        assert th.s2 is None

    def test_only_below_region(self):
        th = semiglobal_thresholds(BWA_MEM_SCORING, 10, 30, 12, 20)
        assert th.s1 is None
        assert th.s2 is not None


class TestClassify:
    def test_three_cases(self):
        th = Thresholds(s1=10, s2=20)
        assert th.classify(5) == "fail"
        assert th.classify(10) == "fail"
        assert th.classify(15) == "between"
        assert th.classify(20) == "between"
        assert th.classify(21) == "pass"

    def test_no_regions_always_passes(self):
        th = Thresholds(s1=None, s2=None)
        assert th.classify(-100) == "pass"

    def test_missing_s1(self):
        th = Thresholds(s1=None, s2=20)
        assert th.classify(5) == "between"
        assert th.classify(25) == "pass"

    def test_global_s2_below_s1_still_sound(self):
        # classify must treat the "fail" test first so orderings where
        # s2 < s1 (possible in global mode) stay sound.
        th = Thresholds(s1=15, s2=10)
        assert th.classify(12) == "fail"
        assert th.classify(16) == "pass"


class TestSemiGlobalAdmissibility:
    """S1/S2 must upper-bound the final score of every band-leaving
    path, verified by exhaustive path enumeration on tiny inputs."""

    @settings(max_examples=100, deadline=None)
    @given(q=TINY, t=TINY, h0=st.integers(1, 20), w=st.integers(0, 4))
    def test_bounds_hold(self, q, t, h0, w):
        th = semiglobal_thresholds(BWA_MEM_SCORING, len(q), len(t), w, h0)
        for rec in enumerate_paths(q, t, BWA_MEM_SCORING, h0, w):
            if rec.first_departure is None:
                continue
            side = rec.first_departure[0]
            if side == "up":
                assert th.s1 is not None and rec.score <= th.s1
            else:
                assert th.s2 is not None and rec.score <= th.s2


class TestGlobalAdmissibility:
    """Global thresholds must bound band-leaving paths that reach the
    global endpoint (tlen, qlen)."""

    @settings(max_examples=100, deadline=None)
    @given(q=TINY, t=TINY, h0=st.integers(5, 25), w=st.integers(0, 4))
    def test_bounds_hold(self, q, t, h0, w):
        if abs(len(t) - len(q)) > w:
            return
        th = global_thresholds(BWA_MEM_SCORING, len(q), len(t), w, h0)
        # Global paths may dip negative; disable the dead-at-zero rule.
        for rec in enumerate_paths(
            q, t, BWA_MEM_SCORING, h0, w, dead_at_zero=False
        ):
            if rec.first_departure is None:
                continue
            if rec.i != len(t) or rec.j != len(q):
                continue
            side = rec.first_departure[0]
            if side == "up":
                assert th.s1 is not None and rec.score <= th.s1
            else:
                assert th.s2 is not None and rec.score <= th.s2

    def test_endpoint_outside_band_rejected(self):
        with pytest.raises(ValueError):
            global_thresholds(BWA_MEM_SCORING, 4, 10, 3, 0)

    def test_paper_doubling_formula_is_not_admissible(self):
        """Documented deviation: the paper's 2go/2ge substitution can
        undercut a real outside path when the endpoint diagonal hugs
        the band edge; our corrected formula must still bound it."""
        q = np.array([0, 1, 2, 3, 0, 1], dtype=np.uint8)
        w = 4
        # Target = query plus w extra leading chars: d0 = w.
        t = np.concatenate(
            [np.full(w, 3, dtype=np.uint8), q]
        ).astype(np.uint8)
        h0 = 20
        th = global_thresholds(BWA_MEM_SCORING, len(q), len(t), w, h0)
        s = BWA_MEM_SCORING
        paper_s2 = (
            h0
            - 2 * (s.gap_open + w * s.gap_extend)
            + len(q) * s.match
        )
        best_outside = max(
            (
                rec.score
                for rec in enumerate_paths(
                    q, t, s, h0, w, dead_at_zero=False
                )
                if rec.first_departure is not None
                and rec.i == len(t)
                and rec.j == len(q)
                and rec.first_departure[0] == "down"
            ),
            default=None,
        )
        assert best_outside is not None
        assert best_outside > paper_s2  # the paper formula undercuts
        assert best_outside <= th.s2  # ours does not
