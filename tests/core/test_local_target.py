"""The local-target check mode: certify (lscore, lpos) only.

Comparing every bound against ``lscore`` instead of ``gscore``
certifies the soft-clip score even when no in-band path consumes the
whole query.  The guarantee is weaker — ``gscore`` is NOT certified —
but the theorem for the local pair must hold unconditionally.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING
from repro.core.checker import CheckConfig, CheckOutcome, OptimalityChecker
from repro.genome.sequence import random_sequence
from tests.helpers import mutate

SEQ = st.lists(st.integers(0, 3), min_size=1, max_size=24).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)

LOCAL = CheckConfig(target="local")


class TestLocalTheorem:
    @settings(max_examples=250, deadline=None)
    @given(
        q=SEQ,
        t=SEQ,
        h0=st.integers(1, 50),
        w=st.integers(1, 10),
    )
    def test_accepted_implies_local_optimal(self, q, t, h0, w):
        checker = OptimalityChecker(BWA_MEM_SCORING, LOCAL)
        narrow = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
        decision = checker.check(q, t, narrow)
        if decision.passed:
            full = banded.extend(q, t, BWA_MEM_SCORING, h0)
            assert narrow.lscore == full.lscore
            assert narrow.lpos == full.lpos

    @settings(max_examples=150, deadline=None)
    @given(
        q=SEQ,
        edits=st.tuples(
            st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)
        ),
        seed=st.integers(0, 2**31),
        h0=st.integers(1, 40),
        w=st.integers(1, 8),
    )
    def test_related_pairs(self, q, edits, seed, h0, w):
        rng = np.random.default_rng(seed)
        subs, ins, dels = edits
        t = mutate(q, rng, subs=subs, ins=ins, dels=dels)
        if len(t) == 0:
            t = q.copy()
        checker = OptimalityChecker(BWA_MEM_SCORING, LOCAL)
        narrow = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
        decision = checker.check(q, t, narrow)
        if decision.passed:
            full = banded.extend(q, t, BWA_MEM_SCORING, h0)
            assert (narrow.lscore, narrow.lpos) == (
                full.lscore, full.lpos,
            )


class TestLocalVsSemiglobal:
    def test_local_certifies_dead_gscore_cases(self):
        """The mode's reason to exist: a read whose suffix is junk
        (soft-clipped in practice) has gscore dead, yet its local
        extension score is perfectly certifiable."""
        rng = np.random.default_rng(7)
        rescued = 0
        for _ in range(50):
            ref = random_sequence(140, rng)
            # Query: 60 clean bases then 40 junk (adapter-like).
            q = np.concatenate(
                [ref[:60], random_sequence(40, rng)]
            ).astype(np.uint8)
            t = ref[:120]
            narrow = banded.extend(q, t, BWA_MEM_SCORING, 25, w=8)
            semi = OptimalityChecker(BWA_MEM_SCORING).check(q, t, narrow)
            local = OptimalityChecker(BWA_MEM_SCORING, LOCAL).check(
                q, t, narrow
            )
            assert semi.needs_rerun  # semi-global can't certify these
            if local.passed:
                rescued += 1
        # The semi-global target reruns every one of these; the local
        # target certifies most (the rest are boundary-shadow false
        # alarms, as analyzed in docs/checks.md).
        assert rescued > 25

    def test_local_does_not_certify_gscore(self):
        """Documented weakness: local acceptance says nothing about
        gscore — construct a case where they differ."""
        # lscore is reached early in-band; an out-of-band path beats
        # gscore_nb but stays below lscore_nb.
        rng = np.random.default_rng(3)
        found = False
        for _ in range(300):
            ref = random_sequence(120, rng)
            q = np.concatenate(
                [ref[:30], ref[42:54]]
            ).astype(np.uint8)  # suffix needs a 12-deletion
            t = ref[:80]
            narrow = banded.extend(q, t, BWA_MEM_SCORING, 40, w=5)
            local = OptimalityChecker(BWA_MEM_SCORING, LOCAL).check(
                q, t, narrow
            )
            if not local.passed:
                continue
            full = banded.extend(q, t, BWA_MEM_SCORING, 40)
            assert narrow.lscore == full.lscore  # certified
            if narrow.gscore != full.gscore:
                found = True
                break
        assert found

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            CheckConfig(target="global")
