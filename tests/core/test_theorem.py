"""The central property of the reproduction (paper Theorem 1 + Lemma 2):

    If the SeedEx checks accept a narrow-band extension, its result is
    bit-identical to the full-band run: same lscore, lpos, gscore, gpos.

Hypothesis hunts for counterexamples across sequences, seeds, scoring
schemes, bands, and check configurations.  Soundness must survive every
configuration — ablations may only trade passing rate.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.core.checker import CheckConfig, OptimalityChecker
from repro.core.extender import SeedExtender
from tests.helpers import mutate

SEQ = st.lists(st.integers(0, 3), min_size=1, max_size=24).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)

EDITS = st.tuples(
    st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)
)


def _assert_theorem(q, t, h0, w, scoring, config=None):
    checker = OptimalityChecker(scoring, config)
    narrow = banded.extend(q, t, scoring, h0, w=w)
    decision = checker.check(q, t, narrow)
    if decision.passed:
        full = banded.extend(q, t, scoring, h0)
        assert narrow.scores() == full.scores(), (
            f"accepted narrow-band result differs from full band: "
            f"{narrow.scores()} != {full.scores()} "
            f"(w={w}, h0={h0}, outcome={decision.outcome})"
        )


class TestTheorem:
    @settings(max_examples=250, deadline=None)
    @given(
        q=SEQ,
        t=SEQ,
        h0=st.integers(1, 50),
        w=st.integers(1, 10),
    )
    def test_random_pairs(self, q, t, h0, w):
        _assert_theorem(q, t, h0, w, BWA_MEM_SCORING)

    @settings(max_examples=250, deadline=None)
    @given(
        q=SEQ,
        edits=EDITS,
        seed=st.integers(0, 2**31),
        h0=st.integers(1, 50),
        w=st.integers(1, 10),
        extra=st.integers(0, 10),
    )
    def test_related_pairs(self, q, edits, seed, h0, w, extra):
        """Mutated copies are where case c actually fires."""
        rng = np.random.default_rng(seed)
        subs, ins, dels = edits
        t = mutate(q, rng, subs=subs, ins=ins, dels=dels)
        if extra:
            t = np.concatenate(
                [t, rng.integers(0, 4, size=extra)]
            ).astype(np.uint8)
        if len(t) == 0:
            t = q.copy()
        _assert_theorem(q, t, h0, w, BWA_MEM_SCORING)

    @settings(max_examples=120, deadline=None)
    @given(
        q=SEQ,
        t=SEQ,
        h0=st.integers(1, 40),
        w=st.integers(1, 8),
        go=st.integers(0, 8),
        ge=st.integers(1, 3),
        x=st.integers(1, 6),
    )
    def test_other_scoring_schemes(self, q, t, h0, w, go, ge, x):
        scoring = AffineGap(match=1, mismatch=x, gap_open=go, gap_extend=ge)
        _assert_theorem(q, t, h0, w, scoring)

    @settings(max_examples=120, deadline=None)
    @given(
        q=SEQ,
        t=SEQ,
        h0=st.integers(1, 40),
        w=st.integers(1, 8),
        exact_seed=st.booleans(),
        paper_e=st.booleans(),
    )
    def test_config_variants(self, q, t, h0, w, exact_seed, paper_e):
        config = CheckConfig(
            exact_left_seed=exact_seed, paper_escore_formula=paper_e
        )
        _assert_theorem(q, t, h0, w, BWA_MEM_SCORING, config)


class TestExtenderContract:
    @settings(max_examples=150, deadline=None)
    @given(
        q=SEQ,
        t=SEQ,
        h0=st.integers(1, 50),
        w=st.integers(1, 10),
    )
    def test_output_always_full_band_equivalent(self, q, t, h0, w):
        """The SeedExtender's final answer never depends on the band."""
        ext = SeedExtender(band=w)
        out = ext.extend(q, t, h0)
        full = banded.extend(q, t, BWA_MEM_SCORING, h0)
        assert out.result.scores() == full.scores()

    def test_stats_accounting(self):
        rng = np.random.default_rng(31)
        ext = SeedExtender(band=5)
        jobs = []
        for _ in range(100):
            q = rng.integers(0, 4, size=20).astype(np.uint8)
            t = mutate(q, rng, subs=2, ins=1)
            jobs.append((q, t, 20))
        outs = ext.extend_batch(jobs)
        assert ext.stats.total == 100
        assert ext.stats.passed + ext.stats.reruns == 100
        assert sum(1 for o in outs if o.rerun) == ext.stats.reruns
        assert 0.0 <= ext.stats.passing_rate <= 1.0
        assert ext.stats.threshold_only_rate <= ext.stats.passing_rate
