"""Admissibility and unit tests for the edit-distance check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.core.editcheck import edit_check, exact_left_seeds
from repro.core.escore import NO_THREAT
from repro.core.thresholds import semiglobal_thresholds
from repro.genome.sequence import encode
from tests.helpers import enumerate_paths

TINY = st.lists(st.integers(0, 3), min_size=1, max_size=6).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


def _thresholds(q, t, w, h0):
    return semiglobal_thresholds(BWA_MEM_SCORING, len(q), len(t), w, h0)


class TestAdmissibility:
    @settings(max_examples=120, deadline=None)
    @given(q=TINY, t=TINY, h0=st.integers(1, 20), w=st.integers(0, 4))
    def test_bounds_left_entering_paths(self, q, t, h0, w):
        """Every path whose first band departure is the column-0 dive
        must score at most score_ed (both seeding variants)."""
        res = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
        th = _thresholds(q, t, w, h0)
        for exact in (False, True):
            ed = edit_check(
                q, t, res, BWA_MEM_SCORING, th.s1, exact_left_seed=exact
            )
            for rec in enumerate_paths(q, t, BWA_MEM_SCORING, h0, w):
                if rec.first_departure is None:
                    continue
                side, col = rec.first_departure
                if side == "down" and col == 0:
                    assert rec.score <= ed.score_ed

    @settings(max_examples=60, deadline=None)
    @given(q=TINY, t=TINY, h0=st.integers(1, 20), w=st.integers(0, 4))
    def test_exact_seed_is_tighter(self, q, t, h0, w):
        res = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
        th = _thresholds(q, t, w, h0)
        loose = edit_check(q, t, res, BWA_MEM_SCORING, th.s1)
        tight = edit_check(
            q, t, res, BWA_MEM_SCORING, th.s1, exact_left_seed=True
        )
        assert tight.score_ed <= loose.score_ed


class TestUnits:
    def test_exact_left_seeds_formula(self):
        seed = exact_left_seeds(30, BWA_MEM_SCORING)
        assert seed(0) == 24
        assert seed(5) == 30 - 6 - 5
        assert seed(100) == 0

    def test_no_region_no_threat(self):
        q = encode("ACGTACGT")
        t = encode("ACG")
        res = banded.extend(q, t, BWA_MEM_SCORING, 10, w=8)
        ed = edit_check(q, t, res, BWA_MEM_SCORING, s1=None)
        assert ed.score_ed == NO_THREAT

    def test_corner_seed_fires_once(self):
        from repro.core.editcheck import corner_seed

        seed = corner_seed(17, band=5)
        assert seed(6) == 17
        assert seed(7) == 0
        assert seed(5) == 0

    def test_dead_half_matrix_no_threat(self):
        # Negative S1 seeds nothing; the bound must be NO_THREAT, not 0,
        # so that a score_nb of 0 is never "beaten" by a phantom path.
        q = encode("ACGTACGT")
        t = encode("ACGTACGTACGTACGT")
        res = banded.extend(q, t, BWA_MEM_SCORING, 2, w=2)
        ed = edit_check(q, t, res, BWA_MEM_SCORING, s1=-5)
        assert ed.score_ed == NO_THREAT

    def test_non_dominating_scheme_rejected(self):
        q = encode("ACGTACGT")
        t = encode("ACGTACGTACGTACGT")
        res = banded.extend(q, t, BWA_MEM_SCORING, 10, w=2)
        with pytest.raises(ValueError):
            edit_check(
                q,
                t,
                res,
                BWA_MEM_SCORING,
                s1=10,
                region_scoring=AffineGap(
                    match=1, mismatch=9, gap_open=0, gap_extend=0
                ),
            )

    def test_distant_repeat_is_a_real_threat(self):
        # The query reappears after a long deletion: a left-entering
        # path genuinely beats the narrow band, and score_ed must not
        # pass a score below that path's value.
        q = encode("ACGTACGTAC")
        t = encode("GGGGGGGG" + "ACGTACGTAC")
        res = banded.extend(q, t, BWA_MEM_SCORING, 30, w=2)
        th = _thresholds(q, t, 2, 30)
        ed = edit_check(q, t, res, BWA_MEM_SCORING, th.s1)
        full = banded.extend(q, t, BWA_MEM_SCORING, 30)
        assert full.gscore > res.gscore
        assert ed.score_ed >= full.gscore
