"""Admissibility and unit tests for the E-score check."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING
from repro.core.escore import NO_THREAT, escore_check_passes, score_max_e
from repro.genome.sequence import encode
from tests.helpers import enumerate_paths

TINY = st.lists(st.integers(0, 3), min_size=1, max_size=6).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestAdmissibility:
    @settings(max_examples=120, deadline=None)
    @given(q=TINY, t=TINY, h0=st.integers(1, 20), w=st.integers(0, 4))
    def test_bounds_top_entering_paths(self, q, t, h0, w):
        """Every path whose first band departure is a downward crossing
        at column >= 1 must score at most scoreMax_E."""
        res = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
        bound = score_max_e(res, BWA_MEM_SCORING)
        for rec in enumerate_paths(q, t, BWA_MEM_SCORING, h0, w):
            if rec.first_departure is None:
                continue
            side, col = rec.first_departure
            if side == "down" and col >= 1:
                assert rec.score <= bound

    @settings(max_examples=60, deadline=None)
    @given(q=TINY, t=TINY, h0=st.integers(1, 20), w=st.integers(0, 4))
    def test_paper_formula_is_looser(self, q, t, h0, w):
        res = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
        tight = score_max_e(res, BWA_MEM_SCORING)
        loose = score_max_e(res, BWA_MEM_SCORING, paper_formula=True)
        assert loose >= tight


class TestUnits:
    def test_no_region_no_threat(self):
        q = encode("ACGTACGT")
        t = encode("ACG")
        res = banded.extend(q, t, BWA_MEM_SCORING, 10, w=8)
        assert res.boundary_e.size == 0
        assert score_max_e(res, BWA_MEM_SCORING) == NO_THREAT
        assert escore_check_passes(res, 1, BWA_MEM_SCORING)

    def test_dead_boundary_gives_no_threat(self):
        # Unrelated target with a weak seed: the band dies early and
        # the lower boundary never carries a live E value.
        q = encode("AAAAAAAAAA")
        t = encode("TTTTTTTTTTTTTTTTTT")
        res = banded.extend(q, t, BWA_MEM_SCORING, 3, w=2)
        assert score_max_e(res, BWA_MEM_SCORING) == NO_THREAT

    def test_live_boundary_produces_bound(self):
        # Strong seed, long target: the E channel stays alive across
        # the band's lower edge.
        q = encode("ACGTACGTACGTACGT")
        t = encode("ACGTACGTACGTACGT" + "ACGT")
        res = banded.extend(q, t, BWA_MEM_SCORING, 60, w=3)
        bound = score_max_e(res, BWA_MEM_SCORING)
        assert bound > NO_THREAT
        assert not escore_check_passes(res, bound, BWA_MEM_SCORING)
        assert escore_check_passes(res, bound + 1, BWA_MEM_SCORING)
