"""Bench trend file: record assembly, fingerprints, tolerant loads."""

from __future__ import annotations

import json

from repro.bench import (
    RECORD_SCHEMA,
    append_record,
    config_fingerprint,
    load_records,
    new_record,
)


def _record(metrics=None, config=None, **kwargs):
    return new_record(
        metrics or {"kernel.numpy.ext_per_s": 100.0},
        config or {"quick": True},
        quick=True,
        host=kwargs.pop("host", "testhost"),
        rev=kwargs.pop("rev", "abc1234"),
        timestamp=kwargs.pop("timestamp", 1_780_000_000.0),
    )


class TestRecord:
    def test_shape(self):
        record = _record()
        assert record["schema"] == RECORD_SCHEMA
        assert record["git_rev"] == "abc1234"
        assert record["host"] == "testhost"
        assert record["timestamp"].endswith("Z")
        assert record["fingerprint"] == config_fingerprint(
            {"quick": True}
        )

    def test_fingerprint_is_order_independent(self):
        assert config_fingerprint(
            {"a": 1, "b": [2, 3]}
        ) == config_fingerprint({"b": [2, 3], "a": 1})

    def test_fingerprint_changes_with_config(self):
        assert config_fingerprint({"reads": 120}) != config_fingerprint(
            {"reads": 400}
        )


class TestFile:
    def test_append_then_load_round_trips(self, tmp_path):
        path = tmp_path / "bench" / "history.jsonl"
        first, second = _record(), _record(rev="def5678")
        append_record(path, first)
        append_record(path, second)
        loaded = load_records(path)
        assert [r["git_rev"] for r in loaded] == ["abc1234", "def5678"]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_records(tmp_path / "nope.jsonl") == []

    def test_garbage_lines_skipped_with_warning(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        path.write_text(
            "not json at all\n"
            + json.dumps({"schema": 999, "metrics": {}})
            + "\n"
            + json.dumps(_record())
            + "\n"
        )
        loaded = load_records(path)
        assert len(loaded) == 1
        err = capsys.readouterr().err
        assert "unreadable" in err
        assert "schema" in err
