"""Suite discovery and assembly over a stub benchmarks directory."""

from __future__ import annotations

import textwrap

import pytest

from repro.bench import discover_benchmarks
from repro.bench.runner import default_benchmarks_dir, run_tier1


def _write_module(directory, stem, body):
    (directory / f"{stem}.py").write_text(textwrap.dedent(body))


@pytest.fixture()
def stub_dir(tmp_path):
    _write_module(
        tmp_path,
        "bench_alpha",
        """
        def tier1_bench(quick=False):
            return {"alpha.ops_per_s": 10.0 if quick else 100.0}
        """,
    )
    _write_module(
        tmp_path,
        "bench_beta",
        """
        def tier1_bench(quick=False):
            return {"beta.ops_per_s": 5.0}
        """,
    )
    # A deep pytest-only harness: no hook, must be skipped silently.
    _write_module(
        tmp_path,
        "bench_deep_harness",
        """
        def test_something(benchmark):
            pass
        """,
    )
    return tmp_path


class TestDiscovery:
    def test_finds_hooks_in_sorted_order(self, stub_dir):
        found = discover_benchmarks(stub_dir)
        assert [name for name, _ in found] == [
            "bench_alpha",
            "bench_beta",
        ]
        assert all(callable(hook) for _, hook in found)

    def test_hookless_modules_skipped(self, stub_dir):
        names = [name for name, _ in discover_benchmarks(stub_dir)]
        assert "bench_deep_harness" not in names

    def test_missing_directory_is_empty(self, tmp_path):
        assert discover_benchmarks(tmp_path / "nowhere") == []

    def test_repo_benchmarks_all_export_hooks(self):
        """The four real tier-1 benchmark modules stay wired in."""
        names = {
            name for name, _ in discover_benchmarks(default_benchmarks_dir())
        }
        assert {
            "bench_kernel_throughput",
            "bench_pipeline_throughput",
            "bench_durability_overhead",
            "bench_resilience_overhead",
        } <= names


class TestRunTier1:
    def test_collects_metrics_and_modules(self, stub_dir):
        lines = []
        metrics, modules = run_tier1(
            quick=True, bench_dir=stub_dir, log=lines.append
        )
        assert metrics == {"alpha.ops_per_s": 10.0, "beta.ops_per_s": 5.0}
        assert modules == ["bench_alpha", "bench_beta"]
        assert any("bench_alpha" in line for line in lines)

    def test_quick_flag_reaches_hooks(self, stub_dir):
        metrics, _ = run_tier1(quick=False, bench_dir=stub_dir)
        assert metrics["alpha.ops_per_s"] == 100.0

    def test_metric_collision_raises(self, stub_dir):
        _write_module(
            stub_dir,
            "bench_alpha_clone",
            """
            def tier1_bench(quick=False):
                return {"alpha.ops_per_s": 1.0}
            """,
        )
        with pytest.raises(ValueError, match="alpha.ops_per_s"):
            run_tier1(bench_dir=stub_dir)
