"""The regression gate's contract: the acceptance-criteria tests.

The two rules the ISSUE pins — a deliberately injected >=10% kernel
throughput regression must flip the gate to failing, and *any*
correct-locus-rate drop must — are exercised here on synthetic
records, plus the comparability rules (fingerprint and host matching)
that keep the gate honest across machines.
"""

from __future__ import annotations

import pytest

from repro.bench import check_record, new_record


def _record(
    metrics, host="ci", config=None, rev="abc1234", ts=1.7e9, quick=True
):
    return new_record(
        metrics,
        config or {"quick": True},
        quick=quick,
        host=host,
        rev=rev,
        timestamp=ts,
    )


BASE_METRICS = {
    "kernel.numpy.ext_per_s": 2000.0,
    "pipeline.batched.reads_per_s": 700.0,
    "accuracy.correct_locus_rate": 1.0,
    "resilience.overhead.fraction": 0.01,
}


class TestThroughputGate:
    def test_clean_run_passes(self):
        result = check_record(
            _record(BASE_METRICS), [_record(BASE_METRICS)]
        )
        assert result.ok
        assert result.failures == []

    def test_injected_ten_percent_kernel_regression_fails(self):
        regressed = dict(BASE_METRICS)
        regressed["kernel.numpy.ext_per_s"] = 2000.0 * 0.89
        result = check_record(
            _record(regressed), [_record(BASE_METRICS)]
        )
        assert not result.ok
        assert "kernel.numpy.ext_per_s" in result.failures

    def test_drop_within_tolerance_passes(self):
        wobbly = dict(BASE_METRICS)
        wobbly["kernel.numpy.ext_per_s"] = 2000.0 * 0.95
        assert check_record(
            _record(wobbly), [_record(BASE_METRICS)]
        ).ok

    def test_baseline_is_median_of_recent_runs(self):
        history = [
            _record({**BASE_METRICS, "kernel.numpy.ext_per_s": v})
            for v in (1000.0, 2000.0, 3000.0)
        ]
        # Median 2000 -> floor 1800; 1850 passes even though the best
        # baseline run hit 3000.
        probe = dict(BASE_METRICS)
        probe["kernel.numpy.ext_per_s"] = 1850.0
        assert check_record(_record(probe), history).ok

    def test_other_hosts_never_gate_throughput(self):
        fast_elsewhere = [
            _record(
                {**BASE_METRICS, "kernel.numpy.ext_per_s": 99999.0},
                host="big-iron",
            )
        ]
        result = check_record(
            _record(BASE_METRICS), fast_elsewhere
        )
        assert result.ok
        assert any("not gated" in line for line in result.lines)

    def test_other_fingerprints_never_gate(self):
        other_config = [
            _record(BASE_METRICS, config={"quick": False})
        ]
        regressed = dict(BASE_METRICS)
        regressed["kernel.numpy.ext_per_s"] = 1.0
        assert check_record(_record(regressed), other_config).ok

    def test_quick_and_full_runs_never_gate_each_other(self):
        """Same fingerprint, different ``quick`` flag: incomparable.

        A quick run's tiny corpus posts very different absolute
        throughput than a full run; before the quick-flag check a
        full record could be gated against quick-run medians (or
        vice versa) whenever their config fingerprints collided.
        """
        shared_config = {"modules": ["kernels"], "seed": 7}
        quick_history = [
            _record(
                {**BASE_METRICS, "kernel.numpy.ext_per_s": 50_000.0},
                config=shared_config,
                quick=True,
            )
        ]
        slow_full = dict(BASE_METRICS)
        slow_full["kernel.numpy.ext_per_s"] = 2000.0
        result = check_record(
            _record(slow_full, config=shared_config, quick=False),
            quick_history,
        )
        assert result.ok
        assert any("not gated" in line for line in result.lines)
        # And the symmetric case: a quick probe ignores full history.
        assert check_record(
            _record(slow_full, config=shared_config, quick=True),
            [
                _record(
                    {
                        **BASE_METRICS,
                        "kernel.numpy.ext_per_s": 50_000.0,
                    },
                    config=shared_config,
                    quick=False,
                )
            ],
        ).ok

    def test_overhead_fractions_are_trend_only(self):
        worse = dict(BASE_METRICS)
        worse["resilience.overhead.fraction"] = 0.99
        assert check_record(
            _record(worse), [_record(BASE_METRICS)]
        ).ok

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            check_record(_record(BASE_METRICS), [], max_drop=1.5)


class TestAccuracyGate:
    def test_any_accuracy_drop_fails(self):
        dropped = dict(BASE_METRICS)
        dropped["accuracy.correct_locus_rate"] = 0.9999
        result = check_record(
            _record(dropped), [_record(BASE_METRICS)]
        )
        assert not result.ok
        assert "accuracy.correct_locus_rate" in result.failures

    def test_accuracy_gates_across_hosts(self):
        dropped = dict(BASE_METRICS)
        dropped["accuracy.correct_locus_rate"] = 0.95
        result = check_record(
            _record(dropped),
            [_record(BASE_METRICS, host="another-machine")],
        )
        assert not result.ok

    def test_accuracy_improvement_passes(self):
        history = [
            _record(
                {**BASE_METRICS, "accuracy.correct_locus_rate": 0.98}
            )
        ]
        assert check_record(_record(BASE_METRICS), history).ok

    def test_absolute_floor(self):
        low = dict(BASE_METRICS)
        low["accuracy.correct_locus_rate"] = 0.97
        assert not check_record(
            _record(low), [], min_correct_locus=0.99
        ).ok
        assert check_record(
            _record(BASE_METRICS), [], min_correct_locus=0.99
        ).ok

    def test_missing_accuracy_with_floor_fails(self):
        no_accuracy = {"kernel.numpy.ext_per_s": 2000.0}
        assert not check_record(
            _record(no_accuracy), [], min_correct_locus=0.99
        ).ok

    def test_empty_baseline_skips_with_note(self):
        result = check_record(_record(BASE_METRICS), [])
        assert result.ok
        assert all("not gated" in line for line in result.lines)
