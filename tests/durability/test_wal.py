"""Request-WAL tests: framing, torn tails, and the lost-set contract.

The WAL's one promise: after a crash, ``scan().lost`` names every
admitted request that was never answered (it may conservatively also
name requests whose ``done`` record didn't reach the file — over-
reporting is allowed, silence is not).
"""

from __future__ import annotations

import pytest

from repro.durability.wal import (
    WAL_NAME,
    RequestWAL,
    WalReplay,
    _frame,
    _unframe,
)


class TestFraming:
    def test_frame_round_trips(self):
        payload = {"op": "admit", "id": "r1", "seq": 3}
        assert _unframe(_frame(payload)) == payload

    def test_frame_is_one_terminated_line(self):
        raw = _frame({"op": "done", "id": "r1"})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1

    @pytest.mark.parametrize(
        "raw",
        [
            b"",
            b"short\n",
            b"deadbeef {\"op\": \"admit\"}\n",  # wrong checksum
            b"zzzzzzzz {\"op\": \"admit\"}\n",  # non-hex checksum
            b"00000000 [1, 2]\n",  # not an object
            _frame({"op": "admit"})[:-5],  # torn mid-payload
        ],
    )
    def test_corrupt_frames_are_rejected_not_raised(self, raw):
        assert _unframe(raw) is None

    def test_flipped_byte_fails_the_checksum(self):
        raw = bytearray(_frame({"op": "admit", "id": "r1"}))
        raw[-3] ^= 0x01
        assert _unframe(bytes(raw)) is None


class TestReplay:
    def test_lost_is_admitted_minus_completed_in_order(self):
        replay = WalReplay(
            admitted={
                "a": {"id": "a"},
                "b": {"id": "b"},
                "c": {"id": "c"},
            },
            completed={"b"},
            torn_lines=0,
        )
        assert [rec["id"] for rec in replay.lost] == ["a", "c"]


class TestRequestWal:
    def test_admit_done_round_trip(self, tmp_path):
        path = tmp_path / WAL_NAME
        wal = RequestWAL(path)
        assert wal.admit("r1", "c1", "read0") == 1
        assert wal.admit("r2", "c1", "read1") == 2
        wal.done("r1")
        wal.close()
        replay = RequestWAL.scan(path)
        assert set(replay.admitted) == {"r1", "r2"}
        assert replay.admitted["r1"]["client"] == "c1"
        assert replay.completed == {"r1"}
        assert [rec["id"] for rec in replay.lost] == ["r2"]
        assert replay.torn_lines == 0

    def test_scan_missing_file_is_empty(self, tmp_path):
        replay = RequestWAL.scan(tmp_path / "nope.wal")
        assert replay.admitted == {}
        assert replay.lost == []

    def test_torn_tail_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / WAL_NAME
        wal = RequestWAL(path)
        wal.admit("r1", "c", "read0")
        wal.done("r1")
        wal.close()
        with open(path, "ab") as handle:
            handle.write(b"0f3a {\"op\": \"adm")  # crash mid-write
        replay = RequestWAL.scan(path)
        assert replay.lost == []
        assert replay.torn_lines == 1

    def test_open_dir_rotates_the_previous_log(self, tmp_path):
        first = RequestWAL.open_dir(tmp_path)
        first.admit("old", "c", "read0")
        first.close()
        second = RequestWAL.open_dir(tmp_path)
        second.admit("new", "c", "read1")
        second.close()
        prev = RequestWAL.scan(tmp_path / (WAL_NAME + ".prev"))
        live = RequestWAL.scan(tmp_path / WAL_NAME)
        assert set(prev.admitted) == {"old"}
        assert set(live.admitted) == {"new"}

    def test_reopen_appends_rather_than_truncates(self, tmp_path):
        path = tmp_path / WAL_NAME
        wal = RequestWAL(path)
        wal.admit("r1", "c", "read0")
        wal.close()
        again = RequestWAL(path)
        again.admit("r2", "c", "read1")
        again.close()
        assert set(RequestWAL.scan(path).admitted) == {"r1", "r2"}

    def test_sync_survives_a_closed_handle(self, tmp_path):
        wal = RequestWAL(tmp_path / WAL_NAME)
        wal.close()
        wal.sync()  # must not raise
