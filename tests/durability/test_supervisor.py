"""Crash-path tests for the shard supervisor.

Each poison case drives :func:`align_supervised` with a deterministic
:class:`PoisonPlan` — a worker SIGKILLed mid-window, a raising read, a
transient crash, a wedged heartbeat — and asserts the run recovers
with the expected restart accounting and, for true poison, exactly one
quarantined read while every healthy read's record stays byte-identical
to an unsupervised run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.aligner.parallel import (
    EngineSpec,
    align_sharded,
    align_supervised,
)
from repro.durability.supervisor import (
    HANG,
    KILL,
    KILL_ONCE,
    QUARANTINE_TAG,
    RAISE,
    PoisonPlan,
    Quarantine,
    SupervisorPolicy,
)
from repro.genome.sam import SamRecord
from repro.genome.sequence import decode
from repro.genome.synth import (
    PLATINUM_LIKE,
    ReadSimulator,
    synthesize_reference,
)
from repro.obs import names

POISON_INDEX = 7
BATCH = 6


@pytest.fixture(scope="module")
def corpus():
    """24 simulated reads — 4 windows of 6 at the test batch size."""
    rng = np.random.default_rng(31)
    reference = synthesize_reference(8_000, rng)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=32)
    return reference, sim.simulate(24)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Keep the global obs state isolated per test."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _baseline_lines(reference, reads):
    records = align_sharded(
        reference, reads, workers=1, batch_size=BATCH, seeding="kmer"
    )
    return [rec.to_line() for rec in records]


def _policy(**overrides):
    defaults = dict(
        max_restarts=30,
        crash_threshold=2,
        heartbeat_interval=0.05,
        hung_timeout=30.0,
        poll_interval=0.02,
    )
    defaults.update(overrides)
    return SupervisorPolicy(**defaults)


class TestPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_restarts": -1},
            {"crash_threshold": 0},
            {"heartbeat_interval": 0.0},
            {"hung_timeout": 0.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorPolicy(**kwargs)


class TestPoisonPlan:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown poison mode"):
            PoisonPlan(modes={"r1": "segfault"})

    def test_kill_once_needs_marker_dir(self):
        with pytest.raises(ValueError, match="marker_dir"):
            PoisonPlan(modes={"r1": KILL_ONCE})

    def test_benign_read_is_untouched(self):
        PoisonPlan(modes={"r1": RAISE}).apply("r2")  # no raise

    def test_raise_mode_raises(self):
        with pytest.raises(RuntimeError, match="poison read"):
            PoisonPlan(modes={"r1": RAISE}).apply("r1")


class TestQuarantine:
    def test_writes_fastq_and_sidecar(self, tmp_path):
        quarantine = Quarantine(tmp_path)
        codes = np.array([0, 1, 2, 3], dtype=np.uint8)
        assert quarantine.add("readX", codes, "it crashed")
        fastq = (tmp_path / Quarantine.FASTQ).read_text()
        assert fastq == f"@readX\n{decode(codes)}\n+\nIIII\n"
        sidecar = (tmp_path / Quarantine.SIDECAR).read_text()
        assert "readX\tit crashed" in sidecar

    def test_dedupes_by_name(self, tmp_path):
        quarantine = Quarantine(tmp_path)
        codes = np.zeros(4, dtype=np.uint8)
        assert quarantine.add("readX", codes, "first")
        assert not quarantine.add("readX", codes, "second")
        fastq = (tmp_path / Quarantine.FASTQ).read_text()
        assert fastq.count("@readX") == 1

    def test_dedupe_survives_reopen(self, tmp_path):
        codes = np.zeros(4, dtype=np.uint8)
        Quarantine(tmp_path).add("readX", codes, "first")
        reopened = Quarantine(tmp_path)
        assert "readX" in reopened.names
        assert not reopened.add("readX", codes, "again")


class TestHealthy:
    def test_matches_unsupervised_output(self, corpus):
        reference, reads = corpus
        result = align_supervised(
            reference, reads, workers=2, batch_size=BATCH, seeding="kmer"
        )
        assert not result.interrupted
        assert result.restarts == 0
        assert result.quarantined == []
        lines = [rec.to_line() for rec in result.records]
        assert lines == _baseline_lines(reference, reads)

    def test_rejects_zero_workers(self, corpus):
        reference, reads = corpus
        with pytest.raises(ValueError):
            align_supervised(reference, reads, workers=0)

    def test_immediate_stop_is_interrupted(self, corpus):
        reference, reads = corpus
        result = align_supervised(
            reference,
            reads,
            workers=2,
            batch_size=BATCH,
            seeding="kmer",
            should_stop=lambda: True,
        )
        assert result.interrupted
        assert result.records == []

    def test_spawn_start_method(self, corpus):
        reference, reads = corpus
        result = align_supervised(
            reference,
            reads[:8],
            workers=2,
            batch_size=4,
            seeding="kmer",
            start_method="spawn",
        )
        lines = [rec.to_line() for rec in result.records]
        assert lines == _baseline_lines(reference, reads[:8])


def _expected_with_quarantined(reference, reads, poison_name):
    """Baseline lines with the poison read's record swapped for the
    unmapped ``XF:Z:quarantined`` record the supervisor emits."""
    expected = []
    for read, line in zip(reads, _baseline_lines(reference, reads)):
        if read.name == poison_name:
            expected.append(
                SamRecord.unmapped(
                    read.name,
                    decode(read.codes),
                    tags=(QUARANTINE_TAG,),
                ).to_line()
            )
        else:
            expected.append(line)
    return expected


@pytest.mark.chaos
class TestPoisonRuns:
    def test_sigkill_poison_is_bisected_and_quarantined(
        self, corpus, tmp_path
    ):
        """A read that SIGKILLs its worker is narrowed by bisection.

        Window 1 (reads 6..11) crashes twice at depth 0, then each
        bisection level crashes once: 2 + 1 + 1 + 1 = 5 restarts to
        isolate read 7, deterministically.
        """
        reference, reads = corpus
        poison = reads[POISON_INDEX].name
        obs.enable()
        quarantine = Quarantine(tmp_path)
        result = align_supervised(
            reference,
            reads,
            workers=2,
            batch_size=BATCH,
            seeding="kmer",
            policy=_policy(),
            poison=PoisonPlan(modes={poison: KILL}),
            quarantine=quarantine,
        )
        assert not result.interrupted
        assert result.quarantined == [poison]
        assert result.restarts == 5
        counters = obs.get_registry().snapshot()["counters"]
        assert counters[names.PIPELINE_SHARD_RESTARTS] == 5
        assert counters[names.PIPELINE_READS_QUARANTINED] == 1
        assert poison in quarantine.names
        lines = [rec.to_line() for rec in result.records]
        assert lines == _expected_with_quarantined(
            reference, reads, poison
        )

    def test_raising_poison_quarantined_without_restarts(
        self, corpus, tmp_path
    ):
        """A raising read fails cleanly: bisection, zero respawns."""
        reference, reads = corpus
        poison = reads[POISON_INDEX].name
        result = align_supervised(
            reference,
            reads,
            workers=2,
            batch_size=BATCH,
            seeding="kmer",
            policy=_policy(),
            poison=PoisonPlan(modes={poison: RAISE}),
            quarantine=Quarantine(tmp_path),
        )
        assert result.restarts == 0
        assert result.quarantined == [poison]
        lines = [rec.to_line() for rec in result.records]
        assert lines == _expected_with_quarantined(
            reference, reads, poison
        )

    def test_transient_crash_recovers_completely(self, corpus, tmp_path):
        """``kill_once`` models a transient fault: one restart, no
        quarantine, byte-identical output."""
        reference, reads = corpus
        poison = reads[POISON_INDEX].name
        result = align_supervised(
            reference,
            reads,
            workers=2,
            batch_size=BATCH,
            seeding="kmer",
            policy=_policy(),
            poison=PoisonPlan(
                modes={poison: KILL_ONCE}, marker_dir=str(tmp_path)
            ),
        )
        assert result.restarts == 1
        assert result.quarantined == []
        lines = [rec.to_line() for rec in result.records]
        assert lines == _baseline_lines(reference, reads)

    def test_restart_budget_exhaustion_raises(self, corpus, tmp_path):
        from repro.durability.supervisor import SupervisorError

        reference, reads = corpus
        poison = reads[POISON_INDEX].name
        with pytest.raises(SupervisorError, match="restart budget"):
            align_supervised(
                reference,
                reads,
                workers=2,
                batch_size=BATCH,
                seeding="kmer",
                policy=_policy(max_restarts=2),
                poison=PoisonPlan(modes={poison: KILL}),
            )

    @pytest.mark.slow
    def test_hung_worker_is_killed_and_poison_quarantined(
        self, corpus, tmp_path
    ):
        """A wedged worker (heart stopped) is detected via the
        heartbeat board, killed, and its poison read quarantined."""
        reference, reads = corpus
        poison = reads[POISON_INDEX].name
        result = align_supervised(
            reference,
            reads,
            workers=2,
            batch_size=BATCH,
            seeding="kmer",
            policy=_policy(hung_timeout=1.0),
            poison=PoisonPlan(modes={poison: HANG}),
            quarantine=Quarantine(tmp_path),
        )
        assert result.quarantined == [poison]
        assert result.restarts == 5
        lines = [rec.to_line() for rec in result.records]
        assert lines == _expected_with_quarantined(
            reference, reads, poison
        )
