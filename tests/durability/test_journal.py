"""Tests for the checkpoint journal: atomicity, CRCs, resume, stitch."""

from __future__ import annotations

import io
import json

import pytest

from repro.durability.journal import (
    MANIFEST_NAME,
    JournalError,
    RunJournal,
    atomic_write_bytes,
)
from repro.genome.sam import SamRecord, write_sam

FP = {"version": 1, "engine": "seedex", "reads_sha256": "abc"}


def _records(start: int, count: int) -> list[SamRecord]:
    return [
        SamRecord(
            qname=f"read{start + i}",
            flag=0,
            rname="chr1",
            pos=100 + start + i,
            mapq=60,
            cigar="4M",
            seq="ACGT",
        )
        for i in range(count)
    ]


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        path = tmp_path / "x.bin"
        atomic_write_bytes(path, b"hello")
        assert path.read_bytes() == b"hello"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"old")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_no_tmp_litter(self, tmp_path):
        atomic_write_bytes(tmp_path / "x.bin", b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["x.bin"]


class TestCreate:
    def test_create_writes_manifest(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run", FP, 3)
        assert (tmp_path / "run" / MANIFEST_NAME).exists()
        assert journal.completed == frozenset()
        assert not journal.is_complete()

    def test_refuses_existing_journal(self, tmp_path):
        RunJournal.create(tmp_path / "run", FP, 3)
        with pytest.raises(JournalError, match="already holds"):
            RunJournal.create(tmp_path / "run", FP, 3)


class TestRecord:
    def test_record_commits_segment(self, tmp_path):
        journal = RunJournal.create(tmp_path, FP, 2)
        journal.record(0, _records(0, 3))
        assert journal.completed == frozenset({0})
        assert journal.segment_path(0).exists()

    def test_record_is_idempotent(self, tmp_path):
        journal = RunJournal.create(tmp_path, FP, 2)
        journal.record(0, _records(0, 3))
        before = journal.segment_path(0).read_bytes()
        journal.record(0, _records(5, 3))  # different payload: ignored
        assert journal.segment_path(0).read_bytes() == before

    def test_record_outside_plan_rejected(self, tmp_path):
        journal = RunJournal.create(tmp_path, FP, 2)
        with pytest.raises(JournalError, match="outside plan"):
            journal.record(7, _records(0, 1))

    def test_complete_after_all_windows(self, tmp_path):
        journal = RunJournal.create(tmp_path, FP, 2)
        journal.record(0, _records(0, 2))
        journal.record(1, _records(2, 2))
        assert journal.is_complete()


class TestResume:
    def test_resume_sees_committed_windows(self, tmp_path):
        journal = RunJournal.create(tmp_path, FP, 3)
        journal.record(1, _records(4, 2))
        reopened, dropped = RunJournal.resume(tmp_path, FP, 3)
        assert reopened.completed == frozenset({1})
        assert dropped == []

    def test_resume_without_manifest_rejected(self, tmp_path):
        with pytest.raises(JournalError, match="no journal manifest"):
            RunJournal.resume(tmp_path, FP, 3)

    def test_fingerprint_drift_rejected(self, tmp_path):
        RunJournal.create(tmp_path, FP, 3)
        drifted = dict(FP, engine="full")
        with pytest.raises(JournalError, match="configuration changed"):
            RunJournal.resume(tmp_path, drifted, 3)

    def test_window_plan_drift_rejected(self, tmp_path):
        RunJournal.create(tmp_path, FP, 3)
        with pytest.raises(JournalError, match="window plan changed"):
            RunJournal.resume(tmp_path, FP, 4)

    def test_manifest_corruption_rejected(self, tmp_path):
        RunJournal.create(tmp_path, FP, 3)
        manifest = tmp_path / MANIFEST_NAME
        wrapper = json.loads(manifest.read_text())
        wrapper["payload"]["total_windows"] = 99  # CRC now stale
        manifest.write_text(json.dumps(wrapper))
        with pytest.raises(JournalError, match="CRC"):
            RunJournal.resume(tmp_path, FP, 3)

    def test_corrupt_segment_dropped_and_recomputed(self, tmp_path):
        journal = RunJournal.create(tmp_path, FP, 3)
        journal.record(0, _records(0, 2))
        journal.record(1, _records(2, 2))
        journal.segment_path(1).write_bytes(b"garbage\n")
        reopened, dropped = RunJournal.resume(tmp_path, FP, 3)
        assert dropped == [1]
        assert reopened.completed == frozenset({0})
        assert not reopened.segment_path(1).exists()

    def test_missing_segment_dropped(self, tmp_path):
        journal = RunJournal.create(tmp_path, FP, 2)
        journal.record(0, _records(0, 2))
        journal.segment_path(0).unlink()
        reopened, dropped = RunJournal.resume(tmp_path, FP, 2)
        assert dropped == [0]
        assert reopened.completed == frozenset()


class TestStitch:
    def test_stitch_matches_write_sam(self, tmp_path):
        records = _records(0, 7)
        journal = RunJournal.create(tmp_path, FP, 3)
        journal.record(0, records[0:3])
        journal.record(2, records[6:7])  # out-of-order commits are fine
        journal.record(1, records[3:6])
        out = tmp_path / "out.sam"
        journal.stitch_to(out, "chr1", 1000)
        buf = io.StringIO()
        write_sam(buf, records, "chr1", 1000)
        assert out.read_text() == buf.getvalue()

    def test_stitch_refuses_incomplete(self, tmp_path):
        journal = RunJournal.create(tmp_path, FP, 2)
        journal.record(0, _records(0, 2))
        with pytest.raises(JournalError, match="incomplete"):
            journal.stitch_to(tmp_path / "out.sam", "chr1", 1000)

    def test_stitch_detects_late_corruption(self, tmp_path):
        journal = RunJournal.create(tmp_path, FP, 1)
        journal.record(0, _records(0, 2))
        journal.segment_path(0).write_bytes(b"tampered\n")
        with pytest.raises(JournalError, match="CRC"):
            journal.stitch_to(tmp_path / "out.sam", "chr1", 1000)
