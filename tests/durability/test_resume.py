"""End-to-end tests for journaled runs: interrupt, resume, stitch."""

from __future__ import annotations

import io
import signal

import numpy as np
import pytest

from repro import obs
from repro.aligner.parallel import EngineSpec, align_sharded
from repro.durability.journal import JournalError, RunJournal
from repro.durability.runner import (
    GracefulShutdown,
    RunInterrupted,
    fingerprint_reads,
    run_fingerprint,
    run_journaled,
)
from repro.genome.sam import write_sam
from repro.genome.synth import (
    PLATINUM_LIKE,
    ReadSimulator,
    synthesize_reference,
)

BATCH = 4


@pytest.fixture(scope="module")
def corpus():
    """24 simulated reads — 6 windows of 4 at the test batch size."""
    rng = np.random.default_rng(31)
    reference = synthesize_reference(8_000, rng)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=32)
    return reference, sim.simulate(24)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Keep the global obs state isolated per test."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def baseline_sam(corpus):
    """The uninterrupted ground truth: write_sam of a plain run."""
    reference, reads = corpus
    records = align_sharded(
        reference, reads, workers=1, batch_size=BATCH, seeding="kmer"
    )
    buf = io.StringIO()
    write_sam(buf, records, "chr1", len(reference))
    return buf.getvalue().encode()


def _fingerprint(reads):
    return {"test": 1, "reads": fingerprint_reads(
        (r.name, r.codes) for r in reads
    )}


class TestRunJournaled:
    def test_complete_run_stitches_baseline_bytes(
        self, corpus, baseline_sam, tmp_path
    ):
        reference, reads = corpus
        out = tmp_path / "out.sam"
        report = run_journaled(
            tmp_path / "run",
            reference,
            reads,
            _fingerprint(reads),
            out,
            "chr1",
            workers=2,
            batch_size=BATCH,
            seeding="kmer",
        )
        assert out.read_bytes() == baseline_sam
        assert report.total_windows == 6
        assert report.skipped_windows == 0
        assert not report.resumed

    def test_interrupt_then_resume_is_byte_identical(
        self, corpus, baseline_sam, tmp_path
    ):
        reference, reads = corpus
        run_dir = tmp_path / "run"
        out = tmp_path / "out.sam"
        first_segment = run_dir / "segments" / "window-00000.sam"

        # Drain as soon as the first window commits: some windows are
        # journaled, the rest are not, exactly like a mid-run SIGTERM.
        with pytest.raises(RunInterrupted) as excinfo:
            run_journaled(
                run_dir,
                reference,
                reads,
                _fingerprint(reads),
                out,
                "chr1",
                workers=2,
                batch_size=BATCH,
                seeding="kmer",
                should_stop=first_segment.exists,
            )
        assert 0 < excinfo.value.done < excinfo.value.total == 6
        assert "--resume" in str(excinfo.value)
        assert not out.exists()

        report = run_journaled(
            run_dir,
            reference,
            reads,
            _fingerprint(reads),
            out,
            "chr1",
            workers=2,
            batch_size=BATCH,
            resume=True,
            seeding="kmer",
        )
        assert report.resumed
        assert report.skipped_windows == excinfo.value.done
        assert out.read_bytes() == baseline_sam

    def test_resume_at_different_worker_count(
        self, corpus, baseline_sam, tmp_path
    ):
        """Worker count is not in the fingerprint: a 2-worker run may
        resume single-process with identical output."""
        reference, reads = corpus
        run_dir = tmp_path / "run"
        out = tmp_path / "out.sam"
        first_segment = run_dir / "segments" / "window-00000.sam"
        with pytest.raises(RunInterrupted):
            run_journaled(
                run_dir, reference, reads, _fingerprint(reads), out,
                "chr1", workers=2, batch_size=BATCH, seeding="kmer",
                should_stop=first_segment.exists,
            )
        run_journaled(
            run_dir, reference, reads, _fingerprint(reads), out,
            "chr1", workers=1, batch_size=BATCH, resume=True,
            seeding="kmer",
        )
        assert out.read_bytes() == baseline_sam

    def test_fresh_run_refuses_used_directory(self, corpus, tmp_path):
        reference, reads = corpus
        out = tmp_path / "out.sam"
        run_journaled(
            tmp_path / "run", reference, reads, _fingerprint(reads),
            out, "chr1", batch_size=BATCH, seeding="kmer",
        )
        with pytest.raises(JournalError, match="already holds"):
            run_journaled(
                tmp_path / "run", reference, reads,
                _fingerprint(reads), out, "chr1", batch_size=BATCH,
                seeding="kmer",
            )

    def test_resume_of_finished_run_restitches(
        self, corpus, baseline_sam, tmp_path
    ):
        reference, reads = corpus
        out = tmp_path / "out.sam"
        run_journaled(
            tmp_path / "run", reference, reads, _fingerprint(reads),
            out, "chr1", batch_size=BATCH, seeding="kmer",
        )
        out.unlink()
        report = run_journaled(
            tmp_path / "run", reference, reads, _fingerprint(reads),
            out, "chr1", batch_size=BATCH, resume=True, seeding="kmer",
        )
        assert report.skipped_windows == 6
        assert out.read_bytes() == baseline_sam

    def test_resume_with_drifted_fingerprint_refused(
        self, corpus, tmp_path
    ):
        reference, reads = corpus
        run_dir = tmp_path / "run"
        out = tmp_path / "out.sam"
        first_segment = run_dir / "segments" / "window-00000.sam"
        with pytest.raises(RunInterrupted):
            run_journaled(
                run_dir, reference, reads, _fingerprint(reads), out,
                "chr1", workers=2, batch_size=BATCH, seeding="kmer",
                should_stop=first_segment.exists,
            )
        with pytest.raises(JournalError, match="configuration changed"):
            run_journaled(
                run_dir, reference, reads, {"test": 2}, out, "chr1",
                batch_size=BATCH, resume=True, seeding="kmer",
            )


class TestFingerprints:
    def test_run_fingerprint_pins_contents_not_paths(self, tmp_path):
        a = tmp_path / "a.fa"
        b = tmp_path / "b.fa"
        a.write_text(">chr1\nACGT\n")
        b.write_text(">chr1\nACGT\n")
        reads = tmp_path / "r.fq"
        reads.write_text("@r1\nACGT\n+\nIIII\n")
        spec = EngineSpec(kind="batched")
        fp_a = run_fingerprint(a, reads, spec, 64, "kmer")
        fp_b = run_fingerprint(b, reads, spec, 64, "kmer")
        assert fp_a == fp_b

    def test_run_fingerprint_sees_every_knob(self, tmp_path):
        ref = tmp_path / "a.fa"
        ref.write_text(">chr1\nACGT\n")
        reads = tmp_path / "r.fq"
        reads.write_text("@r1\nACGT\n+\nIIII\n")
        base = run_fingerprint(
            ref, reads, EngineSpec(kind="batched"), 64, "kmer"
        )
        assert base != run_fingerprint(
            ref, reads, EngineSpec(kind="full"), 64, "kmer"
        )
        assert base != run_fingerprint(
            ref, reads, EngineSpec(kind="batched"), 32, "kmer"
        )
        assert base != run_fingerprint(
            ref, reads, EngineSpec(kind="batched"), 64, "kmer",
            on_bad_record="quarantine",
        )

    def test_fingerprint_reads_orders_and_contents(self):
        a = [("r1", np.array([0, 1], dtype=np.uint8)),
             ("r2", np.array([2, 3], dtype=np.uint8))]
        b = list(reversed(a))
        assert fingerprint_reads(a) == fingerprint_reads(a)
        assert fingerprint_reads(a) != fingerprint_reads(b)


class TestGracefulShutdown:
    def test_first_signal_requests_drain(self):
        with GracefulShutdown(signals=(signal.SIGTERM,)) as shutdown:
            assert not shutdown()
            signal.raise_signal(signal.SIGTERM)
            assert shutdown()
            assert shutdown.signal_number == signal.SIGTERM

    def test_second_signal_escalates(self):
        with pytest.raises(KeyboardInterrupt):
            with GracefulShutdown(signals=(signal.SIGTERM,)):
                signal.raise_signal(signal.SIGTERM)
                signal.raise_signal(signal.SIGTERM)

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with GracefulShutdown(signals=(signal.SIGTERM,)):
            pass
        assert signal.getsignal(signal.SIGTERM) is before
