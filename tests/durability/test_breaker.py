"""Tests for the job-count circuit breaker state machine."""

from __future__ import annotations

import pytest

from repro.durability.breaker import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
)
from repro.obs import names
from repro.obs.metrics import MetricsRegistry


def _fail_jobs(breaker: CircuitBreaker, count: int) -> None:
    for _ in range(count):
        assert breaker.allow()
        breaker.record_failure()


class TestPolicy:
    def test_defaults_valid(self):
        BreakerPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"probe_interval": 0},
            {"probe_backoff": 0.5},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BreakerPolicy(**kwargs)


class TestTrip:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        _fail_jobs(breaker, 2)
        assert breaker.state == BreakerState.CLOSED
        assert breaker.trips == 0

    def test_trips_at_threshold(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        _fail_jobs(breaker, 3)
        assert breaker.state == BreakerState.OPEN
        assert breaker.trips == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        _fail_jobs(breaker, 2)
        assert breaker.allow()
        breaker.record_success()
        _fail_jobs(breaker, 2)
        assert breaker.state == BreakerState.CLOSED

    def test_open_short_circuits(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, probe_interval=10)
        )
        _fail_jobs(breaker, 1)
        for _ in range(5):
            assert not breaker.allow()
        assert breaker.short_circuits == 5


class TestProbe:
    def test_probe_arms_after_interval(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, probe_interval=3)
        )
        _fail_jobs(breaker, 1)
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()  # third open job is the probe
        assert breaker.state == BreakerState.HALF_OPEN
        assert breaker.probes == 1

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, probe_interval=1)
        )
        _fail_jobs(breaker, 1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_backoff(self):
        breaker = CircuitBreaker(
            BreakerPolicy(
                failure_threshold=1, probe_interval=2, probe_backoff=2.0
            )
        )
        _fail_jobs(breaker, 1)
        assert not breaker.allow()
        assert breaker.allow()  # probe
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        # Backed-off interval is 4: three short circuits, then a probe.
        denied = 0
        while not breaker.allow():
            denied += 1
        assert denied == 3
        assert breaker.state == BreakerState.HALF_OPEN

    def test_backoff_capped(self):
        policy = BreakerPolicy(
            failure_threshold=1,
            probe_interval=4,
            probe_backoff=10.0,
            probe_interval_cap=8,
        )
        breaker = CircuitBreaker(policy)
        _fail_jobs(breaker, 1)
        for _ in range(3):  # fail probes repeatedly
            while not breaker.allow():
                pass
            breaker.record_failure()
        assert breaker._interval == 8

    def test_recovery_resets_backoff(self):
        breaker = CircuitBreaker(
            BreakerPolicy(
                failure_threshold=1, probe_interval=2, probe_backoff=2.0
            )
        )
        _fail_jobs(breaker, 1)
        while not breaker.allow():
            pass
        breaker.record_failure()  # probe fails: interval -> 4
        while not breaker.allow():
            pass
        breaker.record_success()  # probe passes: interval back to 2
        assert breaker._interval == 2


class TestEventsAndMetrics:
    def test_events_record_transitions(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, probe_interval=1)
        )
        _fail_jobs(breaker, 1)
        assert breaker.allow()  # probe immediately
        breaker.record_success()
        states = [(event.old, event.new) for event in breaker.events]
        assert states == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]

    def test_metrics_mirrored_to_registry(self):
        registry = MetricsRegistry()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, probe_interval=2),
            registry=registry,
        )
        _fail_jobs(breaker, 1)
        assert not breaker.allow()
        assert breaker.allow()  # probe
        breaker.record_failure()
        snap = registry.snapshot()
        counters = snap["counters"]
        transitions = names.RESILIENCE_BREAKER_TRANSITIONS
        assert counters[f"{transitions}{{to=open}}"] == 2
        assert counters[f"{transitions}{{to=half_open}}"] == 1
        assert (
            counters[names.RESILIENCE_BREAKER_SHORT_CIRCUITS] == 1
        )
        assert counters[names.RESILIENCE_BREAKER_PROBES] == 1
        assert snap["gauges"][names.RESILIENCE_BREAKER_STATE] == 2
