"""Scorecard grading: outcome classes, bins, publication, JSON."""

from __future__ import annotations

import json

import pytest

from repro.genome.sam import FLAG_REVERSE, FLAG_SECONDARY, FLAG_UNMAPPED, SamRecord
from repro.obs import names
from repro.obs.metrics import MetricsRegistry
from repro.scorecard import (
    SCORECARD_SCHEMA,
    TruthRecord,
    band_bucket,
    mapq_bin,
    score_records,
    score_sam,
)


def _mapped(qname, pos, mapq=60, flag=0, tags=()):
    return SamRecord(
        qname=qname,
        flag=flag,
        rname="chr1",
        pos=pos,
        mapq=mapq,
        cigar="101M",
        seq="A" * 101,
        tags=tuple(tags),
    )


def _unmapped(qname, tags=()):
    return SamRecord.unmapped(qname, "A" * 101, tags=tuple(tags))


def _truth(**rows):
    return {
        name: TruthRecord(name, pos, reverse=rev, substitutions=s, insertions=i, deletions=d)
        for name, (pos, rev, s, i, d) in rows.items()
    }


class TestOutcomes:
    def test_each_class_counted_once(self):
        truth = _truth(
            ok=(1000, False, 0, 0, 0),
            off=(1000, False, 0, 0, 0),
            flip=(1000, True, 0, 0, 0),
            lost=(1000, False, 0, 0, 0),
            worn=(1000, False, 0, 0, 0),
            poison=(1000, False, 0, 0, 0),
        )
        records = [
            _mapped("ok", 1010),
            _mapped("off", 2000),
            _mapped("flip", 1000),
            _unmapped("lost"),
            _unmapped("worn", tags=("XF:Z:degraded_extension",)),
            _unmapped("poison", tags=("XF:Z:quarantined",)),
        ]
        card = score_records(records, truth)
        assert card.outcomes == {
            "correct": 1,
            "wrong_locus": 1,
            "wrong_strand": 1,
            "unmapped": 1,
            "degraded": 1,
            "quarantined": 1,
        }
        assert card.total == 6
        assert card.correct_locus_rate == pytest.approx(1 / 6)

    def test_window_widens_by_indel_span(self):
        truth = _truth(r=(1000, False, 0, 10, 5))
        # 20 base tolerance + 15 indel span = 35
        assert score_records([_mapped("r", 1035)], truth).outcomes[
            "correct"
        ] == 1
        assert score_records([_mapped("r", 1036)], truth).outcomes[
            "wrong_locus"
        ] == 1

    def test_unknown_indel_span_gets_no_allowance(self):
        truth = {"r": TruthRecord("r", 1000, reverse=False)}
        card = score_records([_mapped("r", 1021)], truth)
        assert card.outcomes["wrong_locus"] == 1
        assert card.band == {"unknown": {"correct": 0, "total": 1}}

    def test_reverse_strand_correct(self):
        truth = _truth(r=(500, True, 0, 0, 0))
        card = score_records(
            [_mapped("r", 500, flag=FLAG_REVERSE)], truth
        )
        assert card.outcomes["correct"] == 1

    def test_missing_truth_excluded_from_rate(self):
        truth = _truth(known=(100, False, 0, 0, 0))
        card = score_records(
            [_mapped("known", 100), _mapped("stranger", 5)], truth
        )
        assert card.total == 1
        assert card.missing_truth == 1
        assert card.correct_locus_rate == 1.0

    def test_truth_unseen_counted(self):
        truth = _truth(
            seen=(100, False, 0, 0, 0), ghost=(200, False, 0, 0, 0)
        )
        card = score_records([_mapped("seen", 100)], truth)
        assert card.truth_unseen == 1

    def test_secondary_records_skipped(self):
        truth = _truth(r=(100, False, 0, 0, 0))
        card = score_records(
            [
                _mapped("r", 100),
                _mapped("r", 5000, flag=FLAG_SECONDARY),
            ],
            truth,
        )
        assert card.total == 1
        assert card.outcomes["correct"] == 1

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            score_records([], {}, tolerance=-1)

    def test_empty_run_rates_are_zero(self):
        card = score_records([], {})
        assert card.correct_locus_rate == 0.0
        assert card.unmapped_fraction == 0.0


class TestBins:
    @pytest.mark.parametrize(
        "mapq,label",
        [(0, "0"), (1, "1-9"), (9, "1-9"), (10, "10-19"), (37, "30-39"),
         (59, "50-59"), (60, "60"), (255, "60")],
    )
    def test_mapq_bins(self, mapq, label):
        assert mapq_bin(mapq) == label

    @pytest.mark.parametrize(
        "span,label",
        [(None, "unknown"), (0, "0"), (1, "1-2"), (2, "1-2"), (3, "3-5"),
         (10, "6-10"), (20, "11-20"), (21, "21+"), (500, "21+")],
    )
    def test_band_buckets(self, span, label):
        assert band_bucket(span) == label

    def test_mapq_calibration_tracks_correct_and_wrong(self):
        truth = _truth(
            a=(100, False, 0, 0, 0), b=(100, False, 0, 0, 0)
        )
        card = score_records(
            [_mapped("a", 100, mapq=60), _mapped("b", 9000, mapq=60)],
            truth,
        )
        assert card.mapq == {"60": {"correct": 1, "wrong": 1}}

    def test_unmapped_reads_stay_out_of_mapq_bins(self):
        truth = _truth(r=(100, False, 0, 0, 0))
        card = score_records([_unmapped("r")], truth)
        assert card.mapq == {}
        assert card.band["0"]["total"] == 1


class TestSerialization:
    def test_json_payload_schema(self, tmp_path):
        truth = _truth(r=(100, False, 1, 0, 0))
        card = score_records([_mapped("r", 100)], truth)
        out = tmp_path / "scorecard.json"
        card.write_json(out)
        payload = json.loads(out.read_text())
        assert payload["schema"] == SCORECARD_SCHEMA
        assert payload["rates"]["correct_locus"] == 1.0
        assert payload["outcomes"]["correct"] == 1
        assert payload["mapq"]["60"] == {"correct": 1, "wrong": 0}

    def test_score_sam_parses_headers_and_records(self, tmp_path):
        sam = tmp_path / "r.sam"
        sam.write_text(
            "@HD\tVN:1.6\tSO:unsorted\n"
            "@SQ\tSN:chr1\tLN:20000\n"
            "r\t0\tchr1\t101\t60\t101M\t*\t0\t0\t" + "A" * 101 + "\t*\n"
        )
        truth = _truth(r=(100, False, 0, 0, 0))
        card = score_sam(sam, truth)
        assert card.outcomes["correct"] == 1

    def test_summary_is_one_line(self):
        card = score_records([], {})
        assert "\n" not in card.summary()


class TestPublish:
    def test_registry_names_and_values(self):
        truth = _truth(
            a=(100, False, 0, 0, 0), b=(100, False, 0, 0, 0)
        )
        card = score_records(
            [_mapped("a", 100), _unmapped("b")], truth
        )
        registry = MetricsRegistry()
        card.publish(registry)
        snap = registry.snapshot()
        assert snap["counters"][names.SCORE_READS_TOTAL] == 2
        assert (
            snap["counters"]["score.reads.outcome{outcome=correct}"]
            == 1
        )
        assert (
            snap["counters"]["score.reads.outcome{outcome=unmapped}"]
            == 1
        )
        assert snap["gauges"][names.SCORE_CORRECT_LOCUS_RATE] == 0.5
        assert snap["gauges"][names.SCORE_TOLERANCE] == 20.0
        assert (
            snap["counters"][
                "score.band.reads{bucket=0,outcome=correct}"
            ]
            == 1
        )
