"""Truth sidecar format: round trip, versioning, strictness."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.genome.synth import (
    PLATINUM_LIKE,
    ReadSimulator,
    synthesize_reference,
    write_truth_sidecar,
)
from repro.scorecard import (
    TruthError,
    TruthRecord,
    read_truth,
    truth_path_for,
    write_truth,
)


@pytest.fixture(scope="module")
def simulated_reads():
    rng = np.random.default_rng(11)
    reference = synthesize_reference(20_000, rng, repeat_fraction=0.0)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=11)
    return sim.simulate(30)


class TestRoundTrip:
    def test_write_then_read_recovers_every_read(
        self, simulated_reads, tmp_path
    ):
        path = tmp_path / "reads.fastq.truth.tsv"
        with open(path, "w") as handle:
            n = write_truth(
                handle,
                (TruthRecord.from_read(r) for r in simulated_reads),
            )
        assert n == len(simulated_reads)
        truth = read_truth(path)
        assert len(truth) == len(simulated_reads)
        for read in simulated_reads:
            row = truth[read.name]
            assert row.true_pos == read.true_pos
            assert row.reverse == read.reverse
            assert row.substitutions == read.substitutions
            assert row.indel_span == read.indel_span

    def test_unknown_edit_cells_round_trip_as_none(self, tmp_path):
        record = TruthRecord("pair000001/2", 9023, reverse=True)
        path = tmp_path / "t.tsv"
        with open(path, "w") as handle:
            write_truth(handle, [record])
        row = read_truth(path)["pair000001/2"]
        assert row.substitutions is None
        assert row.indel_span is None

    def test_sidecar_path_convention(self):
        assert (
            truth_path_for("/a/b/reads.fastq").name
            == "reads.fastq.truth.tsv"
        )

    def test_synth_convenience_writes_next_to_fastq(
        self, simulated_reads, tmp_path
    ):
        fastq = tmp_path / "reads.fastq"
        fastq.write_text("")
        path = write_truth_sidecar(simulated_reads, fastq)
        assert path == truth_path_for(fastq)
        assert len(read_truth(path)) == len(simulated_reads)


def _sidecar(body: str, header: str = "#repro-truth\tv1") -> str:
    return f"{header}\n#read\ttrue_pos\tstrand\tsubs\tins\tdels\n{body}"


class TestStrictness:
    def _read(self, tmp_path, text):
        path = tmp_path / "t.tsv"
        path.write_text(text)
        return read_truth(path)

    def test_missing_magic_rejected(self, tmp_path):
        with pytest.raises(TruthError, match="not a truth sidecar"):
            self._read(tmp_path, "read\t1\t+\t0\t0\t0\n")

    def test_future_version_rejected(self, tmp_path):
        with pytest.raises(TruthError, match="unsupported"):
            self._read(
                tmp_path, _sidecar("", header="#repro-truth\tv99")
            )

    def test_wrong_column_count_rejected(self, tmp_path):
        with pytest.raises(TruthError, match="6 columns"):
            self._read(tmp_path, _sidecar("r1\t5\t+\t0\t0\n"))

    def test_bad_strand_rejected(self, tmp_path):
        with pytest.raises(TruthError, match="strand"):
            self._read(tmp_path, _sidecar("r1\t5\tx\t0\t0\t0\n"))

    def test_duplicate_name_rejected(self, tmp_path):
        body = "r1\t5\t+\t0\t0\t0\nr1\t9\t-\t0\t0\t0\n"
        with pytest.raises(TruthError, match="duplicate"):
            self._read(tmp_path, _sidecar(body))

    def test_non_integer_position_rejected(self, tmp_path):
        with pytest.raises(TruthError, match="true_pos"):
            self._read(tmp_path, _sidecar("r1\tfive\t+\t0\t0\t0\n"))

    def test_negative_edit_count_rejected(self, tmp_path):
        with pytest.raises(TruthError, match="negative"):
            self._read(tmp_path, _sidecar("r1\t5\t+\t-1\t0\t0\n"))

    def test_comment_and_blank_lines_skipped(self, tmp_path):
        body = "\n# a comment\nr1\t5\t+\t1\t0\t2\n"
        truth = self._read(tmp_path, _sidecar(body))
        assert truth["r1"].indel_span == 2


class TestWriteFormat:
    def test_header_and_row_shape(self):
        out = io.StringIO()
        write_truth(out, [TruthRecord("r1", 42, reverse=False, substitutions=1, insertions=2, deletions=3)])
        lines = out.getvalue().splitlines()
        assert lines[0] == "#repro-truth\tv1"
        assert lines[1].startswith("#read\t")
        assert lines[2] == "r1\t42\t+\t1\t2\t3"
