"""Test-suite configuration.

Hypothesis runs derandomized so the suite is exactly reproducible —
the property tests' value here is regression detection, and the
example corpora already cover the failure modes we know about; a
flaky seed would only add noise.  Deadlines are disabled because the
DP oracles are deliberately slow.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# The CI profile for the cross-kernel conformance suite: still fully
# deterministic (derandomized ~ fixed seed), but with a deeper example
# budget than the default.  Selected with --hypothesis-profile=ci.
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    max_examples=200,
    suppress_health_check=[HealthCheck.too_slow],
)

settings.load_profile("repro")
