"""Host-kernel guards and the fault-adjusted rerun-budget model."""

import numpy as np
import pytest

from repro.genome.synth import ExtensionJob
from repro.system.host import (
    RerunBudget,
    fault_adjusted_rerun_fraction,
    time_software_kernel,
)


def _jobs(n=3):
    rng = np.random.default_rng(0)
    out = []
    for _ in range(n):
        q = rng.integers(0, 4, size=40).astype(np.uint8)
        out.append(ExtensionJob(query=q, target=q.copy(), h0=10))
    return out


class TestKernelGuards:
    def test_empty_job_list_rejected(self):
        with pytest.raises(ValueError, match="at least one job"):
            time_software_kernel([], band=5)

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            time_software_kernel(_jobs(), band=5, repeats=0)

    def test_negative_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            time_software_kernel(_jobs(), band=5, repeats=-2)

    def test_zero_band_rejected(self):
        with pytest.raises(ValueError, match="band"):
            time_software_kernel(_jobs(), band=0)

    def test_none_band_means_full_band(self):
        timing = time_software_kernel(_jobs(), band=None)
        assert timing.band == -1
        assert timing.seconds_per_extension > 0

    def test_valid_call_still_works(self):
        timing = time_software_kernel(_jobs(), band=5, repeats=2)
        assert timing.band == 5
        assert timing.extensions_per_second > 0


class TestFaultAdjustedRerunFraction:
    def test_zero_fault_rate_is_identity(self):
        assert fault_adjusted_rerun_fraction(0.02, 0.0, 3) == 0.02

    def test_known_value(self):
        # base 2%, 10% faults, 1 retry: escalation = 0.1^2 = 1%.
        got = fault_adjusted_rerun_fraction(0.02, 0.1, 1)
        assert got == pytest.approx(0.02 + 0.98 * 0.01)

    def test_monotone_in_fault_rate(self):
        vals = [
            fault_adjusted_rerun_fraction(0.02, f, 2)
            for f in (0.0, 0.01, 0.1, 0.5)
        ]
        assert vals == sorted(vals)

    def test_more_retries_absorb_more_faults(self):
        worse = fault_adjusted_rerun_fraction(0.02, 0.2, 0)
        better = fault_adjusted_rerun_fraction(0.02, 0.2, 4)
        assert better < worse

    def test_never_exceeds_one(self):
        assert fault_adjusted_rerun_fraction(1.0, 0.9, 0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fault_adjusted_rerun_fraction(-0.1, 0.1, 1)
        with pytest.raises(ValueError):
            fault_adjusted_rerun_fraction(0.02, 1.0, 1)
        with pytest.raises(ValueError):
            fault_adjusted_rerun_fraction(0.02, 0.1, -1)


class TestRerunBudgetWithFaults:
    def _budget(self, fraction=0.02):
        return RerunBudget(
            rerun_fraction=fraction,
            host_threads=8,
            full_band_seconds_per_extension=1e-4,
            fpga_throughput_ext_per_s=1e6,
        )

    def test_with_faults_grows_demand(self):
        base = self._budget()
        faulted = base.with_faults(fault_rate=0.3, max_retries=0)
        assert faulted.rerun_fraction > base.rerun_fraction
        assert (
            faulted.rerun_demand_ext_per_s > base.rerun_demand_ext_per_s
        )

    def test_faults_can_break_the_overlap(self):
        base = self._budget()
        assert base.host_keeps_up
        flaky = base.with_faults(fault_rate=0.5, max_retries=0)
        assert not flaky.host_keeps_up
        assert flaky.overhead_fraction > 0

    def test_zero_rate_is_noop(self):
        base = self._budget()
        assert base.with_faults(0.0, 3).rerun_fraction == (
            base.rerun_fraction
        )


class TestSchedulerFaultModel:
    def test_defaults_unchanged(self):
        from repro.system.scheduler import (
            bwa_mem_breakdown,
            model_configuration,
        )

        b = bwa_mem_breakdown()
        clean = model_configuration(b, "seedex-fpga")
        explicit = model_configuration(
            b, "seedex-fpga", fault_rate=0.0, max_retries=3
        )
        assert clean.total == explicit.total

    def test_faults_slow_the_accelerated_configs(self):
        from repro.system.scheduler import (
            bwa_mem_breakdown,
            model_configuration,
        )

        b = bwa_mem_breakdown()
        clean = model_configuration(b, "seedex-fpga")
        faulty = model_configuration(
            b, "seedex-fpga", fault_rate=0.2, max_retries=1
        )
        assert faulty.total > clean.total
        assert faulty.rerun_time > clean.rerun_time
        assert faulty.extension_time > clean.extension_time
