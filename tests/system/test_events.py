"""Tests for the discrete-event FPGA protocol simulation."""

import pytest

from repro.aligner.batching import BatchingConfig, simulate_batching
from repro.hw import timing
from repro.system.events import simulate_timeline, threads_to_saturate


class TestProtocol:
    def test_event_ordering_per_batch(self):
        report = simulate_timeline(n_batches=5, fpga_threads=1)
        by_batch = {}
        for ev in report.events:
            by_batch.setdefault(ev.batch, []).append(ev)
        for batch, evs in by_batch.items():
            kinds = [e.kind for e in sorted(evs, key=lambda e: e.time)]
            assert kinds == [
                "dma_in_start",
                "batch_start",
                "batch_done",
                "results_read",
            ]

    def test_all_batches_finish(self):
        report = simulate_timeline(n_batches=17, fpga_threads=3)
        assert report.finished_batches == 17

    def test_lock_serializes_compute(self):
        """batch_start events never overlap a running computation."""
        report = simulate_timeline(n_batches=12, fpga_threads=4)
        starts = sorted(
            e.time for e in report.events if e.kind == "batch_start"
        )
        compute = report.fpga_busy / report.finished_batches
        for a, b in zip(starts, starts[1:]):
            assert b >= a + compute - 1e-12

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            simulate_timeline(n_batches=0)
        with pytest.raises(ValueError):
            simulate_timeline(fpga_threads=0)


class TestInterleaving:
    def test_two_threads_hide_transfers(self):
        one = simulate_timeline(n_batches=40, fpga_threads=1)
        two = simulate_timeline(n_batches=40, fpga_threads=2)
        assert two.fpga_utilization > one.fpga_utilization
        assert two.makespan < one.makespan

    def test_few_threads_saturate_the_device(self):
        """The paper drives the FPGA with a small share of threads."""
        k = threads_to_saturate()
        assert 1 <= k <= 4

    def test_utilization_bounded(self):
        report = simulate_timeline(n_batches=30, fpga_threads=3)
        assert 0 < report.fpga_utilization <= 1.0 + 1e-9


class TestCrossValidation:
    def test_agrees_with_steady_state_model_on_fpga_side(self):
        """With an unconstrained producer, the event sim's throughput
        approaches the device rate — the steady-state model's
        fpga-compute ceiling."""
        report = simulate_timeline(
            n_batches=80, batch_size=4096, fpga_threads=3
        )
        assert report.throughput_ext_per_s == pytest.approx(
            timing.fpga_throughput(), rel=0.10
        )

    def test_slow_producer_bottlenecks_both_models(self):
        rate = 1e6  # seeding-limited
        report = simulate_timeline(
            n_batches=40, fpga_threads=2, producer_ext_per_s=rate
        )
        assert report.throughput_ext_per_s == pytest.approx(rate, rel=0.10)
        steady = simulate_batching(BatchingConfig(total_threads=8,
                                                  fpga_threads=2))
        # Steady-state also says seeding is the bottleneck.
        assert steady.bottleneck == "seeding"

    def test_lock_wait_grows_with_thread_count(self):
        lo = simulate_timeline(n_batches=40, fpga_threads=2)
        hi = simulate_timeline(n_batches=40, fpga_threads=6)
        assert hi.mean_lock_wait >= lo.mean_lock_wait