"""Tests for the host/FPGA system models and Figure 17's calibration."""

import numpy as np
import pytest

from repro import constants as paper
from repro.aligner.batching import (
    BatchingConfig,
    best_thread_split,
    simulate_batching,
    wave_occupancy,
)
from repro.genome.synth import extension_corpus
from repro.system.fpga import BatchTransfer, F1Instance, pcie_is_bottleneck
from repro.system.host import RerunBudget, time_software_kernel
from repro.system.scheduler import (
    bwa_mem2_breakdown,
    bwa_mem_breakdown,
    figure17_table,
    model_configuration,
    reads_per_second_combined,
)


class TestFpgaModel:
    def test_instance_constants(self):
        inst = F1Instance()
        assert inst.vcpus == 8
        assert inst.memory_channels == 4

    def test_transfer_scales_with_jobs(self):
        inst = F1Instance()
        small = BatchTransfer(100).transfer_seconds(inst)
        big = BatchTransfer(100_000).transfer_seconds(inst)
        assert big > small

    def test_pcie_not_bottleneck_at_seedex_rate(self):
        """Paper: no bottleneck observed in PCIe communication."""
        assert not pcie_is_bottleneck(
            F1Instance(), paper.SEEDEX_THROUGHPUT_EXT_PER_S
        )


class TestHostModel:
    def test_kernel_timing_runs(self):
        rng = np.random.default_rng(0)
        jobs = extension_corpus(
            10, rng, query_length=50, reference_length=20_000
        )
        narrow = time_software_kernel(jobs, band=5)
        assert narrow.seconds_per_extension > 0
        assert narrow.extensions_per_second > 0

    def test_kernel_timing_rejects_empty(self):
        with pytest.raises(ValueError):
            time_software_kernel([], band=5)

    def test_rerun_budget_overlaps_at_2_percent(self):
        budget = RerunBudget(
            rerun_fraction=0.02,
            host_threads=4,
            full_band_seconds_per_extension=2e-6,
            fpga_throughput_ext_per_s=43.9e6,
        )
        assert budget.rerun_demand_ext_per_s == pytest.approx(878_000)
        assert budget.host_keeps_up
        assert budget.overhead_fraction == 0.0

    def test_rerun_budget_overwhelms_slow_host(self):
        budget = RerunBudget(
            rerun_fraction=0.5,
            host_threads=1,
            full_band_seconds_per_extension=1e-3,
            fpga_throughput_ext_per_s=43.9e6,
        )
        assert not budget.host_keeps_up
        assert budget.overhead_fraction > 0


class TestScheduler:
    def test_breakdowns_are_normalized(self):
        for b in (bwa_mem_breakdown(), bwa_mem2_breakdown()):
            assert b.total == pytest.approx(1.0)
            assert b.seeding > 0 and b.extension > 0 and b.other > 0

    def test_seeding_plus_extension_dominate(self):
        """Paper: seeding + extension take > 85% of baseline time."""
        b = bwa_mem_breakdown()
        assert b.seeding + b.extension > 0.7

    def test_model_reproduces_published_speedups(self):
        for row, reported in figure17_table():
            if reported is None:
                continue
            baseline = model_configuration(
                bwa_mem_breakdown()
                if row.aligner == "BWA-MEM"
                else bwa_mem2_breakdown(),
                "baseline",
            )
            speedup = row.speedup_over(baseline)
            assert speedup == pytest.approx(reported, rel=0.10)

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError):
            model_configuration(bwa_mem_breakdown(), "gpu-only")

    def test_combined_reads_per_second(self):
        assert reads_per_second_combined() == pytest.approx(1.5e6, rel=0.5)


class TestBatching:
    def test_seeding_is_the_bottleneck(self):
        """Paper Section VII-B: software seeding bottlenecks the system
        when only extension is accelerated."""
        report = simulate_batching(BatchingConfig())
        assert report.bottleneck == "seeding"
        assert report.throughput_ext_per_s < report.fpga_ext_per_s

    def test_best_split_gives_most_threads_to_seeding(self):
        cfg, _ = best_thread_split(total_threads=8)
        assert cfg.seeding_threads >= 6

    def test_more_seeding_threads_raise_throughput(self):
        lo = simulate_batching(
            BatchingConfig(total_threads=8, fpga_threads=4)
        )
        hi = simulate_batching(
            BatchingConfig(total_threads=8, fpga_threads=1)
        )
        assert hi.throughput_ext_per_s >= lo.throughput_ext_per_s

    def test_fpga_utilization_bounded(self):
        report = simulate_batching()
        assert 0 <= report.fpga_utilization <= 1


class TestWaveOccupancy:
    def test_empty_wave(self):
        occ = wave_occupancy([], band=15)
        assert occ.jobs == 0
        assert occ.shape_classes == 0
        assert occ.sweep_groups == 0
        assert occ.pad_fraction == 0.0

    def test_uniform_wave_is_one_dense_group(self):
        occ = wave_occupancy([(101, 131)] * 600, band=15)
        assert occ.jobs == 600
        assert occ.shape_classes == 1
        assert occ.sweep_groups == 1
        # Identical shapes: the only padding is the band clamp.
        assert occ.pad_fraction < 0.05

    def test_ragged_wave_pads_more_than_uniform(self):
        ragged = [(q, q + 30) for q in range(12, 102)] * 10
        uniform = [(101, 131)] * len(ragged)
        assert (
            wave_occupancy(ragged, band=15).pad_fraction
            > wave_occupancy(uniform, band=15).pad_fraction
        )

    def test_small_classes_merge_below_occupancy_floor(self):
        # 3 distinct classes x 4 jobs each: far below the 512-job
        # floor, so they must coalesce into a single sweep group.
        shapes = [(10, 12)] * 4 + [(25, 30)] * 4 + [(50, 60)] * 4
        occ = wave_occupancy(shapes, band=15)
        assert occ.shape_classes == 3
        assert occ.sweep_groups == 1

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            wave_occupancy([(10, 10)], band=-1)
