"""Cross-module invariants, property-tested.

Each invariant here is relied on by at least one other module; a
regression anywhere in the DP/seeding substrate shows up as one of
these failing before the integration tests do.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING
from repro.genome.sequence import random_sequence
from repro.seeding.chaining import chain_seeds
from repro.seeding.fmindex import FMIndex
from repro.seeding.mems import seed_read
from repro.seeding.suffixarray import build_suffix_array, sa_interval

SEQ = st.lists(st.integers(0, 3), min_size=1, max_size=20).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestExtensionResultInvariants:
    @settings(max_examples=200, deadline=None)
    @given(q=SEQ, t=SEQ, h0=st.integers(1, 40), w=st.integers(1, 12))
    def test_score_relations(self, q, t, h0, w):
        """lscore >= h0, lscore >= gscore >= 0; positions in range;
        max_off bounded by the band."""
        res = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
        assert res.lscore >= h0
        assert res.lscore >= res.gscore >= 0
        i, j = res.lpos
        assert 0 <= i <= len(t) and 0 <= j <= len(q)
        assert abs(i - j) <= w
        if res.gpos >= 0:
            assert abs(res.gpos - len(q)) <= w
        assert res.max_off <= w

    @settings(max_examples=100, deadline=None)
    @given(q=SEQ, t=SEQ, h0=st.integers(1, 40))
    def test_gscore_dead_iff_gpos_missing(self, q, t, h0):
        res = banded.extend(q, t, BWA_MEM_SCORING, h0)
        assert (res.gscore == 0) == (res.gpos == -1) or res.gscore > 0

    @settings(max_examples=100, deadline=None)
    @given(q=SEQ, t=SEQ, h0=st.integers(1, 30), w=st.integers(1, 8))
    def test_boundary_e_bounded_by_scores(self, q, t, h0, w):
        """Boundary E values cannot exceed the in-band local best
        (E <= H everywhere, and the boundary reads in-band state)."""
        res = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w)
        for value in res.boundary_e:
            assert 0 <= value <= res.lscore


class TestSeedingInvariants:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_fmindex_and_suffix_array_agree(self, data):
        text = data.draw(
            st.lists(st.integers(0, 3), min_size=4, max_size=40).map(
                lambda xs: np.array(xs, dtype=np.uint8)
            )
        )
        fm = FMIndex(text)
        sa = build_suffix_array(text)
        m = data.draw(st.integers(1, min(6, len(text))))
        start = data.draw(st.integers(0, len(text) - m))
        pat = text[start : start + m]
        lo, hi = sa_interval(text, sa, pat)
        assert fm.count(pat) == hi - lo
        assert fm.find(pat) == sorted(int(sa[k]) for k in range(lo, hi))

    def test_seeds_report_true_matches_and_chains_are_colinear(self):
        rng = np.random.default_rng(11)
        ref = random_sequence(4000, rng)
        fm = FMIndex(ref)
        read = ref[1200:1300].copy()
        read[40] = (read[40] + 1) % 4
        seeds = seed_read(fm, read, min_seed_length=12)
        assert seeds
        for s in seeds:
            assert (
                read[s.qbegin : s.qend]
                == ref[s.rbegin : s.rbegin + s.length]
            ).all()
        for chain in chain_seeds(seeds):
            ordered = chain.seeds
            for a, b in zip(ordered, ordered[1:]):
                assert a.qend <= b.qbegin
                assert a.rbegin + a.length <= b.rbegin


class TestBandMonotonicity:
    @settings(max_examples=80, deadline=None)
    @given(q=SEQ, t=SEQ, h0=st.integers(1, 30), data=st.data())
    def test_scores_monotone_in_band(self, q, t, h0, data):
        w1 = data.draw(st.integers(1, 10))
        w2 = data.draw(st.integers(w1, 14))
        narrow = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w1)
        wide = banded.extend(q, t, BWA_MEM_SCORING, h0, w=w2)
        assert wide.lscore >= narrow.lscore
        assert wide.gscore >= narrow.gscore
