"""Golden SAM regression: every configuration reproduces fixed bytes.

``tests/fixtures/`` holds a small simulated workload (seed 42) and the
SAM it must produce.  The expected file is stored without the ``@PG``
header line — that line records the active kernel backend, which is
exactly the one byte-level difference configurations are allowed.
Regenerate after an intentional output change with::

    python -m repro.cli simulate --length 2500 --reads 24 --seed 42 \
        --out-reference tests/fixtures/golden_ref.fa \
        --out-reads tests/fixtures/golden_reads.fq
    python -m repro.cli align --reference tests/fixtures/golden_ref.fa \
        --reads tests/fixtures/golden_reads.fq --out /tmp/golden.sam \
        --kernel scalar --band 15
    grep -v '^@PG' /tmp/golden.sam > tests/fixtures/golden.sam
"""

from __future__ import annotations

import pathlib

import pytest

from repro import cli

FIXTURES = pathlib.Path(__file__).parent.parent / "fixtures"
REFERENCE = FIXTURES / "golden_ref.fa"
READS = FIXTURES / "golden_reads.fq"
EXPECTED = FIXTURES / "golden.sam"


def _strip_pg(text: str) -> str:
    return "".join(
        line
        for line in text.splitlines(keepends=True)
        if not line.startswith("@PG")
    )


def _run_align(tmp_path, *extra: str) -> str:
    out = tmp_path / "out.sam"
    code = cli.main(
        [
            "align",
            "--reference", str(REFERENCE),
            "--reads", str(READS),
            "--out", str(out),
            "--band", "15",
            *extra,
        ]
    )
    assert code == 0
    return out.read_text()


@pytest.mark.parametrize("kernel", ["scalar", "numpy", "striped"])
def test_golden_sam_per_kernel(tmp_path, kernel):
    text = _run_align(tmp_path, "--kernel", kernel)
    assert f"DS:kernel={kernel}" in text.splitlines()[2]
    assert _strip_pg(text) == EXPECTED.read_text()


@pytest.mark.parametrize("kernel", ["scalar", "numpy", "striped"])
def test_golden_sam_batched_sharded(tmp_path, kernel):
    """The wave scheduler across 2 workers still hits the golden bytes.

    ``--engine batched`` runs the full band, which on this workload is
    byte-identical to the seedex engine's accepted/rerun output — the
    optimality guarantee the fixture locks in.
    """
    text = _run_align(
        tmp_path,
        "--engine", "batched",
        "--workers", "2",
        "--kernel", kernel,
    )
    assert _strip_pg(text) == EXPECTED.read_text()
