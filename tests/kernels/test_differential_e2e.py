"""Differential end-to-end: striped SAM bytes equal scalar SAM bytes.

The conformance suite proves per-result agreement; these tests close
the loop at the pipeline level on a 500-read corpus, through the
configurations where the striped kernel's bucketing actually engages:
the sharded wave scheduler (``--engine batched --workers 2``) and the
chaos-tier resilience dispatcher at a 1% fault rate.  Everything
renders through :func:`tests.helpers.sam_bytes`, so the comparison is
plain ``==`` on bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aligner.engines import SeedExEngine, make_resilient
from repro.aligner.parallel import EngineSpec
from repro.genome.synth import (
    PLATINUM_LIKE,
    ReadSimulator,
    synthesize_reference,
)

from tests.helpers import sam_bytes

BAND = 15
N_READS = 500


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(20260808)
    reference = synthesize_reference(20_000, rng, repeat_fraction=0.02)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=811)
    reads = [(r.name, r.codes) for r in sim.simulate(N_READS)]
    return reference, reads


def test_striped_matches_scalar_sharded_batched(corpus):
    """Wave-scheduled, 2 workers: striped and scalar emit equal bytes."""
    reference, reads = corpus
    outputs = {
        kernel: sam_bytes(
            reference,
            reads,
            EngineSpec(kind="batched", kernel=kernel),
            workers=2,
            batch_size=128,
        )
        for kernel in ("scalar", "striped")
    }
    assert outputs["striped"] == outputs["scalar"]
    mapped = sum(
        1
        for line in outputs["striped"].decode().splitlines()
        if not line.startswith("@") and "\t4\t" not in line[:40]
    )
    assert mapped > 400


@pytest.mark.chaos
def test_striped_chaos_bit_identity(corpus):
    """1% injected faults on the striped path still yield the clean
    scalar bytes — the degradation ladder composes with bucketing."""
    reference, reads = corpus
    clean = sam_bytes(
        reference, reads, SeedExEngine(band=BAND, kernel="scalar")
    )
    chaotic_engine = make_resilient(
        SeedExEngine(band=BAND, kernel="striped"),
        fault_rate=0.01,
        fault_seed=4,
        max_retries=3,
        sleep=lambda s: None,
    )
    chaotic = sam_bytes(reference, reads, chaotic_engine)
    assert chaotic == clean
    stats = chaotic_engine.stats
    assert stats.injected_total > 0
    assert stats.accounted()
