"""Differential end-to-end: striped SAM bytes equal scalar SAM bytes.

The conformance suite proves per-result agreement; these tests close
the loop at the pipeline level on a 500-read corpus, through the
configurations where the striped kernel's bucketing actually engages:
the sharded wave scheduler (``--engine batched --workers 2``) and the
chaos-tier resilience dispatcher at a 1% fault rate.  Everything
renders through :func:`tests.helpers.sam_bytes`, so the comparison is
plain ``==`` on bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aligner.engines import SeedExEngine, make_resilient
from repro.aligner.parallel import EngineSpec
from repro.genome.synth import (
    PLATINUM_LIKE,
    ReadSimulator,
    synthesize_reference,
)

from tests.helpers import sam_bytes

BAND = 15
N_READS = 500


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(20260808)
    reference = synthesize_reference(20_000, rng, repeat_fraction=0.02)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=811)
    reads = [(r.name, r.codes) for r in sim.simulate(N_READS)]
    return reference, reads


def test_striped_matches_scalar_sharded_batched(corpus):
    """Wave-scheduled, 2 workers: striped and scalar emit equal bytes."""
    reference, reads = corpus
    outputs = {
        kernel: sam_bytes(
            reference,
            reads,
            EngineSpec(kind="batched", kernel=kernel),
            workers=2,
            batch_size=128,
        )
        for kernel in ("scalar", "striped")
    }
    assert outputs["striped"] == outputs["scalar"]
    mapped = sum(
        1
        for line in outputs["striped"].decode().splitlines()
        if not line.startswith("@") and "\t4\t" not in line[:40]
    )
    assert mapped > 400


@pytest.fixture(scope="module")
def long_corpus():
    from repro.genome.synth import LongReadProfile, simulate_long_reads

    rng = np.random.default_rng(20260809)
    reference = synthesize_reference(40_000, rng, repeat_fraction=0.02)
    profile = LongReadProfile(read_length=1200, length_sd=250)
    reads = [
        (r.name, r.codes)
        for r in simulate_long_reads(reference, 24, rng, profile)
    ]
    return reference, reads


def _longread_lines(reference, reads, mode, kernel=None, workers=1):
    from repro.aligner.longread import align_long_sharded

    spec = None
    if mode == "batched":
        spec = EngineSpec(kind="batched", kernel=kernel)
    records = align_long_sharded(
        reference,
        reads,
        mode=mode,
        spec=spec,
        workers=workers,
        batch_size=8,
    )
    return [rec.to_line() for rec in records]


@pytest.mark.parametrize("kernel", ("scalar", "numpy", "striped"))
@pytest.mark.parametrize("workers", (1, 2))
def test_longread_batched_matches_scalar(long_corpus, kernel, workers):
    """Long-read waves: batched SAM lines equal the scalar path's,
    for every kernel backend, sharded or not."""
    reference, reads = long_corpus
    scalar = _longread_lines(reference, reads, "scalar")
    batched = _longread_lines(
        reference, reads, "batched", kernel=kernel, workers=workers
    )
    assert batched == scalar
    mapped = sum(1 for line in scalar if "\t4\t" not in line[:40])
    assert mapped >= 20


def test_paired_batched_matches_scalar(corpus):
    """Batched mate rescue emits the scalar loop's records, bit for
    bit, on every kernel — including the rescued pairs."""
    from repro.aligner.engines import BatchedEngine
    from repro.aligner.paired import (
        PairedAligner,
        ReadPair,
        simulate_pairs,
    )

    reference, _ = corpus
    rng = np.random.default_rng(97)
    sims = simulate_pairs(reference, 60, rng)
    pairs = [pair for pair, _, _ in sims]
    # Corrupt some second mates with a substitution every 16 bases:
    # no clean 19-mer survives (seeding fails, the mate goes
    # unmapped) but clean 12-mers between the planted sites still
    # anchor the rescue probes — the rescue path has to engage for
    # the comparison to cover it.
    for i in (3, 7, 19, 33):
        second = pairs[i].second.copy()
        second[::16] = (second[::16] + 1) % 4
        pairs[i] = ReadPair(pairs[i].name, pairs[i].first, second)

    scalar = PairedAligner(reference, SeedExEngine(band=BAND))
    want = [
        (a.to_line(), b.to_line())
        for a, b in scalar.align_pairs(pairs)
    ]
    want_stats = scalar.stats
    assert want_stats.rescued >= 1

    for kernel in ("scalar", "numpy", "striped"):
        batched = PairedAligner(reference, SeedExEngine(band=BAND))
        got = [
            (a.to_line(), b.to_line())
            for a, b in batched.align_pairs_batched(
                pairs, engine=BatchedEngine(kernel=kernel), batch_size=16
            )
        ]
        assert got == want
        assert batched.stats.pairs == want_stats.pairs
        assert batched.stats.proper == want_stats.proper
        assert batched.stats.rescued == want_stats.rescued


@pytest.mark.chaos
def test_striped_chaos_bit_identity(corpus):
    """1% injected faults on the striped path still yield the clean
    scalar bytes — the degradation ladder composes with bucketing."""
    reference, reads = corpus
    clean = sam_bytes(
        reference, reads, SeedExEngine(band=BAND, kernel="scalar")
    )
    chaotic_engine = make_resilient(
        SeedExEngine(band=BAND, kernel="striped"),
        fault_rate=0.01,
        fault_seed=4,
        max_retries=3,
        sleep=lambda s: None,
    )
    chaotic = sam_bytes(reference, reads, chaotic_engine)
    assert chaotic == clean
    stats = chaotic_engine.stats
    assert stats.injected_total > 0
    assert stats.accounted()
