"""Golden workload regression: overlap TSV and long-read SAM bytes.

``tests/fixtures/`` holds a 12 kb reference (seed 4242), a 16-read
long-read corpus simulated from it, and a 54-fragment tiling corpus
sheared from the same reference — plus the overlap TSV and long-read
SAM those inputs must produce on *every* kernel backend.  The
expected SAM is stored without the ``@PG`` header line (the kernel
name it records is the one byte-level difference configurations are
allowed); the TSV carries no header at all and must match exactly.

Regenerate after an intentional output change with::

    python -m repro.cli simulate --length 12000 --reads 16 --seed 4242 \
        --long --long-length 1100 --length-sd 200 --no-truth \
        --out-reference tests/fixtures/longread_ref.fa \
        --out-reads tests/fixtures/longread_reads.fq
    python -m repro.cli longread \
        --reference tests/fixtures/longread_ref.fa \
        --reads tests/fixtures/longread_reads.fq \
        --out /tmp/longread.sam --engine batched --kernel scalar
    grep -v '^@PG' /tmp/longread.sam > tests/fixtures/golden_longread.sam

and for the overlap side (the fragment corpus shears the committed
reference deterministically)::

    python - <<'PY'
    import numpy as np
    from repro.genome.io_fasta import FastqRecord, read_fasta, write_fastq
    from repro.genome.sequence import decode, encode
    from repro.genome.synth import fragment_corpus
    ref = encode(read_fasta("tests/fixtures/longread_ref.fa")[0].sequence)
    frags = fragment_corpus(
        ref, np.random.default_rng(4242), length=300, step=220,
        substitution_rate=0.01,
    )
    with open("tests/fixtures/overlap_reads.fq", "w") as fh:
        write_fastq(fh, [
            FastqRecord(f.name, decode(f.codes), "I" * len(f.codes))
            for f in frags
        ])
    PY
    python -m repro.cli overlap --reads tests/fixtures/overlap_reads.fq \
        --out tests/fixtures/golden_overlap.tsv --kernel scalar
"""

from __future__ import annotations

import pathlib

import pytest

from repro import cli

FIXTURES = pathlib.Path(__file__).parent.parent / "fixtures"
REFERENCE = FIXTURES / "longread_ref.fa"
LONG_READS = FIXTURES / "longread_reads.fq"
OVERLAP_READS = FIXTURES / "overlap_reads.fq"
EXPECTED_SAM = FIXTURES / "golden_longread.sam"
EXPECTED_TSV = FIXTURES / "golden_overlap.tsv"

KERNELS = ("scalar", "numpy", "striped")


def _strip_pg(text: str) -> str:
    return "".join(
        line
        for line in text.splitlines(keepends=True)
        if not line.startswith("@PG")
    )


def _run_longread(tmp_path, *extra: str) -> str:
    out = tmp_path / "out.sam"
    code = cli.main(
        [
            "longread",
            "--reference", str(REFERENCE),
            "--reads", str(LONG_READS),
            "--out", str(out),
            *extra,
        ]
    )
    assert code == 0
    return out.read_text()


@pytest.mark.parametrize("kernel", KERNELS)
def test_golden_longread_batched_per_kernel(tmp_path, kernel):
    text = _run_longread(
        tmp_path, "--engine", "batched", "--kernel", kernel
    )
    assert _strip_pg(text) == EXPECTED_SAM.read_text()


def test_golden_longread_scalar_engine(tmp_path):
    """The scalar (per-read, per-gap) schedule hits the same bytes —
    the cross-engine identity the batched waves promise."""
    text = _run_longread(tmp_path, "--engine", "scalar")
    assert _strip_pg(text) == EXPECTED_SAM.read_text()


def test_golden_longread_sharded(tmp_path):
    text = _run_longread(
        tmp_path,
        "--engine", "batched",
        "--kernel", "striped",
        "--workers", "2",
    )
    assert _strip_pg(text) == EXPECTED_SAM.read_text()


@pytest.mark.parametrize("kernel", KERNELS)
def test_golden_overlap_per_kernel(tmp_path, kernel):
    out = tmp_path / "out.tsv"
    code = cli.main(
        [
            "overlap",
            "--reads", str(OVERLAP_READS),
            "--out", str(out),
            "--kernel", kernel,
        ]
    )
    assert code == 0
    assert out.read_text() == EXPECTED_TSV.read_text()


def test_golden_overlap_band_independent(tmp_path):
    """A much narrower verification band reruns more jobs but reports
    the same overlaps — the speculate-and-test contract, end to end.
    Only the band column (field 11) and the proved/rerun verdict
    (field 12) may move."""
    out = tmp_path / "out.tsv"
    code = cli.main(
        [
            "overlap",
            "--reads", str(OVERLAP_READS),
            "--out", str(out),
            "--band", "8",
            "--kernel", "striped",
        ]
    )
    assert code == 0
    got = [line.split("\t")[:10] for line in out.read_text().splitlines()]
    want = [
        line.split("\t")[:10]
        for line in EXPECTED_TSV.read_text().splitlines()
    ]
    assert got == want


def test_golden_overlap_content_sane():
    """The fixture itself: adjacent tiling fragments all overlap by
    ~80 bp, and at least one job exercised the full-band rerun."""
    rows = [
        line.split("\t")
        for line in EXPECTED_TSV.read_text().splitlines()
    ]
    assert len(rows) >= 50
    adjacent = {
        (r[0], r[5])
        for r in rows
        if int(r[5][4:]) == int(r[0][4:]) + 1
    }
    assert len(adjacent) >= 50
    assert any(r[11] == "rerun" for r in rows)
    assert all(r[4] == "+" for r in rows)
