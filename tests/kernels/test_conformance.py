"""Cross-kernel conformance: scalar, numpy, and striped bit-agree.

The kernel layer's contract (docs/kernels.md) is that every backend
produces identical results — scores, endpoints, boundary channels,
thresholds, and therefore accept/rerun verdicts and final SAM bytes.
These are pure differential properties, driven by the band-edge-biased
strategies in ``tests/strategies.py`` plus a seeded end-to-end corpus.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.banded import BatchShapeError, full_band_for
from repro.align.scoring import relaxed_edit_scoring
from repro.core.checker import CheckConfig, OptimalityChecker
from repro.kernels import available_kernels, get_kernel

from tests.strategies import (
    ExtensionJob,
    RaggedBatch,
    extension_jobs,
    h0s,
    ragged_batches,
    scoring_configs,
    sequences,
    threshold_edge_jobs,
)

SCALAR = get_kernel("scalar")
NUMPY = get_kernel("numpy")
STRIPED = get_kernel("striped")
ALL_KERNELS = (SCALAR, NUMPY, STRIPED)


def test_registry_lists_all_backends():
    assert available_kernels() == ("numpy", "scalar", "striped")
    assert SCALAR.name == "scalar"
    assert NUMPY.name == "numpy"
    assert STRIPED.name == "striped"


def test_unknown_backend_is_rejected():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        get_kernel("cuda")


def _assert_results_agree(a, b):
    """Full observable agreement of two ExtensionResults.

    ``cells_computed``/``terminated_early`` are deliberately excluded:
    they describe *how* a backend filled the band, not the result.
    """
    assert a.scores() == b.scores()
    assert a.max_off == b.max_off
    np.testing.assert_array_equal(a.boundary_e, b.boundary_e)
    np.testing.assert_array_equal(a.boundary_f, b.boundary_f)


@given(job=extension_jobs())
def test_extend_agrees(job: ExtensionJob):
    a = SCALAR.extend(
        job.query, job.target, job.scoring, job.h0, w=job.band
    )
    for kernel in (NUMPY, STRIPED):
        b = kernel.extend(
            job.query, job.target, job.scoring, job.h0, w=job.band
        )
        _assert_results_agree(a, b)


@given(job=extension_jobs())
def test_extend_full_band_agrees(job: ExtensionJob):
    a = SCALAR.extend(job.query, job.target, job.scoring, job.h0)
    for kernel in (NUMPY, STRIPED):
        b = kernel.extend(job.query, job.target, job.scoring, job.h0)
        _assert_results_agree(a, b)


@given(
    scoring=scoring_configs(),
    band=st.one_of(st.none(), st.integers(1, 8)),
    jobs=st.lists(
        st.tuples(
            sequences(max_size=24), sequences(min_size=1, max_size=30),
            h0s(),
        ),
        min_size=1,
        max_size=6,
    ),
)
def test_extend_batch_agrees(scoring, band, jobs):
    queries = [q for q, _, _ in jobs]
    targets = [t for _, t, _ in jobs]
    seeds = [h0 for _, _, h0 in jobs]
    a = SCALAR.extend_batch(queries, targets, seeds, scoring, w=band)
    for kernel in (NUMPY, STRIPED):
        b = kernel.extend_batch(queries, targets, seeds, scoring, w=band)
        assert len(a) == len(b) == len(jobs)
        for ra, rb in zip(a, b):
            _assert_results_agree(ra, rb)


@given(batch=ragged_batches())
def test_ragged_batch_agrees(batch: RaggedBatch):
    """Per-job agreement on ragged batches across all three backends.

    Covers the striped kernel's bucketing edges (empty batch, single
    job, one job per bucket, exact pad boundaries) and checks not just
    scores and boundary channels but the accept/rerun verdicts those
    feed.  The edit check demands a scoring its relaxed scheme
    dominates, so for the drawn schemes that violate that it is
    switched off (the E-score verdict path still runs).
    """
    config = CheckConfig(
        use_edit_check=relaxed_edit_scoring().dominates(batch.scoring)
    )
    baseline = None
    for kernel in ALL_KERNELS:
        results = kernel.extend_batch(
            batch.queries, batch.targets, batch.h0s,
            batch.scoring, w=batch.band,
        )
        assert len(results) == len(batch.queries)
        checker = OptimalityChecker(
            batch.scoring, config, kernel=kernel
        )
        verdicts = [
            checker.check(q, t, res).outcome
            for q, t, res in zip(batch.queries, batch.targets, results)
        ]
        if baseline is None:
            baseline = (results, verdicts)
            continue
        for ra, rb in zip(baseline[0], results):
            _assert_results_agree(ra, rb)
        assert verdicts == baseline[1]


@given(batch=ragged_batches())
def test_batch_order_is_preserved(batch: RaggedBatch):
    """``extend_batch`` result ``k`` belongs to job ``k`` — for every
    backend, even the one that buckets and reorders internally."""
    w = batch.band
    if w is None:
        # Match the batch kernels' global band resolution so the
        # per-job reference runs the same geometry.
        w = max(
            (
                full_band_for(len(q), len(t))
                for q, t in zip(batch.queries, batch.targets)
            ),
            default=0,
        )
    for kernel in ALL_KERNELS:
        results = kernel.extend_batch(
            batch.queries, batch.targets, batch.h0s,
            batch.scoring, w=batch.band,
        )
        for q, t, h0, res in zip(
            batch.queries, batch.targets, batch.h0s, results
        ):
            solo = kernel.extend(q, t, batch.scoring, h0, w=w)
            _assert_results_agree(solo, res)


def test_mismatched_batch_lists_raise_typed_error():
    q = [np.zeros(4, dtype=np.uint8)]
    t = [np.zeros(6, dtype=np.uint8), np.zeros(6, dtype=np.uint8)]
    for kernel in ALL_KERNELS:
        with pytest.raises(BatchShapeError):
            kernel.extend_batch(q, t, [0], None, w=5)
        with pytest.raises(BatchShapeError):
            kernel.extend_batch(q, [t[0]], [0, 1], None, w=5)


@given(
    scoring=scoring_configs(),
    qlen=st.integers(0, 40),
    tlen=st.integers(1, 48),
    band=st.integers(1, 45),
    h0=h0s(),
)
def test_thresholds_agree(scoring, qlen, tlen, band, h0):
    a = SCALAR.thresholds(scoring, qlen, tlen, band, h0)
    for kernel in (NUMPY, STRIPED):
        b = kernel.thresholds(scoring, qlen, tlen, band, h0)
        assert a.s1 == b.s1
        assert a.s2 == b.s2


@given(
    query=sequences(max_size=24),
    target=sequences(min_size=1, max_size=30),
    band=st.integers(1, 8),
    corner=st.integers(0, 40),
    tops=st.one_of(
        st.none(), st.lists(st.integers(0, 30), max_size=30)
    ),
)
def test_left_entry_agrees(query, target, band, corner, tops):
    """The edit machine's trapezoid sweep, with and without top seeds."""
    scoring = relaxed_edit_scoring()

    def seed(i):
        return corner if i == band + 1 else max(0, corner - i)

    top_seed = None
    if tops is not None:
        def top_seed(j):
            return tops[j] if j < len(tops) else 0

    a = SCALAR.left_entry(
        query, target, band, seed, scoring=scoring, top_seed=top_seed
    )
    b = NUMPY.left_entry(
        query, target, band, seed, scoring=scoring, top_seed=top_seed
    )
    np.testing.assert_array_equal(a.last_column, b.last_column)
    assert a.best == b.best


@given(job=st.one_of(threshold_edge_jobs(), extension_jobs()))
def test_verdicts_agree(job: ExtensionJob):
    """Accept/rerun decisions match even exactly on the S1/S2 edge."""
    decisions = []
    for kernel in ALL_KERNELS:
        checker = OptimalityChecker(
            job.scoring, CheckConfig(), kernel=kernel
        )
        result = kernel.extend(
            job.query, job.target, job.scoring, job.h0, w=job.band
        )
        decisions.append(
            checker.check(job.query, job.target, result)
        )
    a = decisions[0]
    for b in decisions[1:]:
        assert a.outcome == b.outcome
        assert a.score_nb == b.score_nb
        assert a.thresholds.s1 == b.thresholds.s1
        assert a.thresholds.s2 == b.thresholds.s2
        assert a.score_max_e == b.score_max_e
        assert a.score_ed == b.score_ed


@settings(deadline=None, max_examples=1)
@given(st.just(None))
def test_corpus_bit_identity(_):
    """Seeded 500-read corpus: SAM bytes identical across backends.

    End-to-end through the SeedEx engine (narrow band + checks +
    rerun), so scores, CIGARs, positions, and mapping flags all feed
    the comparison.  One fixed seed keeps the corpus stable across
    runs; the property tests above carry the input diversity.
    """
    from repro.aligner.engines import SeedExEngine
    from repro.genome.synth import (
        PLATINUM_LIKE,
        ReadSimulator,
        synthesize_reference,
    )

    from tests.helpers import sam_bytes

    rng = np.random.default_rng(20260806)
    reference = synthesize_reference(20_000, rng, repeat_fraction=0.02)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=503)
    reads = [(r.name, r.codes) for r in sim.simulate(500)]
    outputs = {
        name: sam_bytes(
            reference,
            reads,
            SeedExEngine(band=15, kernel=name),
        )
        for name in available_kernels()
    }
    assert outputs["scalar"] == outputs["numpy"]
    assert outputs["scalar"] == outputs["striped"]
    # Sanity: the corpus actually maps (guards against a vacuous pass).
    mapped = sum(
        1
        for line in outputs["scalar"].decode().splitlines()
        if not line.startswith("@") and "\t4\t" not in line[:40]
    )
    assert mapped > 400
