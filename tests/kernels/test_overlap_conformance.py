"""Cross-kernel conformance for the suffix-prefix overlap entry points.

Every backend exposes ``overlap``/``overlap_batch`` with the same
promise as the extension entry points: bit-identical results on every
observable field — ``(score, t_end, band, bound)`` and therefore the
``optimal`` verdicts the speculate-and-test driver keys off.  Only
``cells_computed`` may differ (it describes the backend's schedule,
not the answer).  The strategies bias toward the dovetail geometry's
hazards: containment, zero overhang, empty and all-N sequences, and
length differences straddling the band.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.align.overlapdp import overlap_with_guarantee
from repro.kernels import get_kernel

from tests.strategies import (
    OverlapPair,
    bands,
    overlap_pairs,
    scoring_configs,
)

SCALAR = get_kernel("scalar")
NUMPY = get_kernel("numpy")
STRIPED = get_kernel("striped")
ALL_KERNELS = (SCALAR, NUMPY, STRIPED)


def _assert_overlap_agrees(a, b):
    """Full observable agreement of two OverlapResults.

    ``cells_computed`` is deliberately excluded: the lockstep backend
    reports its bucket's padded schedule, the scalar its exact fill.
    """
    assert a.score == b.score
    assert a.t_end == b.t_end
    assert a.band == b.band
    assert a.qlen == b.qlen
    assert a.tlen == b.tlen
    assert a.bound == b.bound
    assert a.optimal == b.optimal


@given(pair=overlap_pairs())
def test_overlap_agrees(pair: OverlapPair):
    a = SCALAR.overlap(pair.query, pair.target, pair.scoring, w=pair.band)
    for kernel in (NUMPY, STRIPED):
        b = kernel.overlap(
            pair.query, pair.target, pair.scoring, w=pair.band
        )
        _assert_overlap_agrees(a, b)


@st.composite
def _overlap_batches(draw, max_jobs: int = 6):
    """A batch sharing one scoring scheme and one requested band."""
    scoring = draw(scoring_configs())
    band = draw(st.one_of(st.none(), bands()))
    pairs = draw(st.lists(overlap_pairs(), min_size=0, max_size=max_jobs))
    return (
        [p.query for p in pairs],
        [p.target for p in pairs],
        scoring,
        band,
    )


@given(batch=_overlap_batches())
def test_overlap_batch_agrees(batch):
    queries, targets, scoring, band = batch
    a = SCALAR.overlap_batch(queries, targets, scoring, w=band)
    for kernel in (NUMPY, STRIPED):
        b = kernel.overlap_batch(queries, targets, scoring, w=band)
        assert len(a) == len(b) == len(queries)
        for ra, rb in zip(a, b):
            _assert_overlap_agrees(ra, rb)


@given(batch=_overlap_batches())
def test_overlap_batch_order_is_preserved(batch):
    """Batch result ``k`` belongs to job ``k`` on every backend.

    With ``w=None`` each job resolves its own full band from its own
    lengths, so mixed-shape buckets sweep heterogeneous bands — the
    lockstep geometry where an unmasked F-scan would leak a wide
    bucket-mate's cells into a narrow job.
    """
    queries, targets, scoring, band = batch
    for kernel in ALL_KERNELS:
        results = kernel.overlap_batch(queries, targets, scoring, w=band)
        for q, t, res in zip(queries, targets, results):
            solo = SCALAR.overlap(q, t, scoring, w=band)
            _assert_overlap_agrees(solo, res)


@given(pair=overlap_pairs())
def test_full_band_is_always_optimal(pair: OverlapPair):
    """``w=None`` covers the whole matrix: trivially proved optimal,
    and the query is always consumable when it fits the matrix."""
    for kernel in ALL_KERNELS:
        res = kernel.overlap(pair.query, pair.target, pair.scoring, w=None)
        assert res.is_full_band
        assert res.optimal
        assert res.t_end >= 0


@given(pair=overlap_pairs())
def test_guarantee_equals_full_band(pair: OverlapPair):
    """The speculate-and-test wrapper's contract, per backend: the
    returned score/endpoint always equal the dense full-band optimum,
    whether the narrow check proved them or the rerun recovered them."""
    band = pair.band if pair.band is not None else 4
    oracle = SCALAR.overlap(pair.query, pair.target, pair.scoring, w=None)
    for kernel in ALL_KERNELS:
        out = overlap_with_guarantee(
            pair.query, pair.target, pair.scoring, band,
            overlap=kernel.overlap,
        )
        assert out.result.score == oracle.score
        assert out.result.t_end == oracle.t_end
        assert out.band_requested == band


def test_mismatched_overlap_batch_rejected():
    q = [np.zeros(4, dtype=np.uint8)]
    t = [np.zeros(6, dtype=np.uint8), np.zeros(6, dtype=np.uint8)]
    for kernel in ALL_KERNELS:
        with pytest.raises(ValueError, match="align"):
            kernel.overlap_batch(q, t, None, w=5)


def test_negative_band_rejected():
    q = np.zeros(4, dtype=np.uint8)
    t = np.zeros(6, dtype=np.uint8)
    for kernel in ALL_KERNELS:
        with pytest.raises(ValueError, match="non-negative"):
            kernel.overlap(q, t, None, w=-1)
