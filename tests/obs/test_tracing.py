"""Unit tests of the span tracer and Chrome-trace export."""

import json

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NOOP_SPAN, Tracer


class TestDisabled:
    def test_span_is_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("a.b") is NOOP_SPAN
        with tracer.span("a.b"):
            pass
        assert tracer.records == []

    def test_noop_span_reports_zero_duration(self):
        with Tracer().span("a.b") as sp:
            pass
        assert sp.duration == 0.0


class TestSpans:
    def test_records_duration(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a.b") as sp:
            pass
        assert sp.duration >= 0.0
        (record,) = tracer.records
        assert record.name == "a.b"
        assert record.duration == sp.duration

    def test_nesting_depths(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # Inner finishes first; completion order reflects that.
        assert tracer.records[0].name == "inner"

    def test_exception_safety(self):
        tracer = Tracer()
        tracer.enable()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("body failed")
        (record,) = tracer.records
        assert record.name == "boom"
        # The stack unwound: the next span sits at depth 0 again.
        with tracer.span("after"):
            pass
        assert tracer.last("after").depth == 0

    def test_labels_recorded(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a.b", jobs=7):
            pass
        assert tracer.last("a.b").labels == {"jobs": 7}

    def test_decorator(self):
        tracer = Tracer()
        tracer.enable()

        @tracer.traced("work.unit")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert tracer.span_names() == {"work.unit"}

    def test_max_records_cap(self):
        tracer = Tracer(max_records=2)
        tracer.enable()
        for _ in range(5):
            with tracer.span("a.b"):
                pass
        assert len(tracer.records) == 2
        assert tracer.dropped == 3

    def test_reset(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a.b"):
            pass
        tracer.reset()
        assert tracer.records == []
        assert tracer.dropped == 0


class TestRegistryBridge:
    def test_span_observes_latency_histogram(self):
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg)
        tracer.enable()
        with tracer.span("stage.x"):
            pass
        hist = reg.histogram("stage.x.seconds")
        assert hist.count == 1
        assert hist.sum >= 0.0


class TestChromeExport:
    def test_export_is_loadable_complete_events(self, tmp_path):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.json"
        tracer.export_chrome(str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["pid"] > 0
            assert event["tid"] > 0
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["args"]["kind"] == "test"
        assert doc["otherData"]["dropped_spans"] == 0


class TestGlobalFacade:
    def test_enable_disable_round_trip(self):
        assert not obs.enabled()
        obs.enable()
        assert obs.enabled()
        with obs.span("x.y"):
            pass
        assert "x.y" in obs.get_tracer().span_names()
        obs.disable()
        assert obs.get_tracer().span("z") is NOOP_SPAN

    def test_global_tracer_feeds_global_registry(self):
        obs.enable()
        with obs.span("x.y"):
            pass
        snap = obs.get_registry().snapshot()
        assert snap["histograms"]["x.y.seconds"]["count"] == 1
