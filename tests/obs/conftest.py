"""Observability-test fixtures: leave the global collectors clean."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Reset the global registry/tracer around every obs test."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
