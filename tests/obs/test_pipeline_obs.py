"""Integration: instrumentation observes but never perturbs.

The contract of the obs layer is that turning it on changes *nothing*
about the computation — SAM output must stay bit-identical — while
the expected spans and counters appear in the global collectors.
Also covers the registry-backed :class:`ExtenderStats` façade.
"""

import numpy as np
import pytest

from repro import SeedExtender, obs
from repro.aligner.engines import SeedExEngine
from repro.aligner.pipeline import Aligner
from repro.core.checker import CheckOutcome
from repro.core.extender import ExtenderStats
from repro.genome.synth import (
    PLATINUM_LIKE,
    ReadSimulator,
    synthesize_reference,
)
from repro.obs import names
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(42)
    reference = synthesize_reference(20_000, rng)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=7)
    return reference, sim.simulate(15)


def _sam_lines(reference, reads, band=9):
    aligner = Aligner(reference, SeedExEngine(band=band), seeding="kmer")
    return [str(aligner.align_read(r.codes, r.name)) for r in reads]


class TestInstrumentedPipeline:
    def test_sam_identical_with_obs_on_and_off(self, workload):
        reference, reads = workload
        obs.disable()
        plain = _sam_lines(reference, reads)
        obs.enable()
        instrumented = _sam_lines(reference, reads)
        assert instrumented == plain

    def test_expected_spans_emitted(self, workload):
        reference, reads = workload
        obs.enable()
        _sam_lines(reference, reads)
        spans = obs.get_tracer().span_names()
        expected = {
            names.SPAN_ALIGNER_READ,
            names.SPAN_ALIGNER_SEED,
            names.SPAN_ALIGNER_CHAIN,
            names.SPAN_ALIGNER_EXTEND,
            names.SPAN_ALIGNER_TRACEBACK,
            names.SPAN_EXTEND_NARROW,
            names.SPAN_EXTEND_CHECK,
            names.SPAN_CHECK_THRESHOLD,
        }
        assert expected <= spans

    def test_aligner_counters_in_global_registry(self, workload):
        reference, reads = workload
        obs.enable()
        _sam_lines(reference, reads)
        counters = obs.get_registry().snapshot()["counters"]
        assert counters[names.ALIGNER_READS_TOTAL] == len(reads)
        assert counters[names.ALIGNER_SEEDS_TOTAL] >= len(reads)
        key = names.ENGINE_EXTENSIONS + "{engine=seedex-w9}"
        assert counters[key] > 0

    def test_disabled_pipeline_leaves_collectors_empty(self, workload):
        reference, reads = workload
        obs.disable()
        obs.reset()
        _sam_lines(reference, reads)
        assert obs.get_tracer().records == []
        # reset() zeroes in place; disabled runs must not count.
        counters = obs.get_registry().snapshot()["counters"]
        assert all(value == 0 for value in counters.values())


class TestExtenderStatsRegistry:
    def test_zero_guards(self):
        stats = ExtenderStats()
        assert stats.passing_rate == 0.0
        assert stats.threshold_only_rate == 0.0
        assert stats.rerun_rate == 0.0

    def test_counts_match_registry(self):
        from repro.genome.sequence import encode

        reg = MetricsRegistry()
        ext = SeedExtender(band=9, registry=reg)
        ext.extend(encode("ACGTACGTAC"), encode("ACGTTCGTAC"), h0=10)
        counters = reg.snapshot()["counters"]
        assert counters[names.EXTENSIONS_TOTAL] == ext.stats.total == 1
        assert counters[names.CELLS_NARROW] == ext.stats.narrow_cells
        assert stats_outcome_total(counters) == 1
        assert ext.stats.by_outcome == {CheckOutcome.PASS_S2: 1}

    def test_reset_in_place(self):
        from repro.genome.sequence import encode

        ext = SeedExtender(band=9)
        ext.extend(encode("ACGTACGTAC"), encode("ACGTTCGTAC"), h0=10)
        stats = ext.stats
        ext.reset_stats()
        assert ext.stats is stats  # same façade, zeroed in place
        assert stats.total == 0
        assert stats.by_outcome == {}
        assert stats.narrow_cells == 0
        assert stats.rerun_cells == 0

    def test_cells_histograms_recorded(self):
        from repro.genome.sequence import encode

        reg = MetricsRegistry()
        ext = SeedExtender(band=9, registry=reg)
        ext.extend(encode("ACGTACGTAC"), encode("ACGTTCGTAC"), h0=10)
        hists = reg.snapshot()["histograms"]
        key = names.CELLS_PER_EXTENSION + "{stage=narrow}"
        assert hists[key]["count"] == 1
        assert hists[key]["sum"] == ext.stats.narrow_cells


def stats_outcome_total(counters: dict) -> int:
    """Sum the per-outcome check counters in a snapshot."""
    prefix = names.CHECK_OUTCOME + "{"
    return sum(
        count
        for key, count in counters.items()
        if key.startswith(prefix)
    )
