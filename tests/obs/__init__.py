"""Tests of the observability layer (metrics, tracing, integration)."""
