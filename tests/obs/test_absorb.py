"""Snapshot merging: the sharded runner's metrics round trip.

Each shard worker ships its registry :meth:`snapshot` back to the
parent, which folds it in via
:meth:`~repro.obs.metrics.MetricsRegistry.absorb_snapshot`.  These
tests pin the merge semantics the sharded pipeline depends on:
counters add, gauges last-write-win, histogram counts/sums/extrema/
buckets merge exactly, streaming quantiles stay local-only, and label
keys survive the render/parse round trip untouched.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry, _parse_key, _render_key


def _worker_snapshot(inc: int, observations) -> dict:
    """A mock shard's registry snapshot."""
    reg = MetricsRegistry()
    reg.counter("pipeline.batch.jobs", side="left").inc(inc)
    reg.gauge("pipeline.shard.workers").set(4)
    hist = reg.histogram("pipeline.batch.wave.jobs", side="left")
    for value in observations:
        hist.observe(value)
    return reg.snapshot()


class TestParseKey:
    def test_round_trip_with_labels(self):
        key = _render_key("a.b.c", {"side": "left", "shard": 3})
        assert _parse_key(key) == ("a.b.c", {"side": "left", "shard": "3"})

    def test_bare_name(self):
        assert _parse_key("pipeline.batch.waves") == (
            "pipeline.batch.waves",
            {},
        )


class TestAbsorbSnapshot:
    def test_counters_add(self):
        parent = MetricsRegistry()
        parent.counter("pipeline.batch.jobs", side="left").inc(10)
        parent.absorb_snapshot(_worker_snapshot(7, []))
        parent.absorb_snapshot(_worker_snapshot(5, []))
        [value] = [
            obj.snapshot()
            for key, kind, obj in parent
            if kind == "counter" and "jobs" in key
        ]
        assert value == 22

    def test_gauges_last_write_wins(self):
        parent = MetricsRegistry()
        parent.gauge("pipeline.shard.workers").set(1)
        parent.absorb_snapshot(_worker_snapshot(1, []))
        gauge = parent.gauge("pipeline.shard.workers")
        assert gauge.snapshot() == 4

    def test_histograms_merge_exactly(self):
        parent = MetricsRegistry()
        parent.histogram("pipeline.batch.wave.jobs", side="left").observe(2)
        parent.absorb_snapshot(_worker_snapshot(0, [1, 3, 100]))
        snap = parent.histogram(
            "pipeline.batch.wave.jobs", side="left"
        ).snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.0)
        assert snap["min"] == 1
        assert snap["max"] == 100
        total_bucketed = sum(snap["buckets"].values())
        assert total_bucketed == 4

    def test_quantiles_stay_local(self):
        """Absorbed observations must not corrupt quantile sketches."""
        parent = MetricsRegistry()
        hist = parent.histogram("pipeline.batch.wave.jobs", side="left")
        parent.absorb_snapshot(_worker_snapshot(0, [10, 20, 30]))
        snap = hist.snapshot()
        # Nothing observed locally: quantiles render as unknown even
        # though absorbed counts are present.
        assert snap["count"] == 3
        assert all(v is None for v in snap["quantiles"].values())

    def test_unknown_metrics_created_on_the_fly(self):
        parent = MetricsRegistry()
        assert len(parent) == 0
        parent.absorb_snapshot(_worker_snapshot(3, [5]))
        assert len(parent) == 3
        assert parent.counter(
            "pipeline.batch.jobs", side="left"
        ).snapshot() == 3

    def test_empty_histogram_snapshot_is_a_no_op(self):
        parent = MetricsRegistry()
        before = parent.histogram("h").snapshot()
        parent.absorb_snapshot(
            {"histograms": {"h": {"count": 0, "sum": 0.0, "buckets": {}}}}
        )
        assert parent.histogram("h").snapshot() == before

    def test_absorb_empty_snapshot(self):
        parent = MetricsRegistry()
        parent.counter("c").inc()
        parent.absorb_snapshot({})
        assert parent.counter("c").snapshot() == 1
