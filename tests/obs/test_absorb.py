"""Snapshot merging: the sharded runner's metrics round trip.

Each shard worker ships its registry :meth:`snapshot` back to the
parent, which folds it in via
:meth:`~repro.obs.metrics.MetricsRegistry.absorb_snapshot`.  These
tests pin the merge semantics the sharded pipeline depends on:
counters add, gauges last-write-win, histogram counts/sums/extrema/
buckets merge exactly, streaming quantiles stay local-only, and label
keys survive the render/parse round trip untouched.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, _parse_key, _render_key


def _worker_snapshot(inc: int, observations) -> dict:
    """A mock shard's registry snapshot."""
    reg = MetricsRegistry()
    reg.counter("pipeline.batch.jobs", side="left").inc(inc)
    reg.gauge("pipeline.shard.workers").set(4)
    hist = reg.histogram("pipeline.batch.wave.jobs", side="left")
    for value in observations:
        hist.observe(value)
    return reg.snapshot()


class TestParseKey:
    def test_round_trip_with_labels(self):
        key = _render_key("a.b.c", {"side": "left", "shard": 3})
        assert _parse_key(key) == ("a.b.c", {"side": "left", "shard": "3"})

    def test_bare_name(self):
        assert _parse_key("pipeline.batch.waves") == (
            "pipeline.batch.waves",
            {},
        )


class TestAbsorbSnapshot:
    def test_counters_add(self):
        parent = MetricsRegistry()
        parent.counter("pipeline.batch.jobs", side="left").inc(10)
        parent.absorb_snapshot(_worker_snapshot(7, []))
        parent.absorb_snapshot(_worker_snapshot(5, []))
        [value] = [
            obj.snapshot()
            for key, kind, obj in parent
            if kind == "counter" and "jobs" in key
        ]
        assert value == 22

    def test_gauges_last_write_wins(self):
        parent = MetricsRegistry()
        parent.gauge("pipeline.shard.workers").set(1)
        parent.absorb_snapshot(_worker_snapshot(1, []))
        gauge = parent.gauge("pipeline.shard.workers")
        assert gauge.snapshot() == 4

    def test_histograms_merge_exactly(self):
        parent = MetricsRegistry()
        parent.histogram("pipeline.batch.wave.jobs", side="left").observe(2)
        parent.absorb_snapshot(_worker_snapshot(0, [1, 3, 100]))
        snap = parent.histogram(
            "pipeline.batch.wave.jobs", side="left"
        ).snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.0)
        assert snap["min"] == 1
        assert snap["max"] == 100
        total_bucketed = sum(snap["buckets"].values())
        assert total_bucketed == 4

    def test_quantiles_stay_local(self):
        """Absorbed observations must not corrupt quantile sketches."""
        parent = MetricsRegistry()
        hist = parent.histogram("pipeline.batch.wave.jobs", side="left")
        parent.absorb_snapshot(_worker_snapshot(0, [10, 20, 30]))
        snap = hist.snapshot()
        # Nothing observed locally: quantiles render as unknown even
        # though absorbed counts are present.
        assert snap["count"] == 3
        assert all(v is None for v in snap["quantiles"].values())

    def test_unknown_metrics_created_on_the_fly(self):
        parent = MetricsRegistry()
        assert len(parent) == 0
        parent.absorb_snapshot(_worker_snapshot(3, [5]))
        assert len(parent) == 3
        assert parent.counter(
            "pipeline.batch.jobs", side="left"
        ).snapshot() == 3

    def test_empty_histogram_snapshot_is_a_no_op(self):
        parent = MetricsRegistry()
        before = parent.histogram("h").snapshot()
        parent.absorb_snapshot(
            {"histograms": {"h": {"count": 0, "sum": 0.0, "buckets": {}}}}
        )
        assert parent.histogram("h").snapshot() == before

    def test_absorb_empty_snapshot(self):
        parent = MetricsRegistry()
        parent.counter("c").inc()
        parent.absorb_snapshot({})
        assert parent.counter("c").snapshot() == 1


class TestShardMergeEquivalence:
    """Property: merging N shard snapshots equals one-process truth.

    This is the contract ``aligner/parallel.py`` leans on when it
    folds worker registries into the parent — if bucket counts, sums,
    or extrema could drift under partitioning, every sharded run's
    ``--metrics-out`` would silently disagree with the same run at
    ``--workers 1``.
    """

    @settings(deadline=None, max_examples=60)
    @given(
        observations=st.lists(
            st.floats(
                min_value=0.0,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=60,
        ),
        cuts=st.lists(
            st.integers(min_value=0, max_value=60), max_size=5
        ),
    )
    def test_partitioned_histograms_merge_to_single_process(
        self, observations, cuts
    ):
        single = MetricsRegistry()
        for value in observations:
            single.histogram(
                "pipeline.batch.wave.jobs", side="left"
            ).observe(value)

        bounds = sorted(
            {min(c, len(observations)) for c in cuts}
            | {0, len(observations)}
        )
        parent = MetricsRegistry()
        for start, stop in zip(bounds, bounds[1:]):
            shard = MetricsRegistry()
            hist = shard.histogram(
                "pipeline.batch.wave.jobs", side="left"
            )
            for value in observations[start:stop]:
                hist.observe(value)
            parent.absorb_snapshot(shard.snapshot())

        expected = single.histogram(
            "pipeline.batch.wave.jobs", side="left"
        ).snapshot()
        merged = parent.histogram(
            "pipeline.batch.wave.jobs", side="left"
        ).snapshot()
        assert merged["count"] == expected["count"]
        assert merged["buckets"] == expected["buckets"]
        assert merged["min"] == expected["min"]
        assert merged["max"] == expected["max"]
        # Addition order differs between the merged and single-process
        # paths, so the float sums may differ by rounding only.
        assert math.isclose(
            merged["sum"], expected["sum"], rel_tol=1e-12, abs_tol=1e-9
        )
