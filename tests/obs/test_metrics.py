"""Unit tests of the metrics primitives and the registry."""

import json
import math

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x.y")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_increment_rejected(self):
        c = Counter("x.y")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_reset(self):
        c = Counter("x.y")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x.y")
        g.set(10.0)
        g.inc(2.5)
        g.dec(0.5)
        assert g.value == 12.0

    def test_reset(self):
        g = Gauge("x.y")
        g.set(7)
        g.reset()
        assert g.value == 0.0


class TestHistogram:
    def test_moments(self):
        h = Histogram("x.y", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 3.5):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)
        assert h.mean == pytest.approx(2.0)
        snap = h.snapshot()
        assert snap["min"] == 0.5
        assert snap["max"] == 3.5

    def test_bucket_counts(self):
        h = Histogram("x.y", buckets=(1.0, 10.0, 100.0))
        for v in (0.1, 0.9, 1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        snap = h.snapshot()["buckets"]
        # Bucket bound is an inclusive upper edge; last bin is +inf.
        assert snap["1"] == 3
        assert snap["10"] == 1
        assert snap["100"] == 1
        assert snap["+inf"] == 1

    def test_empty_snapshot_has_null_extremes(self):
        snap = Histogram("x.y").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None
        assert snap["max"] is None
        assert all(v is None for v in snap["quantiles"].values())

    def test_untracked_quantile_rejected(self):
        h = Histogram("x.y")
        with pytest.raises(KeyError):
            h.quantile(0.42)

    def test_reset_forgets_everything(self):
        h = Histogram("x.y")
        h.observe(3.0)
        h.reset()
        assert h.count == 0
        assert h.snapshot()["buckets"]["+inf"] == 0


class TestQuantileAccuracy:
    """P² estimates on known distributions stay within a few percent."""

    def test_uniform(self):
        rng = np.random.default_rng(0)
        h = Histogram("x.y", buckets=DEFAULT_BUCKETS)
        for v in rng.uniform(0.0, 1.0, size=20_000):
            h.observe(float(v))
        assert h.quantile(0.5) == pytest.approx(0.5, abs=0.03)
        assert h.quantile(0.9) == pytest.approx(0.9, abs=0.03)
        assert h.quantile(0.99) == pytest.approx(0.99, abs=0.02)

    def test_exponential(self):
        rng = np.random.default_rng(1)
        h = Histogram("x.y")
        for v in rng.exponential(1.0, size=20_000):
            h.observe(float(v))
        # Exact quantiles of Exp(1): -ln(1 - q).
        assert h.quantile(0.5) == pytest.approx(math.log(2), rel=0.1)
        assert h.quantile(0.9) == pytest.approx(
            -math.log(0.1), rel=0.1
        )

    def test_small_sample_exact(self):
        est = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            est.add(v)
        assert est.value() == 2.0

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value())

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(1.5)


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.counter("a.b", x=1) is not reg.counter("a.b", x=2)

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(ValueError):
            reg.gauge("a.b")

    def test_labels_render_into_key(self):
        reg = MetricsRegistry()
        reg.counter("a.b", stage="narrow").inc(2)
        snap = reg.snapshot()
        assert snap["counters"]["a.b{stage=narrow}"] == 2

    def test_snapshot_groups_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("c.x").inc()
        reg.gauge("g.x").set(3.5)
        reg.histogram("h.x").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c.x": 1}
        assert snap["gauges"] == {"g.x": 3.5}
        assert snap["histograms"]["h.x"]["count"] == 1

    def test_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c.x").inc(4)
        reg.histogram("h.x").observe(0.25)
        reg.gauge("g.x").set(-1.5)
        assert json.loads(reg.to_json()) == json.loads(
            json.dumps(reg.snapshot())
        )

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c.x").inc()
        path = tmp_path / "m.json"
        reg.write_json(str(path))
        assert json.loads(path.read_text())["counters"]["c.x"] == 1

    def test_reset_preserves_identity(self):
        reg = MetricsRegistry()
        c = reg.counter("c.x")
        c.inc(9)
        reg.reset()
        assert c.value == 0
        assert reg.counter("c.x") is c
        assert len(reg) == 1
