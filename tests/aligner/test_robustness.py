"""Robustness: ambiguous bases, degenerate reads, adversarial repeats."""

import numpy as np
import pytest

from repro.aligner.engines import FullBandEngine, SeedExEngine
from repro.aligner.pipeline import Aligner
from repro.genome.sam import diff_records
from repro.genome.sequence import AMBIGUOUS_CODE, decode, encode
from repro.genome.synth import synthesize_reference


@pytest.fixture(scope="module")
def reference():
    rng = np.random.default_rng(99)
    return synthesize_reference(25_000, rng)


class TestAmbiguousBases:
    def test_read_with_n_bases_still_aligns(self, reference):
        aligner = Aligner(reference, FullBandEngine(), seeding="kmer")
        read = reference[5000:5101].copy()
        read[50] = AMBIGUOUS_CODE
        read[51] = AMBIGUOUS_CODE
        rec = aligner.align_read(read, "n-read")
        assert not rec.is_unmapped
        assert rec.pos == 5000
        assert "N" in rec.seq

    def test_n_never_matches_in_scoring(self):
        from repro.align import banded
        from repro.align.scoring import BWA_MEM_SCORING

        q = encode("ACGNACGT")
        t = encode("ACGTACGT")
        res = banded.extend(q, t, BWA_MEM_SCORING, 20)
        # 7 matches, 1 forced mismatch at the N.
        assert res.gscore == 20 + 7 - 4

    def test_seedex_handles_n_reads_identically(self, reference):
        full = Aligner(reference, FullBandEngine(), seeding="kmer")
        seedex = Aligner(reference, SeedExEngine(band=9), seeding="kmer")
        reads = []
        rng = np.random.default_rng(3)
        for k in range(10):
            pos = int(rng.integers(0, len(reference) - 101))
            read = reference[pos : pos + 101].copy()
            sites = rng.choice(101, size=3, replace=False)
            read[sites] = AMBIGUOUS_CODE
            reads.append((f"n{k}", read))
        a = [full.align_read(c, n) for n, c in reads]
        b = [seedex.align_read(c, n) for n, c in reads]
        assert diff_records(a, b) == 0


class TestDegenerateReads:
    def test_homopolymer_read(self, reference):
        aligner = Aligner(reference, FullBandEngine(), seeding="kmer")
        rec = aligner.align_read(encode("A" * 101), "polyA")
        # Either unmapped or some low-confidence placement; never crash.
        assert rec.qname == "polyA"

    def test_very_short_read(self, reference):
        aligner = Aligner(reference, FullBandEngine(), seeding="kmer")
        rec = aligner.align_read(reference[100:125].copy(), "short")
        if not rec.is_unmapped:
            assert rec.pos >= 0

    def test_read_overhanging_reference_end(self, reference):
        aligner = Aligner(reference, FullBandEngine(), seeding="kmer")
        read = np.concatenate(
            [reference[-80:], encode("ACGTACGTACGTACGTACGTA")]
        ).astype(np.uint8)
        rec = aligner.align_read(read, "overhang")
        assert rec.qname == "overhang"  # must not crash at the edge


class TestAdversarialRepeats:
    def test_tandem_repeat_region(self):
        rng = np.random.default_rng(5)
        unit = rng.integers(0, 4, size=50).astype(np.uint8)
        reference = np.concatenate(
            [rng.integers(0, 4, size=2000).astype(np.uint8)]
            + [unit] * 20
            + [rng.integers(0, 4, size=2000).astype(np.uint8)]
        ).astype(np.uint8)
        full = Aligner(reference, FullBandEngine(), seeding="kmer")
        seedex = Aligner(reference, SeedExEngine(band=7), seeding="kmer")
        # A read spanning repeat copies: positions are ambiguous but
        # both engines must make the same deterministic call.
        read = reference[2025:2126].copy()
        a = full.align_read(read, "rep")
        b = seedex.align_read(read, "rep")
        assert a.to_line() == b.to_line()

    def test_structural_corpus_generator_shape(self):
        from repro.genome.synth import structural_corpus

        rng = np.random.default_rng(7)
        jobs = structural_corpus(50, rng)
        assert len(jobs) == 50
        for job in jobs:
            assert 1 <= len(job.query) <= 101
            assert len(job.target) >= len(job.query)
            assert job.h0 >= 19
