"""Robustness: ambiguous bases, degenerate reads, adversarial repeats."""

import numpy as np
import pytest

from repro.aligner.engines import FullBandEngine, SeedExEngine
from repro.aligner.pipeline import Aligner
from repro.genome.sam import diff_records
from repro.genome.sequence import AMBIGUOUS_CODE, decode, encode
from repro.genome.synth import synthesize_reference


@pytest.fixture(scope="module")
def reference():
    rng = np.random.default_rng(99)
    return synthesize_reference(25_000, rng)


class TestAmbiguousBases:
    def test_read_with_n_bases_still_aligns(self, reference):
        aligner = Aligner(reference, FullBandEngine(), seeding="kmer")
        read = reference[5000:5101].copy()
        read[50] = AMBIGUOUS_CODE
        read[51] = AMBIGUOUS_CODE
        rec = aligner.align_read(read, "n-read")
        assert not rec.is_unmapped
        assert rec.pos == 5000
        assert "N" in rec.seq

    def test_n_never_matches_in_scoring(self):
        from repro.align import banded
        from repro.align.scoring import BWA_MEM_SCORING

        q = encode("ACGNACGT")
        t = encode("ACGTACGT")
        res = banded.extend(q, t, BWA_MEM_SCORING, 20)
        # 7 matches, 1 forced mismatch at the N.
        assert res.gscore == 20 + 7 - 4

    def test_seedex_handles_n_reads_identically(self, reference):
        full = Aligner(reference, FullBandEngine(), seeding="kmer")
        seedex = Aligner(reference, SeedExEngine(band=9), seeding="kmer")
        reads = []
        rng = np.random.default_rng(3)
        for k in range(10):
            pos = int(rng.integers(0, len(reference) - 101))
            read = reference[pos : pos + 101].copy()
            sites = rng.choice(101, size=3, replace=False)
            read[sites] = AMBIGUOUS_CODE
            reads.append((f"n{k}", read))
        a = [full.align_read(c, n) for n, c in reads]
        b = [seedex.align_read(c, n) for n, c in reads]
        assert diff_records(a, b) == 0


class TestDegenerateReads:
    def test_homopolymer_read(self, reference):
        aligner = Aligner(reference, FullBandEngine(), seeding="kmer")
        rec = aligner.align_read(encode("A" * 101), "polyA")
        # Either unmapped or some low-confidence placement; never crash.
        assert rec.qname == "polyA"

    def test_very_short_read(self, reference):
        aligner = Aligner(reference, FullBandEngine(), seeding="kmer")
        rec = aligner.align_read(reference[100:125].copy(), "short")
        if not rec.is_unmapped:
            assert rec.pos >= 0

    def test_read_overhanging_reference_end(self, reference):
        aligner = Aligner(reference, FullBandEngine(), seeding="kmer")
        read = np.concatenate(
            [reference[-80:], encode("ACGTACGTACGTACGTACGTA")]
        ).astype(np.uint8)
        rec = aligner.align_read(read, "overhang")
        assert rec.qname == "overhang"  # must not crash at the edge


class TestAdversarialRepeats:
    def test_tandem_repeat_region(self):
        rng = np.random.default_rng(5)
        unit = rng.integers(0, 4, size=50).astype(np.uint8)
        reference = np.concatenate(
            [rng.integers(0, 4, size=2000).astype(np.uint8)]
            + [unit] * 20
            + [rng.integers(0, 4, size=2000).astype(np.uint8)]
        ).astype(np.uint8)
        full = Aligner(reference, FullBandEngine(), seeding="kmer")
        seedex = Aligner(reference, SeedExEngine(band=7), seeding="kmer")
        # A read spanning repeat copies: positions are ambiguous but
        # both engines must make the same deterministic call.
        read = reference[2025:2126].copy()
        a = full.align_read(read, "rep")
        b = seedex.align_read(read, "rep")
        assert a.to_line() == b.to_line()

    def test_structural_corpus_generator_shape(self):
        from repro.genome.synth import structural_corpus

        rng = np.random.default_rng(7)
        jobs = structural_corpus(50, rng)
        assert len(jobs) == 50
        for job in jobs:
            assert 1 <= len(job.query) <= 101
            assert len(job.target) >= len(job.query)
            assert job.h0 >= 19


class TestAdversarialInputs:
    """Degenerate shapes must not crash and must not diverge engines."""

    def _both(self, reference):
        return (
            Aligner(reference, FullBandEngine(), seeding="kmer"),
            Aligner(reference, SeedExEngine(band=9), seeding="kmer"),
        )

    def test_zero_length_read(self, reference):
        for aligner in self._both(reference):
            rec = aligner.align_read(
                np.array([], dtype=np.uint8), "empty"
            )
            assert rec.is_unmapped
            assert rec.qname == "empty"

    def test_zero_length_read_identical_records(self, reference):
        full, seedex = self._both(reference)
        empty = np.array([], dtype=np.uint8)
        a = full.align_read(empty, "empty")
        b = seedex.align_read(empty, "empty")
        assert a.to_line() == b.to_line()

    def test_read_longer_than_reference(self):
        rng = np.random.default_rng(13)
        tiny = synthesize_reference(200, rng)
        read = np.concatenate([tiny, tiny, tiny[:50]]).astype(np.uint8)
        for aligner in self._both(tiny):
            rec = aligner.align_read(read, "giant")
            assert rec.qname == "giant"  # no crash, mapped or not

    def test_read_longer_than_reference_identical_records(self):
        rng = np.random.default_rng(14)
        tiny = synthesize_reference(300, rng)
        read = np.concatenate([tiny, tiny[:120]]).astype(np.uint8)
        full, seedex = self._both(tiny)
        a = full.align_read(read, "giant")
        b = seedex.align_read(read, "giant")
        assert a.to_line() == b.to_line()

    def test_all_n_read(self, reference):
        all_n = np.full(101, AMBIGUOUS_CODE, dtype=np.uint8)
        records = []
        for aligner in self._both(reference):
            rec = aligner.align_read(all_n, "allN")
            assert rec.is_unmapped  # N never matches: nothing to seed
            assert rec.seq == "N" * 101
            records.append(rec)
        assert records[0].to_line() == records[1].to_line()

    def test_adversarial_batch_identical_across_engines(self, reference):
        """The degenerate shapes, run as one batch through diff_records."""
        empty = np.array([], dtype=np.uint8)
        all_n = np.full(101, AMBIGUOUS_CODE, dtype=np.uint8)
        single = np.array([2], dtype=np.uint8)
        reads = [
            ("empty", empty),
            ("allN", all_n),
            ("single", single),
            ("normal", reference[1000:1101].copy()),
        ]
        full, seedex = self._both(reference)
        a = [full.align_read(c, n) for n, c in reads]
        b = [seedex.align_read(c, n) for n, c in reads]
        assert diff_records(a, b) == 0
