"""End-to-end CIGAR/score consistency.

For every mapped record the pipeline emits, re-walk the CIGAR against
the reference and recompute the affine-gap score of the aligned
(non-clipped) region from scratch.  It must equal the AS tag exactly —
a single invariant that catches traceback bugs, stitching bugs,
h0-threading bugs, and coordinate bugs anywhere in the pipeline.
"""

import numpy as np
import pytest

from repro.align.cigar import Cigar
from repro.align.scoring import BWA_MEM_SCORING
from repro.aligner.engines import FullBandEngine, SeedExEngine
from repro.aligner.pipeline import Aligner
from repro.genome.sequence import encode, reverse_complement
from repro.genome.synth import (
    PLATINUM_LIKE,
    ReadProfile,
    ReadSimulator,
    synthesize_reference,
)


def rescore(record, reference, scoring=BWA_MEM_SCORING):
    """Affine score of the record's aligned region, from first
    principles."""
    query = encode(record.seq)
    if record.is_reverse:
        query = reverse_complement(query)
    cigar = Cigar.parse(record.cigar)
    score = 0
    i = record.pos
    j = 0
    for length, op in cigar.ops:
        if op == "S":
            j += length
        elif op == "M":
            for _ in range(length):
                score += scoring.substitution(
                    int(reference[i]), int(query[j])
                )
                i += 1
                j += 1
        elif op == "D":
            score -= scoring.gap_open + length * scoring.gap_extend_del
            i += length
        elif op == "I":
            score -= scoring.gap_open + length * scoring.gap_extend_ins
            j += length
        else:
            raise AssertionError(f"unexpected op {op}")
    assert j == len(query), "CIGAR must consume the whole read"
    return score


def as_tag(record):
    """Extract the AS:i score tag."""
    for tag in record.tags:
        if tag.startswith("AS:i:"):
            return int(tag[5:])
    raise AssertionError("record carries no AS tag")


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(2026)
    reference = synthesize_reference(40_000, rng, repeat_fraction=0.02)
    return reference


class TestScoreConsistency:
    @pytest.mark.parametrize("engine_cls", [FullBandEngine,
                                            lambda: SeedExEngine(band=11)])
    def test_as_equals_rescored_cigar(self, setup, engine_cls):
        reference = setup
        reads = ReadSimulator(reference, PLATINUM_LIKE, seed=9).simulate(40)
        engine = engine_cls() if callable(engine_cls) else engine_cls
        aligner = Aligner(reference, engine, seeding="kmer")
        for read in reads:
            record = aligner.align_read(read.codes, read.name)
            if record.is_unmapped:
                continue
            assert as_tag(record) == rescore(record, reference), (
                f"{read.name}: AS tag disagrees with its own CIGAR"
            )

    def test_structural_indel_reads(self, setup):
        reference = setup
        profile = ReadProfile(large_indel_rate=1.0, large_indel_min=15)
        reads = ReadSimulator(reference, profile, seed=10).simulate(25)
        aligner = Aligner(reference, FullBandEngine(), seeding="kmer")
        checked = 0
        for read in reads:
            record = aligner.align_read(read.codes, read.name)
            if record.is_unmapped:
                continue
            assert as_tag(record) == rescore(record, reference)
            checked += 1
        assert checked >= 20

    def test_rescued_mate_scores_reconstruct(self, setup):
        """Mate-rescue records carry a CIGAR built by a separate code
        path; their AS tag must satisfy the same invariant."""
        from repro.aligner.paired import (
            PairedAligner,
            ReadPair,
            simulate_pairs,
        )

        reference = setup
        rng = np.random.default_rng(21)
        pairs = simulate_pairs(reference, 15, rng)
        pa = PairedAligner(reference, FullBandEngine())
        checked = 0
        for pair, _, _ in pairs:
            bad = pair.second.copy()
            sites = rng.choice(len(bad), size=9, replace=False)
            bad[sites] = (bad[sites] + rng.integers(1, 4, size=9)) % 4
            _, r2 = pa.align_pair(ReadPair(pair.name, pair.first, bad))
            if r2.is_unmapped or "XR:i:1" not in r2.tags:
                continue
            assert as_tag(r2) == rescore(r2, reference)
            checked += 1
        assert checked >= 1

    def test_longread_scores_reconstruct(self, setup):
        """The long-read pipeline's stitched score: re-walk its CIGAR."""
        from repro.aligner.longread import LongReadAligner
        from repro.genome.synth import simulate_long_reads

        reference = setup
        rng = np.random.default_rng(11)
        reads = simulate_long_reads(reference, 4, rng)
        aligner = LongReadAligner(reference, fill_band=16)
        for read in reads:
            result = aligner.align(read.codes, read.name)
            assert result is not None
            # Re-walk the stitched CIGAR.
            score = 0
            i = result.pos
            j = 0
            for length, op in result.cigar.ops:
                if op == "S":
                    j += length
                elif op == "M":
                    for _ in range(length):
                        score += BWA_MEM_SCORING.substitution(
                            int(reference[i]), int(read.codes[j])
                        )
                        i += 1
                        j += 1
                elif op == "D":
                    score -= 6 + length
                    i += length
                else:
                    score -= 6 + length
                    j += length
            assert j == len(read.codes)
            assert score == result.score, (
                f"{read.name}: stitched score {result.score} != "
                f"re-walked {score}"
            )
