"""Tests for paired-end alignment and mate rescue."""

import numpy as np
import pytest

from repro.align.cigar import Cigar
from repro.aligner.engines import FullBandEngine, SeedExEngine
from repro.aligner.paired import (
    FLAG_FIRST,
    FLAG_MATE_REVERSE,
    FLAG_MATE_UNMAPPED,
    FLAG_PAIRED,
    FLAG_PROPER,
    FLAG_SECOND,
    InsertSizeModel,
    PairedAligner,
    ReadPair,
    _find_exact,
    simulate_pairs,
)
from repro.genome.synth import synthesize_reference


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(17)
    reference = synthesize_reference(60_000, rng)
    pairs = simulate_pairs(reference, 20, rng)
    return reference, pairs, rng


class TestInsertModel:
    def test_window(self):
        model = InsertSizeModel(mean=400, std=50, max_deviation=4)
        assert model.window == (200, 600)
        assert model.is_proper(400)
        assert model.is_proper(200)
        assert not model.is_proper(199)
        assert not model.is_proper(601)


class TestSimulation:
    def test_truth_positions(self, setup):
        reference, pairs, _ = setup
        from repro.genome.sequence import reverse_complement

        model = InsertSizeModel()
        for pair, p1, p2 in pairs:
            insert = p2 + len(pair.second) - p1
            assert model.is_proper(insert) or insert >= 2 * 101 + 10
            # Mate 2 is reverse-complemented in the pair record.
            fwd2 = reverse_complement(pair.second)
            window = reference[p2 : p2 + len(fwd2)]
            mismatches = int((fwd2 != window).sum())
            assert mismatches <= 10  # substitutions only

    def test_short_reference_rejected(self):
        rng = np.random.default_rng(0)
        ref = synthesize_reference(300, rng)
        with pytest.raises(ValueError):
            simulate_pairs(ref, 1, rng)


class TestPairing:
    def test_most_pairs_proper_with_exact_positions(self, setup):
        reference, pairs, _ = setup
        pa = PairedAligner(reference, FullBandEngine())
        proper = positions = 0
        for pair, p1, p2 in pairs:
            r1, r2 = pa.align_pair(pair)
            proper += bool(r1.flag & FLAG_PROPER)
            positions += (r1.pos == p1) + (r2.pos == p2)
        assert proper >= len(pairs) - 2
        assert positions >= 2 * len(pairs) - 4

    def test_flags_are_consistent(self, setup):
        reference, pairs, _ = setup
        pa = PairedAligner(reference, FullBandEngine())
        r1, r2 = pa.align_pair(pairs[0][0])
        assert r1.flag & FLAG_PAIRED and r2.flag & FLAG_PAIRED
        assert r1.flag & FLAG_FIRST
        assert r2.flag & FLAG_SECOND
        assert bool(r1.flag & FLAG_PROPER) == bool(r2.flag & FLAG_PROPER)
        if r2.is_reverse:
            assert r1.flag & FLAG_MATE_REVERSE
        # FR library: mates on opposite strands.
        assert r1.is_reverse != r2.is_reverse

    def test_tlen_symmetry(self, setup):
        reference, pairs, _ = setup
        pa = PairedAligner(reference, FullBandEngine())
        r1, r2 = pa.align_pair(pairs[1][0])
        tl1 = int(dict(t.split(":i:") for t in r1.tags if "TL" in t)["TL"])
        tl2 = int(dict(t.split(":i:") for t in r2.tags if "TL" in t)["TL"])
        assert tl1 == -tl2
        assert abs(tl1) > 0

    def test_seedex_engine_gives_same_pairs_as_full(self, setup):
        reference, pairs, _ = setup
        pa_full = PairedAligner(reference, FullBandEngine())
        pa_sx = PairedAligner(reference, SeedExEngine(band=11))
        for pair, _, _ in pairs[:8]:
            a1, a2 = pa_full.align_pair(pair)
            b1, b2 = pa_sx.align_pair(pair)
            assert a1.to_line() == b1.to_line()
            assert a2.to_line() == b2.to_line()


class TestMateRescue:
    def test_corrupted_mate_is_rescued(self, setup):
        reference, pairs, rng = setup
        pa = PairedAligner(reference, SeedExEngine(band=41))
        placed = 0
        for pair, p1, p2 in pairs:
            bad = pair.second.copy()
            sites = rng.choice(len(bad), size=9, replace=False)
            bad[sites] = (bad[sites] + rng.integers(1, 4, size=9)) % 4
            r1, r2 = pa.align_pair(ReadPair(pair.name, pair.first, bad))
            if not r2.is_unmapped and abs(r2.pos - p2) <= 30:
                placed += 1
        assert placed >= len(pairs) - 3
        assert pa.stats.rescued > 0

    def test_rescued_record_has_marker_tag(self, setup):
        reference, pairs, rng = setup
        pa = PairedAligner(reference, FullBandEngine())
        rescued_seen = False
        for pair, _, p2 in pairs:
            bad = pair.second.copy()
            sites = rng.choice(len(bad), size=10, replace=False)
            bad[sites] = (bad[sites] + rng.integers(1, 4, size=10)) % 4
            solo = pa.aligner.align_read(bad, "probe")
            if not solo.is_unmapped:
                continue
            _, r2 = pa.align_pair(ReadPair(pair.name, pair.first, bad))
            if not r2.is_unmapped:
                assert any(t == "XR:i:1" for t in r2.tags)
                assert Cigar.parse(r2.cigar).query_length == len(bad)
                rescued_seen = True
        assert rescued_seen

    def test_hopeless_mate_stays_unmapped(self, setup):
        reference, pairs, _ = setup
        rng = np.random.default_rng(123)
        pa = PairedAligner(reference, FullBandEngine())
        junk = rng.integers(0, 4, size=101).astype(np.uint8)
        pair, _, _ = pairs[0]
        r1, r2 = pa.align_pair(ReadPair(pair.name, pair.first, junk))
        assert r2.is_unmapped or r2.mapq == 0
        if r2.is_unmapped:
            assert r1.flag & FLAG_MATE_UNMAPPED


class TestFindExact:
    def test_finds_all_occurrences(self):
        window = np.array([0, 1, 2, 0, 1, 2, 0, 1], dtype=np.uint8)
        probe = np.array([0, 1], dtype=np.uint8)
        assert _find_exact(window, probe) == [0, 3, 6]

    def test_probe_longer_than_window(self):
        assert _find_exact(
            np.zeros(3, dtype=np.uint8), np.zeros(5, dtype=np.uint8)
        ) == []
