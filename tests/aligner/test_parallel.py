"""Unit tests for the sharded runner's plumbing.

The byte-identity of sharded SAM output lives in
``tests/aligner/test_differential.py``; this module covers the parts
around it: the shard plan, the :class:`EngineSpec` recipe, input
normalization, argument validation, and the parent-side merge of
per-worker metric snapshots (``pipeline.shard.*`` accounting).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.aligner.engines import (
    BatchedEngine,
    FullBandEngine,
    PlainBandedEngine,
    SeedExEngine,
)
from repro.aligner.parallel import (
    EngineSpec,
    StartMethodError,
    _shard_plan,
    align_sharded,
    align_supervised,
)
from repro.genome.synth import (
    PLATINUM_LIKE,
    ReadSimulator,
    synthesize_reference,
)
from repro.obs import names


@pytest.fixture
def corpus():
    """A small corpus for runner-level tests."""
    rng = np.random.default_rng(31)
    reference = synthesize_reference(8_000, rng)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=32)
    return reference, sim.simulate(10)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Keep the global obs state isolated per test."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestShardPlan:
    def test_even_split(self):
        assert _shard_plan(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_early_shards(self):
        assert _shard_plan(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_plan_covers_every_read_exactly_once(self):
        for count in (1, 5, 17, 100):
            for workers in (1, 2, 3, 7):
                plan = _shard_plan(count, workers)
                assert plan[0][0] == 0
                assert plan[-1][1] == count
                for (_, stop), (start, _) in zip(plan, plan[1:]):
                    assert stop == start


class TestEngineSpec:
    def test_builds_every_kind(self):
        assert isinstance(EngineSpec(kind="full").build(), FullBandEngine)
        assert isinstance(
            EngineSpec(kind="banded", band=9).build(), PlainBandedEngine
        )
        assert isinstance(
            EngineSpec(kind="batched").build(), BatchedEngine
        )
        assert isinstance(EngineSpec(kind="seedex").build(), SeedExEngine)

    def test_banded_requires_band(self):
        with pytest.raises(ValueError):
            EngineSpec(kind="banded").build()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EngineSpec(kind="gpu").build()

    def test_chaos_spec_wraps_the_engine(self):
        engine = EngineSpec(kind="batched", chaos=True).build()
        # The resilient dispatcher still satisfies the protocol.
        assert hasattr(engine, "extend")
        assert not isinstance(engine, BatchedEngine)

    def test_spec_is_picklable(self):
        import pickle

        spec = EngineSpec(kind="batched", band=21, chaos=True)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestAlignSharded:
    def test_rejects_zero_workers(self, corpus):
        reference, reads = corpus
        with pytest.raises(ValueError):
            align_sharded(reference, reads, workers=0)

    def test_workers_capped_at_read_count(self, corpus):
        reference, reads = corpus
        records = align_sharded(
            reference, reads[:2], workers=8, seeding="kmer"
        )
        assert len(records) == 2

    def test_accepts_name_codes_pairs(self, corpus):
        reference, reads = corpus
        pairs = [(r.name, r.codes) for r in reads]
        a = align_sharded(reference, pairs, workers=2, seeding="kmer")
        b = align_sharded(reference, reads, workers=2, seeding="kmer")
        assert [r.to_line() for r in a] == [r.to_line() for r in b]

    def test_shard_metrics_and_snapshot_merge(self, corpus):
        """Worker measurements land in the parent registry."""
        reference, reads = corpus
        obs.enable()
        align_sharded(
            reference, reads, spec=EngineSpec(kind="batched"),
            workers=2, batch_size=4, seeding="kmer",
        )
        snap = obs.get_registry().snapshot()
        counters = snap["counters"]
        assert snap["gauges"][names.PIPELINE_SHARD_WORKERS] == 2
        shard_reads = [
            v for k, v in counters.items()
            if k.startswith(names.PIPELINE_SHARD_READS)
        ]
        assert sum(shard_reads) == len(reads)
        assert counters[names.PIPELINE_SHARD_SNAPSHOTS_MERGED] == 2
        # Worker-side pipeline metrics were absorbed: every read the
        # workers aligned is visible from the parent.
        assert counters[names.ALIGNER_READS_TOTAL] == len(reads)

    def test_single_worker_runs_inline(self, corpus):
        """``workers=1`` never spawns processes but still accounts."""
        reference, reads = corpus
        obs.enable()
        records = align_sharded(
            reference, reads, workers=1, batch_size=4, seeding="kmer"
        )
        assert len(records) == len(reads)
        snap = obs.get_registry().snapshot()
        assert snap["gauges"][names.PIPELINE_SHARD_WORKERS] == 1
        # No worker snapshots exist to merge (reset keeps zeroed keys
        # from earlier tests, so check the value, not the key).
        merged = snap["counters"].get(
            names.PIPELINE_SHARD_SNAPSHOTS_MERGED, 0
        )
        assert merged == 0


class TestStartMethodError:
    """Spawn + fork-only state fails fast with a typed error.

    Before this check, an unpicklable aligner option under
    ``start_method="spawn"`` surfaced as a ``PicklingError`` traceback
    from inside the pool bootstrap — after workers had started.
    """

    def test_sharded_spawn_rejects_unpicklable_options_up_front(
        self, corpus
    ):
        reference, reads = corpus
        with pytest.raises(StartMethodError) as excinfo:
            align_sharded(
                reference,
                reads,
                workers=2,
                start_method="spawn",
                seeding="kmer",
                min_seed_len=lambda: 19,  # unpicklable on purpose
            )
        message = str(excinfo.value)
        assert "spawn" in message
        assert "aligner options" in message

    def test_supervised_spawn_rejects_unpicklable_options_up_front(
        self, corpus
    ):
        reference, reads = corpus
        with pytest.raises(StartMethodError):
            align_supervised(
                reference,
                reads,
                workers=2,
                start_method="spawn",
                seeding="kmer",
                min_seed_len=lambda: 19,
            )

    def test_fork_still_accepts_fork_only_state(self, corpus):
        """Under fork the same payload is legal: nothing is pickled."""
        reference, reads = corpus
        records = align_sharded(
            reference,
            reads[:2],
            workers=2,
            start_method="fork",
            seeding="kmer",
        )
        assert len(records) == 2

    def test_error_is_a_typeerror_for_backward_compat(self):
        assert issubclass(StartMethodError, TypeError)
