"""Integration tests for the end-to-end aligner."""

import numpy as np
import pytest

from repro.align.cigar import Cigar
from repro.aligner.engines import (
    FullBandEngine,
    PlainBandedEngine,
    SeedExEngine,
)
from repro.aligner.pipeline import Aligner
from repro.genome.sam import diff_records
from repro.genome.sequence import decode, random_sequence
from repro.genome.synth import (
    CLEAN,
    PLATINUM_LIKE,
    ReadProfile,
    ReadSimulator,
    synthesize_reference,
)


@pytest.fixture(scope="module")
def reference():
    rng = np.random.default_rng(1234)
    return synthesize_reference(30_000, rng, repeat_fraction=0.0)


@pytest.fixture(scope="module")
def platinum_reads(reference):
    return ReadSimulator(reference, PLATINUM_LIKE, seed=7).simulate(40)


class TestAccuracy:
    def test_clean_reads_map_exactly(self, reference):
        reads = ReadSimulator(reference, CLEAN, seed=3).simulate(25)
        aligner = Aligner(reference, FullBandEngine())
        for read, rec in zip(reads, aligner.align(reads)):
            assert not rec.is_unmapped
            assert rec.pos == read.true_pos
            assert rec.is_reverse == read.reverse
            assert rec.cigar == "101M"
            assert rec.mapq > 0

    def test_noisy_reads_map_near_truth(self, reference, platinum_reads):
        aligner = Aligner(reference, FullBandEngine())
        near = 0
        for read, rec in zip(platinum_reads, aligner.align(platinum_reads)):
            if rec.is_unmapped:
                continue
            if (
                abs(rec.pos - read.true_pos) <= 50
                and rec.is_reverse == read.reverse
            ):
                near += 1
        assert near >= len(platinum_reads) - 3

    def test_cigar_consumes_whole_read(self, reference, platinum_reads):
        aligner = Aligner(reference, FullBandEngine())
        for rec in aligner.align(platinum_reads):
            if rec.is_unmapped:
                continue
            assert Cigar.parse(rec.cigar).query_length == 101

    def test_unalignable_read_is_unmapped(self, reference):
        rng = np.random.default_rng(99)
        junk = random_sequence(101, rng)
        aligner = Aligner(reference, FullBandEngine())
        rec = aligner.align_read(junk, "junk")
        # Either unmapped or a low-quality accidental hit.
        assert rec.is_unmapped or rec.mapq < 30

    def test_sequence_reported_as_given(self, reference, platinum_reads):
        aligner = Aligner(reference, FullBandEngine())
        read = platinum_reads[0]
        rec = aligner.align_read(read.codes, read.name)
        assert rec.seq == decode(read.codes)


class TestEngineEquivalence:
    def test_seedex_bit_equivalent_to_full_band(
        self, reference, platinum_reads
    ):
        """The headline claim (Figure 13's flat-zero SeedEx curve)."""
        full = Aligner(reference, FullBandEngine()).align(platinum_reads)
        for band in (5, 11, 41):
            seedex = Aligner(reference, SeedExEngine(band=band)).align(
                platinum_reads
            )
            assert diff_records(full, seedex) == 0

    def test_plain_banded_diverges_with_structural_indels(self, reference):
        """A narrow band without checks must eventually disagree."""
        profile = ReadProfile(large_indel_rate=1.0, large_indel_min=20)
        reads = ReadSimulator(reference, profile, seed=11).simulate(25)
        full = Aligner(reference, FullBandEngine()).align(reads)
        banded = Aligner(reference, PlainBandedEngine(3)).align(reads)
        assert diff_records(full, banded) > 0

    def test_seedex_handles_structural_indels(self, reference):
        profile = ReadProfile(large_indel_rate=1.0, large_indel_min=20)
        reads = ReadSimulator(reference, profile, seed=11).simulate(25)
        full = Aligner(reference, FullBandEngine()).align(reads)
        seedex_engine = SeedExEngine(band=8)
        seedex = Aligner(reference, seedex_engine).align(reads)
        assert diff_records(full, seedex) == 0
        # With w=8 and 20+bp indels there must have been reruns.
        assert seedex_engine.stats.reruns > 0

    def test_kmer_backend_matches_smem_on_clean_reads(self, reference):
        reads = ReadSimulator(reference, CLEAN, seed=5).simulate(15)
        smem = Aligner(reference, FullBandEngine(), seeding="smem")
        kmer = Aligner(reference, FullBandEngine(), seeding="kmer")
        for read in reads:
            a = smem.align_read(read.codes, read.name)
            b = kmer.align_read(read.codes, read.name)
            assert a.pos == b.pos
            assert a.cigar == b.cigar


class TestConstruction:
    def test_unknown_seeding_rejected(self, reference):
        with pytest.raises(ValueError):
            Aligner(reference, seeding="hash-table")

    def test_engine_counts_extensions(self, reference, platinum_reads):
        engine = FullBandEngine()
        Aligner(reference, engine).align(platinum_reads[:10])
        assert engine.extensions > 0
        assert engine.cells > 0
