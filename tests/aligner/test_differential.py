"""Differential SAM tests: every dispatch mode, one byte stream.

The batched/sharded pipeline's whole contract is *no new semantics*:
the deferred-extension wave scheduler and the multi-process shard
runner are pure scheduling transforms, so their SAM output must be
byte-identical to the scalar single-process ``FullBandEngine`` run.
This suite pins that contract across

* engines: scalar ``FullBandEngine`` vs wave-dispatched
  ``BatchedEngine`` (full band);
* dispatch: in-process scalar loop, in-process wave scheduler with
  ragged window sizes, and the sharded runner at 1 and 4 workers;
* corpora: three independently-seeded Platinum-like read sets, plus a
  ragged corpus of pipeline edge cases (empty read, all-``N`` read,
  junk read with no chains, read longer than the whole reference).

Any divergence — a reordered record, a different CIGAR, a drifted
MAPQ — fails the byte comparison immediately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aligner.engines import BatchedEngine, FullBandEngine
from repro.aligner.parallel import EngineSpec
from repro.genome.sequence import encode
from repro.genome.synth import (
    PLATINUM_LIKE,
    ReadSimulator,
    synthesize_reference,
)
from tests.helpers import sam_bytes

CORPUS_SEEDS = (11, 23, 47)


def _corpus(seed: int, reads: int = 24, ref_len: int = 20_000):
    """One Platinum-like corpus: reference plus simulated reads."""
    rng = np.random.default_rng(seed)
    reference = synthesize_reference(ref_len, rng, repeat_fraction=0.05)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=seed + 1)
    return reference, sim.simulate(reads)


def _ragged_corpus():
    """Edge-case reads the wave scheduler must not choke on.

    Interleaved with ordinary mapped reads so every window mixes
    mapped, unmapped, and degenerate slots.
    """
    rng = np.random.default_rng(99)
    reference = synthesize_reference(4_000, rng)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=100)
    normal = sim.simulate(8)
    specials = [
        ("empty", np.zeros(0, dtype=np.uint8)),
        ("short", encode("ACGT")),  # below the seed length: no seeds
        ("all_n", encode("N" * 80)),
        # Random junk: seeds may hit repeats but chains rarely form.
        ("junk", rng.integers(0, 4, size=120).astype(np.uint8)),
        # Longer than the whole reference window.
        (
            "megaread",
            np.concatenate(
                [reference, rng.integers(0, 4, size=500).astype(np.uint8)]
            ).astype(np.uint8),
        ),
    ]
    reads: list[tuple[str, np.ndarray]] = []
    for k, read in enumerate(normal):
        reads.append((read.name, np.asarray(read.codes, dtype=np.uint8)))
        if k < len(specials):
            reads.append(specials[k])
    return reference, reads


@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_batched_engine_matches_scalar(seed):
    """Wave scheduler + lockstep kernel == scalar loop, byte for byte."""
    reference, reads = _corpus(seed)
    baseline = sam_bytes(reference, reads, FullBandEngine(), seeding="kmer")
    batched = sam_bytes(
        reference,
        reads,
        BatchedEngine(),
        batch_size=7,  # ragged windows: 24 reads -> 7+7+7+3
        seeding="kmer",
    )
    assert batched == baseline


@pytest.mark.parametrize("seed", CORPUS_SEEDS)
@pytest.mark.parametrize("kind", ["full", "batched"])
def test_sharded_matches_scalar(seed, kind):
    """{scalar, batched} engines x 4 workers == single-process scalar."""
    reference, reads = _corpus(seed)
    baseline = sam_bytes(reference, reads, FullBandEngine(), seeding="kmer")
    sharded = sam_bytes(
        reference,
        reads,
        EngineSpec(kind=kind),
        workers=4,
        batch_size=16,
        seeding="kmer",
    )
    assert sharded == baseline


def test_one_worker_inline_path_matches_scalar():
    """``workers=1`` (no multiprocessing) is the same byte stream too."""
    reference, reads = _corpus(CORPUS_SEEDS[0])
    baseline = sam_bytes(reference, reads, FullBandEngine(), seeding="kmer")
    inline = sam_bytes(
        reference,
        reads,
        EngineSpec(kind="batched"),
        workers=1,
        batch_size=16,
        seeding="kmer",
    )
    assert inline == baseline


@pytest.mark.parametrize("batch_size", [1, 5, 64])
def test_ragged_corpus_matches_scalar(batch_size):
    """Degenerate reads survive every window geometry unchanged."""
    reference, reads = _ragged_corpus()
    baseline = sam_bytes(reference, reads, FullBandEngine(), seeding="kmer")
    batched = sam_bytes(
        reference,
        reads,
        BatchedEngine(),
        batch_size=batch_size,
        seeding="kmer",
    )
    assert batched == baseline


def test_ragged_corpus_sharded_matches_scalar():
    """The ragged corpus also shards cleanly across 4 workers."""
    reference, reads = _ragged_corpus()
    baseline = sam_bytes(reference, reads, FullBandEngine(), seeding="kmer")
    sharded = sam_bytes(
        reference,
        reads,
        EngineSpec(kind="batched"),
        workers=4,
        batch_size=5,
        seeding="kmer",
    )
    assert sharded == baseline


def test_smem_seeding_differential():
    """The contract holds under the FM-index seeding backend as well."""
    reference, reads = _corpus(CORPUS_SEEDS[1], reads=10, ref_len=6_000)
    baseline = sam_bytes(reference, reads, FullBandEngine(), seeding="smem")
    batched = sam_bytes(
        reference, reads, BatchedEngine(), batch_size=4, seeding="smem"
    )
    assert batched == baseline


def test_cache_disabled_matches_scalar():
    """``cache_entries=0`` changes nothing but the work done."""
    reference, reads = _corpus(CORPUS_SEEDS[2], reads=12)
    baseline = sam_bytes(reference, reads, FullBandEngine(), seeding="kmer")
    uncached = sam_bytes(
        reference,
        reads,
        BatchedEngine(cache_entries=0),
        batch_size=5,
        seeding="kmer",
    )
    assert uncached == baseline


@pytest.mark.slow
def test_corpus_scale_differential():
    """A corpus-scale run (1k reads) at the paper's batch geometry."""
    reference, reads = _corpus(CORPUS_SEEDS[0], reads=1_000, ref_len=50_000)
    baseline = sam_bytes(reference, reads, FullBandEngine(), seeding="kmer")
    batched = sam_bytes(
        reference, reads, BatchedEngine(), batch_size=4096, seeding="kmer"
    )
    sharded = sam_bytes(
        reference,
        reads,
        EngineSpec(kind="batched"),
        workers=4,
        batch_size=4096,
        seeding="kmer",
    )
    assert batched == baseline
    assert sharded == baseline
