"""Property tests for the wave-dispatched engine and its result cache.

:class:`~repro.aligner.engines.BatchedEngine` promises two things:

1. **Bit-identity** — every job of an :meth:`extend_wave` call comes
   back equal to the scalar kernel run with pruning disabled
   (``banded.extend(prune=False)``), field for field: the score tuple,
   the boundary-E/F check inputs, ``max_off``, and the geometry.
2. **Transparent caching** — a cache hit (within one wave or across
   calls) returns a result equal to the cold compute, and duplicate
   jobs inside a wave are computed exactly once.

Both are enforced here with hypothesis over random job mixes, ragged
lengths (including empty queries/targets), and band settings.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING
from repro.aligner.cache import ExtensionCache, job_key
from repro.aligner.engines import BatchedEngine

SEQ = st.lists(st.integers(0, 4), min_size=0, max_size=14).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)
JOB = st.tuples(
    SEQ,
    st.lists(st.integers(0, 4), min_size=1, max_size=14).map(
        lambda xs: np.array(xs, dtype=np.uint8)
    ),
    st.integers(1, 40),
)


def assert_results_equal(got, want) -> None:
    """Bit-identity of two :class:`ExtensionResult`\\ s.

    Compares every field the pipeline and the SeedEx checks consume:
    the score tuple, ``max_off``, the job geometry, and both boundary
    arrays.  ``cells_computed`` is accounting, not a result, and is
    deliberately not compared.
    """
    assert got.scores() == want.scores()
    assert got.max_off == want.max_off
    assert got.h0 == want.h0
    assert got.qlen == want.qlen
    assert got.tlen == want.tlen
    assert (got.boundary_e == want.boundary_e).all()
    assert (got.boundary_f == want.boundary_f).all()


class TestWaveBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(jobs=st.lists(JOB, min_size=1, max_size=8))
    def test_wave_matches_scalar_kernel(self, jobs):
        """Each wave job == ``banded.extend(prune=False)`` on that job.

        ``band=None`` runs the whole wave at the batch-wide full band
        (the band covering the largest job), so the scalar reference
        is the kernel at that same band; scores are additionally
        pinned to the per-job full-band run, which they must equal
        because both bands cover the job's whole matrix.
        """
        shared = banded.full_band_for(
            max(len(q) for q, _, _ in jobs),
            max(len(t) for _, t, _ in jobs),
        )
        engine = BatchedEngine(cache_entries=0)
        results = engine.extend_wave(jobs)
        assert len(results) == len(jobs)
        for (q, t, h0), res in zip(jobs, results):
            want = banded.extend(
                q, t, BWA_MEM_SCORING, h0, w=shared, prune=False
            )
            assert_results_equal(res, want)
            per_job = banded.extend(q, t, BWA_MEM_SCORING, h0, prune=False)
            assert res.scores() == per_job.scores()

    @settings(max_examples=40, deadline=None)
    @given(
        jobs=st.lists(JOB, min_size=1, max_size=6),
        band=st.integers(1, 10),
    )
    def test_banded_wave_matches_scalar_kernel(self, jobs, band):
        """A fixed band batches just like the scalar banded kernel."""
        engine = BatchedEngine(band=band, cache_entries=0)
        results = engine.extend_wave(jobs)
        for (q, t, h0), res in zip(jobs, results):
            want = banded.extend(
                q, t, BWA_MEM_SCORING, h0, w=band, prune=False
            )
            assert_results_equal(res, want)

    @settings(max_examples=60, deadline=None)
    @given(job=JOB)
    def test_scalar_extend_matches_kernel(self, job):
        """The protocol's scalar ``extend`` is the same kernel result."""
        q, t, h0 = job
        engine = BatchedEngine(cache_entries=0)
        want = banded.extend(q, t, BWA_MEM_SCORING, h0)
        assert_results_equal(engine.extend(q, t, h0), want)


class TestCacheSemantics:
    @settings(max_examples=40, deadline=None)
    @given(job=JOB)
    def test_hit_equals_cold_compute(self, job):
        """A warm lookup returns a result equal to the cold one."""
        q, t, h0 = job
        cold = BatchedEngine(cache_entries=0).extend(q, t, h0)
        engine = BatchedEngine()
        first = engine.extend(q, t, h0)
        second = engine.extend(q, t, h0)
        assert second is first  # replayed, not recomputed
        assert_results_equal(second, cold)
        assert engine.cache.hits == 1

    @settings(max_examples=30, deadline=None)
    @given(jobs=st.lists(JOB, min_size=1, max_size=5))
    def test_wave_hits_equal_cold_computes(self, jobs):
        """Warm wave == cold wave, job for job."""
        cold = BatchedEngine(cache_entries=0).extend_wave(jobs)
        engine = BatchedEngine()
        engine.extend_wave(jobs)
        warm = engine.extend_wave(jobs)
        for got, want in zip(warm, cold):
            assert_results_equal(got, want)

    def test_within_wave_dedup_computes_once(self):
        """N copies of one job cost one compute, and all results agree."""
        rng = np.random.default_rng(5)
        q = rng.integers(0, 4, size=30).astype(np.uint8)
        t = rng.integers(0, 4, size=40).astype(np.uint8)
        single = BatchedEngine(cache_entries=0)
        [baseline] = single.extend_wave([(q, t, 25)])
        engine = BatchedEngine()
        results = engine.extend_wave([(q, t, 25)] * 6)
        assert engine.cells == single.cells  # one compute for six jobs
        for res in results:
            assert res is baseline or res is results[0]
            assert_results_equal(res, baseline)

    def test_band_is_part_of_the_key(self):
        """Same sequences, different band: distinct cache entries."""
        rng = np.random.default_rng(6)
        q = rng.integers(0, 4, size=20).astype(np.uint8)
        t = rng.integers(0, 4, size=25).astype(np.uint8)
        assert job_key(q, t, 10, None) != job_key(q, t, 10, 5)
        full = BatchedEngine().extend(q, t, 10)
        narrow = BatchedEngine(band=2).extend(q, t, 10)
        assert full.band != narrow.band

    def test_lru_eviction_keeps_newest(self):
        """The oldest entry is evicted first; capacity is enforced."""
        cache = ExtensionCache(max_entries=2)
        engine = BatchedEngine(cache_entries=0)
        rng = np.random.default_rng(7)
        keys, results = [], []
        for _ in range(3):
            q = rng.integers(0, 4, size=10).astype(np.uint8)
            t = rng.integers(0, 4, size=12).astype(np.uint8)
            keys.append(job_key(q, t, 8, None))
            results.append(engine.extend(q, t, 8))
            cache.put(keys[-1], results[-1])
        assert len(cache) == 2
        assert cache.get(keys[0]) is None
        assert cache.get(keys[2]) is results[2]

    def test_cache_clear_resets_accounting(self):
        """``clear`` empties the store and zeroes hit/miss counters."""
        cache = ExtensionCache()
        cache.get(("q", "t", 1, None))
        assert cache.misses == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0
