"""Integration tests for the long-read seed-chain-fill aligner."""

import numpy as np
import pytest

from repro.align.cigar import Cigar
from repro.aligner.longread import LongReadAligner, _non_overlapping
from repro.genome.synth import (
    LongReadProfile,
    simulate_long_reads,
    synthesize_reference,
)
from repro.seeding.mems import Seed


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(33)
    reference = synthesize_reference(80_000, rng)
    reads = simulate_long_reads(reference, 10, rng)
    return reference, reads


class TestAccuracy:
    def test_positions_recovered(self, setup):
        reference, reads = setup
        aligner = LongReadAligner(reference, fill_band=16)
        near = 0
        for read in reads:
            result = aligner.align(read.codes, read.name)
            assert result is not None
            if abs(result.pos - read.true_pos) <= 80:
                near += 1
        assert near >= len(reads) - 1

    def test_cigar_consumes_whole_read(self, setup):
        reference, reads = setup
        aligner = LongReadAligner(reference, fill_band=16)
        for read in reads[:5]:
            result = aligner.align(read.codes, read.name)
            assert result.cigar.query_length == len(read.codes)

    def test_cigar_reference_span_is_consistent(self, setup):
        reference, reads = setup
        aligner = LongReadAligner(reference, fill_band=16)
        read = reads[0]
        result = aligner.align(read.codes, read.name)
        span = result.cigar.reference_length
        # The aligned span must sit inside the reference.
        assert 0 <= result.pos
        assert result.pos + span <= len(reference)


class TestGuarantee:
    def test_fills_are_full_band_equivalent(self, setup):
        """Every fill score equals the full-band global score —
        whether proved by the checks or recovered by rerun."""
        from repro.align.globalband import global_align
        from repro.align.scoring import BWA_MEM_SCORING

        reference, reads = setup
        aligner = LongReadAligner(reference, fill_band=12)
        read = reads[0]
        result = aligner.align(read.codes, read.name)
        # Re-derive one fill independently: total score must not
        # change when fills run at any other band.
        wide = LongReadAligner(reference, fill_band=200)
        wide_result = wide.align(read.codes, read.name)
        assert result.score == wide_result.score
        assert str(result.cigar) == str(wide_result.cigar)

    def test_most_fills_prove_optimal_on_narrow_band(self, setup):
        reference, reads = setup
        aligner = LongReadAligner(reference, fill_band=16)
        for read in reads:
            aligner.align(read.codes, read.name)
        assert aligner.stats.fills > 50
        assert aligner.stats.fill_pass_rate > 0.90

    def test_narrower_band_lowers_pass_rate(self, setup):
        reference, reads = setup
        profile_reads = reads[:6]
        narrow = LongReadAligner(reference, fill_band=3)
        wide = LongReadAligner(reference, fill_band=24)
        for read in profile_reads:
            narrow.align(read.codes, read.name)
            wide.align(read.codes, read.name)
        assert narrow.stats.fill_pass_rate <= wide.stats.fill_pass_rate


class TestPlumbing:
    def test_unalignable_read_returns_none(self, setup):
        reference, _ = setup
        rng = np.random.default_rng(0)
        junk = rng.integers(0, 4, size=800).astype(np.uint8)
        aligner = LongReadAligner(reference)
        assert aligner.align(junk, "junk") is None
        assert aligner.stats.unaligned == 1

    def test_non_overlapping_backbone(self):
        seeds = [
            Seed(0, 30, 100),
            Seed(20, 50, 125),  # overlaps the first in query
            Seed(35, 60, 140),
            Seed(70, 90, 170),
        ]
        backbone = _non_overlapping(seeds)
        assert backbone == [Seed(0, 30, 100), Seed(35, 60, 140),
                            Seed(70, 90, 170)]

    def test_long_read_simulator_truth(self):
        rng = np.random.default_rng(1)
        ref = synthesize_reference(20_000, rng)
        profile = LongReadProfile(
            substitution_rate=0.0, indel_rate=0.0, sv_rate=0.0
        )
        reads = simulate_long_reads(ref, 5, rng, profile)
        for r in reads:
            window = ref[r.true_pos : r.true_pos + len(r.codes)]
            assert (r.codes == window).all()

    def test_simulator_rejects_short_reference(self):
        rng = np.random.default_rng(2)
        ref = synthesize_reference(500, rng)
        with pytest.raises(ValueError):
            simulate_long_reads(ref, 1, rng)
