"""Tests for the FM-index against naive string search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.sequence import encode, random_sequence
from repro.seeding.fmindex import FMIndex, Interval

SEQ = st.lists(st.integers(0, 3), min_size=1, max_size=50).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


def naive_find(text, pattern):
    m = len(pattern)
    return [
        i
        for i in range(len(text) - m + 1)
        if (text[i : i + m] == pattern).all()
    ]


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FMIndex(np.zeros(0, dtype=np.uint8))

    def test_rejects_ambiguous(self):
        with pytest.raises(ValueError):
            FMIndex(encode("ACGN"))

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ValueError):
            FMIndex(encode("ACGT"), sa_sample_rate=0)


class TestSearch:
    @settings(max_examples=150, deadline=None)
    @given(text=SEQ, data=st.data())
    def test_count_and_find(self, text, data):
        fm = FMIndex(text, sa_sample_rate=3)
        m = data.draw(st.integers(1, min(8, len(text))))
        start = data.draw(st.integers(0, len(text) - m))
        pat = text[start : start + m]
        expect = naive_find(text, pat)
        assert fm.count(pat) == len(expect)
        assert fm.find(pat) == expect

    @settings(max_examples=80, deadline=None)
    @given(text=SEQ, pat=SEQ)
    def test_random_patterns(self, text, pat):
        fm = FMIndex(text)
        pat = pat[:6]
        assert fm.count(pat) == len(naive_find(text, pat))

    def test_backward_extend_narrows(self):
        text = encode("ACGTACGTAC")
        fm = FMIndex(text)
        iv = fm.whole()
        iv = fm.backward_extend(iv, 1)  # 'C'
        assert iv.width == 3
        iv = fm.backward_extend(iv, 0)  # 'AC'
        assert iv.width == 3
        iv = fm.backward_extend(iv, 3)  # 'TAC'
        assert iv.width == 2

    def test_backward_extend_rejects_bad_symbol(self):
        fm = FMIndex(encode("ACGT"))
        with pytest.raises(ValueError):
            fm.backward_extend(fm.whole(), 4)

    def test_locate_limit(self):
        fm = FMIndex(encode("AAAAAAAA"))
        iv = fm.interval(encode("AA"))
        assert len(fm.locate(iv, limit=3)) == 3

    def test_interval_dataclass(self):
        assert Interval(2, 5).width == 3
        assert Interval(4, 4).is_empty

    def test_every_sample_rate_agrees(self):
        rng = np.random.default_rng(1)
        text = random_sequence(300, rng)
        pat = text[37:49]
        expected = naive_find(text, pat)
        for rate in (1, 2, 7, 32):
            assert FMIndex(text, sa_sample_rate=rate).find(pat) == expected
