"""Tests for SMEM seeding."""

import numpy as np

from repro.genome.sequence import encode, random_sequence
from repro.seeding.fmindex import FMIndex
from repro.seeding.mems import Seed, find_smems, place_seeds, seed_read


class TestSeedGeometry:
    def test_diagonal(self):
        s = Seed(qbegin=5, qend=25, rbegin=105)
        assert s.length == 20
        assert s.diagonal == 100


class TestSmems:
    def test_exact_read_gives_one_full_smem(self):
        rng = np.random.default_rng(0)
        ref = random_sequence(2000, rng)
        fm = FMIndex(ref)
        read = ref[300:360]
        mems = find_smems(fm, read, min_seed_length=19)
        assert len(mems) == 1
        assert (mems[0].qbegin, mems[0].qend) == (0, 60)

    def test_mismatch_splits_smems(self):
        rng = np.random.default_rng(1)
        ref = random_sequence(5000, rng)
        fm = FMIndex(ref)
        read = ref[1000:1080].copy()
        read[40] = (read[40] + 1) % 4
        mems = find_smems(fm, read, min_seed_length=19)
        # Two halves around the mismatch (possibly spanning it a bit
        # if the mutated k-mer occurs elsewhere).
        assert len(mems) >= 2
        assert any(m.qbegin == 0 for m in mems)
        assert any(m.qend == 80 for m in mems)

    def test_min_seed_length_filters(self):
        rng = np.random.default_rng(2)
        ref = random_sequence(2000, rng)
        fm = FMIndex(ref)
        read = random_sequence(40, rng)  # unrelated: only chance hits
        mems = find_smems(fm, read, min_seed_length=19)
        for m in mems:
            assert m.length >= 19

    def test_smems_are_maximal(self):
        """No reported SMEM may be contained in another."""
        rng = np.random.default_rng(3)
        ref = random_sequence(3000, rng)
        fm = FMIndex(ref)
        read = ref[500:600].copy()
        read[30] = (read[30] + 1) % 4
        read[70] = (read[70] + 2) % 4
        mems = find_smems(fm, read, min_seed_length=10)
        for a in mems:
            for b in mems:
                if a is b:
                    continue
                contained = (
                    b.qbegin <= a.qbegin and a.qend <= b.qend
                )
                assert not contained

    def test_smem_matches_reference_content(self):
        rng = np.random.default_rng(4)
        ref = random_sequence(3000, rng)
        fm = FMIndex(ref)
        read = ref[700:800].copy()
        read[50] = (read[50] + 1) % 4
        seeds = seed_read(fm, read, min_seed_length=15)
        assert seeds
        for s in seeds:
            assert (
                read[s.qbegin : s.qend]
                == ref[s.rbegin : s.rbegin + s.length]
            ).all()


class TestPlacement:
    def test_repetitive_mems_dropped(self):
        ref = encode("ACGT" * 200)
        fm = FMIndex(ref)
        read = encode("ACGT" * 10)
        mems = find_smems(fm, read, min_seed_length=19)
        seeds = place_seeds(fm, mems, max_occurrences=8)
        assert seeds == []  # hundreds of hits: dropped as a repeat

    def test_placement_sorted(self):
        rng = np.random.default_rng(5)
        ref = random_sequence(4000, rng)
        fm = FMIndex(ref)
        read = ref[100:200].copy()
        read[33] = (read[33] + 1) % 4
        seeds = seed_read(fm, read, min_seed_length=12)
        assert seeds == sorted(seeds, key=lambda s: (s.qbegin, s.rbegin))
