"""Tests for the k-mer index and seed chaining."""

import numpy as np
import pytest

from repro.genome.sequence import encode, random_sequence
from repro.seeding.chaining import Chain, chain_seeds, filter_chains
from repro.seeding.kmer_index import KmerIndex
from repro.seeding.mems import Seed


class TestKmerIndex:
    def test_lookup_exact(self):
        rng = np.random.default_rng(0)
        ref = random_sequence(3000, rng)
        idx = KmerIndex(ref, k=19)
        kmer = ref[500:519]
        hits = idx.lookup(kmer)
        assert 500 in hits
        for h in hits:
            assert (ref[h : h + 19] == kmer).all()

    def test_lookup_rejects_wrong_length(self):
        idx = KmerIndex(random_sequence(100, np.random.default_rng(0)), k=10)
        with pytest.raises(ValueError):
            idx.lookup(np.zeros(5, dtype=np.uint8))

    def test_bad_k_rejected(self):
        ref = random_sequence(100, np.random.default_rng(0))
        with pytest.raises(ValueError):
            KmerIndex(ref, k=0)
        with pytest.raises(ValueError):
            KmerIndex(ref, k=32)

    def test_seed_read_extends_to_maximal(self):
        rng = np.random.default_rng(1)
        ref = random_sequence(5000, rng)
        idx = KmerIndex(ref, k=19)
        read = ref[1000:1100]
        seeds = idx.seed_read(read)
        assert any(s.length == 100 and s.rbegin == 1000 for s in seeds)

    def test_seed_read_with_mismatch(self):
        rng = np.random.default_rng(2)
        ref = random_sequence(5000, rng)
        idx = KmerIndex(ref, k=19)
        read = ref[2000:2100].copy()
        read[50] = (read[50] + 1) % 4
        seeds = idx.seed_read(read)
        # Should find both flanks of the mismatch.
        assert any(s.qbegin == 0 and s.qend == 50 for s in seeds)
        assert any(s.qbegin == 51 and s.qend == 100 for s in seeds)

    def test_agrees_with_smem_backend_on_clean_read(self):
        from repro.seeding.fmindex import FMIndex
        from repro.seeding.mems import seed_read

        rng = np.random.default_rng(3)
        ref = random_sequence(4000, rng)
        read = ref[800:900]
        kmer_seeds = KmerIndex(ref, k=19).seed_read(read)
        fm_seeds = seed_read(FMIndex(ref), read)
        full = Seed(0, 100, 800)
        assert full in kmer_seeds
        assert full in fm_seeds


class TestChaining:
    def test_empty(self):
        assert chain_seeds([]) == []

    def test_colinear_seeds_chain(self):
        seeds = [Seed(0, 30, 100), Seed(40, 80, 145)]
        chains = chain_seeds(seeds)
        assert len(chains) == 1
        assert len(chains[0].seeds) == 2
        assert chains[0].anchor == Seed(40, 80, 145)

    def test_far_seeds_do_not_chain(self):
        seeds = [Seed(0, 30, 100), Seed(40, 80, 5000)]
        chains = chain_seeds(seeds)
        assert len(chains) == 2

    def test_overlapping_seeds_do_not_chain(self):
        seeds = [Seed(0, 50, 100), Seed(30, 80, 130)]
        chains = chain_seeds(seeds)
        assert len(chains) == 2

    def test_chain_order_by_score(self):
        seeds = [
            Seed(0, 60, 100),  # strong
            Seed(0, 25, 9000),  # weak alternative
        ]
        chains = chain_seeds(seeds)
        assert chains[0].anchor.rbegin == 100

    def test_filter_chains(self):
        chains = [
            Chain(seeds=[Seed(0, 60, 0)], score=60),
            Chain(seeds=[Seed(0, 40, 0)], score=40),
            Chain(seeds=[Seed(0, 10, 0)], score=10),
        ]
        kept = filter_chains(chains, max_chains=3, min_score_fraction=0.5)
        assert [c.score for c in kept] == [60, 40]

    def test_filter_respects_max(self):
        chains = [
            Chain(seeds=[Seed(0, 50, i)], score=50) for i in range(10)
        ]
        assert len(filter_chains(chains, max_chains=4)) == 4

    def test_chain_properties(self):
        c = Chain(seeds=[Seed(5, 30, 105), Seed(40, 90, 141)], score=75)
        assert c.qbegin == 5
        assert c.qend == 90
        assert c.rbegin == 105
        assert c.diagonal == 101
