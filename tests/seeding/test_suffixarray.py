"""Tests for suffix array construction and search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.sequence import encode, random_sequence
from repro.seeding.suffixarray import (
    build_suffix_array,
    longest_prefix_match,
    sa_interval,
)

SEQ = st.lists(st.integers(0, 3), min_size=1, max_size=40).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


def naive_suffix_array(text):
    # Sentinel-first convention: chr(1) sorts below 'A'..'D'.
    s = "".join(chr(65 + int(c)) for c in text) + chr(1)
    return sorted(range(len(text)), key=lambda i: s[i:])


class TestConstruction:
    def test_empty(self):
        assert build_suffix_array(np.zeros(0, dtype=np.uint8)).size == 0

    def test_single(self):
        assert list(build_suffix_array(np.array([2]))) == [0]

    def test_known(self):
        # "banana" pattern over DNA: ACGCGC
        text = encode("ACGCGC")
        assert list(build_suffix_array(text)) == naive_suffix_array(text)

    @settings(max_examples=200, deadline=None)
    @given(text=SEQ)
    def test_matches_naive(self, text):
        assert list(build_suffix_array(text)) == naive_suffix_array(text)

    def test_rejects_negative_codes(self):
        with pytest.raises(ValueError):
            build_suffix_array(np.array([-1, 2]))

    def test_large_random(self):
        rng = np.random.default_rng(0)
        text = random_sequence(5000, rng)
        sa = build_suffix_array(text)
        assert sorted(sa) == list(range(5000))
        # Spot-check sortedness at a few adjacent pairs.
        for k in range(0, 4999, 517):
            a, b = int(sa[k]), int(sa[k + 1])
            sa_str = bytes(text[a:]) + b"\x00"
            sb_str = bytes(text[b:]) + b"\x00"
            assert sa_str <= sb_str


class TestSearch:
    @settings(max_examples=100, deadline=None)
    @given(text=SEQ, data=st.data())
    def test_interval_finds_all_occurrences(self, text, data):
        sa = build_suffix_array(text)
        m = data.draw(st.integers(1, min(6, len(text))))
        start = data.draw(st.integers(0, len(text) - m))
        pat = text[start : start + m]
        lo, hi = sa_interval(text, sa, pat)
        expect = [
            i
            for i in range(len(text) - m + 1)
            if (text[i : i + m] == pat).all()
        ]
        assert sorted(int(sa[k]) for k in range(lo, hi)) == expect

    def test_absent_pattern_empty_interval(self):
        text = encode("AAAA")
        sa = build_suffix_array(text)
        lo, hi = sa_interval(text, sa, encode("T"))
        assert lo == hi

    def test_longest_prefix_match(self):
        text = encode("ACGTACGTTT")
        sa = build_suffix_array(text)
        length, (lo, hi) = longest_prefix_match(text, sa, encode("ACGTAAAA"))
        assert length == 5  # "ACGTA" occurs, "ACGTAA" does not
        assert hi - lo == 1

    def test_longest_prefix_respects_min_length(self):
        text = encode("AAAA")
        sa = build_suffix_array(text)
        length, _ = longest_prefix_match(text, sa, encode("TTTT"), 2)
        assert length == 0
