"""Tests for the Levenshtein automaton baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.automaton import (
    LevenshteinAutomaton,
    nfa_state_count,
    seedex_pe_count,
    silla_state_count,
    within_distance,
)
from repro.align.editdp import levenshtein
from repro.genome.sequence import encode

SEQ = st.lists(st.integers(0, 3), min_size=0, max_size=12).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestRecognition:
    @settings(max_examples=250, deadline=None)
    @given(a=SEQ, b=SEQ, k=st.integers(0, 5))
    def test_equivalent_to_dp_edit_distance(self, a, b, k):
        assert within_distance(a, b, k) == (levenshtein(a, b) <= k)

    @settings(max_examples=100, deadline=None)
    @given(a=SEQ, b=SEQ, k=st.integers(0, 4))
    def test_min_errors_is_exact_when_within(self, a, b, k):
        auto = LevenshteinAutomaton(a, k)
        for c in b:
            auto.feed(int(c))
        d = levenshtein(a, b)
        if d <= k:
            assert auto.min_errors() == d
        else:
            assert auto.min_errors() is None

    def test_exact_match(self):
        p = encode("ACGT")
        auto = LevenshteinAutomaton(p, 0)
        for c in p:
            auto.feed(int(c))
        assert auto.accepts
        assert auto.min_errors() == 0

    def test_dead_automaton_stays_dead(self):
        p = encode("AAAA")
        auto = LevenshteinAutomaton(p, 1)
        for c in encode("TTT"):
            auto.feed(int(c))
        assert not auto.alive

    def test_reset(self):
        p = encode("ACG")
        auto = LevenshteinAutomaton(p, 1)
        for c in encode("TTTTT"):
            auto.feed(int(c))
        auto.reset()
        for c in p:
            auto.feed(int(c))
        assert auto.accepts

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            LevenshteinAutomaton(encode("AC"), -1)


class TestAutomatonExtend:
    @settings(max_examples=150, deadline=None)
    @given(q=SEQ, t=SEQ, k=st.integers(0, 4))
    def test_matches_dp_semiglobal_edit_distance(self, q, t, k):
        from repro.align.automaton import automaton_extend

        best, end = automaton_extend(q, t, k)
        truth = min(
            (levenshtein(q, t[:j]) for j in range(len(t) + 1)),
            default=len(q),
        )
        if truth <= k:
            assert best == truth
            assert levenshtein(q, t[:end]) == truth
        else:
            assert best is None
            assert end == -1

    def test_clean_extension(self):
        from repro.align.automaton import automaton_extend

        q = encode("ACGTACGT")
        t = encode("ACGTACGTTTTT")
        best, end = automaton_extend(q, t, 2)
        assert best == 0
        assert end == 8

    def test_budget_exceeded(self):
        from repro.align.automaton import automaton_extend

        q = encode("AAAAAAAA")
        t = encode("TTTTTTTT")
        best, end = automaton_extend(q, t, 2)
        assert best is None and end == -1


class TestStateScaling:
    def test_silla_is_quadratic(self):
        """The Figure 18 mechanism: automaton states grow O(K^2)
        while the banded array's PEs grow O(K)."""
        for k in (4, 8, 16, 32):
            # Doubling K nearly quadruples automaton states ...
            assert silla_state_count(2 * k) > 3.3 * silla_state_count(k)
            # ... but no more than doubles the banded array's PEs.
            assert seedex_pe_count(2 * k) < 2.1 * seedex_pe_count(k)

    def test_paper_operating_point(self):
        # GenAx: K=32, band w = 2K+1 = 65.
        k = 32
        states = silla_state_count(k)
        pes = seedex_pe_count(k)
        assert states / pes > 30  # an order of magnitude+ apart

    def test_nfa_count(self):
        assert nfa_state_count(100, 3) == 101 * 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            silla_state_count(-1)
