"""Tests for the dense DP oracle: hand-checked cases, brute-force
agreement, and traceback correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.fullmatrix import (
    fill_extension,
    fill_global,
    traceback_extension,
)
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.genome.sequence import encode
from tests.helpers import brute_cell_scores

SMALL_SEQ = st.lists(st.integers(0, 3), min_size=1, max_size=6).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestHandChecked:
    def test_perfect_match(self):
        q = encode("ACGT")
        mats = fill_extension(q, q, BWA_MEM_SCORING, h0=10)
        assert mats.gscore == 14
        assert mats.gpos == 4
        assert mats.lscore == 14
        assert mats.lpos == (4, 4)

    def test_single_mismatch(self):
        q = encode("ACGT")
        t = encode("AGGT")
        mats = fill_extension(q, t, BWA_MEM_SCORING, h0=10)
        assert mats.gscore == 10 + 3 * 1 - 4

    def test_single_deletion(self):
        q = encode("ACGT")
        t = encode("ACTGT")  # extra T in the reference
        mats = fill_extension(q, t, BWA_MEM_SCORING, h0=20)
        # 4 matches, one 1-char deletion: 20 + 4 - (6 + 1) = 17
        assert mats.gscore == 17
        assert mats.gpos == 5

    def test_single_insertion(self):
        q = encode("ACTGT")
        t = encode("ACGT")
        mats = fill_extension(q, t, BWA_MEM_SCORING, h0=20)
        assert mats.gscore == 20 + 4 - 7

    def test_dead_seed_gives_dead_matrix(self):
        q = encode("ACGT")
        mats = fill_extension(q, q, BWA_MEM_SCORING, h0=0)
        assert mats.lscore == 0
        assert mats.gscore == 0
        assert (mats.h[1:, 1:] == 0).all()

    def test_negative_h0_rejected(self):
        q = encode("ACGT")
        with pytest.raises(ValueError):
            fill_extension(q, q, BWA_MEM_SCORING, h0=-1)

    def test_mismatch_kills_weak_seed(self):
        # h0=3: one mismatch (-4) drives the path dead.
        q = encode("TTTT")
        t = encode("GTTT")
        mats = fill_extension(q, t, BWA_MEM_SCORING, h0=3)
        assert mats.h[1][1] == 0

    def test_tie_breaks_to_smallest_position(self):
        # Two cells achieve the same lscore; earliest row wins.
        q = encode("AA")
        t = encode("AAAA")
        mats = fill_extension(q, t, BWA_MEM_SCORING, h0=5)
        assert mats.lscore == 7
        assert mats.lpos == (2, 2)


class TestBruteForceAgreement:
    @settings(max_examples=150, deadline=None)
    @given(q=SMALL_SEQ, t=SMALL_SEQ, h0=st.integers(1, 15))
    def test_cell_scores_match_path_enumeration(self, q, t, h0):
        mats = fill_extension(q, t, BWA_MEM_SCORING, h0)
        brute = brute_cell_scores(q, t, BWA_MEM_SCORING, h0)
        assert (mats.h == brute).all()

    @settings(max_examples=60, deadline=None)
    @given(
        q=SMALL_SEQ,
        t=SMALL_SEQ,
        h0=st.integers(1, 15),
        go=st.integers(0, 4),
        ge=st.integers(0, 3),
        x=st.integers(1, 4),
    )
    def test_agreement_across_scoring_schemes(self, q, t, h0, go, ge, x):
        scoring = AffineGap(match=2, mismatch=x, gap_open=go, gap_extend=ge)
        mats = fill_extension(q, t, scoring, h0)
        brute = brute_cell_scores(q, t, scoring, h0)
        assert (mats.h == brute).all()


class TestGlobal:
    def test_perfect_match(self):
        q = encode("ACGTAC")
        h = fill_global(q, q, BWA_MEM_SCORING)
        assert h[6][6] == 6

    def test_global_penalizes_length_difference(self):
        q = encode("ACGT")
        t = encode("ACGTGG")
        h = fill_global(q, t, BWA_MEM_SCORING)
        assert h[len(t)][len(q)] == 4 - (6 + 2)

    def test_scores_can_go_negative(self):
        q = encode("AAAA")
        t = encode("TTTT")
        h = fill_global(q, t, BWA_MEM_SCORING)
        assert h[4][4] == -16


class TestTraceback:
    def _score_of_cigar(self, cigar, q, t, scoring, h0):
        """Re-score a CIGAR against the sequences (independent check)."""
        score = h0
        i = j = 0
        for length, op in cigar.ops:
            if op == "M":
                for _ in range(length):
                    score += scoring.substitution(int(t[i]), int(q[j]))
                    i += 1
                    j += 1
            elif op == "D":
                score -= scoring.gap_open + length * scoring.gap_extend_del
                i += length
            elif op == "I":
                score -= scoring.gap_open + length * scoring.gap_extend_ins
                j += length
        return score, i, j

    def test_traceback_perfect(self):
        q = encode("ACGTACGT")
        cigar = traceback_extension(q, q, BWA_MEM_SCORING, 10, (8, 8))
        assert str(cigar) == "8M"

    def test_traceback_with_deletion(self):
        q = encode("ACGTACGT")
        t = encode("ACGTTACGT")
        mats = fill_extension(q, t, BWA_MEM_SCORING, 20)
        cigar = traceback_extension(
            q, t, BWA_MEM_SCORING, 20, (mats.gpos, len(q))
        )
        assert cigar.reference_length == 9
        assert cigar.query_length == 8
        assert "D" in str(cigar)

    @settings(max_examples=100, deadline=None)
    @given(q=SMALL_SEQ, t=SMALL_SEQ, h0=st.integers(8, 20))
    def test_traceback_score_reconstructs(self, q, t, h0):
        mats = fill_extension(q, t, BWA_MEM_SCORING, h0)
        i, j = mats.lpos
        if mats.h[i][j] <= 0 or (i, j) == (0, 0):
            return
        cigar = traceback_extension(q, t, BWA_MEM_SCORING, h0, (i, j))
        score, ti, qj = self._score_of_cigar(
            cigar, q, t, BWA_MEM_SCORING, h0
        )
        assert (ti, qj) == (i, j)
        assert score == mats.lscore

    def test_dead_cell_rejected(self):
        q = encode("AAAA")
        t = encode("TTTT")
        with pytest.raises(ValueError):
            traceback_extension(q, t, BWA_MEM_SCORING, 2, (4, 4))

    def test_out_of_range_rejected(self):
        q = encode("ACGT")
        with pytest.raises(ValueError):
            traceback_extension(q, q, BWA_MEM_SCORING, 10, (9, 2))
