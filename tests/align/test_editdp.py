"""Tests for the edit-distance kernels and the left-entry DP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.editdp import (
    left_entry_scores,
    left_entry_scores_reference,
    levenshtein,
)
from repro.align.scoring import BWA_MEM_SCORING
from repro.genome.sequence import encode

SEQ = st.lists(st.integers(0, 3), min_size=0, max_size=10).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)
NONEMPTY = st.lists(st.integers(0, 3), min_size=1, max_size=12).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


def naive_levenshtein(a, b):
    prev = list(range(len(b) + 1))
    for i in range(1, len(a) + 1):
        cur = [i] + [0] * len(b)
        for j in range(1, len(b) + 1):
            cur[j] = min(
                prev[j] + 1,
                cur[j - 1] + 1,
                prev[j - 1] + (a[i - 1] != b[j - 1]),
            )
        prev = cur
    return prev[-1]


class TestLevenshtein:
    def test_known_values(self):
        assert levenshtein(encode("ACGT"), encode("ACGT")) == 0
        assert levenshtein(encode("ACGT"), encode("AGGT")) == 1
        assert levenshtein(encode("ACGT"), encode("AC")) == 2
        assert levenshtein(encode(""), encode("ACGT")) == 4

    @settings(max_examples=200, deadline=None)
    @given(a=SEQ, b=SEQ)
    def test_matches_naive(self, a, b):
        assert levenshtein(a, b) == naive_levenshtein(list(a), list(b))

    @settings(max_examples=100, deadline=None)
    @given(a=SEQ, b=SEQ)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)


class TestLeftEntry:
    def test_empty_half_matrix(self):
        q = encode("ACGT")
        t = encode("AC")
        res = left_entry_scores(q, t, band=5, left_seed=10)
        assert res.last_column.size == 0
        assert res.best == 0

    def test_rejects_costly_insertions(self):
        q = encode("ACGT")
        t = encode("ACGTACGT")
        with pytest.raises(ValueError):
            left_entry_scores(q, t, 1, 10, scoring=BWA_MEM_SCORING)

    def test_seed_propagates_free_insertions(self):
        # With zero-cost insertions the corner seed reaches the last
        # column of its own row untouched.
        q = encode("ACGT")
        t = encode("TTTTTTTT")
        res = left_entry_scores(
            q, t, band=2, left_seed=lambda i: 9 if i == 3 else 0
        )
        assert res.last_column[0] == 9
        assert res.best >= 9

    def test_distant_repeat_recovers_matches(self):
        # Target repeats the query after a long deletion; the DP must
        # pick the matches up on the shifted diagonal.
        q = encode("ACGTAC")
        t = encode("GGGG" + "ACGTAC")
        res = left_entry_scores(q, t, band=1, left_seed=20)
        assert res.best >= 20 + len(q) - 2  # seed + most of the matches

    @settings(max_examples=150, deadline=None)
    @given(
        q=NONEMPTY,
        t=NONEMPTY,
        band=st.integers(0, 6),
        seed=st.integers(0, 25),
    )
    def test_fast_matches_reference(self, q, t, band, seed):
        fast = left_entry_scores(q, t, band, seed)
        ref = left_entry_scores_reference(q, t, band, seed)
        assert (fast.last_column == ref.last_column).all()
        assert fast.best == ref.best

    @settings(max_examples=80, deadline=None)
    @given(q=NONEMPTY, t=NONEMPTY, band=st.integers(0, 4))
    def test_callable_seed_matches_reference(self, q, t, band):
        def seed(i):
            return max(0, 15 - i)

        fast = left_entry_scores(q, t, band, seed)
        ref = left_entry_scores_reference(q, t, band, seed)
        assert (fast.last_column == ref.last_column).all()

    def test_monotone_in_seed(self):
        q = encode("ACGTACGTAC")
        t = encode("TTTTTACGTACGTAC")
        lo = left_entry_scores(q, t, 2, 5)
        hi = left_entry_scores(q, t, 2, 15)
        assert hi.best >= lo.best
        assert (hi.last_column >= lo.last_column).all()

    def test_dead_seed_dead_region(self):
        q = encode("ACGTACGT")
        t = encode("ACGTACGTACGT")
        res = left_entry_scores(q, t, 2, 0)
        assert res.best == 0
        assert (res.last_column == 0).all()
