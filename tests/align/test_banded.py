"""Tests for the production banded kernel against the dense oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import banded
from repro.align.banded import boundary_length, extend, full_band_for
from repro.align.fullmatrix import fill_extension
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.genome.sequence import encode, random_sequence
from tests.helpers import related_pair

SEQ = st.lists(st.integers(0, 3), min_size=1, max_size=12).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


def oracle_scores(q, t, scoring, h0):
    m = fill_extension(q, t, scoring, h0)
    return (m.lscore, m.lpos, m.gscore, m.gpos)


class TestFullBandEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(q=SEQ, t=SEQ, h0=st.integers(1, 30))
    def test_matches_oracle(self, q, t, h0):
        res = extend(q, t, BWA_MEM_SCORING, h0)
        assert res.scores() == oracle_scores(q, t, BWA_MEM_SCORING, h0)

    @settings(max_examples=80, deadline=None)
    @given(
        q=SEQ,
        t=SEQ,
        h0=st.integers(1, 30),
        go=st.integers(0, 6),
        ge=st.integers(0, 3),
    )
    def test_matches_oracle_other_schemes(self, q, t, h0, go, ge):
        scoring = AffineGap(match=2, mismatch=3, gap_open=go, gap_extend=ge)
        res = extend(q, t, scoring, h0)
        assert res.scores() == oracle_scores(q, t, scoring, h0)

    def test_max_off_matches_oracle(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            q, t = related_pair(rng, 20, extra_target=5, subs=2, ins=1, dels=1)
            res = extend(q, t, BWA_MEM_SCORING, 25)
            oracle = fill_extension(q, t, BWA_MEM_SCORING, 25)
            assert res.max_off == oracle.max_off


class TestPruning:
    @settings(max_examples=150, deadline=None)
    @given(
        q=SEQ,
        t=SEQ,
        h0=st.integers(1, 30),
        w=st.integers(1, 15),
    )
    def test_pruning_is_lossless(self, q, t, h0, w):
        pruned = extend(q, t, BWA_MEM_SCORING, h0, w=w, prune=True)
        plain = extend(q, t, BWA_MEM_SCORING, h0, w=w, prune=False)
        assert pruned.scores() == plain.scores()
        assert (pruned.boundary_e == plain.boundary_e).all()

    def test_pruning_saves_work_on_dead_inputs(self):
        rng = np.random.default_rng(3)
        q = random_sequence(40, rng)
        t = random_sequence(60, rng)
        # Weak seed against an unrelated target dies quickly.
        pruned = extend(q, t, BWA_MEM_SCORING, 5, prune=True)
        plain = extend(q, t, BWA_MEM_SCORING, 5, prune=False)
        assert pruned.cells_computed < plain.cells_computed
        assert pruned.terminated_early

    def test_relaxed_scoring_f_carry(self):
        # Zero-cost insertions make F gaps run forever; the carry path
        # must still match the unpruned run.
        scoring = AffineGap(
            match=1, mismatch=1, gap_open=0, gap_extend=1, gap_extend_ins=0
        )
        rng = np.random.default_rng(11)
        for _ in range(30):
            q, t = related_pair(rng, 12, extra_target=4, subs=2, dels=1)
            a = extend(q, t, scoring, 8, prune=True)
            b = extend(q, t, scoring, 8, prune=False)
            assert a.scores() == b.scores()


class TestBandSemantics:
    def test_band_monotone_in_scores(self):
        rng = np.random.default_rng(5)
        for _ in range(30):
            q, t = related_pair(rng, 25, extra_target=8, subs=2, ins=2, dels=2)
            prev_l, prev_g = -1, -1
            for w in (1, 3, 6, 12, 40):
                res = extend(q, t, BWA_MEM_SCORING, 30, w=w)
                assert res.lscore >= prev_l
                assert res.gscore >= prev_g
                prev_l, prev_g = res.lscore, res.gscore

    def test_full_band_for_covers_matrix(self):
        q = encode("ACGTACGT")
        t = encode("ACGT")
        res = extend(q, t, BWA_MEM_SCORING, 10, w=full_band_for(8, 4))
        assert res.is_full_band

    def test_narrow_band_misses_distant_alignment(self):
        # Query aligns only after an 8-char deletion; w=2 cannot see it.
        q = encode("ACGTACGTAC")
        t = encode("GGGGGGGG" + "ACGTACGTAC")
        narrow = extend(q, t, BWA_MEM_SCORING, 30, w=2)
        full = extend(q, t, BWA_MEM_SCORING, 30)
        assert full.gscore > narrow.gscore

    def test_rejects_negative_band(self):
        q = encode("ACGT")
        with pytest.raises(ValueError):
            extend(q, q, BWA_MEM_SCORING, 10, w=-1)

    def test_rejects_negative_h0(self):
        q = encode("ACGT")
        with pytest.raises(ValueError):
            extend(q, q, BWA_MEM_SCORING, -5)


class TestBoundaryE:
    def test_boundary_length_geometry(self):
        assert boundary_length(10, 20, 5) == min(10, 20 - 6) + 1
        assert boundary_length(10, 5, 5) == 0
        assert boundary_length(10, 6, 5) == 1
        assert boundary_length(3, 100, 5) == 4

    @settings(max_examples=150, deadline=None)
    @given(q=SEQ, t=SEQ, h0=st.integers(1, 30), w=st.integers(1, 8))
    def test_boundary_e_matches_oracle_e_channel(self, q, t, h0, w):
        """boundary_e[j] must equal the oracle E value at region cell
        (j+w+1, j) computed from a *band-masked* DP.

        We verify against the dense oracle restricted to the band by
        checking the formula on the banded kernel's own H/E rows via an
        unpruned small reference: recompute with the oracle and mask.
        """
        res = extend(q, t, BWA_MEM_SCORING, h0, w=w)
        n = boundary_length(len(q), len(t), w)
        assert res.boundary_e.shape == (n,)
        if n == 0:
            return
        # Reference: dense DP where out-of-band cells are forced dead.
        ref = _banded_dense_e(q, t, BWA_MEM_SCORING, h0, w)
        for j in range(n):
            assert res.boundary_e[j] == ref[j]


def _banded_dense_e(q, t, scoring, h0, w):
    """Dense re-implementation of the banded DP, reporting boundary E."""
    qlen, tlen = len(q), len(t)
    go, ge_i, ge_d = (
        scoring.gap_open,
        scoring.gap_extend_ins,
        scoring.gap_extend_del,
    )
    h = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
    e = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
    f = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
    h[0][0] = h0
    for j in range(1, min(qlen, w) + 1):
        f[0][j] = max(0, h0 - go - j * ge_i)
        h[0][j] = f[0][j]
    for i in range(1, tlen + 1):
        if i <= w:
            e[i][0] = max(0, h0 - go - i * ge_d)
            h[i][0] = e[i][0]
        for j in range(max(1, i - w), min(qlen, i + w) + 1):
            diag = 0
            if h[i - 1][j - 1] > 0 and abs(i - 1 - (j - 1)) <= w:
                diag = h[i - 1][j - 1] + scoring.substitution(
                    int(t[i - 1]), int(q[j - 1])
                )
            e[i][j] = max(0, max(h[i - 1][j] - go, e[i - 1][j]) - ge_d)
            if abs(i - 1 - j) > w:
                e[i][j] = 0
            f[i][j] = max(0, max(h[i][j - 1] - go, f[i][j - 1]) - ge_i)
            if abs(i - (j - 1)) > w:
                f[i][j] = 0
            h[i][j] = max(diag, e[i][j], f[i][j], 0)
    n = boundary_length(qlen, tlen, w)
    out = np.zeros(n, dtype=np.int64)
    for j in range(n):
        i = j + w  # band lower-edge row feeding region cell (j+w+1, j)
        out[j] = max(0, max(h[i][j] - go, e[i][j]) - ge_d)
    return out


class TestAccounting:
    def test_cells_scale_with_band(self):
        rng = np.random.default_rng(9)
        q, t = related_pair(rng, 60, extra_target=20, subs=3)
        narrow = extend(q, t, BWA_MEM_SCORING, 60, w=5, prune=False)
        wide = extend(q, t, BWA_MEM_SCORING, 60, w=30, prune=False)
        assert wide.cells_computed > 2 * narrow.cells_computed
