"""Tests for the banded global alignment kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.fullmatrix import NEG_INF, fill_global, traceback_global
from repro.align.globalband import (
    global_align,
    lower_boundary_length,
    upper_boundary_length,
)
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.genome.sequence import encode

SEQ = st.lists(st.integers(0, 3), min_size=1, max_size=16).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestFullBandEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(q=SEQ, t=SEQ, h0=st.integers(0, 20))
    def test_matches_dense_oracle(self, q, t, h0):
        res = global_align(q, t, BWA_MEM_SCORING, h0)
        oracle = fill_global(q, t, BWA_MEM_SCORING, h0)
        assert res.score == oracle[len(t)][len(q)]

    @settings(max_examples=80, deadline=None)
    @given(
        q=SEQ,
        t=SEQ,
        go=st.integers(0, 6),
        ge=st.integers(1, 3),
    )
    def test_other_schemes(self, q, t, go, ge):
        scoring = AffineGap(match=2, mismatch=3, gap_open=go, gap_extend=ge)
        res = global_align(q, t, scoring)
        oracle = fill_global(q, t, scoring)
        assert res.score == oracle[len(t)][len(q)]


class TestBandSemantics:
    @settings(max_examples=150, deadline=None)
    @given(q=SEQ, t=SEQ, w=st.integers(0, 12))
    def test_banded_never_exceeds_full(self, q, t, w):
        if abs(len(t) - len(q)) > w:
            return
        banded = global_align(q, t, BWA_MEM_SCORING, w=w)
        full = global_align(q, t, BWA_MEM_SCORING)
        assert banded.score <= full.score

    def test_band_monotone(self):
        q = encode("ACGTACGTACGT")
        t = encode("ACGGGGTACGTACGT")
        prev = NEG_INF
        for w in range(3, 16):
            score = global_align(q, t, BWA_MEM_SCORING, w=w).score
            assert score >= prev
            prev = score

    def test_endpoint_outside_band_rejected(self):
        with pytest.raises(ValueError):
            global_align(encode("AC"), encode("ACGTACGT"), BWA_MEM_SCORING, w=2)

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            global_align(encode("AC"), encode("AC"), BWA_MEM_SCORING, w=-1)


class TestBoundaryCapture:
    def test_boundary_lengths(self):
        assert lower_boundary_length(10, 20, 4) == 11
        assert lower_boundary_length(10, 4, 4) == 0
        assert upper_boundary_length(20, 10, 4) == 11
        assert upper_boundary_length(4, 10, 4) == 0

    def test_lower_e_matches_dense(self):
        """lower_e[j] must equal the band-masked E value entering the
        below-band cell (j+w+1, j)."""
        rng = np.random.default_rng(0)
        for _ in range(30):
            q = rng.integers(0, 4, size=10).astype(np.uint8)
            t = rng.integers(0, 4, size=14).astype(np.uint8)
            w = int(rng.integers(4, 8))
            res = global_align(q, t, BWA_MEM_SCORING, 5, w=w)
            ref = _banded_dense(q, t, BWA_MEM_SCORING, 5, w)
            for j in range(res.lower_e.size):
                i = j + w
                expect = (
                    max(ref["h"][i][j] - 6, ref["e"][i][j]) - 1
                )
                assert res.lower_e[j] == expect

    def test_upper_f_row0(self):
        q = encode("ACGTACGTAC")
        res = global_align(q, encode("ACGT"), BWA_MEM_SCORING, 7, w=6)
        # F into (0, 7): init-gap extension.
        assert res.upper_f[0] == 7 - 6 - 7 * 1


def _banded_dense(q, t, scoring, h0, w):
    """Loop-based banded global DP keeping all channels (tests only)."""
    qlen, tlen = len(q), len(t)
    go, ge = scoring.gap_open, scoring.gap_extend
    h = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    e = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    f = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    h[0][0] = h0
    for j in range(1, min(qlen, w) + 1):
        f[0][j] = h0 - go - j * ge
        h[0][j] = f[0][j]
    for i in range(1, tlen + 1):
        if i <= w:
            e[i][0] = h0 - go - i * ge
            h[i][0] = e[i][0]
        for j in range(max(1, i - w), min(qlen, i + w) + 1):
            if abs(i - 1 - (j - 1)) <= w:
                diag = h[i - 1][j - 1] + scoring.substitution(
                    int(t[i - 1]), int(q[j - 1])
                )
            else:
                diag = NEG_INF
            e[i][j] = max(h[i - 1][j] - go, e[i - 1][j]) - ge
            if abs(i - 1 - j) > w:
                e[i][j] = NEG_INF
            f[i][j] = max(h[i][j - 1] - go, f[i][j - 1]) - ge
            if abs(i - (j - 1)) > w:
                f[i][j] = NEG_INF
            h[i][j] = max(diag, e[i][j], f[i][j])
    return {"h": h, "e": e, "f": f}


class TestGlobalTraceback:
    @settings(max_examples=100, deadline=None)
    @given(q=SEQ, t=SEQ)
    def test_cigar_rescored_matches(self, q, t):
        cigar = traceback_global(q, t, BWA_MEM_SCORING)
        assert cigar.query_length == len(q)
        assert cigar.reference_length == len(t)
        # Re-score the trace independently.
        score = 0
        i = j = 0
        for length, op in cigar.ops:
            if op == "M":
                for _ in range(length):
                    score += BWA_MEM_SCORING.substitution(
                        int(t[i]), int(q[j])
                    )
                    i += 1
                    j += 1
            elif op == "D":
                score -= 6 + length
                i += length
            else:
                score -= 6 + length
                j += length
        assert score == global_align(q, t, BWA_MEM_SCORING).score
