"""Band-boundary clamp regression: banded kernels vs dense oracles.

Locks in two fixed bug classes at the band's first/last diagonals:

* ``w=0`` boundary-E capture — the lower-boundary cell on the very
  first diagonal (``bj=0``, row ``w``) was never recorded when the
  band degenerates to the main diagonal;
* N-vs-N substitution — the dense oracle scores ``N`` against
  anything (itself included) as a mismatch, which the vectorized
  kernels' raw ``==`` comparison silently disagreed with.

The oracles here are deliberately naive dense DP fills over the
banded cell set — independent of the production kernels' diagonal
bookkeeping, so a clamping off-by-one in either shows up as a score,
endpoint, or boundary-channel mismatch.  The tier-1 sweep keeps the
degenerate geometries (empty query, band wider than both sequences,
``w=0``); the exhaustive version (reads <= 6 bp vs refs <= 8 bp at
every band width 0..9, all four scheme shapes) runs in the ``slow``
tier.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.align import banded, fullmatrix, globalband
from repro.align.scoring import BWA_MEM_SCORING, AffineGap

SCHEMES = (
    BWA_MEM_SCORING,
    AffineGap(match=2, mismatch=3, gap_open=5, gap_extend=2),
    AffineGap(match=1, mismatch=1, gap_open=0, gap_extend=1),
    AffineGap(match=1, mismatch=1, gap_open=0, gap_extend=1,
              gap_extend_ins=0, gap_extend_del=1),
)


def banded_oracle(query, target, scoring, h0, w):
    """Dense row-major fill of exactly the in-band cells."""
    qlen, tlen = len(query), len(target)
    go = scoring.gap_open
    ge_i, ge_d = scoring.gap_extend_ins, scoring.gap_extend_del
    H = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
    E = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
    F = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
    H[0][0] = h0
    for j in range(1, min(qlen, w) + 1):
        H[0][j] = max(0, h0 - go - j * ge_i)
    for i in range(1, min(tlen, w) + 1):
        E[i][0] = H[i][0] = max(0, h0 - go - i * ge_d)
    for i in range(1, tlen + 1):
        for j in range(max(1, i - w), min(qlen, i + w) + 1):
            diag = 0
            if H[i - 1][j - 1] > 0:
                diag = H[i - 1][j - 1] + scoring.substitution(
                    int(target[i - 1]), int(query[j - 1])
                )
            E[i][j] = max(0, max(H[i - 1][j] - go, E[i - 1][j]) - ge_d)
            F[i][j] = max(0, max(H[i][j - 1] - go, F[i][j - 1]) - ge_i)
            H[i][j] = max(diag, E[i][j], F[i][j], 0)
    # Canonical strict-improvement scan over in-band cells only.
    lscore, lpos, gscore, gpos, max_off = h0, (0, 0), 0, -1, 0
    for i in range(tlen + 1):
        best, best_j = lscore, -1
        for j in range(max(0, i - w), min(qlen, i + w) + 1):
            if H[i][j] > best:
                best, best_j = int(H[i][j]), j
        if best_j >= 0:
            lscore, lpos = best, (i, best_j)
            max_off = max(max_off, abs(best_j - i))
        if abs(i - qlen) <= w and H[i][qlen] > gscore:
            gscore, gpos = int(H[i][qlen]), i
    nb = banded.boundary_length(qlen, tlen, w)
    be = np.zeros(nb, dtype=np.int64)
    for bj in range(nb):
        i = bj + w  # E at boundary cell (bj + w + 1, bj) from row i
        if i + 1 <= tlen:
            be[bj] = max(
                0, max(int(H[i][bj]) - go, int(E[i][bj])) - ge_d
            )
    nu = banded.upper_boundary_length(qlen, tlen, w)
    bf = np.zeros(nu, dtype=np.int64)
    if nu > 0:
        bf[0] = max(0, h0 - go - (w + 1) * ge_i)
    for i in range(1, nu):
        lo, hi = max(0, i - w), min(qlen, i + w)
        best_src = max(
            (int(H[i][k]) + k * ge_i for k in range(lo, hi + 1)),
            default=0,
        )
        bf[i] = max(0, best_src - go - (i + w + 1) * ge_i)
    return (lscore, lpos, gscore, gpos), max_off, be, bf


def global_oracle(query, target, scoring, h0, w):
    """Dense global (no zero-floor) fill of the in-band cells."""
    NEG = fullmatrix.NEG_INF
    qlen, tlen = len(query), len(target)
    go = scoring.gap_open
    ge_i, ge_d = scoring.gap_extend_ins, scoring.gap_extend_del
    H = np.full((tlen + 1, qlen + 1), NEG, dtype=np.int64)
    E = np.full((tlen + 1, qlen + 1), NEG, dtype=np.int64)
    F = np.full((tlen + 1, qlen + 1), NEG, dtype=np.int64)
    H[0][0] = h0
    for j in range(1, min(qlen, w) + 1):
        F[0][j] = H[0][j] = h0 - go - j * ge_i
    for i in range(1, min(tlen, w) + 1):
        E[i][0] = H[i][0] = h0 - go - i * ge_d
    for i in range(1, tlen + 1):
        for j in range(max(1, i - w), min(qlen, i + w) + 1):
            sub = scoring.substitution(
                int(target[i - 1]), int(query[j - 1])
            )
            diag = (
                H[i - 1][j - 1] + sub
                if H[i - 1][j - 1] > NEG // 2
                else NEG
            )
            E[i][j] = (
                max(H[i - 1][j] - go, E[i - 1][j]) - ge_d
                if H[i - 1][j] > NEG // 2 or E[i - 1][j] > NEG // 2
                else NEG
            )
            F[i][j] = (
                max(H[i][j - 1] - go, F[i][j - 1]) - ge_i
                if H[i][j - 1] > NEG // 2 or F[i][j - 1] > NEG // 2
                else NEG
            )
            H[i][j] = max(diag, E[i][j], F[i][j])
    score = int(H[tlen][qlen])
    nl = globalband.lower_boundary_length(qlen, tlen, w)
    le = np.full(nl, NEG, dtype=np.int64)
    for bj in range(nl):
        i = bj + w
        if i + 1 <= tlen and H[i][bj] > NEG // 2:
            le[bj] = (
                max(
                    int(H[i][bj]) - go,
                    int(E[i][bj]) if E[i][bj] > NEG // 2 else NEG,
                )
                - ge_d
            )
    nu = globalband.upper_boundary_length(qlen, tlen, w)
    uf = np.full(nu, NEG, dtype=np.int64)
    if nu > 0:
        uf[0] = h0 - go - (w + 1) * ge_i
    for i in range(1, nu):
        best = NEG
        for k in range(max(0, i - w), min(qlen, i + w) + 1):
            if H[i][k] <= NEG // 2:
                continue
            best = max(best, int(H[i][k]) - go - (i + w + 1 - k) * ge_i)
        uf[i] = best
    return score, le, uf


def _seqs(rng, n, length):
    out = [
        rng.integers(0, 4, size=length).astype(np.uint8)
        for _ in range(n)
    ]
    if length:
        out.append(np.zeros(length, dtype=np.uint8))  # homopolymer
        alt = np.zeros(length, dtype=np.uint8)
        alt[1::2] = 1
        out.append(alt)                               # alternating
        out.append(np.full(length, 4, dtype=np.uint8))  # all-N
    else:
        out.append(np.zeros(0, dtype=np.uint8))
    return out


def _sweep(qlens, tlens, schemes, h0s, widths, n_random):
    """Run the differential sweep; returns the number of cases."""
    rng = np.random.default_rng(0)
    cases = 0
    for qlen in qlens:
        qset = _seqs(rng, n_random, qlen)
        for tlen in tlens:
            tset = _seqs(rng, n_random, tlen)
            for scoring, h0, w, (q, t) in itertools.product(
                schemes, h0s, widths, itertools.product(qset, tset)
            ):
                cases += 1
                want_scores, want_moff, want_be, want_bf = banded_oracle(
                    q, t, scoring, h0, w
                )
                for prune in (True, False):
                    got = banded.extend(
                        q, t, scoring, h0, w=w, prune=prune
                    )
                    assert got.scores() == want_scores, (
                        q, t, h0, w, prune, scoring
                    )
                    assert got.max_off == want_moff, (q, t, h0, w, prune)
                    np.testing.assert_array_equal(
                        got.boundary_e, want_be,
                        err_msg=f"{(q, t, h0, w, prune, scoring)}",
                    )
                    np.testing.assert_array_equal(
                        got.boundary_f, want_bf,
                        err_msg=f"{(q, t, h0, w, prune, scoring)}",
                    )
                if abs(tlen - qlen) <= w:
                    ws, wle, wuf = global_oracle(q, t, scoring, h0, w)
                    gg = globalband.global_align(q, t, scoring, h0, w=w)
                    assert gg.score == ws, (q, t, h0, w, scoring)
                    np.testing.assert_array_equal(
                        gg.lower_e, wle,
                        err_msg=f"{(q, t, h0, w, scoring)}",
                    )
                    np.testing.assert_array_equal(
                        gg.upper_f, wuf,
                        err_msg=f"{(q, t, h0, w, scoring)}",
                    )
    return cases


def test_band_boundary_sweep_tier1():
    """Reduced sweep: degenerate geometries at every tiny band width."""
    cases = _sweep(
        qlens=range(0, 5),
        tlens=range(1, 6),
        schemes=SCHEMES[:2],
        h0s=(0, 7),
        widths=(0, 1, 2, 3, 7),
        n_random=1,
    )
    assert cases > 3_000


@pytest.mark.slow
def test_band_boundary_sweep_exhaustive():
    """Full sweep: reads <= 6 bp vs refs <= 8 bp, every band width."""
    cases = _sweep(
        qlens=range(0, 7),
        tlens=range(1, 9),
        schemes=SCHEMES,
        h0s=(0, 1, 7),
        widths=range(0, 10),
        n_random=2,
    )
    assert cases == 158_400
