"""Tests for the adaptive-banding baseline."""

import numpy as np
import pytest

from repro.align import banded
from repro.align.adaptive import adaptive_extend
from repro.align.scoring import BWA_MEM_SCORING
from repro.genome.sequence import random_sequence
from tests.helpers import mutate


class TestBasics:
    def test_clean_match(self):
        rng = np.random.default_rng(0)
        q = random_sequence(60, rng)
        res = adaptive_extend(q, q.copy(), BWA_MEM_SCORING, 20, band=4)
        assert res.gscore == 20 + 60
        assert res.gpos == 60
        assert res.drift == 0

    def test_never_exceeds_full_band(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            q = random_sequence(int(rng.integers(5, 40)), rng)
            t = mutate(q, rng, subs=2, ins=2, dels=2)
            if len(t) == 0:
                t = q.copy()
            res = adaptive_extend(q, t, BWA_MEM_SCORING, 25, band=4)
            full = banded.extend(q, t, BWA_MEM_SCORING, 25)
            assert res.gscore <= full.gscore
            assert res.lscore <= full.lscore

    def test_tracks_deep_deletion_a_static_band_misses(self):
        """The adaptive band's selling point: it drifts with the path,
        so a deletion much deeper than the width still aligns."""
        rng = np.random.default_rng(2)
        ref = random_sequence(200, rng)
        d = 30
        q = np.concatenate([ref[:40], ref[40 + d : 40 + d + 60]]).astype(
            np.uint8
        )
        t = ref[: 40 + d + 60]
        adaptive = adaptive_extend(q, t, BWA_MEM_SCORING, 30, band=10)
        static = banded.extend(q, t, BWA_MEM_SCORING, 30, w=10)
        full = banded.extend(q, t, BWA_MEM_SCORING, 30)
        assert adaptive.gscore == full.gscore  # drifted across the gap
        assert static.gscore < full.gscore  # static w=10 cannot
        assert adaptive.drift >= d - 10

    def test_cells_scale_with_width_not_demand(self):
        rng = np.random.default_rng(3)
        ref = random_sequence(300, rng)
        q = np.concatenate([ref[:50], ref[90:150]]).astype(np.uint8)
        t = ref[:150]
        adaptive = adaptive_extend(q, t, BWA_MEM_SCORING, 40, band=8)
        wide_static = banded.extend(
            q, t, BWA_MEM_SCORING, 40, w=45, prune=False
        )
        assert adaptive.cells_computed < wide_static.cells_computed / 2

    def test_validation(self):
        q = random_sequence(10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            adaptive_extend(q, q, BWA_MEM_SCORING, -1, band=4)
        with pytest.raises(ValueError):
            adaptive_extend(q, q, BWA_MEM_SCORING, 10, band=0)


class TestNoGuarantee:
    def test_adaptive_banding_makes_silent_errors(self):
        """The reason SeedEx exists: an adversarial input where the
        drifting band follows a locally-best path and silently misses
        the optimum, with no signal that anything went wrong."""
        rng = np.random.default_rng(4)
        silent_errors = 0
        for _ in range(100):
            # The true alignment deletes a 30-char block X, but X's
            # first 10 characters continue the query (a decoy): the
            # drifting band follows the decoy rightward, and since it
            # can never retreat, the real continuation 30 columns to
            # the left is gone for good.
            q = random_sequence(85, rng)
            x = np.concatenate(
                [q[25:35], random_sequence(20, rng)]
            ).astype(np.uint8)
            t = np.concatenate([q[:25], x, q[25:]]).astype(np.uint8)
            res = adaptive_extend(q, t, BWA_MEM_SCORING, 30, band=5)
            full = banded.extend(q, t, BWA_MEM_SCORING, 30)
            if res.gscore != full.gscore:
                silent_errors += 1
        assert silent_errors > 50
