"""Overlap/global-fill kernels vs naive dense full-matrix oracles.

The overlap DP (:mod:`repro.align.overlapdp`) and the batched global
gap fill (:mod:`repro.align.globalbatch`) each ship three renditions
— scalar reference, row-vectorized, inter-sequence lockstep — plus a
band-edge admissible bound that turns a banded fill into a *proved*
dense optimum.  The oracles here are deliberately naive whole-matrix
fills with none of the production code's diagonal bookkeeping, so the
sweep pins four properties at once:

* **full-band equivalence** — every rendition at ``w=None`` equals
  the dense optimum exactly (score and, for overlap, the smallest-row
  endpoint tie-break);
* **bound soundness** — whenever a *banded* fill reports
  ``optimal=True``, its score already equals the dense optimum (an
  inadmissible bound would let a too-low banded score through);
* **cross-rendition bit-identity** — scalar, row-vectorized, and
  lockstep agree on ``(score, t_end, band, bound)`` at every width,
  including the degenerate ones (``w=0``, empty query, empty target,
  band wider than both);
* **heterogeneous-clamp isolation** — lockstep buckets mixing jobs
  whose effective bands differ (the band-clamp asymmetry fixed in the
  lockstep F-scan) still match the per-job scalar fill bit for bit.

The tier-1 sweep keeps every degenerate geometry at small widths; the
exhaustive version (queries <= 6 bp vs targets <= 8 bp at every band
width 0..9, all four scheme shapes) runs in the ``slow`` tier.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given

from repro.align.fullmatrix import NEG_INF
from repro.align.globalbatch import (
    fill_gaps_guaranteed,
    fill_global_batch,
    fill_global_scalar,
)
from repro.align.overlapdp import (
    overlap_band,
    overlap_batch_lockstep,
    overlap_scalar,
)
from repro.align.scoring import BWA_MEM_SCORING, AffineGap

from tests.strategies import GapBatch, gap_job_batches

SCHEMES = (
    BWA_MEM_SCORING,
    AffineGap(match=2, mismatch=3, gap_open=5, gap_extend=2),
    AffineGap(match=1, mismatch=1, gap_open=0, gap_extend=1),
    AffineGap(match=1, mismatch=1, gap_open=0, gap_extend=1,
              gap_extend_ins=0, gap_extend_del=1),
)

_OVERLAP_FORMS = (
    overlap_scalar,
    overlap_band,
    lambda q, t, s, w: overlap_batch_lockstep([q], [t], s, w)[0],
)

_GLOBAL_FORMS = (
    fill_global_scalar,
    lambda q, t, s, w: fill_global_batch([q], [t], s, w)[0],
)


def dense_oracle(query, target, scoring):
    """Unbanded H/E/F fill: the ground truth both modes share.

    Anchored start (``H[0][0] = 0``), gap-penalized first row and
    column, no zero floor.  Returns the full H matrix; callers read
    the last column (overlap) or the corner (global) off it.
    """
    qlen, tlen = len(query), len(target)
    go = scoring.gap_open
    ge_i, ge_d = scoring.gap_extend_ins, scoring.gap_extend_del
    H = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    E = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    F = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    H[0][0] = 0
    for j in range(1, qlen + 1):
        F[0][j] = H[0][j] = -(go + j * ge_i)
    for i in range(1, tlen + 1):
        E[i][0] = H[i][0] = -(go + i * ge_d)
    for i in range(1, tlen + 1):
        for j in range(1, qlen + 1):
            E[i][j] = max(H[i - 1][j] - go, E[i - 1][j]) - ge_d
            F[i][j] = max(H[i][j - 1] - go, F[i][j - 1]) - ge_i
            diag = H[i - 1][j - 1] + scoring.substitution(
                int(target[i - 1]), int(query[j - 1])
            )
            H[i][j] = max(diag, E[i][j], F[i][j])
    return H


def dense_overlap(query, target, scoring):
    """Dense overlap optimum: best last-column cell, smallest row wins."""
    H = dense_oracle(query, target, scoring)
    qlen = len(query)
    score, t_end = NEG_INF, -1
    for i in range(len(target) + 1):
        if H[i][qlen] > NEG_INF // 2 and (
            t_end < 0 or H[i][qlen] > score
        ):
            score, t_end = int(H[i][qlen]), i
    return score, t_end


def dense_global(query, target, scoring):
    """Dense global optimum: the corner cell."""
    return int(dense_oracle(query, target, scoring)[len(target)][len(query)])


def _seqs(rng, n, length):
    out = [
        rng.integers(0, 4, size=length).astype(np.uint8)
        for _ in range(n)
    ]
    if length:
        out.append(np.zeros(length, dtype=np.uint8))  # homopolymer
        alt = np.zeros(length, dtype=np.uint8)
        alt[1::2] = 1
        out.append(alt)                               # alternating
        out.append(np.full(length, 4, dtype=np.uint8))  # all-N
    else:
        out.append(np.zeros(0, dtype=np.uint8))
    return out


def _check_overlap_case(q, t, scoring, w):
    want_score, want_end = dense_overlap(q, t, scoring)
    full = [form(q, t, scoring, None) for form in _OVERLAP_FORMS]
    for res in full:
        assert res.score == want_score, (q, t, scoring)
        assert res.t_end == want_end, (q, t, scoring)
        assert res.optimal
    banded = [form(q, t, scoring, w) for form in _OVERLAP_FORMS]
    ref = banded[0]
    for res in banded[1:]:
        assert (res.score, res.t_end, res.band, res.bound) == (
            ref.score, ref.t_end, ref.band, ref.bound
        ), (q, t, scoring, w)
    if ref.optimal:
        assert ref.score == want_score, (q, t, scoring, w)
        assert ref.t_end == want_end, (q, t, scoring, w)


def _check_global_case(q, t, scoring, w):
    want = dense_global(q, t, scoring)
    full = [form(q, t, scoring, None) for form in _GLOBAL_FORMS]
    for res in full:
        assert res.score == want, (q, t, scoring)
        assert res.optimal
    banded = [form(q, t, scoring, w) for form in _GLOBAL_FORMS]
    ref = banded[0]
    for res in banded[1:]:
        assert (res.score, res.band, res.bound) == (
            ref.score, ref.band, ref.bound
        ), (q, t, scoring, w)
    if ref.optimal:
        assert ref.score == want, (q, t, scoring, w)


def _sweep(qlens, tlens, schemes, widths, n_random):
    """Run the differential sweep; returns the number of cases."""
    rng = np.random.default_rng(0)
    cases = 0
    for qlen in qlens:
        qset = _seqs(rng, n_random, qlen)
        for tlen in tlens:
            tset = _seqs(rng, n_random, tlen)
            for scoring, w, (q, t) in itertools.product(
                schemes, widths, itertools.product(qset, tset)
            ):
                cases += 1
                _check_overlap_case(q, t, scoring, w)
                _check_global_case(q, t, scoring, w)
    return cases


def test_overlap_boundary_sweep_tier1():
    """Reduced sweep: degenerate geometries at every tiny band width."""
    cases = _sweep(
        qlens=range(0, 5),
        tlens=range(0, 6),
        schemes=SCHEMES[:2],
        widths=(0, 1, 2, 3, 7),
        n_random=1,
    )
    assert cases > 3_000


@pytest.mark.slow
def test_overlap_boundary_sweep_exhaustive():
    """Full sweep: queries <= 6 bp vs targets <= 8 bp, every width."""
    cases = _sweep(
        qlens=range(0, 7),
        tlens=range(0, 9),
        schemes=SCHEMES,
        widths=range(0, 10),
        n_random=2,
    )
    assert cases == 56_760


def test_lockstep_heterogeneous_clamp_regression():
    """Directed pin of the lockstep band-clamp asymmetry.

    Two jobs share the 16x16 shape bucket but their effective global
    bands differ hugely: a near-square job clamps to the requested
    ``w=1`` while its skewed bucket-mate's ``|tlen - qlen| = 14``
    forces the shared sweep 14 cells wide.  Before the own-band mask
    was applied ahead of the F-scan, the wide mate's columns fed the
    running max and leaked gap chains into the narrow job's band.
    """
    rng = np.random.default_rng(7)
    square_q = rng.integers(0, 4, size=15).astype(np.uint8)
    square_t = rng.integers(0, 4, size=15).astype(np.uint8)
    skew_q = rng.integers(0, 4, size=2).astype(np.uint8)
    skew_t = rng.integers(0, 4, size=16).astype(np.uint8)
    for scoring in SCHEMES:
        batch = fill_global_batch(
            [square_q, skew_q], [square_t, skew_t], scoring, w=1
        )
        for q, t, got in zip(
            (square_q, skew_q), (square_t, skew_t), batch
        ):
            solo = fill_global_scalar(q, t, scoring, w=1)
            assert (got.score, got.band, got.bound) == (
                solo.score, solo.band, solo.bound
            )
        over = overlap_batch_lockstep(
            [square_q, skew_q], [square_t, skew_t], scoring, w=None
        )
        for q, t, got in zip(
            (square_q, skew_q), (square_t, skew_t), over
        ):
            solo = overlap_scalar(q, t, scoring, w=None)
            assert (got.score, got.t_end, got.bound) == (
                solo.score, solo.t_end, solo.bound
            )


@given(batch=gap_job_batches())
def test_gap_batch_matches_scalar(batch: GapBatch):
    """Lockstep gap fills equal the per-job scalar fill, any mix."""
    results = fill_global_batch(
        batch.queries, batch.targets, batch.scoring, w=batch.band
    )
    assert len(results) == len(batch.queries)
    for q, t, got in zip(batch.queries, batch.targets, results):
        solo = fill_global_scalar(q, t, batch.scoring, w=batch.band)
        assert (got.score, got.band, got.bound, got.optimal) == (
            solo.score, solo.band, solo.bound, solo.optimal
        )


@given(batch=gap_job_batches())
def test_guaranteed_fills_equal_dense_optimum(batch: GapBatch):
    """The escalation ladder's contract: every returned score is the
    dense full-matrix optimum, no matter how narrow the first rung."""
    band = batch.band if batch.band is not None else 2
    outs = fill_gaps_guaranteed(
        batch.queries, batch.targets, batch.scoring, band=band
    )
    assert len(outs) == len(batch.queries)
    for q, t, out in zip(batch.queries, batch.targets, outs):
        assert out.result.score == dense_global(q, t, batch.scoring)
        assert out.band_requested == band
        assert out.rerun == (out.escalations > 0)
