"""Unit tests for the scoring schemes."""

import pytest

from repro.align.scoring import (
    BWA_MEM_SCORING,
    AffineGap,
    edit_scoring,
    relaxed_edit_scoring,
)
from repro.genome.sequence import AMBIGUOUS_CODE


class TestAffineGapValidation:
    def test_default_is_bwa_mem(self):
        assert BWA_MEM_SCORING.match == 1
        assert BWA_MEM_SCORING.mismatch == 4
        assert BWA_MEM_SCORING.gap_open == 6
        assert BWA_MEM_SCORING.gap_extend == 1

    def test_rejects_nonpositive_match(self):
        with pytest.raises(ValueError):
            AffineGap(match=0)

    def test_rejects_negative_penalties(self):
        with pytest.raises(ValueError):
            AffineGap(mismatch=-1)
        with pytest.raises(ValueError):
            AffineGap(gap_open=-2)
        with pytest.raises(ValueError):
            AffineGap(gap_extend=-1)
        with pytest.raises(ValueError):
            AffineGap(gap_extend_ins=-1)

    def test_split_extension_defaults_to_symmetric(self):
        s = AffineGap(match=2, mismatch=3, gap_open=4, gap_extend=2)
        assert s.gap_extend_ins == 2
        assert s.gap_extend_del == 2
        assert s.is_symmetric

    def test_asymmetric_extension(self):
        s = AffineGap(gap_extend=1, gap_extend_ins=0)
        assert not s.is_symmetric
        assert s.gap_extend_del == 1


class TestSubstitution:
    def test_match_and_mismatch(self):
        assert BWA_MEM_SCORING.substitution(0, 0) == 1
        assert BWA_MEM_SCORING.substitution(0, 3) == -4

    def test_ambiguous_never_matches(self):
        s = BWA_MEM_SCORING
        assert s.substitution(AMBIGUOUS_CODE, AMBIGUOUS_CODE) == -4
        assert s.substitution(AMBIGUOUS_CODE, 1) == -4
        assert s.substitution(2, AMBIGUOUS_CODE) == -4


class TestGapCost:
    def test_zero_length_gap_is_free(self):
        assert BWA_MEM_SCORING.gap_cost(0) == 0

    def test_affine_formula(self):
        assert BWA_MEM_SCORING.gap_cost(1) == 7
        assert BWA_MEM_SCORING.gap_cost(5) == 11

    def test_insertion_side(self):
        s = relaxed_edit_scoring()
        assert s.gap_cost(5, deletion=False) == 0
        assert s.gap_cost(5, deletion=True) == 5


class TestDominance:
    def test_edit_dominates_bwa(self):
        assert edit_scoring().dominates(BWA_MEM_SCORING)

    def test_relaxed_dominates_edit(self):
        assert relaxed_edit_scoring().dominates(edit_scoring())

    def test_dominance_is_reflexive(self):
        assert BWA_MEM_SCORING.dominates(BWA_MEM_SCORING)

    def test_bwa_does_not_dominate_edit(self):
        assert not BWA_MEM_SCORING.dominates(edit_scoring())


class TestDoubledGap:
    def test_doubles_only_gap_terms(self):
        d = BWA_MEM_SCORING.doubled_gap()
        assert d.match == 1
        assert d.mismatch == 4
        assert d.gap_open == 12
        assert d.gap_extend_ins == 2
        assert d.gap_extend_del == 2
