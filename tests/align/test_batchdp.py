"""Bit-equivalence tests for the batched lockstep kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import banded
from repro.align.batchdp import extend_batch
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.genome.synth import extension_corpus

SEQ = st.lists(st.integers(0, 3), min_size=1, max_size=14).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)
BATCH = st.lists(
    st.tuples(SEQ, SEQ, st.integers(1, 30)), min_size=1, max_size=8
)


def _assert_equal(batch_results, queries, targets, h0s, w):
    for k, res in enumerate(batch_results):
        ref = banded.extend(
            queries[k], targets[k], BWA_MEM_SCORING, h0s[k], w=w
        )
        assert res.scores() == ref.scores(), f"job {k}"
        assert (res.boundary_e == ref.boundary_e).all(), f"job {k}"
        assert (res.boundary_f == ref.boundary_f).all(), f"job {k}"
        assert res.max_off == ref.max_off, f"job {k}"


class TestEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(batch=BATCH, w=st.integers(1, 10))
    def test_ragged_batches_match_scalar(self, batch, w):
        queries = [q for q, _, _ in batch]
        targets = [t for _, t, _ in batch]
        h0s = [h for _, _, h in batch]
        results = extend_batch(queries, targets, h0s, BWA_MEM_SCORING, w=w)
        _assert_equal(results, queries, targets, h0s, w)

    @settings(max_examples=50, deadline=None)
    @given(batch=BATCH)
    def test_full_band(self, batch):
        queries = [q for q, _, _ in batch]
        targets = [t for _, t, _ in batch]
        h0s = [h for _, _, h in batch]
        results = extend_batch(queries, targets, h0s, BWA_MEM_SCORING)
        _assert_equal(results, queries, targets, h0s, None)

    @settings(max_examples=40, deadline=None)
    @given(
        batch=BATCH,
        w=st.integers(1, 8),
        go=st.integers(0, 6),
        ge=st.integers(1, 3),
    )
    def test_other_schemes(self, batch, w, go, ge):
        scoring = AffineGap(match=2, mismatch=3, gap_open=go, gap_extend=ge)
        queries = [q for q, _, _ in batch]
        targets = [t for _, t, _ in batch]
        h0s = [h for _, _, h in batch]
        results = extend_batch(queries, targets, h0s, scoring, w=w)
        for k, res in enumerate(results):
            ref = banded.extend(queries[k], targets[k], scoring, h0s[k], w=w)
            assert res.scores() == ref.scores()

    def test_corpus_batch(self):
        rng = np.random.default_rng(0)
        jobs = extension_corpus(
            60, rng, query_length=50, reference_length=40_000,
            vary_query_length=True,
        )
        results = extend_batch(
            [j.query for j in jobs],
            [j.target for j in jobs],
            [j.h0 for j in jobs],
            BWA_MEM_SCORING,
            w=9,
        )
        _assert_equal(
            results,
            [j.query for j in jobs],
            [j.target for j in jobs],
            [j.h0 for j in jobs],
            9,
        )


class TestValidation:
    def test_empty_batch(self):
        assert extend_batch([], [], [], BWA_MEM_SCORING) == []

    def test_mismatched_lengths_rejected(self):
        q = np.zeros(4, dtype=np.uint8)
        with pytest.raises(ValueError):
            extend_batch([q], [q, q], [5, 5], BWA_MEM_SCORING)

    def test_negative_h0_rejected(self):
        q = np.zeros(4, dtype=np.uint8)
        with pytest.raises(ValueError):
            extend_batch([q], [q], [-1], BWA_MEM_SCORING)


class TestExtenderIntegration:
    def test_extend_many_matches_extend_batch(self):
        from repro.core.extender import SeedExtender

        rng = np.random.default_rng(4)
        jobs = extension_corpus(
            40, rng, query_length=60, reference_length=40_000
        )
        triples = [(j.query, j.target, j.h0) for j in jobs]
        a = SeedExtender(band=8)
        b = SeedExtender(band=8)
        fast = a.extend_many(triples)
        slow = b.extend_batch(triples)
        for fa, sl in zip(fast, slow):
            assert fa.result.scores() == sl.result.scores()
            assert fa.rerun == sl.rerun
            assert fa.decision.outcome == sl.decision.outcome
        assert a.stats.by_outcome == b.stats.by_outcome
