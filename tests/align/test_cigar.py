"""Unit tests for CIGAR handling."""

import pytest

from repro.align.cigar import Cigar


class TestConstruction:
    def test_from_ops_merges_adjacent(self):
        c = Cigar.from_ops([(3, "M"), (2, "M"), (1, "I"), (4, "M")])
        assert str(c) == "5M1I4M"

    def test_from_ops_drops_zero_runs(self):
        c = Cigar.from_ops([(3, "M"), (0, "I"), (2, "M")])
        assert str(c) == "5M"

    def test_rejects_invalid_op(self):
        with pytest.raises(ValueError):
            Cigar(((3, "Z"),))

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            Cigar(((0, "M"),))


class TestParsing:
    def test_roundtrip(self):
        for text in ("101M", "50M1I50M", "10S90M", "3M2D4M1I2M"):
            assert str(Cigar.parse(text)) == text

    def test_star_is_empty(self):
        assert Cigar.parse("*").ops == ()
        assert str(Cigar(())) == "*"

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Cigar.parse("M10")
        with pytest.raises(ValueError):
            Cigar.parse("10M5")


class TestLengths:
    def test_query_and_reference_lengths(self):
        c = Cigar.parse("5S10M2I3D7M")
        assert c.query_length == 5 + 10 + 2 + 7
        assert c.reference_length == 10 + 3 + 7

    def test_edit_ops(self):
        assert Cigar.parse("10M2I3D7M").edit_ops == 5
        assert Cigar.parse("20M").edit_ops == 0


class TestReversed:
    def test_reversed_order(self):
        c = Cigar.parse("3M1I2M")
        assert str(c.reversed()) == "2M1I3M"

    def test_reversed_is_involution(self):
        c = Cigar.parse("10S5M2D1M")
        assert c.reversed().reversed() == c
