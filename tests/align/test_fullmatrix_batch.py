"""Property tests: the lockstep dense fill equals the scalar oracle.

:func:`~repro.align.fullmatrix.fill_extension_batch` powers the wave
scheduler's host-traceback stage: it fills many winners' dense H/E/F
matrices in one padded lockstep pass and slices each job's exact
matrices back out.  Its contract is *bit-identity* with the per-cell
scalar oracle :func:`~repro.align.fullmatrix.fill_extension` — every
channel value, every derived score, every tie-broken position — for
any job mix, any scoring scheme, any chunking.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.fullmatrix import (
    fill_extension,
    fill_extension_batch,
    traceback_extension,
    traceback_path,
)
from repro.align.scoring import BWA_MEM_SCORING, AffineGap

SEQ = st.lists(st.integers(0, 4), min_size=0, max_size=12).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)
JOB = st.tuples(SEQ, SEQ, st.integers(0, 30))


def assert_dense_equal(got, want) -> None:
    """Channel-for-channel equality of two :class:`DenseMatrices`."""
    assert (got.h == want.h).all()
    assert (got.e == want.e).all()
    assert (got.f == want.f).all()
    assert got.lscore == want.lscore
    assert got.lpos == want.lpos
    assert got.gscore == want.gscore
    assert got.gpos == want.gpos
    assert got.max_off == want.max_off


class TestLockstepBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(jobs=st.lists(JOB, min_size=1, max_size=8))
    def test_batch_matches_scalar_oracle(self, jobs):
        """Padded lockstep fill == scalar per-cell fill, per job."""
        batch = fill_extension_batch(
            [q for q, _, _ in jobs],
            [t for _, t, _ in jobs],
            BWA_MEM_SCORING,
            [h0 for _, _, h0 in jobs],
        )
        assert len(batch) == len(jobs)
        for (q, t, h0), got in zip(jobs, batch):
            assert_dense_equal(got, fill_extension(q, t, BWA_MEM_SCORING, h0))

    @settings(max_examples=30, deadline=None)
    @given(
        jobs=st.lists(JOB, min_size=1, max_size=5),
        go=st.integers(0, 6),
        ge=st.integers(0, 3),
        ge_ins=st.integers(0, 3),
    )
    def test_batch_matches_under_other_schemes(self, jobs, go, ge, ge_ins):
        """Identity holds for arbitrary (even relaxed) gap schemes."""
        scoring = AffineGap(
            match=2,
            mismatch=3,
            gap_open=go,
            gap_extend=ge,
            gap_extend_ins=ge_ins,
        )
        batch = fill_extension_batch(
            [q for q, _, _ in jobs],
            [t for _, t, _ in jobs],
            scoring,
            [h0 for _, _, h0 in jobs],
        )
        for (q, t, h0), got in zip(jobs, batch):
            assert_dense_equal(got, fill_extension(q, t, scoring, h0))

    @settings(max_examples=30, deadline=None)
    @given(jobs=st.lists(JOB, min_size=2, max_size=8))
    def test_chunking_is_invisible(self, jobs):
        """A tiny cell budget forces many chunks; results are unchanged."""
        big = fill_extension_batch(
            [q for q, _, _ in jobs],
            [t for _, t, _ in jobs],
            BWA_MEM_SCORING,
            [h0 for _, _, h0 in jobs],
        )
        small = fill_extension_batch(
            [q for q, _, _ in jobs],
            [t for _, t, _ in jobs],
            BWA_MEM_SCORING,
            [h0 for _, _, h0 in jobs],
            max_cells=1,  # every chunk degenerates to one job
        )
        for got, want in zip(small, big):
            assert_dense_equal(got, want)

    def test_ragged_shapes_do_not_bleed(self):
        """Wildly different job shapes in one chunk stay independent."""
        rng = np.random.default_rng(13)
        jobs = [
            (np.zeros(0, dtype=np.uint8), rng.integers(0, 4, 9).astype(np.uint8), 5),
            (rng.integers(0, 4, 40).astype(np.uint8), rng.integers(0, 4, 2).astype(np.uint8), 18),
            (np.full(12, 4, dtype=np.uint8), rng.integers(0, 4, 12).astype(np.uint8), 9),
            (rng.integers(0, 5, 25).astype(np.uint8), rng.integers(0, 5, 30).astype(np.uint8), 22),
        ]
        batch = fill_extension_batch(
            [q for q, _, _ in jobs],
            [t for _, t, _ in jobs],
            BWA_MEM_SCORING,
            [h0 for _, _, h0 in jobs],
        )
        for (q, t, h0), got in zip(jobs, batch):
            assert_dense_equal(got, fill_extension(q, t, BWA_MEM_SCORING, h0))

    def test_empty_batch(self):
        """Zero jobs in, zero matrices out."""
        assert fill_extension_batch([], [], BWA_MEM_SCORING, []) == []


class TestTracebackPath:
    @settings(max_examples=60, deadline=None)
    @given(job=JOB)
    def test_walk_of_prefilled_matrix_matches_oracle(self, job):
        """``traceback_path`` over a lockstep-filled matrix == the
        fill-and-walk oracle ``traceback_extension``."""
        q, t, h0 = job
        mats = fill_extension(q, t, BWA_MEM_SCORING, h0)
        end = mats.lpos
        if end == (0, 0):
            return
        want = traceback_extension(q, t, BWA_MEM_SCORING, h0, end)
        [batched] = fill_extension_batch([q], [t], BWA_MEM_SCORING, [h0])
        got = traceback_path(batched, q, t, BWA_MEM_SCORING, end)
        assert str(got) == str(want)
