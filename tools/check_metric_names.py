"""Lint the observability catalog.

Run:  python tools/check_metric_names.py

Checks, for every constant in ``repro.obs.names``:

1. the name follows the ``dot.case`` convention
   (``^[a-z][a-z0-9_]*(\\.[a-z][a-z0-9_]*)+$``);
2. the name has its own *catalog table row* in
   ``docs/observability.md`` (a backtick mention in prose does not
   count — every metric must be properly catalogued, not namechecked).

And, in the other direction, that every catalog table row resolves to
a constant — so the doc cannot drift ahead of the code either.  Exits
non-zero on any violation; CI runs this.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import names  # noqa: E402

DOT_CASE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")
CATALOG = ROOT / "docs" / "observability.md"

# First cell of a catalog table row: "| `the.name` | ...".  Prose
# mentions (examples, file names) are deliberately out of scope;
# `.seconds` histograms are implied by span rows.
DOC_NAME = re.compile(
    r"^\|\s*`([a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+)`\s*\|",
    re.MULTILINE,
)

IMPLIED_SUFFIX = ".seconds"


def main() -> int:
    """Validate names both ways; print findings; return exit code."""
    declared = names.all_names()
    doc_text = CATALOG.read_text()
    errors: list[str] = []

    documented = set(DOC_NAME.findall(doc_text))
    # A span row also catalogues its implied ".seconds" histogram.
    documented |= {
        row + IMPLIED_SUFFIX
        for row in documented
        if not row.endswith(IMPLIED_SUFFIX)
    }
    for const, value in sorted(declared.items()):
        if not DOT_CASE.fullmatch(value):
            errors.append(
                f"{const} = {value!r} violates the dot.case convention"
            )
        if value not in documented:
            errors.append(
                f"{const} = {value!r} has no catalog table row in "
                f"{CATALOG.name}"
            )

    known = set(declared.values())
    for doc_name in sorted(set(DOC_NAME.findall(doc_text))):
        base = doc_name
        if base.endswith(IMPLIED_SUFFIX):
            base = base[: -len(IMPLIED_SUFFIX)]
        if base not in known and doc_name not in known:
            errors.append(
                f"{CATALOG.name} documents {doc_name!r} which no "
                "constant in repro/obs/names.py declares"
            )

    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        print(f"{len(errors)} catalog violation(s)", file=sys.stderr)
        return 1
    print(
        f"ok: {len(declared)} metric/span names follow dot.case and "
        f"match {CATALOG.name}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
