"""Anatomy of one SeedEx decision, bound by bound.

Constructs the canonical case-c input — a deletion exactly as deep as
the band, placed right after the seed, with a clean suffix — and walks
through what each check computes and why the narrow-band result ends
up provably optimal.  Then perturbs the input until each check fails,
showing the rerun triggers.

Run:  python examples/check_anatomy.py
"""

import numpy as np

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING
from repro.core.checker import CheckOutcome, OptimalityChecker
from repro.core.editcheck import edit_check
from repro.core.escore import score_max_e
from repro.core.thresholds import semiglobal_thresholds
from repro.genome.sequence import random_sequence

rng = np.random.default_rng(99)
W = 12
H0 = 25

# The canonical rescue case: a deletion exactly W deep, right after
# the seed (column 5), clean everywhere else.  Its gap penalty
# go + W*ge = 18 lands the score exactly at S2 — case c.
ref = random_sequence(170, rng)
query = np.concatenate([ref[:5], ref[5 + W : 5 + W + 113]]).astype(
    np.uint8
)
target = ref[:130]

print(f"query {len(query)} bp vs target {len(target)} bp, band w={W}, "
      f"seed score h0={H0}")
print(f"planted: a {W}-deletion at column 5, clean suffix\n")

narrow = banded.extend(query, target, BWA_MEM_SCORING, H0, w=W)
full = banded.extend(query, target, BWA_MEM_SCORING, H0)
print("1. speculation — narrow-band run")
print(f"   gscore_nb = {narrow.gscore} (full band agrees: "
      f"{full.gscore})")

th = semiglobal_thresholds(
    BWA_MEM_SCORING, len(query), len(target), W, H0
)
verdict = th.classify(narrow.gscore)
print("\n2. thresholds (paper Eq. 4-5)")
print(f"   S1 = {th.s1}   S2 = {th.s2}   -> {verdict}")
assert verdict == "between", "scenario must land in case c"

e_bound = score_max_e(narrow, BWA_MEM_SCORING)
e_pass = e_bound < narrow.gscore
print("\n3. E-score check (paths crossing the band's lower edge)")
print(f"   scoreMax_E = {e_bound} "
      f"{'<' if e_pass else '>='} gscore_nb {narrow.gscore}: "
      f"{'PASS' if e_pass else 'FAIL'}")
print("   (the deletion sits at column 5, so every live boundary "
      "entry already paid it)")

ed = edit_check(query, target, narrow, BWA_MEM_SCORING, th.s1)
ed_pass = ed.score_ed < narrow.gscore
print("\n4. edit-distance check (the column-0 dive, half-matrix sweep)")
print(f"   score_ed = {ed.score_ed} "
      f"{'<' if ed_pass else '>='} gscore_nb {narrow.gscore}: "
      f"{'PASS' if ed_pass else 'FAIL'}")

decision = OptimalityChecker(BWA_MEM_SCORING).check(
    query, target, narrow
)
print(f"\n=> outcome: {decision.outcome.name}")
assert decision.outcome == CheckOutcome.PASS_CHECKS
assert narrow.scores() == full.scores()
print("   the narrow band is provably bit-equal to the full band — "
      "no rerun needed")

# Break it: deepen the deletion past the band.
print("\n--- perturbation: deepen the deletion to w+6 ---")
query2 = np.concatenate(
    [ref[:5], ref[5 + W + 6 : 5 + W + 6 + 113]]
).astype(np.uint8)
narrow2 = banded.extend(query2, target, BWA_MEM_SCORING, H0, w=W)
decision2 = OptimalityChecker(BWA_MEM_SCORING).check(
    query2, target, narrow2
)
full2 = banded.extend(query2, target, BWA_MEM_SCORING, H0)
print(f"gscore_nb = {narrow2.gscore}, full = {full2.gscore} "
      f"(the band genuinely missed {full2.gscore - narrow2.gscore} "
      "points)")
print(f"outcome: {decision2.outcome.name} -> rerun recovers the "
      "optimum")
assert decision2.needs_rerun

# Noisy suffix: the E-shadow tolerance is exhausted; the checks
# correctly refuse to certify even though the band was fine.
print("\n--- perturbation: four substitutions after the deletion ---")
query3 = query.copy()
for p in (60, 75, 88, 95):
    query3[p] = (query3[p] + 1) % 4
narrow3 = banded.extend(query3, target, BWA_MEM_SCORING, H0, w=W)
decision3 = OptimalityChecker(BWA_MEM_SCORING).check(
    query3, target, narrow3
)
full3 = banded.extend(query3, target, BWA_MEM_SCORING, H0)
print(f"gscore_nb = {narrow3.gscore}, full = {full3.gscore}")
print(f"outcome: {decision3.outcome.name} -> "
      + ("a false alarm the all-match bounds cannot avoid "
         "(docs/checks.md Sec 4) — rerun, same answer"
         if narrow3.scores() == full3.scores()
         else "and indeed the band missed the optimum"))
assert decision3.needs_rerun
