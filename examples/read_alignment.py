"""End-to-end read alignment: SeedEx acceleration is bit-equivalent.

Synthesizes a reference genome, simulates Illumina-like reads
(including the ~2% carrying structural indels), aligns them twice —
with the full-band software kernel and with the SeedEx engine on a
narrow band — and verifies the SAM output is identical, as the paper
validated over 787M real reads.  Writes both SAM files next to this
script.

Run:  python examples/read_alignment.py [n_reads]
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro.aligner import Aligner, FullBandEngine, SeedExEngine
from repro.genome.sam import diff_records, write_sam
from repro.genome.synth import (
    PLATINUM_LIKE,
    ReadSimulator,
    synthesize_reference,
)

N_READS = int(sys.argv[1]) if len(sys.argv) > 1 else 80

rng = np.random.default_rng(2020)
print("synthesizing a 60 kb reference with repeat content ...")
reference = synthesize_reference(60_000, rng, repeat_fraction=0.03)
reads = ReadSimulator(reference, PLATINUM_LIKE, seed=613).simulate(N_READS)
print(f"simulated {len(reads)} reads "
      f"({sum(r.indel_span >= 8 for r in reads)} with structural indels)")

start = time.perf_counter()
baseline = Aligner(reference, FullBandEngine(), seeding="kmer")
full_sam = baseline.align(reads)
print(f"full-band alignment: {time.perf_counter() - start:.1f}s")

start = time.perf_counter()
engine = SeedExEngine(band=41)
seedex_sam = Aligner(reference, engine, seeding="kmer").align(reads)
print(f"SeedEx (w=41) alignment: {time.perf_counter() - start:.1f}s")

diffs = diff_records(full_sam, seedex_sam)
stats = engine.stats
print(f"\ndiffering SAM records: {diffs} (paper: 0)")
print(f"extensions: {stats.total}, check passing rate: "
      f"{stats.passing_rate:.1%}, reruns: {stats.reruns}")

mapped = [r for r in full_sam if not r.is_unmapped]
correct = sum(
    1
    for read, rec in zip(reads, full_sam)
    if not rec.is_unmapped
    and abs(rec.pos - read.true_pos) <= 50
    and rec.is_reverse == read.reverse
)
print(f"mapped: {len(mapped)}/{len(reads)}, near truth: {correct}")

out_dir = Path(__file__).parent
for name, records in (("full_band.sam", full_sam),
                      ("seedex.sam", seedex_sam)):
    with open(out_dir / name, "w") as handle:
        write_sam(handle, records, "chr1", len(reference))
print(f"wrote {out_dir / 'full_band.sam'} and {out_dir / 'seedex.sam'}")

assert diffs == 0, "SeedEx output must be bit-equivalent!"
print("\nbit-equivalence verified.")
