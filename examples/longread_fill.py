"""Long reads: guaranteed-optimal gap fills (paper Section VII-D).

minimap2-style long-read aligners chain seeds and globally align the
gaps between them — a step the paper measures at 16-33% of execution
time and proposes SeedEx for ("performing optimal global alignment
with a small area").  This example runs that exact pipeline: seeds,
chains, then every inter-seed gap goes through the banded global
kernel with the SeedEx global checks, rerunning at full band only when
the proof fails.

Run:  python examples/longread_fill.py
"""

import numpy as np

from repro.aligner.longread import LongReadAligner
from repro.genome.synth import (
    LongReadProfile,
    simulate_long_reads,
    synthesize_reference,
)

rng = np.random.default_rng(77)
print("synthesizing a 150 kb reference ...")
reference = synthesize_reference(150_000, rng, repeat_fraction=0.02)
profile = LongReadProfile(read_length=2000, sv_rate=0.3)
reads = simulate_long_reads(reference, 15, rng, profile)
print(f"simulated {len(reads)} x {profile.read_length} bp long reads "
      f"({sum(r.indel_span >= 10 for r in reads)} with structural "
      "variants)\n")

aligner = LongReadAligner(reference, fill_band=16)
near = 0
for read in reads:
    result = aligner.align(read.codes, read.name)
    if result is None:
        print(f"{read.name}: no chain")
        continue
    ok = abs(result.pos - read.true_pos) <= 100
    near += ok
    reruns = sum(f.rerun for f in result.fills)
    print(
        f"{read.name}: pos {result.pos} (truth {read.true_pos}), "
        f"{result.seeds_used} seeds, {len(result.fills)} fills, "
        f"{result.fill_pass_rate:.0%} proved on w=16, "
        f"{reruns} rerun(s)"
    )

stats = aligner.stats
print(
    f"\n{stats.fills} gap fills total; {stats.fill_pass_rate:.1%} "
    "proved optimal on the narrow band — the full-band kernel ran for "
    f"only {stats.fills - stats.fills_proved} of them."
)
print(f"positions recovered: {near}/{len(reads)}")
print("\nEvery fill score is full-band-equivalent by construction: "
      "either the checks proved it, or the rerun computed it.")
