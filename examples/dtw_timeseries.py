"""Beyond genomics: the SeedEx check on DTW and LCS (paper Sec VII-D).

Dynamic time warping normally runs with a Sakoe-Chiba band and simply
*hopes* the band was wide enough.  The SeedEx recipe — speculate
narrow, test with an admissible bound, rerun on failure — upgrades
banded DTW to guaranteed-optimal.  Same story for banded LCS.

Run:  python examples/dtw_timeseries.py
"""

import numpy as np

from repro.apps.dtw import dtw_with_guarantee, full_dtw
from repro.apps.lcs import full_lcs, lcs_with_guarantee

rng = np.random.default_rng(11)

# --- DTW on warped heartbeats -------------------------------------------------
print("== banded DTW with optimality guarantee ==")
t = np.linspace(0, 4 * np.pi, 160)
template = np.sin(t) + 0.3 * np.sin(3 * t)

cases = {
    "clean repeat": template + 0.02 * rng.normal(size=t.size),
    "slight warp": np.interp(
        np.linspace(0, 1, t.size) ** 1.05,
        np.linspace(0, 1, t.size),
        template,
    ),
    "strong warp": np.interp(
        np.linspace(0, 1, t.size) ** 1.6,
        np.linspace(0, 1, t.size),
        template,
    ),
}
for name, signal in cases.items():
    for band in (2, 6, 16):
        result = dtw_with_guarantee(template, signal, band)
        status = "proved optimal" if result.optimal_by_check else "rerun"
        print(f"  {name:13s} w={band:2d}: cost={result.cost:8.3f} "
              f"[{status}]")
        assert abs(result.cost - full_dtw(template, signal)) < 1e-9
print("  every answer equals the full O(nm) DTW — cheaply when the "
      "check passes.")

# --- LCS on mutated token streams ----------------------------------------------
print("\n== banded LCS with optimality guarantee ==")
a = rng.integers(0, 4, size=120).astype(np.uint8)
for label, b in {
    "2 edits": np.concatenate([a[:50], a[52:], [1, 2]]).astype(np.uint8),
    "20-token gap": np.concatenate([a[:30], a[50:], a[:20]]).astype(
        np.uint8
    ),
}.items():
    for band in (3, 10, 30):
        result = lcs_with_guarantee(a, b, band)
        status = "proved optimal" if result.optimal_by_check else "rerun"
        print(f"  {label:13s} w={band:2d}: lcs={result.length:3d} "
              f"[{status}]")
        assert result.length == full_lcs(a, b)
print("  the check admits narrow bands exactly when they suffice.")
