"""Explore band demand and check passing rates for a workload.

Reproduces the paper's Section II analysis interactively: how much
band do extensions *actually* need, and how often do the SeedEx checks
admit a given narrow band?  Tweak the error model from the command
line to see the design point move.

Run:  python examples/band_explorer.py [--subs 0.01] [--sv-rate 0.02]
      [--jobs 300] [--bands 5,10,20,41,81]
"""

import argparse

import numpy as np

from repro.analysis.band_analysis import band_distribution
from repro.analysis.passing import passing_sweep
from repro.analysis.report import print_table
from repro.genome.synth import ReadProfile, extension_corpus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--subs", type=float, default=0.01,
                        help="substitution rate per base")
    parser.add_argument("--sv-rate", type=float, default=0.02,
                        help="structural indel rate per read")
    parser.add_argument("--jobs", type=int, default=300)
    parser.add_argument("--bands", default="5,10,20,41,60,81")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    profile = ReadProfile(
        substitution_rate=args.subs,
        large_indel_rate=args.sv_rate,
    )
    rng = np.random.default_rng(args.seed)
    jobs = extension_corpus(
        args.jobs, rng, query_length=101, profile=profile,
        vary_query_length=True,
    )

    dist = band_distribution(jobs)
    print_table(
        "band demand (estimated vs actually used)",
        ("band", "estimated", "used"),
        [
            (label, f"{est:.1%}", f"{used:.1%}")
            for label, est, used in zip(
                dist.labels, dist.estimated, dist.used
            )
        ],
    )
    print(f"\nextensions needing w <= 10: "
          f"{dist.fraction_used_at_most(10):.1%}")

    bands = [int(b) for b in args.bands.split(",")]
    points = passing_sweep(jobs, bands)
    print_table(
        "SeedEx check passing rates",
        ("band", "threshold only", "all checks", "edit-machine demand"),
        [
            (
                p.band,
                f"{p.threshold_only:.1%}",
                f"{p.overall:.1%}",
                f"{p.edit_machine_demand:.1%}",
            )
            for p in points
        ],
    )
    best = min(
        (p for p in points if p.overall >= 0.95),
        key=lambda p: p.band,
        default=points[-1],
    )
    print(f"\nsmallest swept band with >=95% passing: w={best.band} "
          f"({best.overall:.1%}) — the paper picked w=41 at 98.19%")


if __name__ == "__main__":
    main()
