"""Drive the SeedEx hardware models end to end.

Three levels of fidelity, mirroring paper Figures 7-11:

1. the cycle-level systolic BSW array on a single job (watch the
   speculative early termination and PE utilization);
2. the 3-bit delta-encoded edit machine decoding its scores exactly;
3. the full accelerator (3 clusters x 4 SeedEx cores) on a corpus,
   with the calibrated area/throughput models alongside.

Run:  python examples/accelerator_simulation.py
"""

import numpy as np

from repro import constants as paper
from repro.align.scoring import BWA_MEM_SCORING
from repro.core.editcheck import exact_left_seeds
from repro.genome.sequence import decode
from repro.genome.synth import extension_corpus
from repro.hw import area, timing
from repro.hw.accelerator import AcceleratorConfig, SeedExAccelerator
from repro.hw.edit_machine import EditMachine
from repro.hw.systolic import SystolicBSW

rng = np.random.default_rng(4)
jobs = extension_corpus(240, rng, query_length=80,
                        reference_length=120_000)

# --- 1. one job through the cycle-level systolic array ----------------------
job = jobs[0]
print("== cycle-level systolic BSW array (w=12) ==")
print("query :", decode(job.query)[:60], "...")
run = SystolicBSW(12, BWA_MEM_SCORING).run(job.query, job.target, job.h0)
print(f"cycles: {run.cycles}, PEs: {run.pe_count}, "
      f"utilization: {run.utilization:.0%}")
print(f"scores: lscore={run.result.lscore} gscore={run.result.gscore} "
      f"terminated_early={run.result.terminated_early} "
      f"exception={run.exception}")

# --- 2. the delta-encoded edit machine ---------------------------------------
print("\n== 3-bit delta-encoded edit machine (w=12) ==")
em = EditMachine(12)
em_run = em.run(job.query, job.target,
                exact_left_seeds(job.h0, BWA_MEM_SCORING))
print(f"half-width PEs: {em_run.pe_count}, cells: {em_run.cells_computed}")
print(f"decoded score_ed bound: {em_run.scores.best} "
      "(bit-exact vs the full-width software DP)")

# --- 3. the full accelerator --------------------------------------------------
print("\n== full accelerator: 3 clusters x 4 SeedEx cores ==")
acc = SeedExAccelerator(AcceleratorConfig())
report = acc.run(jobs)
print(f"jobs: {len(jobs)}, device passing rate: {acc.passing_rate():.1%}, "
      f"rerun fraction: {report.rerun_fraction:.1%} (paper ~2%)")
print(f"modeled device throughput at 101bp: "
      f"{timing.fpga_throughput() / 1e6:.1f} M ext/s (paper 43.9)")
print(f"iso-area speedup over full-band: "
      f"{timing.iso_area_speedup():.1f}x (paper 6.0x)")

# --- cost model summary --------------------------------------------------------
print("\n== calibrated cost models ==")
print(f"SeedEx core: {area.seedex_core_luts():,.0f} LUTs "
      f"(full-band core: {area.full_band_core_luts():,.0f}; "
      f"{area.full_band_core_luts() / area.seedex_core_luts():.1f}x)")
print(f"edit machine overhead: {area.edit_machine_overhead():.2%} "
      "(paper 5.53%)")
asic_area, asic_power = area.asic_seedex_totals()
print(f"ASIC SeedEx: {asic_area:.2f} mm^2, {asic_power:.2f} W "
      f"@ {1e3 / paper.ASIC_CLOCK_NS / 1e3:.2f} GHz")
