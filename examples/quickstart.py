"""Quickstart: guaranteed-optimal seed extension on a narrow band.

Run:  python examples/quickstart.py
"""

from repro import SeedExtender
from repro.genome.sequence import encode

# A 60bp query against a reference window that contains it with one
# mismatch and a 3-base deletion.
query = encode(
    "ACGTACGTTGCAGGCTTACGGATCCAGTTGCAACTGGTCATTGCAACCGGTAGGATCCAA"
)
target = encode(
    "ACGTACGTTGCAGGCTTACGGATCCAGTTGCATCCACTGGTCATTGCAACCGGTAGGATCCAATTG"
)

# The SeedExtender speculates on a narrow band (here w=8) and applies
# the SeedEx optimality checks; on failure it reruns at full band, so
# the result below is *always* bit-identical to a full-band run.
extender = SeedExtender(band=8)
out = extender.extend(query, target, h0=25)

print("narrow band        :", extender.band)
print("check outcome      :", out.decision.outcome.name)
print("needed full-band rerun:", out.rerun)
print("semi-global score  :", out.result.gscore,
      "(query consumed at reference row", str(out.result.gpos) + ")")
print("local best score   :", out.result.lscore, "at", out.result.lpos)
print("thresholds S1/S2   :", out.decision.thresholds.s1,
      "/", out.decision.thresholds.s2)

# The running statistics show the speculation economics: how many
# extensions the checks admitted vs sent back for rerun.
stats = extender.stats
print(f"\nextensions: {stats.total}, passed: {stats.passed}, "
      f"reruns: {stats.reruns} (passing rate {stats.passing_rate:.0%})")
