"""Paired-end alignment with SeedEx acceleration and mate rescue.

Simulates an FR paired library, aligns it with the SeedEx engine, and
then damages one mate of each pair badly enough that single-end
seeding fails — showing the mate-rescue path (a targeted SeedEx
extension inside the insert window of the mapped mate) recovering it.

Run:  python examples/paired_end.py
"""

import numpy as np

from repro.aligner import PairedAligner, ReadPair, SeedExEngine
from repro.aligner.paired import FLAG_PROPER, simulate_pairs
from repro.genome.synth import synthesize_reference

rng = np.random.default_rng(2024)
print("synthesizing a 80 kb reference ...")
reference = synthesize_reference(80_000, rng)
pairs = simulate_pairs(reference, 40, rng)
print(f"simulated {len(pairs)} FR pairs (insert ~ N(400, 50))\n")

aligner = PairedAligner(reference, SeedExEngine(band=41))
proper = exact = 0
for pair, p1, p2 in pairs:
    r1, r2 = aligner.align_pair(pair)
    proper += bool(r1.flag & FLAG_PROPER)
    exact += (r1.pos == p1) + (r2.pos == p2)
print(f"clean library: {proper}/{len(pairs)} proper pairs, "
      f"{exact}/{2 * len(pairs)} exact positions")

# Damage mate 2 of each pair with 10 scattered substitutions: enough
# to starve the 19-mer seeder, not enough to hide the alignment.
rescue_aligner = PairedAligner(reference, SeedExEngine(band=41))
solo_unmapped = recovered = 0
for pair, p1, p2 in pairs:
    bad = pair.second.copy()
    sites = rng.choice(len(bad), size=10, replace=False)
    bad[sites] = (bad[sites] + rng.integers(1, 4, size=10)) % 4
    if rescue_aligner.aligner.align_read(bad, "probe").is_unmapped:
        solo_unmapped += 1
    r1, r2 = rescue_aligner.align_pair(ReadPair(pair.name, pair.first, bad))
    if not r2.is_unmapped and abs(r2.pos - p2) <= 30:
        recovered += 1

print(f"\ndamaged library: {solo_unmapped}/{len(pairs)} mates unmapped "
      "single-end")
print(f"with pairing + rescue: {recovered}/{len(pairs)} mates placed "
      f"near truth ({rescue_aligner.stats.rescued} explicit rescues)")
print("\nmate rescue runs the same speculate-and-test extension kernel "
      "— even the rescue path is guaranteed full-band-equivalent.")
