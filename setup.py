"""Setup shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-build-isolation`` on offline machines whose
pip/setuptools cannot do PEP 660 editable installs.
"""

from setuptools import setup

setup()
