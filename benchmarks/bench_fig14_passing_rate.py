"""Figure 14: passing rate of the SeedEx check algorithm vs band.

Paper: thresholding alone needs w=70 for 95% and w=81 for near-100%;
the edit-distance check boosts the rate by 18% on average (over 30%
for some bands).  At the chosen w=41, thresholding passes 71.76% and
the full chain 98.19%; roughly one extension in three visits the edit
machine, hence the 3:1 BSW:edit core ratio.

Two corpora are swept: the platinum-like mix (the paper's overall
workload) and the case-c-rich structural corpus (where the checks
earn their keep).  The ablation rows disable the E-score/edit checks.
"""

from repro.analysis.passing import passing_sweep
from repro.analysis.report import ascii_bars, print_table
from repro.core.checker import CheckConfig

BANDS = [5, 10, 20, 30, 41, 50, 60, 70, 81, 100]


def test_fig14_passing_rate(benchmark, platinum_corpus, structural_jobs):
    def run():
        return (
            passing_sweep(platinum_corpus, BANDS),
            passing_sweep(structural_jobs, BANDS),
            passing_sweep(
                structural_jobs,
                BANDS,
                config=CheckConfig(use_edit_check=False),
            ),
        )

    overall_pts, sv_pts, ablated_pts = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        (
            p.band,
            f"{p.threshold_only:.1%}",
            f"{p.overall:.1%}",
            f"{s.threshold_only:.1%}",
            f"{s.overall:.1%}",
            f"{s.edit_check_boost:+.1%}",
            f"{a.overall:.1%}",
        )
        for p, s, a in zip(overall_pts, sv_pts, ablated_pts)
    ]
    print_table(
        "Figure 14 — passing rates vs band",
        (
            "band",
            "thr (mix)",
            "all (mix)",
            "thr (SV)",
            "all (SV)",
            "edit boost",
            "no-edit (SV)",
        ),
        rows,
    )
    print("\noverall passing rate vs band (SV corpus):")
    print(
        ascii_bars(
            [str(p.band) for p in sv_pts],
            [100 * p.overall for p in sv_pts],
            unit="%",
        )
    )
    at41 = next(p for p in sv_pts if p.band == 41)
    print(
        f"\nw=41 on the SV corpus: threshold-only {at41.threshold_only:.1%}"
        f" (paper 71.76%), overall {at41.overall:.1%} (paper 98.19%), "
        f"edit-machine demand {at41.edit_machine_demand:.1%} "
        "(paper ~1/3 => 3:1 core ratio)"
    )
    mix41 = next(p for p in overall_pts if p.band == 41)
    print(
        f"w=41 on the platinum mix: overall {mix41.overall:.1%} "
        f"=> rerun fraction {1 - mix41.overall:.1%} (paper ~2%)"
    )

    # Shape assertions.
    assert [p.overall for p in sv_pts] == sorted(
        p.overall for p in sv_pts
    )
    assert at41.edit_check_boost > 0.10  # the checks matter at w=41
    assert sv_pts[-1].overall > 0.99  # full band passes everything
    assert 1 - mix41.overall < 0.06  # small rerun tail on the mix
    # Ablation can only lower the rate.
    for s, a in zip(sv_pts, ablated_pts):
        assert a.overall <= s.overall + 1e-9
