"""Table III: area and power of the ASIC SeedEx implementation.

Paper: a 28 nm SeedEx with 12 BSW cores + 4 edit cores + 1 full-band
rerun core occupies 0.98 mm^2 and 1.10 W; paired with 8 ERT seeding
units the full aligner is 28.76 mm^2 / 9.81 W at a 0.49 ns clock.
"""

from repro import constants as paper
from repro.analysis.report import PaperComparison, comparison_table, print_table
from repro.hw import area


def test_table3_asic(benchmark):
    def run():
        return (
            area.asic_seedex_components(),
            area.asic_seedex_totals(),
            area.asic_system_totals(),
        )

    components, seedex_totals, system_totals = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        (c.name, c.config, f"{c.area_mm2:.3f}", f"{c.power_w:.3f}")
        for c in components
    ]
    rows.append(
        ("SeedEx total", "-", f"{seedex_totals[0]:.3f}",
         f"{seedex_totals[1]:.3f}")
    )
    rows.append(
        ("ERT + SeedEx", "-", f"{system_totals[0]:.2f}",
         f"{system_totals[1]:.2f}")
    )
    print_table(
        "Table III — ASIC area and power (28 nm)",
        ("component", "config", "area mm^2", "power W"),
        rows,
    )
    comparisons = [
        PaperComparison(
            "SeedEx area (mm^2)",
            paper.TABLE3_SEEDEX_TOTAL["area_mm2"],
            seedex_totals[0],
        ),
        PaperComparison(
            "SeedEx power (W)",
            paper.TABLE3_SEEDEX_TOTAL["power_w"],
            seedex_totals[1],
        ),
        PaperComparison(
            "system area (mm^2)",
            paper.TABLE3_TOTAL["area_mm2"],
            system_totals[0],
        ),
        PaperComparison(
            "system power (W)",
            paper.TABLE3_TOTAL["power_w"],
            system_totals[1],
        ),
    ]
    comparison_table("Table III — totals", comparisons)

    for c in comparisons:
        assert c.relative_error < 0.05, c.metric
    # The ERT seeding block dominates the system budget (paper: 36.5%
    # of area is spared for the extension engine under Sillax; SeedEx
    # shrinks that to ~3%).
    assert seedex_totals[0] / system_totals[0] < 0.05
