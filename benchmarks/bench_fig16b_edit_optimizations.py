"""Figure 16(b): edit-core area with each optimization applied.

Paper: relative to a baseline band-41 BSW core, the reduced edit
scoring datapath saves 1.82x, delta encoding (3-bit PEs) 3.11x, and
the half-width PE array 6.06x.  The functional models in
``repro.hw.delta`` / ``repro.hw.edit_machine`` prove the optimized
datapaths still decode bit-exact scores; this harness reports their
modeled area.
"""

from repro import constants as paper
from repro.analysis.report import PaperComparison, comparison_table
from repro.hw import area

LADDER = ("baseline", "reduced-scoring", "delta", "half-width")


def test_fig16b_edit_optimizations(benchmark):
    def run():
        return {opt: area.edit_core_luts(41, opt) for opt in LADDER}

    luts = benchmark.pedantic(run, rounds=1, iterations=1)

    base = luts["baseline"]
    comparisons = [
        PaperComparison(
            "reduced scoring reduction",
            paper.EDIT_REDUCED_SCORING_FACTOR,
            base / luts["reduced-scoring"],
        ),
        PaperComparison(
            "delta encoding reduction",
            paper.EDIT_DELTA_ENCODING_FACTOR,
            base / luts["delta"],
        ),
        PaperComparison(
            "half-width reduction",
            paper.EDIT_HALF_WIDTH_FACTOR,
            base / luts["half-width"],
        ),
    ]
    comparison_table("Figure 16(b) — edit-core optimizations", comparisons)
    for opt in LADDER:
        print(f"  {opt}: {luts[opt]:,.0f} LUTs")

    values = [luts[o] for o in LADDER]
    assert values == sorted(values, reverse=True)
    for c in comparisons:
        assert c.relative_error < 0.01
