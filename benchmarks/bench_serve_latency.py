"""Served-alignment throughput and latency percentiles.

Not a paper figure — this tracks what the resident server
(:mod:`repro.serve`) costs over direct batch alignment: requests
arrive one per socket frame, pass admission control, linger in a
micro-batch window, and return one per frame.  The suite drives an
in-process :class:`AlignmentServer` over loopback TCP with concurrent
pipelined clients, the exact shape `repro client` produces.

Gated metric: ``serve.requests_per_s`` (end-to-end served
throughput, higher is better, same rolling-median rules as every
``*_per_s``).  Trend-only: ``serve.latency.p50_ms`` /
``serve.latency.p99_ms`` — wall-clock percentiles are recorded for
inspection but too noisy to gate.
"""

from __future__ import annotations

import numpy as np

from repro.aligner.engines import BatchedEngine
from repro.aligner.pipeline import Aligner
from repro.genome.sequence import decode
from repro.genome.synth import PLATINUM_LIKE, ReadSimulator, synthesize_reference
from repro.serve.client import run_load
from repro.serve.server import AlignmentServer, ServeConfig

CORPUS_SEED = 20200613
CONNECTIONS = 3
"""Concurrent pipelined client connections driving the server."""


def tier1_bench(quick: bool = False) -> dict[str, float]:
    """``repro bench`` hook: served requests/s plus latency trends."""
    rng = np.random.default_rng(CORPUS_SEED + 11)
    reference = synthesize_reference(
        40_000 if quick else 120_000, rng, repeat_fraction=0.02
    )
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=CORPUS_SEED + 12)
    reads = sim.simulate(200 if quick else 1_200)
    pairs = [(r.name, decode(r.codes)) for r in reads]
    aligner = Aligner(reference, BatchedEngine(), seeding="kmer")
    server = AlignmentServer(
        aligner,
        ServeConfig(max_batch=64, linger_ms=2.0, queue_capacity=4096),
    )
    port = server.start()
    try:
        report = run_load(
            "127.0.0.1",
            port,
            pairs,
            connections=CONNECTIONS,
            client="bench",
            timeout_s=600.0,
        )
    finally:
        server.shutdown()
    if len(report.ok) != len(pairs):
        raise RuntimeError(
            f"bench load was not fully served: {len(report.ok)} ok of "
            f"{len(pairs)} sent ({report.shed_total} shed, "
            f"{len(report.unanswered)} unanswered)"
        )
    return {
        "serve.requests_per_s": len(pairs) / report.elapsed_s,
        "serve.latency.p50_ms": report.percentile_ms(0.50),
        "serve.latency.p99_ms": report.percentile_ms(0.99),
    }


if __name__ == "__main__":
    for name, value in tier1_bench(quick=True).items():
        print(f"{name}: {value:,.2f}")
