"""Functional-model throughput: scalar vs batched lockstep kernel.

Not a paper figure — this quantifies the reproduction's own simulation
capacity (the repro gate for this paper is "functional model only; too
slow for throughput claims").  The batched kernel advances a whole
corpus one row per step, vectorizing jobs x columns; this harness
measures real extensions/second for both kernels so EXPERIMENTS.md can
state how far the functional model sits from the 43.9 M ext/s device.
"""

import pytest

from repro.align import banded
from repro.align.batchdp import extend_batch
from repro.align.scoring import BWA_MEM_SCORING

BAND = 41
_rates: dict[str, float] = {}


def test_scalar_kernel_throughput(benchmark, platinum_corpus):
    jobs = platinum_corpus[:100]

    def run():
        for job in jobs:
            banded.extend(
                job.query, job.target, BWA_MEM_SCORING, job.h0, w=BAND
            )

    benchmark(run)
    _rates["scalar"] = len(jobs) / benchmark.stats.stats.mean


def test_batched_kernel_throughput(benchmark, platinum_corpus):
    jobs = platinum_corpus[:100]
    queries = [j.query for j in jobs]
    targets = [j.target for j in jobs]
    h0s = [j.h0 for j in jobs]

    def run():
        extend_batch(queries, targets, h0s, BWA_MEM_SCORING, w=BAND)

    benchmark(run)
    _rates["batched"] = len(jobs) / benchmark.stats.stats.mean

    scalar = _rates.get("scalar")
    batched = _rates["batched"]
    print(
        f"\nfunctional-model throughput at w={BAND}: "
        f"scalar {scalar:,.0f} ext/s, batched {batched:,.0f} ext/s "
        f"({batched / scalar:.1f}x)"
    )
    print(
        "paper device: 43.9 M ext/s — the functional model is "
        f"~{43.9e6 / batched:,.0f}x slower, which is why throughput "
        "figures are reproduced via the calibrated timing model"
    )
    assert batched > scalar
