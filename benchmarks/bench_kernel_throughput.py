"""Functional-model throughput: scalar vs vectorized kernel backends.

Not a paper figure — this quantifies the reproduction's own simulation
capacity (the repro gate for this paper is "functional model only; too
slow for throughput claims").  Three configurations at the paper's
band sweet spot ``w=15``:

* ``scalar`` — the reference backend, one job at a time
  (:func:`repro.align.banded.extend`);
* ``scalar-batch`` — the scalar backend's row-lockstep batch kernel
  (:mod:`repro.align.batchdp`);
* ``numpy`` — the anti-diagonal wavefront backend's fused batch
  kernel (:mod:`repro.kernels.wavefront`), which vectorizes jobs x
  diagonal cells;
* ``striped`` — the inter-sequence striped backend
  (:mod:`repro.kernels.striped`), which shape-buckets the batch and
  sweeps whole buckets in lockstep.  Its advantage grows with batch
  size (the per-row dispatch overhead amortizes across jobs), so it
  gets a dedicated big-batch axis with a **>= 5x over numpy at 4096
  jobs** gate.

Measured rates land in ``bench/results/kernels.json`` (formerly
``BENCH_kernels.json`` at the repo root); the numpy backend must clear
3x the single-thread scalar reference, striped must clear 5x numpy on
the big batch, and all backends are bit-identical
(``tests/kernels/``), so the speedups are free.  The
:func:`tier1_bench` hook feeds the same measurements, sized for CI,
into the ``repro bench`` trend file.
"""

import json
import pathlib

from repro.align.scoring import BWA_MEM_SCORING
from repro.kernels import get_kernel

BAND = 15
N_JOBS = 100
BIG_BATCH = 4096
STRIPED_TARGET = 5.0
RESULT_PATH = (
    pathlib.Path(__file__).parent.parent / "bench" / "results"
    / "kernels.json"
)
_rates: dict[str, float] = {}


def tier1_bench(quick: bool = False) -> dict[str, float]:
    """``repro bench`` hook: batch ext/s per kernel backend at w=15."""
    import numpy as np

    from repro.bench.timing import best_of
    from repro.genome.synth import extension_corpus

    n = 40 if quick else N_JOBS
    rng = np.random.default_rng(20200613)
    corpus = extension_corpus(
        n, rng, query_length=101, reference_length=300_000
    )
    queries = [j.query for j in corpus]
    targets = [j.target for j in corpus]
    h0s = [j.h0 for j in corpus]
    out = {}
    for name in ("scalar", "numpy"):
        kernel = get_kernel(name)
        elapsed = best_of(
            lambda: kernel.extend_batch(
                queries, targets, h0s, BWA_MEM_SCORING, w=BAND
            ),
            repeats=2 if quick else 3,
        )
        out[f"kernel.{name}.ext_per_s"] = n / elapsed
    # The striped backend's axis is batch size, not per-job cost: its
    # per-row dispatch amortizes across the batch, so it is measured
    # on the big ragged batch where the bucketing actually engages.
    nb = 1024 if quick else BIG_BATCH
    big = extension_corpus(
        nb, rng, query_length=101, vary_query_length=True
    )
    bq = [j.query for j in big]
    bt = [j.target for j in big]
    bh = [j.h0 for j in big]
    for name in ("numpy", "striped"):
        kernel = get_kernel(name)
        elapsed = best_of(
            lambda: kernel.extend_batch(
                bq, bt, bh, BWA_MEM_SCORING, w=BAND
            ),
            repeats=2 if quick else 3,
        )
        out[f"kernel.{name}.big_batch.ext_per_s"] = nb / elapsed
    return out


def _jobs(platinum_corpus):
    jobs = platinum_corpus[:N_JOBS]
    return (
        [j.query for j in jobs],
        [j.target for j in jobs],
        [j.h0 for j in jobs],
    )


def test_scalar_kernel_throughput(benchmark, platinum_corpus):
    kernel = get_kernel("scalar")
    queries, targets, h0s = _jobs(platinum_corpus)

    def run():
        for query, target, h0 in zip(queries, targets, h0s):
            kernel.extend(query, target, BWA_MEM_SCORING, h0, w=BAND)

    benchmark(run)
    _rates["scalar"] = N_JOBS / benchmark.stats.stats.mean


def test_scalar_batch_throughput(benchmark, platinum_corpus):
    kernel = get_kernel("scalar")
    queries, targets, h0s = _jobs(platinum_corpus)

    def run():
        kernel.extend_batch(
            queries, targets, h0s, BWA_MEM_SCORING, w=BAND
        )

    benchmark(run)
    _rates["scalar-batch"] = N_JOBS / benchmark.stats.stats.mean


def test_numpy_kernel_throughput(benchmark, platinum_corpus):
    kernel = get_kernel("numpy")
    queries, targets, h0s = _jobs(platinum_corpus)

    def run():
        kernel.extend_batch(
            queries, targets, h0s, BWA_MEM_SCORING, w=BAND
        )

    benchmark(run)
    _rates["numpy"] = N_JOBS / benchmark.stats.stats.mean

    scalar = _rates["scalar"]
    numpy_rate = _rates["numpy"]
    speedup = numpy_rate / scalar
    print(
        f"\nfunctional-model throughput at w={BAND}: "
        + ", ".join(
            f"{name} {rate:,.0f} ext/s" for name, rate in _rates.items()
        )
        + f" ({speedup:.1f}x numpy vs scalar)"
    )
    print(
        "paper device: 43.9 M ext/s — the functional model is "
        f"~{43.9e6 / numpy_rate:,.0f}x slower, which is why throughput "
        "figures are reproduced via the calibrated timing model"
    )
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(
        json.dumps(
            {
                "schema": 1,
                "band": BAND,
                "jobs": N_JOBS,
                "ext_per_s": {
                    name: rate for name, rate in sorted(_rates.items())
                },
                "numpy_speedup_vs_scalar": speedup,
                "target": ">= 3x single-thread scalar at w=15",
            },
            indent=2,
        )
        + "\n"
    )
    assert speedup >= 3.0


def test_striped_kernel_throughput(benchmark, platinum_corpus):
    """Small-batch axis: striped must at least stay in the numpy race.

    100 jobs is below the striped backend's occupancy floor, so this
    axis only pins that small batches are not pathological; the 5x
    gate lives on the big-batch axis below.
    """
    kernel = get_kernel("striped")
    queries, targets, h0s = _jobs(platinum_corpus)

    def run():
        kernel.extend_batch(
            queries, targets, h0s, BWA_MEM_SCORING, w=BAND
        )

    benchmark(run)
    _rates["striped"] = N_JOBS / benchmark.stats.stats.mean


def test_striped_big_batch_speedup(benchmark):
    """The tentpole gate: striped >= 5x numpy at a 4096-job batch.

    A ragged corpus (varied query lengths) so the shape-bucketing and
    padding machinery is on the measured path, not bypassed.
    """
    import numpy as np

    from repro.bench.timing import best_of
    from repro.genome.synth import extension_corpus

    rng = np.random.default_rng(20200613)
    corpus = extension_corpus(
        BIG_BATCH, rng, query_length=101, vary_query_length=True
    )
    queries = [j.query for j in corpus]
    targets = [j.target for j in corpus]
    h0s = [j.h0 for j in corpus]

    striped = get_kernel("striped")
    benchmark(
        lambda: striped.extend_batch(
            queries, targets, h0s, BWA_MEM_SCORING, w=BAND
        )
    )
    # Best-vs-best: ``best_of`` below reports numpy's fastest run, so
    # compare against striped's fastest too — means are hostage to
    # whatever else the CI host was doing during the slowest round.
    striped_rate = BIG_BATCH / benchmark.stats.stats.min

    numpy_kernel = get_kernel("numpy")
    numpy_elapsed = best_of(
        lambda: numpy_kernel.extend_batch(
            queries, targets, h0s, BWA_MEM_SCORING, w=BAND
        ),
        repeats=3,
    )
    numpy_rate = BIG_BATCH / numpy_elapsed
    speedup = striped_rate / numpy_rate
    print(
        f"\nbig-batch ({BIG_BATCH} jobs, w={BAND}): "
        f"striped {striped_rate:,.0f} ext/s vs "
        f"numpy {numpy_rate:,.0f} ext/s ({speedup:.1f}x)"
    )

    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    try:
        record = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        record = {"schema": 1, "band": BAND}
    record.setdefault("ext_per_s", {}).update(
        {name: rate for name, rate in sorted(_rates.items())}
    )
    record["big_batch"] = {
        "jobs": BIG_BATCH,
        "ext_per_s": {"numpy": numpy_rate, "striped": striped_rate},
        "striped_speedup_vs_numpy": speedup,
        "target": f">= {STRIPED_TARGET}x numpy at {BIG_BATCH} jobs",
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    assert speedup >= STRIPED_TARGET
