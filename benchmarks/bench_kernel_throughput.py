"""Functional-model throughput: scalar vs vectorized kernel backends.

Not a paper figure — this quantifies the reproduction's own simulation
capacity (the repro gate for this paper is "functional model only; too
slow for throughput claims").  Three configurations at the paper's
band sweet spot ``w=15``:

* ``scalar`` — the reference backend, one job at a time
  (:func:`repro.align.banded.extend`);
* ``scalar-batch`` — the scalar backend's row-lockstep batch kernel
  (:mod:`repro.align.batchdp`);
* ``numpy`` — the anti-diagonal wavefront backend's fused batch
  kernel (:mod:`repro.kernels.wavefront`), which vectorizes jobs x
  diagonal cells.

Measured rates land in ``bench/results/kernels.json`` (formerly
``BENCH_kernels.json`` at the repo root); the numpy backend must clear
3x the single-thread scalar reference, and all backends are
bit-identical (``tests/kernels/``), so the speedup is free.  The
:func:`tier1_bench` hook feeds the same measurement, sized for CI,
into the ``repro bench`` trend file.
"""

import json
import pathlib

from repro.align.scoring import BWA_MEM_SCORING
from repro.kernels import get_kernel

BAND = 15
N_JOBS = 100
RESULT_PATH = (
    pathlib.Path(__file__).parent.parent / "bench" / "results"
    / "kernels.json"
)
_rates: dict[str, float] = {}


def tier1_bench(quick: bool = False) -> dict[str, float]:
    """``repro bench`` hook: batch ext/s per kernel backend at w=15."""
    import numpy as np

    from repro.bench.timing import best_of
    from repro.genome.synth import extension_corpus

    n = 40 if quick else N_JOBS
    rng = np.random.default_rng(20200613)
    corpus = extension_corpus(
        n, rng, query_length=101, reference_length=300_000
    )
    queries = [j.query for j in corpus]
    targets = [j.target for j in corpus]
    h0s = [j.h0 for j in corpus]
    out = {}
    for name in ("scalar", "numpy"):
        kernel = get_kernel(name)
        elapsed = best_of(
            lambda: kernel.extend_batch(
                queries, targets, h0s, BWA_MEM_SCORING, w=BAND
            ),
            repeats=2 if quick else 3,
        )
        out[f"kernel.{name}.ext_per_s"] = n / elapsed
    return out


def _jobs(platinum_corpus):
    jobs = platinum_corpus[:N_JOBS]
    return (
        [j.query for j in jobs],
        [j.target for j in jobs],
        [j.h0 for j in jobs],
    )


def test_scalar_kernel_throughput(benchmark, platinum_corpus):
    kernel = get_kernel("scalar")
    queries, targets, h0s = _jobs(platinum_corpus)

    def run():
        for query, target, h0 in zip(queries, targets, h0s):
            kernel.extend(query, target, BWA_MEM_SCORING, h0, w=BAND)

    benchmark(run)
    _rates["scalar"] = N_JOBS / benchmark.stats.stats.mean


def test_scalar_batch_throughput(benchmark, platinum_corpus):
    kernel = get_kernel("scalar")
    queries, targets, h0s = _jobs(platinum_corpus)

    def run():
        kernel.extend_batch(
            queries, targets, h0s, BWA_MEM_SCORING, w=BAND
        )

    benchmark(run)
    _rates["scalar-batch"] = N_JOBS / benchmark.stats.stats.mean


def test_numpy_kernel_throughput(benchmark, platinum_corpus):
    kernel = get_kernel("numpy")
    queries, targets, h0s = _jobs(platinum_corpus)

    def run():
        kernel.extend_batch(
            queries, targets, h0s, BWA_MEM_SCORING, w=BAND
        )

    benchmark(run)
    _rates["numpy"] = N_JOBS / benchmark.stats.stats.mean

    scalar = _rates["scalar"]
    numpy_rate = _rates["numpy"]
    speedup = numpy_rate / scalar
    print(
        f"\nfunctional-model throughput at w={BAND}: "
        + ", ".join(
            f"{name} {rate:,.0f} ext/s" for name, rate in _rates.items()
        )
        + f" ({speedup:.1f}x numpy vs scalar)"
    )
    print(
        "paper device: 43.9 M ext/s — the functional model is "
        f"~{43.9e6 / numpy_rate:,.0f}x slower, which is why throughput "
        "figures are reproduced via the calibrated timing model"
    )
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(
        json.dumps(
            {
                "schema": 1,
                "band": BAND,
                "jobs": N_JOBS,
                "ext_per_s": {
                    name: rate for name, rate in sorted(_rates.items())
                },
                "numpy_speedup_vs_scalar": speedup,
                "target": ">= 3x single-thread scalar at w=15",
            },
            indent=2,
        )
        + "\n"
    )
    assert speedup >= 3.0
