"""Table II: seeding + SeedEx FPGA resource utilization.

Paper: in the combined image, SeedEx totals 12.99% of VU9P LUTs (the
3 SeedEx cores alone 12.47%), seeding takes 21.04%, the AWS shell
19.74%, and successful place-and-route limits the design to 50-60%
utilization overall.
"""

from repro import constants as paper
from repro.analysis.report import PaperComparison, comparison_table
from repro.hw import area


def test_table2_fpga_utilization(benchmark):
    def run():
        return {
            res: area.table2_model(resource=res)
            for res in ("LUT", "BRAM", "URAM")
        }

    models = benchmark.pedantic(run, rounds=1, iterations=1)

    published = paper.TABLE2_UTILIZATION
    comparisons = []
    for res, model in models.items():
        for name, value in model.items():
            comparisons.append(
                PaperComparison(
                    f"{name} {res}", published[name][res], value
                )
            )
    comparison_table(
        "Table II — SeedEx resource utilization (%)", comparisons
    )

    fixed = (
        published["Seeding"]["LUT"] + published["AWS Interface"]["LUT"]
    )
    total = fixed + models["LUT"]["SeedEx: Total"]
    print(f"\ntotal LUT utilization with seeding + shell: {total:.1f}% "
          f"(paper: {published['Total']['LUT']}%, P&R limit 50-60%)")

    for c in comparisons:
        if c.paper == 0:
            assert c.measured == 0, c.metric
        else:
            assert c.relative_error < 0.05, c.metric
    assert 50 <= total <= 60
