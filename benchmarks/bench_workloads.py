"""Workload throughput: overlap detection and batched long-read fills.

Not a paper figure — this tracks what the shared kernel substrate buys
the two non-short-read workloads (Section VII-D's argument that one
speculate-and-test scheme serves every alignment shape):

* **overlap** — the two-stage all-vs-all driver
  (:mod:`repro.apps.overlap`) on a tiling fragment corpus: k-mer
  voting plus banded verification waves, measured end to end;
* **long-read fill** — the inter-seed gap-fill stage, scalar
  (:class:`repro.core.globalcheck.GlobalSeedEx`, one gap at a time)
  versus the lockstep escalation ladder
  (:func:`repro.align.globalbatch.fill_gaps_guaranteed`), on the same
  gap corpus.  The batched schedule must clear **>= 3x scalar** — the
  reason ``repro longread --engine batched`` is the default.

The fill stage is measured in isolation because seeding and chaining
dominate the end-to-end long-read wall clock in the functional model
and are schedule-independent; byte-identity of the full pipelines is
pinned by ``tests/kernels/test_differential_e2e.py`` and the golden
fixtures, so this harness measures speed only.
"""

import numpy as np
import pytest

from repro.align.globalbatch import fill_gaps_guaranteed
from repro.align.scoring import BWA_MEM_SCORING
from repro.apps.overlap import OverlapParams, find_overlaps
from repro.core.globalcheck import GlobalSeedEx
from repro.genome.synth import fragment_corpus, synthesize_reference

CORPUS_SEED = 20200613
FILL_BAND = 9
"""Narrow enough that the escalation ladder actually engages."""
FILL_JOBS = 400
FILL_TARGET = 3.0
_rates: dict[str, float] = {}


def _gap_corpus(
    n: int, rng: np.random.Generator
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Inter-seed gap pairs: 30-140 bp, ~3% substitutions, occasional
    1-2 bp indels — the geometry chaining hands the fill stage."""
    queries: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    for _ in range(n):
        tlen = int(rng.integers(30, 140))
        target = rng.integers(0, 4, size=tlen).astype(np.uint8)
        query = target.copy()
        mask = rng.random(tlen) < 0.03
        query[mask] = (
            query[mask] + rng.integers(1, 4, size=int(mask.sum()))
        ) % 4
        if rng.random() < 0.3 and tlen > 10:
            pos = int(rng.integers(1, tlen - 5))
            span = int(rng.integers(1, 3))
            if rng.random() < 0.5:
                query = np.delete(query, slice(pos, pos + span))
            else:
                ins = rng.integers(0, 4, size=span).astype(np.uint8)
                query = np.insert(query, pos, ins)
        queries.append(query.astype(np.uint8))
        targets.append(target)
    return queries, targets


def _overlap_reads(
    n_frags: int, rng: np.random.Generator
) -> list[tuple[str, np.ndarray]]:
    reference = synthesize_reference(
        220 * (n_frags - 1) + 300 + 10, rng
    )
    frags = fragment_corpus(
        reference, rng, length=300, step=220, substitution_rate=0.01
    )
    return [(f.name, f.codes) for f in frags]


def tier1_bench(quick: bool = False) -> dict[str, float]:
    """``repro bench`` hook: overlap pairs/s and batched fill jobs/s."""
    from repro.bench.timing import best_of

    rng = np.random.default_rng(CORPUS_SEED + 8)
    reads = _overlap_reads(20 if quick else 60, rng)
    params = OverlapParams(min_overlap=50)
    overlaps = find_overlaps(reads, params)
    elapsed = best_of(
        lambda: find_overlaps(reads, params),
        repeats=1 if quick else 2,
    )
    out = {
        "workloads.overlap.pairs_per_s": max(len(overlaps), 1) / elapsed
    }

    queries, targets = _gap_corpus(
        100 if quick else FILL_JOBS, np.random.default_rng(CORPUS_SEED + 9)
    )
    elapsed = best_of(
        lambda: fill_gaps_guaranteed(
            queries, targets, BWA_MEM_SCORING, band=FILL_BAND
        ),
        repeats=2 if quick else 3,
    )
    out["workloads.longread.fill.jobs_per_s"] = len(queries) / elapsed
    return out


@pytest.fixture(scope="module")
def overlap_corpus():
    """A 60-fragment tiling corpus (59 true dovetail overlaps)."""
    return _overlap_reads(60, np.random.default_rng(CORPUS_SEED + 8))


@pytest.fixture(scope="module")
def gap_corpus():
    return _gap_corpus(FILL_JOBS, np.random.default_rng(CORPUS_SEED + 9))


def test_overlap_throughput(benchmark, overlap_corpus):
    """End-to-end all-vs-all rate: index + vote + verify waves."""
    params = OverlapParams(min_overlap=50)
    overlaps = find_overlaps(overlap_corpus, params)
    benchmark(lambda: find_overlaps(overlap_corpus, params))
    rate = len(overlaps) / benchmark.stats.stats.min
    print(
        f"\noverlap: {rate:,.0f} pairs/s "
        f"({len(overlaps)} overlaps from {len(overlap_corpus)} reads)"
    )
    assert len(overlaps) >= len(overlap_corpus) - 1


def test_scalar_fill_throughput(benchmark, gap_corpus):
    """Reference rate: one ``GlobalSeedEx`` call per gap."""
    queries, targets = gap_corpus
    filler = GlobalSeedEx(band=FILL_BAND, scoring=BWA_MEM_SCORING)

    def run():
        return [
            filler.align(q, t).result.score
            for q, t in zip(queries, targets)
        ]

    benchmark(run)
    _rates["scalar"] = FILL_JOBS / benchmark.stats.stats.min


def test_batched_fill_speedup(benchmark, gap_corpus):
    """The workload gate: lockstep escalation ladder >= 3x scalar.

    Both schedules return dense-optimal scores (the sanity assert
    repeats the conformance suite's core claim), so the speedup is
    free — it is why ``--engine batched`` is the long-read default.
    """
    queries, targets = gap_corpus
    benchmark(
        lambda: fill_gaps_guaranteed(
            queries, targets, BWA_MEM_SCORING, band=FILL_BAND
        )
    )
    _rates["batched"] = FILL_JOBS / benchmark.stats.stats.min

    outs = fill_gaps_guaranteed(
        queries, targets, BWA_MEM_SCORING, band=FILL_BAND
    )
    filler = GlobalSeedEx(band=FILL_BAND, scoring=BWA_MEM_SCORING)
    scalar_scores = [
        filler.align(q, t).result.score
        for q, t in zip(queries, targets)
    ]
    assert [o.result.score for o in outs] == scalar_scores

    scalar = _rates.get("scalar")
    speedup = _rates["batched"] / scalar if scalar else float("nan")
    print(
        f"\nlong-read fill ({FILL_JOBS} gaps, band {FILL_BAND}): "
        f"batched {_rates['batched']:,.0f} jobs/s vs "
        f"scalar {scalar or 0:,.0f} jobs/s ({speedup:.1f}x), "
        f"{sum(1 for o in outs if o.escalations)} escalated"
    )
    if scalar:
        assert speedup >= FILL_TARGET
