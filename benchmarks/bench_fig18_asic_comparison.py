"""Figure 18: ASIC SeedEx vs CPU, GPU, GenAx, and ERT+Sillax.

Paper: (a) SeedEx's area-normalized extension-kernel throughput beats
Sillax 20x (linear vs O(K^2) PE scaling) and leaves CPU/GPU orders of
magnitude behind; (b) ERT+SeedEx improves application throughput
1.56x over ERT+Sillax and 14.6x over GenAx; (c) energy efficiency
improves 2.45x and 2.11x respectively.
"""

from repro import constants as paper
from repro.analysis.report import PaperComparison, comparison_table, print_table
from repro.hw import timing


def test_fig18_asic_comparison(benchmark):
    bars = benchmark.pedantic(
        timing.figure18_comparators, rounds=1, iterations=1
    )

    rows = [
        (
            c.name,
            f"{c.kernel_kexts_per_s_per_mm2:,.1f}"
            if c.kernel_kexts_per_s_per_mm2
            else "-",
            f"{c.app_kreads_per_s_per_mm2:,.1f}"
            if c.app_kreads_per_s_per_mm2
            else "-",
            f"{c.energy_kreads_per_j:,.1f}"
            if c.energy_kreads_per_j
            else "-",
        )
        for c in bars
    ]
    print_table(
        "Figure 18 — ASIC comparison",
        (
            "system",
            "kernel Kext/s/mm^2",
            "app Kreads/s/mm^2",
            "energy Kreads/s/J",
        ),
        rows,
    )

    by_name = {c.name: c for c in bars}
    seedex = by_name["ERT+SeedEx"]
    sillax = by_name["ERT+Sillax"]
    genax = by_name["GenAx"]
    comparisons = [
        PaperComparison(
            "kernel vs Sillax",
            paper.SEEDEX_VS_SILLAX_KERNEL_SPEEDUP,
            seedex.kernel_kexts_per_s_per_mm2
            / sillax.kernel_kexts_per_s_per_mm2,
        ),
        PaperComparison(
            "app vs ERT+Sillax",
            paper.ERT_SEEDEX_VS_ERT_SILLAX_PERF,
            seedex.app_kreads_per_s_per_mm2
            / sillax.app_kreads_per_s_per_mm2,
        ),
        PaperComparison(
            "app vs GenAx",
            paper.ERT_SEEDEX_VS_GENAX_PERF,
            seedex.app_kreads_per_s_per_mm2
            / genax.app_kreads_per_s_per_mm2,
        ),
        PaperComparison(
            "energy vs ERT+Sillax",
            paper.ERT_SEEDEX_VS_ERT_SILLAX_ENERGY,
            seedex.energy_kreads_per_j / sillax.energy_kreads_per_j,
        ),
        PaperComparison(
            "energy vs GenAx",
            paper.ERT_SEEDEX_VS_GENAX_ENERGY,
            seedex.energy_kreads_per_j / genax.energy_kreads_per_j,
        ),
    ]
    comparison_table("Figure 18 — published ratios", comparisons)

    # Mechanism behind the area gap: automaton states scale O(K^2),
    # banded PEs O(K) — quantified with the working Levenshtein
    # automaton of repro.align.automaton.
    from repro import constants as paper_const
    from repro.align.automaton import seedex_pe_count, silla_state_count

    k = paper_const.SILLAX_K
    print_table(
        "Figure 18 mechanism — state/PE scaling with edit budget K",
        ("K", "Silla states (O(K^2))", "banded PEs (O(K))", "ratio"),
        [
            (
                kk,
                silla_state_count(kk),
                seedex_pe_count(kk),
                f"{silla_state_count(kk) / seedex_pe_count(kk):.1f}x",
            )
            for kk in (4, 8, 16, k)
        ],
    )

    for c in comparisons:
        assert c.relative_error < 0.01, c.metric
    # CPU/GPU sit orders of magnitude below the ASICs (log-scale chart).
    assert (
        seedex.kernel_kexts_per_s_per_mm2
        > 1000 * by_name["CPU (SeqAn)"].kernel_kexts_per_s_per_mm2
    )
    assert silla_state_count(k) / seedex_pe_count(k) > 15
