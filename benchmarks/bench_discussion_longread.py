"""Section VII-D (Discussion): SeedEx for long-read gap fills.

Paper: long-read aligners take the "seed-and-chain-then-fill"
strategy, the inter-seed global-alignment step takes 16-33% of
minimap2's time, and "SeedEx can be directly applied to this kernel,
performing optimal global alignment with a small area".

This harness quantifies that claim on our pipeline: the fraction of
fills whose optimality a narrow band can *prove* (no full-band run
needed), and the DP-cell savings relative to always-full-band fills.
"""

import numpy as np

from repro.aligner.longread import LongReadAligner
from repro.analysis.report import print_table
from repro.genome.synth import (
    LongReadProfile,
    simulate_long_reads,
    synthesize_reference,
)

BANDS = (4, 8, 16, 32)


def test_discussion_longread_fill(benchmark):
    rng = np.random.default_rng(404)
    reference = synthesize_reference(120_000, rng)
    reads = simulate_long_reads(
        reference, 12, rng, LongReadProfile(sv_rate=0.25)
    )

    def run():
        rows = []
        for band in BANDS:
            aligner = LongReadAligner(reference, fill_band=band)
            full_cells = 0
            for read in reads:
                result = aligner.align(read.codes, read.name)
                assert result is not None
                for fill in result.fills:
                    full_cells += (fill.query_gap + 1) * (
                        fill.target_gap + 1
                    )
            stats = aligner.stats
            rows.append(
                (
                    band,
                    stats.fills,
                    stats.fill_pass_rate,
                    stats.fill_cells_narrow / max(1, full_cells),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "Section VII-D — long-read fill with SeedEx guarantees",
        ("fill band", "fills", "proved optimal", "narrow/full cells"),
        [
            (band, fills, f"{rate:.1%}", f"{cells:.2f}")
            for band, fills, rate, cells in rows
        ],
    )
    print(
        "\npaper: the fill kernel takes 16-33% of minimap2 time; a "
        "narrow guaranteed band shrinks its area/computation while "
        "keeping fills optimal"
    )

    by_band = {band: rate for band, _, rate, _ in rows}
    cells = {band: c for band, _, _, c in rows}
    # Pass rate grows with the band; a moderate band proves nearly all
    # fills while computing a fraction of the full-band cells.
    assert by_band[32] >= by_band[8] >= by_band[4] - 1e-9
    assert by_band[16] > 0.9
    assert cells[16] < 0.8
