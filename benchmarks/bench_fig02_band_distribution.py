"""Figure 2: band distribution, estimated vs used.

Paper: BWA-MEM *estimates* w > 40 for more than 38% of extensions,
yet more than 98% actually need w <= 10 — the gap that motivates a
narrow-band accelerator with optimality checks.
"""

from repro.analysis.band_analysis import band_distribution
from repro.analysis.report import ascii_bars, print_table


def test_fig02_band_distribution(benchmark, seedlike_corpus):
    dist = benchmark.pedantic(
        band_distribution, args=(seedlike_corpus,), rounds=1, iterations=1
    )

    rows = [
        (label, f"{est:.1%}", f"{used:.1%}")
        for label, est, used in zip(
            dist.labels, dist.estimated, dist.used
        )
    ]
    print_table(
        "Figure 2 — band distribution (estimated vs used)",
        ("band", "estimated", "used"),
        rows,
    )
    print("\nestimated:")
    print(ascii_bars(dist.labels, [100 * v for v in dist.estimated],
                     unit="%"))
    print("used:")
    print(ascii_bars(dist.labels, [100 * v for v in dist.used],
                     unit="%"))
    small = dist.fraction_used_at_most(10)
    print(f"\nfraction of extensions needing w <= 10: {small:.1%} "
          "(paper: 98%)")
    print(f"fraction estimated to need w > 40: {dist.estimated[-1]:.1%} "
          "(paper: >38%)")

    # Shape assertions: the motivating gap must be present.
    assert small >= 0.90
    assert dist.estimated[-1] >= 0.38
    assert dist.used[-1] <= 0.10
    # The estimate spreads across buckets (query lengths vary), while
    # actual demand concentrates at the bottom.
    assert dist.estimated[-1] < 0.85
    assert dist.used[0] > 5 * dist.estimated[0]
