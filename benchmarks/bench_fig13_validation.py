"""Figure 13: SeedEx validation — SAM differences vs band size.

Paper: a plain banded kernel produces millions of differing SAM
entries at small bands, decaying to zero only at the full band; the
SeedEx algorithm produces *zero* differences at every band setting.
This harness runs the full aligner three ways over the same reads and
counts differing SAM records.
"""

from repro.aligner.engines import (
    FullBandEngine,
    PlainBandedEngine,
    SeedExEngine,
)
from repro.aligner.pipeline import Aligner
from repro.analysis.report import print_table
from repro.genome.sam import diff_records

BANDS = (3, 5, 10, 20, 41)


def test_fig13_validation(benchmark, aligner_workload):
    reference, reads = aligner_workload

    def run():
        baseline = Aligner(
            reference, FullBandEngine(), seeding="kmer"
        ).align(reads)
        banded_diffs = {}
        seedex_diffs = {}
        for band in BANDS:
            banded_out = Aligner(
                reference, PlainBandedEngine(band), seeding="kmer"
            ).align(reads)
            banded_diffs[band] = diff_records(baseline, banded_out)
            seedex_out = Aligner(
                reference, SeedExEngine(band=band), seeding="kmer"
            ).align(reads)
            seedex_diffs[band] = diff_records(baseline, seedex_out)
        return banded_diffs, seedex_diffs

    banded_diffs, seedex_diffs = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    n = len(reads)
    rows = [
        (w, f"{banded_diffs[w]}/{n}", f"{seedex_diffs[w]}/{n}")
        for w in BANDS
    ]
    print_table(
        "Figure 13 — differing SAM entries vs band",
        ("band", "plain banded (BSW)", "SeedEx"),
        rows,
    )
    print("\npaper: BSW diffs decay from >5e6 (of 787M reads) to 0 at "
          "full band; SeedEx is 0 at every band")

    # The headline result: SeedEx is exact at EVERY band.
    assert all(v == 0 for v in seedex_diffs.values())
    # The naive banded kernel must diverge at small bands and decay.
    assert banded_diffs[BANDS[0]] > 0
    assert banded_diffs[41] <= banded_diffs[3]
