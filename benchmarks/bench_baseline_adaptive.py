"""Baseline comparison: adaptive banding vs SeedEx.

The paper's related work (Section II/VIII) cites adaptive banding as
the established way to shrink the DP without a wide static band — at
the cost of any optimality guarantee.  This harness quantifies that
trade on the structural corpus: the adaptive band's silent-error rate
at each width, against SeedEx which is exact at *every* width by
construction (failures become reruns, not wrong answers).
"""

from repro.align import banded
from repro.align.adaptive import adaptive_extend
from repro.align.scoring import BWA_MEM_SCORING
from repro.analysis.report import print_table
from repro.core.extender import SeedExtender

BANDS = (5, 10, 20, 41)


def test_baseline_adaptive_banding(benchmark, structural_jobs):
    def run():
        rows = []
        for band in BANDS:
            adaptive_errors = 0
            adaptive_cells = 0
            seedex = SeedExtender(band=band)
            seedex_errors = 0
            for job in structural_jobs:
                full = banded.extend(
                    job.query, job.target, BWA_MEM_SCORING, job.h0
                )
                ada = adaptive_extend(
                    job.query, job.target, BWA_MEM_SCORING, job.h0, band
                )
                adaptive_cells += ada.cells_computed
                if ada.gscore != full.gscore:
                    adaptive_errors += 1
                out = seedex.extend(job.query, job.target, job.h0)
                if out.result.scores() != full.scores():
                    seedex_errors += 1
            rows.append(
                (
                    band,
                    adaptive_errors,
                    seedex_errors,
                    seedex.stats.reruns,
                    adaptive_cells / len(structural_jobs),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    n = None
    print_table(
        "Baseline — adaptive banding vs SeedEx (structural corpus)",
        (
            "band",
            "adaptive silent errors",
            "seedex errors",
            "seedex reruns",
            "adaptive cells/ext",
        ),
        [
            (b, ae, se, rr, f"{cells:,.0f}")
            for b, ae, se, rr, cells in rows
        ],
    )
    print(
        "\nadaptive banding trades correctness silently; SeedEx "
        "converts every uncertain case into an explicit rerun"
    )

    for band, ada_err, sx_err, reruns, _cells in rows:
        assert sx_err == 0  # the headline guarantee
    # Adaptive banding must show real silent errors at narrow widths.
    assert rows[0][1] > 0
    # And its error rate shrinks with width (or stays equal).
    errors = [r[1] for r in rows]
    assert errors[-1] <= errors[0]
