"""Resilience-layer overhead with faults disabled (<1% target).

Not a paper figure — this is the no-op cost contract of the
fault-injection PR: with ``fault_rate=0`` the `ResilientDispatcher`
adds only a counter increment and a histogram observation around the
bare engine call, so wrapping the production path in the resilience
layer must be free for fault-free runs.  The measured overhead lands
in `benchmarks/metrics_last_run.json` via the session obs dump
(`resilience.overhead.fraction`).
"""

import pytest

from repro import obs
from repro.aligner.engines import SeedExEngine, make_resilient
from repro.obs import names

BAND = 41
N_JOBS = 150
_rates: dict[str, float] = {}


def tier1_bench(quick: bool = False) -> dict[str, float]:
    """``repro bench`` hook: bare vs resilience-wrapped ext/s."""
    import numpy as np

    from repro.bench.timing import best_of
    from repro.genome.synth import extension_corpus

    n = 60 if quick else N_JOBS
    rng = np.random.default_rng(20200613)
    jobs = extension_corpus(
        n, rng, query_length=101, reference_length=300_000
    )
    bare_engine = SeedExEngine(band=BAND)
    wrapped_engine = make_resilient(
        SeedExEngine(band=BAND), fault_rate=0.0
    )
    repeats = 2 if quick else 3
    bare = best_of(lambda: _drive(bare_engine, jobs), repeats=repeats)
    wrapped = best_of(
        lambda: _drive(wrapped_engine, jobs), repeats=repeats
    )
    return {
        "resilience.bare.ext_per_s": n / bare,
        "resilience.wrapped.ext_per_s": n / wrapped,
        "resilience.overhead.fraction": wrapped / bare - 1.0,
    }


def _drive(engine, jobs):
    for job in jobs:
        engine.extend(job.query, job.target, job.h0)


def test_bare_engine(benchmark, platinum_corpus):
    jobs = platinum_corpus[:N_JOBS]
    engine = SeedExEngine(band=BAND)
    benchmark(lambda: _drive(engine, jobs))
    _rates["bare"] = len(jobs) / benchmark.stats.stats.mean


def test_resilient_dispatcher_faults_disabled(benchmark, platinum_corpus):
    jobs = platinum_corpus[:N_JOBS]
    engine = make_resilient(SeedExEngine(band=BAND), fault_rate=0.0)
    benchmark(lambda: _drive(engine, jobs))
    _rates["wrapped"] = len(jobs) / benchmark.stats.stats.mean

    bare, wrapped = _rates["bare"], _rates["wrapped"]
    overhead = bare / wrapped - 1.0
    obs.get_registry().gauge(
        names.RESILIENCE_OVERHEAD,
        "dispatcher overhead with faults disabled",
    ).set(overhead)
    print(
        f"\nresilience overhead at w={BAND}: bare {bare:,.0f} ext/s, "
        f"wrapped {wrapped:,.0f} ext/s -> {overhead:+.2%} "
        "(target: < 1%)"
    )
    # Generous CI bound (timer noise dwarfs the real cost on shared
    # runners); the recorded gauge holds the measured number.
    assert overhead < 0.05
