"""Figure 16(a): full-band core vs SeedEx core resource utilization.

Paper: the SeedEx core (3 narrow BSW cores + edit machine) improves
LUT utilization 2.3x over a full-band core (3 BSW cores at w=101);
the edit-machine overhead is more than amortized by the smaller band.
"""

from repro import constants as paper
from repro.analysis.report import PaperComparison, comparison_table
from repro.hw import area


def test_fig16a_core_area(benchmark):
    def run():
        return {
            "full-band core": area.full_band_core_luts(),
            "seedex core": area.seedex_core_luts(),
            "  of which BSW": 3 * area.bsw_core_luts(paper.DEFAULT_BAND),
            "  of which edit": area.edit_core_luts(paper.DEFAULT_BAND),
        }

    luts = benchmark.pedantic(run, rounds=1, iterations=1)

    comparison_table(
        "Figure 16(a) — core LUT comparison",
        [
            PaperComparison(
                "full-band / seedex LUT ratio",
                paper.SEEDEX_CORE_LUT_IMPROVEMENT,
                luts["full-band core"] / luts["seedex core"],
            ),
        ],
    )
    for name, v in luts.items():
        print(f"  {name}: {v:,.0f} LUTs")

    ratio = luts["full-band core"] / luts["seedex core"]
    assert abs(ratio - 2.3) < 0.05
    assert luts["  of which edit"] < 0.1 * luts["seedex core"]
