"""Figure 4: band size vs accelerator hardware resources.

Paper: BSW-core area scales linearly with the band (each band step
adds one PE's worth of logic), the flip side of Figure 3's software
saturation — hardware pays full price for a conservative band.
"""

import pytest

from repro.hw import area
from repro.analysis.report import print_table

BANDS = (5, 10, 20, 41, 60, 80, 101)


def test_fig04_band_vs_area(benchmark):
    def run():
        return {w: area.band_utilization_percent(w) for w in BANDS}

    pct = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (w, f"{pct[w]:.3f}%", f"{area.bsw_core_luts(w):,.0f}")
        for w in BANDS
    ]
    print_table(
        "Figure 4 — band vs BSW-core resources",
        ("band", "VU9P LUT %", "LUTs"),
        rows,
    )

    # Linear shape: equal band steps cost equal increments.
    slope_a = (pct[41] - pct[5]) / (41 - 5)
    slope_b = (pct[101] - pct[41]) / (101 - 41)
    print(f"\nslope w5-41: {slope_a:.5f} %/band, "
          f"w41-101: {slope_b:.5f} %/band (linear)")
    assert slope_a == pytest.approx(slope_b, rel=1e-6)
    assert pct[101] > pct[5]
