"""Ablations of SeedEx design choices (DESIGN.md Section 5).

The paper fixes several design choices without isolating them; these
harnesses measure each one on the case-c-rich structural corpus:

* **E-score check attribution** — the paper never separates the
  E-score check from the edit-distance check; here each check's
  deciding role is counted.
* **Relaxed vs exact edit scoring** — the relaxed scheme's free
  insertions exist for the hardware (horizontal score propagation to
  a single augmentation unit); the ablation measures the pass-rate
  cost of that extra optimism against a sound exact-edit variant.
* **Left-seed variants** — exact per-row seeds (our sound default)
  vs the paper's constant-S1 corner seed.
* **BSW:edit core ratio** — the paper provisions 3:1 because roughly
  one extension in three visits the edit machine; the queueing model
  shows where other ratios saturate.
"""

import numpy as np

from repro import constants as paper
from repro.align import banded
from repro.align.editdp import left_entry_scores_reference
from repro.align.scoring import BWA_MEM_SCORING, edit_scoring
from repro.analysis.passing import passing_point
from repro.analysis.report import print_table
from repro.core.checker import (
    CheckConfig,
    CheckOutcome,
    OptimalityChecker,
)
from repro.core.editcheck import exact_left_seeds
from repro.core.escore import score_max_e
from repro.core.thresholds import semiglobal_thresholds
from repro.hw import timing

BAND = paper.DEFAULT_BAND


def _exact_edit_bound(job, result):
    """A sound edit-check bound under *plain* edit scoring.

    Costly insertions break the rows-nondecreasing property, so the
    last column no longer bounds ends-anywhere paths; instead every
    cell pays the all-match continuation.  Sound, but it shows why the
    hardware (and our default) prefer the relaxed scheme's single
    readout column.
    """
    seeds = exact_left_seeds(job.h0, BWA_MEM_SCORING)
    scores = left_entry_scores_reference(
        job.query, job.target, BAND, seeds, scoring=edit_scoring()
    )
    m = BWA_MEM_SCORING.match
    best = -(10**9)
    # Reference returns the last column; pair it with the all-match
    # exit assumption per row (the sound generic form).
    for r, value in enumerate(scores.last_column):
        if value > 0:
            best = max(best, int(value))
    return max(best, int(scores.best))


def test_ablation_check_attribution(benchmark, structural_jobs):
    def run():
        checker = OptimalityChecker(BWA_MEM_SCORING)
        counts: dict[CheckOutcome, int] = {}
        e_deciding = 0
        for job in structural_jobs:
            res = banded.extend(
                job.query, job.target, BWA_MEM_SCORING, job.h0, w=BAND
            )
            decision = checker.check(job.query, job.target, res)
            counts[decision.outcome] = counts.get(decision.outcome, 0) + 1
            if decision.outcome == CheckOutcome.PASS_CHECKS:
                # Would thresholding have needed the E-score check to
                # be decisive, or was the edit check the closer call?
                th = semiglobal_thresholds(
                    BWA_MEM_SCORING, res.qlen, res.tlen, BAND, res.h0
                )
                e_bound = score_max_e(res, BWA_MEM_SCORING)
                if e_bound >= decision.score_ed:
                    e_deciding += 1
        return counts, e_deciding

    counts, e_deciding = benchmark.pedantic(run, rounds=1, iterations=1)

    total = sum(counts.values())
    rows = [
        (outcome.name, n, f"{n / total:.1%}")
        for outcome, n in sorted(counts.items(), key=lambda kv: -kv[1])
    ]
    print_table(
        f"Ablation — outcome attribution at w={BAND}",
        ("outcome", "count", "share"),
        rows,
    )
    rescued = counts.get(CheckOutcome.PASS_CHECKS, 0)
    print(
        f"\nof {rescued} check-rescued extensions, the E-score bound "
        f"was the tighter (deciding) test for {e_deciding}"
    )
    assert rescued > 0


def test_ablation_edit_scoring_and_seeds(benchmark, structural_jobs):
    def run():
        base = passing_point(structural_jobs, BAND)
        paper_seed = passing_point(
            structural_jobs,
            BAND,
            config=CheckConfig(exact_left_seed=False),
        )
        no_edit = passing_point(
            structural_jobs,
            BAND,
            config=CheckConfig(use_edit_check=False),
        )

        # Exact-edit-scoring variant: rerun the edit check by hand on
        # the jobs the standard chain rescued or rejected at the edit
        # stage, and count how the stricter bound would have decided.
        checker = OptimalityChecker(BWA_MEM_SCORING)
        exact_pass = 0
        edit_stage = 0
        for job in structural_jobs:
            res = banded.extend(
                job.query, job.target, BWA_MEM_SCORING, job.h0, w=BAND
            )
            decision = checker.check(job.query, job.target, res)
            if decision.outcome in (
                CheckOutcome.PASS_CHECKS,
                CheckOutcome.FAIL_EDIT,
            ):
                edit_stage += 1
                if _exact_edit_bound(job, res) < res.gscore:
                    exact_pass += 1
        return base, paper_seed, no_edit, exact_pass, edit_stage

    base, paper_seed, no_edit, exact_pass, edit_stage = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    print_table(
        f"Ablation — check variants at w={BAND}",
        ("variant", "overall passing rate"),
        [
            ("full chain (relaxed, exact seeds)", f"{base.overall:.1%}"),
            ("paper corner-S1 seeds", f"{paper_seed.overall:.1%}"),
            ("edit check disabled", f"{no_edit.overall:.1%}"),
        ],
    )
    relaxed_pass = base.outcome_counts.get(CheckOutcome.PASS_CHECKS, 0)
    print(
        f"\nedit-stage jobs: {edit_stage}; admitted by relaxed scoring "
        f"{relaxed_pass}, by exact edit scoring {exact_pass}"
    )
    # The sound orderings: removing the edit check only loses; the
    # corner-S1 seed (in our sound half-matrix sweep) only loses.
    assert no_edit.overall <= base.overall + 1e-9
    assert paper_seed.overall <= base.overall + 1e-9
    # Exact edit scoring is tighter per-path but pays the generic
    # all-match exit bound; it must not admit more than relaxed.
    assert exact_pass <= relaxed_pass + edit_stage


def test_ablation_local_target(benchmark):
    """Beyond the paper: the local-score check target.

    Soft-clipped reads (adapter tails, chimeric ends) have a dead
    semi-global score, so the paper's workflow reruns all of them; the
    local target certifies the clip score itself.  This ablation
    quantifies the rescue on a clipped corpus, with the standard
    corpus shown for contrast (where the two targets should agree).
    """
    from repro.genome.sequence import random_sequence

    rng = np.random.default_rng(777)

    def make_clipped(n):
        jobs = []
        for _ in range(n):
            ref = random_sequence(220, rng)
            clip = int(rng.integers(20, 50))
            q = np.concatenate(
                [ref[:101 - clip], random_sequence(clip, rng)]
            ).astype(np.uint8)
            jobs.append((q, ref[:170], int(rng.integers(19, 31))))
        return jobs

    def run():
        clipped = make_clipped(150)
        results = {}
        for name, cfg in (
            ("semiglobal", CheckConfig()),
            ("local", CheckConfig(target="local")),
        ):
            checker = OptimalityChecker(BWA_MEM_SCORING, cfg)
            passed = 0
            for q, t, h0 in clipped:
                res = banded.extend(q, t, BWA_MEM_SCORING, h0, w=BAND)
                if checker.check(q, t, res).passed:
                    passed += 1
            results[name] = passed / len(clipped)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "Ablation — check target on a soft-clip corpus (w=41)",
        ("target", "passing rate"),
        [(k, f"{v:.1%}") for k, v in results.items()],
    )
    print("\nsemi-global (the paper's target) reruns nearly every "
          "clipped read; the local target certifies the clip score "
          "directly")
    assert results["semiglobal"] < 0.25
    assert results["local"] > 0.60
    assert results["local"] > results["semiglobal"] + 0.5


def test_ablation_core_ratio(benchmark, structural_jobs):
    def run():
        point = passing_point(structural_jobs, BAND)
        demand = point.edit_machine_demand
        rows = []
        for ratio in (1, 2, 3, 4, 6):
            util = timing.edit_machine_utilization(demand, ratio)
            rows.append((ratio, util))
        return demand, rows

    demand, rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "Ablation — BSW:edit core ratio (measured demand "
        f"{demand:.1%}; paper ~1/3)",
        ("BSW cores per edit machine", "edit-machine utilization"),
        [(r, f"{u:.0%}") for r, u in rows],
    )
    max_ratio = timing.max_bsw_per_edit(demand)
    print(f"\nlargest non-saturating ratio: {max_ratio}:1 "
          "(paper provisions 3:1)")

    util = dict(rows)
    assert util[1] < util[3] < util[6]
    # At the paper's measured ~1/3 demand, 3:1 sits at the knee; our
    # corpus's demand must keep 3:1 under saturation or just at it.
    assert util[3] <= 1.2
