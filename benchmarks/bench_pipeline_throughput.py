"""End-to-end pipeline throughput: scalar vs batched vs sharded.

Not a paper figure — this quantifies what the deferred-extension wave
scheduler (:mod:`repro.aligner.waves`) buys the functional model at
the pipeline level, the software analogue of the accelerator's
batch-of-thousands working set (paper Section V-B).  Three
configurations align the same Platinum-like corpus:

* **scalar** — the reference path: one ``engine.extend`` call per
  chain side, dense per-read host traceback;
* **batched** — one aligner process, reads scheduled through left /
  right / traceback waves at the paper's batch geometry (4096);
* **sharded** — the batched pipeline behind the multiprocessing
  runner.  On a single-core host this only measures the sharding
  overhead; real speedups need real cores.

The scalar pipeline is run on a fixed subset of the corpus (it is the
slow leg by design — that is the point of the comparison) and its rate
extrapolated; the cap is printed, never silent.  SAM byte-identity of
the three paths is pinned by ``tests/aligner/test_differential.py``,
so this harness measures speed only.
"""

import numpy as np
import pytest

from repro.aligner.engines import BatchedEngine, FullBandEngine
from repro.aligner.parallel import EngineSpec, align_sharded
from repro.aligner.pipeline import Aligner
from repro.genome.synth import (
    PLATINUM_LIKE,
    ReadSimulator,
    synthesize_reference,
)

CORPUS_SEED = 20200613
BATCH_SIZE = 4096
CORPUS_READS = 10_000
SCALAR_CAP = 1_000
"""Reads the scalar leg actually aligns; its reads/s extrapolates."""

_rates: dict[str, float] = {}


def tier1_bench(quick: bool = False) -> dict[str, float]:
    """``repro bench`` hook: wave-scheduled pipeline reads/s.

    A CI-sized slice of the batched leg only — the scalar and sharded
    legs stay pytest-harness territory (one is deliberately slow, the
    other needs real cores to mean anything).
    """
    from repro.bench.timing import best_of

    rng = np.random.default_rng(CORPUS_SEED + 6)
    reference = synthesize_reference(
        40_000 if quick else 200_000, rng, repeat_fraction=0.02
    )
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=CORPUS_SEED + 7)
    reads = sim.simulate(300 if quick else 2_000)
    aligner = Aligner(reference, BatchedEngine(), seeding="kmer")
    elapsed = best_of(
        lambda: aligner.align_batched(reads, batch_size=BATCH_SIZE),
        repeats=1 if quick else 2,
    )
    return {"pipeline.batched.reads_per_s": len(reads) / elapsed}


@pytest.fixture(scope="module")
def pipeline_corpus():
    """A 10k-read Platinum-like corpus over a 200 kbp reference."""
    rng = np.random.default_rng(CORPUS_SEED + 6)
    reference = synthesize_reference(200_000, rng, repeat_fraction=0.02)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=CORPUS_SEED + 7)
    return reference, sim.simulate(CORPUS_READS)


def test_scalar_pipeline_throughput(benchmark, pipeline_corpus):
    """Reference rate: per-chain extends, per-read dense traceback."""
    reference, reads = pipeline_corpus
    subset = reads[:SCALAR_CAP]
    aligner = Aligner(reference, FullBandEngine(), seeding="kmer")

    def run():
        aligner.align(subset)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _rates["scalar"] = len(subset) / benchmark.stats.stats.mean
    print(
        f"\nscalar pipeline: {_rates['scalar']:,.0f} reads/s "
        f"(measured on {len(subset):,} of {len(reads):,} reads)"
    )


def test_batched_pipeline_throughput(benchmark, pipeline_corpus):
    """Wave-scheduled rate at the paper's batch geometry."""
    reference, reads = pipeline_corpus
    aligner = Aligner(reference, BatchedEngine(), seeding="kmer")

    def run():
        aligner.align_batched(reads, batch_size=BATCH_SIZE)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _rates["batched"] = len(reads) / benchmark.stats.stats.mean
    scalar = _rates.get("scalar")
    speedup = _rates["batched"] / scalar if scalar else float("nan")
    print(
        f"\nbatched pipeline (batch {BATCH_SIZE}): "
        f"{_rates['batched']:,.0f} reads/s ({speedup:.1f}x scalar)"
    )
    if scalar:
        assert _rates["batched"] >= 5 * scalar


def test_sharded_pipeline_throughput(benchmark, pipeline_corpus):
    """Sharded rate; speedup over batched needs real CPU cores."""
    import os

    reference, reads = pipeline_corpus
    workers = min(4, os.cpu_count() or 1)
    spec = EngineSpec(kind="batched")

    def run():
        align_sharded(
            reference,
            reads,
            spec=spec,
            workers=workers,
            batch_size=BATCH_SIZE,
            seeding="kmer",
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    _rates["sharded"] = len(reads) / benchmark.stats.stats.mean
    print(
        f"\nsharded pipeline ({workers} workers): "
        f"{_rates['sharded']:,.0f} reads/s "
        f"(host has {os.cpu_count()} CPU core(s))"
    )
