"""Figure 3: band size vs software seed-extension execution time.

Paper: a smaller band shortens the kernel's inner loop, but early
termination makes the curve saturate as the band grows — which is why
a conservative band barely hurts *software*, while hardware pays for
every PE.  This harness wall-clocks our software kernel and also
reports the deterministic work metric (cells computed), whose
saturation is the figure's actual mechanism.
"""

import pytest

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING
from repro.analysis.report import print_table

BANDS = (5, 10, 20, 41, 70, 101)
_times: dict[int, float] = {}


@pytest.mark.parametrize("band", BANDS)
def test_fig03_kernel_time_at_band(benchmark, timing_corpus, band):
    def run():
        total = 0
        for job in timing_corpus:
            res = banded.extend(
                job.query, job.target, BWA_MEM_SCORING, job.h0, w=band
            )
            total += res.cells_computed
        return total

    benchmark(run)
    _times[band] = benchmark.stats.stats.mean / len(timing_corpus)

    if band == BANDS[-1]:
        cells = {}
        for w in BANDS:
            cells[w] = sum(
                banded.extend(
                    j.query, j.target, BWA_MEM_SCORING, j.h0, w=w
                ).cells_computed
                for j in timing_corpus
            ) / len(timing_corpus)
        rows = [
            (
                w,
                f"{1e6 * _times[w]:.0f}",
                f"{cells[w]:,.0f}",
                f"{cells[w] / cells[BANDS[0]]:.2f}x",
            )
            for w in BANDS
        ]
        print_table(
            "Figure 3 — band vs software kernel cost per extension",
            ("band", "us/ext (measured)", "cells/ext", "work vs w=5"),
            rows,
        )
        # Shape: work grows with the band but saturates — early
        # termination stops charging for band the alignment never uses.
        assert cells[101] > cells[5]
        early = cells[20] / cells[5]  # 4x band -> ~how much more work
        late = cells[101] / cells[41]  # 2.5x band -> much less growth
        print(
            f"\nwork growth w5->w20 (4x band): {early:.2f}x; "
            f"w41->w101 (2.5x band): {late:.2f}x (saturating)"
        )
        assert late < early
        # And the saturation is strict: full band costs well under the
        # proportional 101/41 = 2.46x of the w=41 cost.
        assert late < 1.8
