"""Figure 15: resource (LUT) breakdown of the SeedEx FPGA.

Paper: the majority of resources go to compute (the BSW cores);
prefetch/buffering logic is simplistic and nearly free; edit cores add
only 5.53% over the narrow-band machines.
"""

from repro.analysis.report import print_table
from repro.hw import area


def test_fig15_lut_breakdown(benchmark):
    breakdown = benchmark.pedantic(
        area.seedex_fpga_breakdown, rounds=1, iterations=1
    )

    parts = breakdown.as_dict()
    total = sum(parts.values())
    rows = [
        (name, f"{luts:,.0f}", f"{luts / total:.1%}")
        for name, luts in parts.items()
    ]
    print_table(
        "Figure 15 — LUT breakdown, SeedEx-only FPGA (12 cores)",
        ("component", "LUTs", "share"),
        rows,
    )
    overhead = area.edit_machine_overhead()
    print(f"\nedit-machine overhead over BSW cores: {overhead:.2%} "
          "(paper: 5.53%)")

    # Shape: compute dominates; control/buffers are negligible.
    assert parts["BSW cores"] == max(parts.values())
    assert parts["Controller + arbiter"] / total < 0.02
    assert parts["I/O buffers"] / total < 0.05
    assert abs(overhead - 0.0553) < 0.005
