"""Figure 17: normalized end-to-end application time breakdown.

Paper: SeedEx alone speeds BWA-MEM up 1.296x and BWA-MEM2 1.335x
(software seeding becomes the bottleneck, best thread split puts ~88%
of threads on seeding); with the ERT seeding accelerator the system
reaches 3.75x over BWA-MEM and 2.28x over BWA-MEM2.  A software-only
SeedEx (w=5 + reruns) speeds the BSW kernel 14% and the app 2.8%.

This harness *measures* the software-SeedEx kernel speedup and the
rerun fraction on a real corpus, then feeds them into the calibrated
pipeline model.
"""

from repro import constants as paper
from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING
from repro.aligner.batching import best_thread_split
from repro.analysis.report import PaperComparison, comparison_table, print_table
from repro.core.extender import SeedExtender
from repro.system.host import time_software_kernel
from repro.system.scheduler import (
    bwa_mem2_breakdown,
    bwa_mem_breakdown,
    figure17_table,
    model_configuration,
)


def _measure_software_seedex(jobs):
    """Wall-clock the w=5 software SeedEx against the full-band kernel.

    Timing goes through the span tracer (perf_counter underneath) so
    the same numbers land in the per-run metrics JSON the benchmark
    session dumps.
    """
    from repro import obs
    from repro.obs import names

    full = time_software_kernel(jobs, band=None)
    ext = SeedExtender(band=5)
    obs.enable()
    with obs.span(names.SPAN_EXTEND_BATCH, jobs=len(jobs)) as sp:
        for job in jobs:
            ext.extend(job.query, job.target, job.h0)
    seedex_time = sp.duration / len(jobs)
    return (
        full.seconds_per_extension / seedex_time,
        ext.stats.rerun_rate,
    )


def test_fig17_end_to_end(benchmark, timing_corpus):
    def run():
        kernel_speedup, rerun_fraction = _measure_software_seedex(
            timing_corpus
        )
        rows = figure17_table(
            rerun_fraction=rerun_fraction,
            software_kernel_speedup=max(1.0, kernel_speedup),
        )
        return kernel_speedup, rerun_fraction, rows

    kernel_speedup, rerun_fraction, rows = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    baselines = {
        "BWA-MEM": model_configuration(bwa_mem_breakdown(), "baseline"),
        "BWA-MEM2": model_configuration(bwa_mem2_breakdown(), "baseline"),
    }
    table_rows = []
    comparisons = []
    for result, reported in rows:
        speedup = result.speedup_over(baselines[result.aligner])
        table_rows.append(
            (
                result.aligner,
                result.configuration,
                f"{result.seeding_time:.3f}",
                f"{result.extension_time:.3f}",
                f"{result.other_time:.3f}",
                f"{result.rerun_time:.3f}",
                f"{speedup:.2f}x",
                f"{reported:.2f}x" if reported else "-",
            )
        )
        if reported:
            comparisons.append(
                PaperComparison(
                    f"{result.aligner} {result.configuration}",
                    reported,
                    speedup,
                )
            )
    print_table(
        "Figure 17 — end-to-end breakdown (normalized)",
        ("aligner", "config", "seed", "ext", "other", "rerun",
         "speedup", "paper"),
        table_rows,
    )
    comparison_table("Figure 17 — speedups", comparisons)
    print(
        f"\nmeasured software-SeedEx kernel speedup: {kernel_speedup:.2f}x"
        f" (paper: 1.14x); measured rerun fraction: {rerun_fraction:.1%}"
    )
    cfg, report = best_thread_split()
    print(
        f"best thread split: {cfg.seeding_threads}/{cfg.total_threads} "
        f"threads on seeding (paper: ~88%), bottleneck: "
        f"{report.bottleneck}"
    )
    from repro.system.events import simulate_timeline, threads_to_saturate

    k = threads_to_saturate()
    timeline = simulate_timeline(n_batches=60, fpga_threads=k)
    print(
        f"event-level protocol sim: {k} FPGA thread(s) keep the device "
        f"{timeline.fpga_utilization:.0%} busy; mean lock wait "
        f"{1e6 * timeline.mean_lock_wait:.0f} us/batch"
    )

    for c in comparisons:
        assert c.relative_error < 0.15, c.metric
    assert cfg.seeding_threads / cfg.total_threads >= 0.75
    assert timeline.fpga_utilization >= 0.95
