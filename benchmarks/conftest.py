"""Shared corpora and fixtures for the experiment harnesses.

Each benchmark regenerates one of the paper's tables or figures; the
corpora here are the synthetic stand-ins for the Platinum Genomes
workload (see DESIGN.md).  Session-scoped so a full ``pytest
benchmarks/ --benchmark-only`` run builds each corpus once.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro import obs
from repro.genome.synth import (
    PLATINUM_LIKE,
    ReadSimulator,
    extension_corpus,
    structural_corpus,
    synthesize_reference,
)

CORPUS_SEED = 20200613  # arbitrary but fixed: results are reproducible

METRICS_DUMP = pathlib.Path(__file__).parent / "metrics_last_run.json"
"""Per-run registry snapshot, written next to the benchmark output."""


@pytest.fixture(scope="session", autouse=True)
def _observability_session():
    """Collect metrics/spans for the whole benchmark session.

    The registry snapshot is dumped to :data:`METRICS_DUMP` when the
    session ends, so every harness run leaves a machine-readable
    record (stage latencies, cells filled, check outcomes) next to
    its stdout tables.
    """
    obs.reset()
    obs.enable()
    yield
    obs.get_registry().write_json(str(METRICS_DUMP))
    obs.disable()


@pytest.fixture(scope="session")
def platinum_corpus():
    """Extension jobs with the paper's overall workload mix (Fig 2)."""
    rng = np.random.default_rng(CORPUS_SEED)
    return extension_corpus(
        400, rng, query_length=101, reference_length=300_000
    )


@pytest.fixture(scope="session")
def seedlike_corpus():
    """Variable-length extensions, as real seed placement produces
    (drives Figure 2's *estimated* band distribution)."""
    rng = np.random.default_rng(CORPUS_SEED + 5)
    return extension_corpus(
        400,
        rng,
        query_length=101,
        reference_length=300_000,
        vary_query_length=True,
        min_query_length=6,
    )


@pytest.fixture(scope="session")
def structural_jobs():
    """Case-c-rich corpus: structural deletions near the band with
    seed-adjacent substitutions (Fig 14's regime)."""
    rng = np.random.default_rng(CORPUS_SEED + 1)
    return structural_corpus(300, rng, size_range=(20, 50))


@pytest.fixture(scope="session")
def timing_corpus():
    """Smaller corpus for wall-clock kernel timing (Fig 3)."""
    rng = np.random.default_rng(CORPUS_SEED + 2)
    return extension_corpus(
        60, rng, query_length=101, reference_length=100_000
    )


@pytest.fixture(scope="session")
def aligner_workload():
    """Reference + reads for the end-to-end validation (Fig 13)."""
    rng = np.random.default_rng(CORPUS_SEED + 3)
    reference = synthesize_reference(40_000, rng, repeat_fraction=0.02)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=CORPUS_SEED + 4)
    return reference, sim.simulate(120)
