"""Figure 16(c): throughput — SeedEx vs the full-band accelerator.

Paper: 36 narrow-band BSW cores deliver 43.9 M extensions/s on the
f1.2xlarge FPGA, a 6.0x iso-area speedup over 9 full-band cores; the
per-extension latency is 1.9x lower because shift-register init and
accumulator reduction scale with the band.  About 2% of extensions
rerun on the host, overlapped with FPGA batches.

The functional accelerator model processes a real corpus (so the
rerun fraction is measured, not assumed) and the timing model supplies
the cycle numbers.
"""

from repro import constants as paper
from repro.analysis.report import PaperComparison, comparison_table
from repro.hw import timing
from repro.hw.accelerator import AcceleratorConfig, SeedExAccelerator


def test_fig16c_throughput(benchmark, platinum_corpus):
    def run():
        acc = SeedExAccelerator(AcceleratorConfig())
        report = acc.run(platinum_corpus[:200])
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    comparisons = [
        PaperComparison(
            "SeedEx throughput (M ext/s)",
            paper.SEEDEX_THROUGHPUT_EXT_PER_S / 1e6,
            timing.fpga_throughput() / 1e6,
        ),
        PaperComparison(
            "iso-area speedup",
            paper.ISO_AREA_THROUGHPUT_SPEEDUP,
            timing.iso_area_speedup(),
        ),
        PaperComparison(
            "latency improvement",
            paper.SEEDEX_LATENCY_IMPROVEMENT,
            timing.latency_improvement(),
        ),
        PaperComparison(
            "rerun fraction",
            paper.RERUN_RATE,
            report.rerun_fraction,
        ),
    ]
    comparison_table("Figure 16(c) — throughput", comparisons)
    print(
        f"\nmodel initiation interval at w=41: "
        f"{timing.initiation_interval_cycles(41):.1f} cycles "
        "(paper Section V-A: compute ~100 cycles, hides 40-cycle AXI)"
    )
    print(f"prefetch hides memory latency: {report.prefetch_hidden}")

    assert comparisons[0].relative_error < 0.02
    assert comparisons[1].relative_error < 0.02
    assert comparisons[2].relative_error < 0.02
    assert report.rerun_fraction < 0.08
    assert report.prefetch_hidden
