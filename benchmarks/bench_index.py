"""Persistent index store: build cost, load ladder, end-to-end rate.

Not a paper figure — this tracks what the :mod:`repro.index` artifact
buys and costs: how fast a reference serializes into the CRC-verified
store, what the two load-ladder rungs cost (cold verified load vs the
zero-copy mmap fast path workers take), and that an aligner seeded
from the artifact sustains pipeline throughput.

Gated metrics: ``index.build.bases_per_s`` (serialization rate,
higher is better) and ``index.pipeline.reads_per_s`` (end-to-end
alignment over a memory-mapped artifact).  Trend-only:
``index.load.cold_ms`` (full verify) and ``index.load.mmap_ms``
(header-only fast path) — single-shot wall-clock, too noisy to gate.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.aligner.engines import BatchedEngine
from repro.aligner.pipeline import Aligner
from repro.genome.synth import PLATINUM_LIKE, ReadSimulator, synthesize_reference
from repro.index import build_index, load_index

CORPUS_SEED = 20200613

RESULT_PATH = (
    pathlib.Path(__file__).parent.parent / "bench" / "results"
    / "index.json"
)
"""Machine-readable record of the last full bench run."""


def tier1_bench(quick: bool = False) -> dict[str, float]:
    """``repro bench`` hook: build rate, load rungs, seeded pipeline."""
    rng = np.random.default_rng(CORPUS_SEED + 17)
    n_bases = 60_000 if quick else 250_000
    reference = synthesize_reference(n_bases, rng, repeat_fraction=0.02)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=CORPUS_SEED + 18)
    reads = [
        (r.name, r.codes)
        for r in sim.simulate(150 if quick else 1_000)
    ]

    with tempfile.TemporaryDirectory(prefix="bench-index-") as tmp:
        path = Path(tmp) / "ref.rpidx"

        start = time.perf_counter()
        build_index(reference, path)
        build_s = time.perf_counter() - start

        start = time.perf_counter()
        load_index(path, mmap=False, verify=True)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        loaded = load_index(path, mmap=True, verify=False)
        mmap_s = time.perf_counter() - start

        aligner = Aligner(
            reference, BatchedEngine(), seeding="kmer", index=loaded
        )
        start = time.perf_counter()
        aligner.align_batched(reads, batch_size=64)
        align_s = time.perf_counter() - start

    return {
        "index.build.bases_per_s": n_bases / build_s,
        "index.load.cold_ms": cold_s * 1e3,
        "index.load.mmap_ms": mmap_s * 1e3,
        "index.pipeline.reads_per_s": len(reads) / align_s,
    }


def test_index_store(benchmark):
    """``pytest benchmarks/`` leg: run full-size, record the numbers."""
    metrics = {}
    benchmark.pedantic(
        lambda: metrics.update(tier1_bench(quick=False)),
        rounds=1,
        iterations=1,
    )
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(
        json.dumps({"schema": 1, **metrics}, indent=2, sort_keys=True)
        + "\n"
    )


if __name__ == "__main__":
    for name, value in tier1_bench(quick=True).items():
        print(f"{name}: {value:,.2f}")
