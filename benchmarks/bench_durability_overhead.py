"""Journal overhead on a healthy corpus (<3% target).

Not a paper figure — this is the cost contract of the durability PR:
committing each completed read window to the checkpoint journal
(temp file + fsync + atomic rename + manifest rewrite) must stay in
the noise next to the alignment work it checkpoints.  Both arms run
:func:`align_supervised` single-process over the same corpus; the
only difference is whether a :class:`RunJournal` is attached.  The
measured throughputs and overhead land in
``bench/results/durability.json`` (formerly ``BENCH_durability.json``
at the repository root); the :func:`tier1_bench` hook feeds the same
comparison, sized for CI, into the ``repro bench`` trend file.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile

import numpy as np
import pytest

from repro.aligner.parallel import align_supervised
from repro.durability.journal import RunJournal
from repro.genome.synth import (
    PLATINUM_LIKE,
    ReadSimulator,
    synthesize_reference,
)

BATCH = 64
N_READS = 192
RESULT_PATH = (
    pathlib.Path(__file__).parent.parent / "bench" / "results"
    / "durability.json"
)
_rates: dict[str, float] = {}


def tier1_bench(quick: bool = False) -> dict[str, float]:
    """``repro bench`` hook: reads/s with the journal off vs on."""
    from repro.bench.timing import best_of

    rng = np.random.default_rng(20260806)
    reference = synthesize_reference(
        20_000 if quick else 30_000, rng, repeat_fraction=0.02
    )
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=20260807)
    reads = sim.simulate(64 if quick else N_READS)
    # Warm-up: the first alignment pass pays one-time import and
    # cache costs that would otherwise land entirely on the off leg.
    _run(reference, reads)
    off = best_of(
        lambda: _run(reference, reads), repeats=1 if quick else 2
    )
    scratch = tempfile.mkdtemp(prefix="bench-durability-")

    def _journaled():
        run_dir = tempfile.mkdtemp(dir=scratch)
        journal = RunJournal.create(
            run_dir, {"bench": 1}, -(-len(reads) // BATCH)
        )
        _run(reference, reads, journal=journal)

    try:
        on = best_of(_journaled, repeats=1 if quick else 2)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return {
        "durability.journal_off.reads_per_s": len(reads) / off,
        "durability.journal_on.reads_per_s": len(reads) / on,
        "durability.overhead.fraction": on / off - 1.0,
    }


@pytest.fixture(scope="module")
def durability_corpus():
    rng = np.random.default_rng(20260806)
    reference = synthesize_reference(30_000, rng, repeat_fraction=0.02)
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=20260807)
    return reference, sim.simulate(N_READS)


def _run(reference, reads, journal=None):
    result = align_supervised(
        reference,
        reads,
        workers=1,
        batch_size=BATCH,
        seeding="kmer",
        journal=journal,
    )
    assert len(result.records) == len(reads)


def test_journal_off(benchmark, durability_corpus):
    reference, reads = durability_corpus
    benchmark(lambda: _run(reference, reads))
    _rates["off"] = N_READS / benchmark.stats.stats.mean


def test_journal_on(benchmark, durability_corpus):
    reference, reads = durability_corpus
    scratch = tempfile.mkdtemp(prefix="bench-durability-")

    def _journaled():
        run_dir = tempfile.mkdtemp(dir=scratch)
        journal = RunJournal.create(
            run_dir, {"bench": 1}, -(-len(reads) // BATCH)
        )
        _run(reference, reads, journal=journal)

    try:
        benchmark(_journaled)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    _rates["on"] = N_READS / benchmark.stats.stats.mean

    off, on = _rates["off"], _rates["on"]
    overhead = off / on - 1.0
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(
        json.dumps(
            {
                "schema": 1,
                "reads": N_READS,
                "batch_size": BATCH,
                "reads_per_s_journal_off": off,
                "reads_per_s_journal_on": on,
                "overhead_fraction": overhead,
                "target": "< 3% at the default window size",
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\ndurability journal overhead: off {off:,.1f} reads/s, "
        f"on {on:,.1f} reads/s -> {overhead:+.2%} (target: < 3%)"
    )
    # Generous CI bound: fsync latency varies wildly on shared
    # runners; the recorded JSON holds the measured number.
    assert overhead < 0.15
