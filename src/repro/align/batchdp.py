"""Batched banded extension: many jobs in lockstep.

The accelerator processes thousands of independent extensions; a
Python model that loops rows *per job* wastes its vector width.  This
kernel advances a whole batch one target row per step, vectorizing
across jobs x columns — typically 20-50x faster than the scalar kernel
on accelerator-sized batches, which is what makes corpus-scale
experiments (Figures 13/14) tractable in a functional model.

Semantics are identical to :func:`repro.align.banded.extend` with
``prune=False`` (bit-equivalence is property-tested), including the
boundary E-score capture the checks need.  Jobs may have ragged
lengths; they are padded with dead sentinels that can never influence
scores (query pad never matches, rows beyond a job's target are
masked out).
"""

from __future__ import annotations

import numpy as np

from repro.align.banded import (
    ExtensionResult,
    boundary_length,
    check_batch_shapes,
    full_band_for,
    upper_boundary_length,
)
from repro.align.scoring import AffineGap
from repro.genome.sequence import AMBIGUOUS_CODE

_PAD = 64
"""Query pad code: outside the 3-bit alphabet, never equal to a base."""


def extend_batch(
    queries: list[np.ndarray],
    targets: list[np.ndarray],
    h0s: list[int],
    scoring: AffineGap,
    w: int | None = None,
) -> list[ExtensionResult]:
    """Run one banded extension per (query, target, h0) triple.

    Returns results in input order, each bit-identical to the scalar
    kernel's output for the same job and band.  Mismatched input list
    lengths raise :class:`~repro.align.banded.BatchShapeError`.
    """
    n = check_batch_shapes(queries, targets, h0s)
    if n == 0:
        return []
    for h0 in h0s:
        if h0 < 0:
            raise ValueError("h0 must be non-negative")

    qlens = np.array([len(q) for q in queries], dtype=np.int64)
    tlens = np.array([len(t) for t in targets], dtype=np.int64)
    max_q = int(qlens.max())
    max_t = int(tlens.max())
    if w is None:
        w = full_band_for(max_q, max_t)
    if w < 0:
        raise ValueError("band must be non-negative")

    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    m = scoring.match
    x = scoring.mismatch

    qpad = np.full((n, max_q), _PAD, dtype=np.int64)
    tpad = np.full((n, max_t), _PAD - 1, dtype=np.int64)
    for k, (q, t) in enumerate(zip(queries, targets)):
        qpad[k, : len(q)] = q
        tpad[k, : len(t)] = t
    h0v = np.array(h0s, dtype=np.int64)

    # State arrays: rows = jobs, cols = query positions 0..max_q.
    h_prev = np.zeros((n, max_q + 1), dtype=np.int64)
    e_prev = np.zeros((n, max_q + 1), dtype=np.int64)
    h_prev[:, 0] = h0v
    cols = np.arange(1, max_q + 1, dtype=np.int64)
    row0 = np.maximum(0, h0v[:, None] - go - cols[None, :] * ge_i)
    row0[:, :] = np.where(cols[None, :] <= w, row0, 0)
    row0[:, :] = np.where(cols[None, :] <= qlens[:, None], row0, 0)
    h_prev[:, 1:] = row0

    lscore = h0v.copy()
    lpos_i = np.zeros(n, dtype=np.int64)
    lpos_j = np.zeros(n, dtype=np.int64)
    max_off = np.zeros(n, dtype=np.int64)
    gscore = np.zeros(n, dtype=np.int64)
    gpos = np.full(n, -1, dtype=np.int64)
    glast = h_prev[np.arange(n), qlens]
    improving = (qlens <= w) & (glast > 0)
    gscore[improving] = glast[improving]
    gpos[improving] = 0

    n_bound = np.array(
        [
            boundary_length(int(qlens[k]), int(tlens[k]), w)
            for k in range(n)
        ],
        dtype=np.int64,
    )
    boundary_e = np.zeros((n, max(1, int(n_bound.max(initial=0)))),
                          dtype=np.int64)
    if w == 0:
        # Degenerate band: row 0's boundary-E capture at (1, 0) — the
        # row loop only captures bj = i - w from i >= 1 (see the
        # matching special case in the scalar kernel).
        first = n_bound > 0
        boundary_e[first, 0] = np.maximum(0, h0v[first] - go - ge_d)
    n_upper = np.array(
        [
            upper_boundary_length(int(qlens[k]), int(tlens[k]), w)
            for k in range(n)
        ],
        dtype=np.int64,
    )
    boundary_f = np.zeros((n, max(1, int(n_upper.max(initial=0)))),
                          dtype=np.int64)
    has_upper = n_upper > 0
    boundary_f[has_upper, 0] = np.maximum(
        0, h0v[has_upper] - go - (w + 1) * ge_i
    )

    all_cols = np.arange(max_q + 1, dtype=np.int64)
    for i in range(1, max_t + 1):
        active = tlens >= i
        lo = max(0, i - w)
        hi_global = min(max_q, i + w)
        in_band = (all_cols >= lo) & (all_cols <= hi_global)
        within = all_cols[None, :] <= qlens[:, None]
        live_cols = in_band[None, :] & within & active[:, None]

        # E channel.
        e_row = np.maximum(
            0, np.maximum(h_prev - go, e_prev) - ge_d
        )
        e_row[~live_cols] = 0

        # Init column.
        h_col0 = np.where(
            (i <= w) & active,
            np.maximum(0, h0v - go - i * ge_d),
            0,
        )
        e_row[:, 0] = h_col0

        # Diagonal.
        tchar = tpad[:, i - 1][:, None]
        # N never matches (matching the scalar kernel and the oracle).
        sub = np.where((tchar == qpad) & (tchar != AMBIGUOUS_CODE), m, -x)
        diag = np.zeros((n, max_q + 1), dtype=np.int64)
        diag[:, 1:] = np.where(
            h_prev[:, :-1] > 0, h_prev[:, :-1] + sub, 0
        )
        g = np.maximum(diag, e_row)
        g[:, 0] = np.maximum(g[:, 0], h_col0)
        g[~live_cols] = 0
        g[:, 0] = np.where(active, np.maximum(g[:, 0], h_col0), 0)

        # F channel via running max-plus scan along columns.
        shifted = g - go + all_cols[None, :] * ge_i
        run = np.maximum.accumulate(shifted, axis=1)
        f = np.zeros_like(g)
        f[:, 1:] = np.maximum(
            0, run[:, :-1] - all_cols[None, 1:] * ge_i
        )
        f[~live_cols] = 0
        h_row = np.maximum(np.maximum(g, f), 0)
        h_row[~live_cols] = 0
        h_row[:, 0] = h_col0

        # Boundary E capture at column i - w.
        bj = i - w
        if bj >= 0:
            capture = (bj < n_bound) & (i + 1 <= tlens) & active
            if capture.any() and bj <= max_q:
                vals = np.maximum(
                    0,
                    np.maximum(h_row[:, bj] - go, e_row[:, bj]) - ge_d,
                )
                boundary_e[capture, bj] = vals[capture]

        # Upper-boundary F cap (see the scalar kernel for the
        # admissibility note) at entry cell (i, i + w + 1).
        if i >= 1:
            capture_f = (i < n_upper) & active
            if capture_f.any():
                src = np.where(
                    live_cols,
                    h_row + all_cols[None, :] * ge_i,
                    -(10**15),
                ).max(axis=1)
                vals = np.maximum(0, src - go - (i + w + 1) * ge_i)
                boundary_f[capture_f, i] = vals[capture_f]

        # Accumulators: strict row-max improvement, earliest column.
        row_best = h_row.max(axis=1)
        row_arg = h_row.argmax(axis=1)
        improve = (row_best > lscore) & active
        lscore = np.where(improve, row_best, lscore)
        lpos_i = np.where(improve, i, lpos_i)
        lpos_j = np.where(improve, row_arg, lpos_j)
        max_off = np.where(
            improve, np.maximum(max_off, np.abs(row_arg - i)), max_off
        )
        glast = h_row[np.arange(n), qlens]
        gimp = (glast > gscore) & active & (np.abs(i - qlens) <= w)
        gscore = np.where(gimp, glast, gscore)
        gpos = np.where(gimp, i, gpos)

        h_prev, e_prev = h_row, e_row

    out = []
    for k in range(n):
        out.append(
            ExtensionResult(
                lscore=int(lscore[k]),
                lpos=(int(lpos_i[k]), int(lpos_j[k])),
                gscore=int(gscore[k]),
                gpos=int(gpos[k]),
                max_off=int(max_off[k]),
                band=w,
                h0=int(h0s[k]),
                qlen=int(qlens[k]),
                tlen=int(tlens[k]),
                boundary_e=boundary_e[k, : n_bound[k]].copy(),
                boundary_f=boundary_f[k, : n_upper[k]].copy(),
                cells_computed=int(
                    min(2 * w + 1, qlens[k] + 1) * tlens[k]
                ),
                terminated_early=False,
            )
        )
    return out
