"""Edit-distance DP kernels, including the left-entry extension.

The edit-distance check of paper Section III-D runs an *optimistic*
extra extension for the paper's "path 2": alignment paths whose first
band departure is the pure-deletion dive down query column 0 past row
``w``.  Every cell such a path can subsequently touch lies in the
lower half-matrix ``rows w+1 .. tlen`` (rows only grow) — including
cells back inside the band, which the path may re-enter.  The check
therefore runs a DP over exactly that half-matrix, seeded only on its
left boundary, using the relaxed edit scoring
``{m:1, x:-1, go:0, ge(ins):0, ge(del):-1}``.

Zero-penalty insertions make scores non-decreasing along each row, so
the row maximum always sits in the last column: the hardware's single
augmentation unit reads the decoded scores along the right edge
(the augmentation path of paper Figure 10), and this model only needs
the last-column values.  The half-matrix sweep is also what motivates
the half-width PE array of Section IV-B.

:func:`levenshtein` is the classic edit distance, used by tests and by
the delta-encoding hardware model as a reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.align.scoring import AffineGap, relaxed_edit_scoring


def levenshtein(a: np.ndarray, b: np.ndarray) -> int:
    """Classic edit distance between two encoded sequences."""
    a = np.asarray(a)
    b = np.asarray(b)
    if len(a) == 0:
        return len(b)
    prev = np.arange(len(b) + 1, dtype=np.int64)
    for i in range(1, len(a) + 1):
        cur = np.empty_like(prev)
        cur[0] = i
        sub = prev[:-1] + (b != a[i - 1])
        # Insertions need a sequential scan; do it with the standard
        # prefix-min trick: cur[j] = min(sub/del candidates, cur[j-1]+1).
        cand = np.minimum(sub, prev[1:] + 1)
        run = np.minimum.accumulate(cand - np.arange(1, len(b) + 1))
        cur[1:] = np.minimum(cand, run + np.arange(1, len(b) + 1))
        # One more pass to honor cur[0] as an insertion source.
        cur[1:] = np.minimum(cur[1:], cur[0] + np.arange(1, len(b) + 1))
        prev = cur
    return int(prev[-1])


@dataclass(frozen=True)
class LeftEntryScores:
    """Scores read out along the augmentation path (the right edge).

    ``last_column[r]`` is the relaxed score at cell
    ``(band + 1 + r, qlen)`` — the best any left-entering path can have
    when the query runs out at that reference row.  ``best`` is their
    maximum; because free insertions make rows non-decreasing, it also
    bounds left-entering paths ending *anywhere*.
    """

    last_column: np.ndarray
    best: int


def left_entry_scores(
    query: np.ndarray,
    target: np.ndarray,
    band: int,
    left_seed: Callable[[int], int] | int,
    scoring: AffineGap | None = None,
    top_seed: Callable[[int], int] | None = None,
) -> LeftEntryScores:
    """Run the optimistic left-entry extension over the half-matrix.

    ``left_seed`` gives the initial score injected at left-boundary
    cell ``(i, 0)`` for ``i >= band+1`` — the paper injects ``S1`` at
    the top-left corner (the "circle" of Figure 5) and lets the DP
    propagate it; passing a callable allows the tighter
    exact-initialization ablation.  ``scoring`` defaults to the relaxed
    edit scheme; any scheme that *dominates* the production scheme
    keeps the check admissible (:meth:`AffineGap.dominates`).

    ``top_seed(j)``, when given, additionally injects the recorded
    boundary E-channel cap at region cell ``(j + band + 1, j)`` — used
    by the local-target workflow, whose all-match E-check arithmetic
    is useless for soft-clipped reads, so downward crossings at
    columns >= 1 are swept with real content instead.

    Dead-cell semantics match the extension kernel: scores clamp to
    zero and dead cells cannot be extended — admissible because the
    relaxed score of a path is everywhere >= its production score.
    """
    if scoring is None:
        scoring = relaxed_edit_scoring()
    if scoring.gap_open != 0 or scoring.gap_extend_ins != 0:
        raise ValueError(
            "left-entry DP requires zero-cost insertions "
            "(free horizontal propagation)"
        )
    query = np.asarray(query, dtype=np.int64)
    target = np.asarray(target, dtype=np.int64)
    qlen = len(query)
    tlen = len(target)
    if tlen <= band:
        return LeftEntryScores(np.zeros(0, dtype=np.int64), 0)

    seed = left_seed if callable(left_seed) else (lambda _i: int(left_seed))
    m = scoring.match
    x = scoring.mismatch
    ge_d = scoring.gap_extend_del

    rows = tlen - band
    last_column = np.zeros(rows, dtype=np.int64)
    prev = np.zeros(0, dtype=np.int64)
    for r, i in enumerate(range(band + 1, tlen + 1)):
        base = np.zeros(qlen + 1, dtype=np.int64)
        base[0] = max(0, seed(i))
        if prev.size:
            np.maximum(base, prev - ge_d, out=base)
            sub = np.where(target[i - 1] == query, m, -x)
            diag = np.where(prev[:-1] > 0, prev[:-1] + sub, 0)
            np.maximum(base[1:], diag, out=base[1:])
        if top_seed is not None:
            bj = i - band - 1
            if 0 <= bj <= qlen:
                base[bj] = max(int(base[bj]), top_seed(bj))
        # Free horizontal propagation: running max along the row.
        row = np.maximum.accumulate(np.maximum(base, 0))
        prev = row
        last_column[r] = int(row[qlen])

    return LeftEntryScores(last_column, int(last_column.max(initial=0)))


def left_entry_scores_global(
    query: np.ndarray,
    target: np.ndarray,
    band: int,
    left_seed: Callable[[int], int],
    top_seed: Callable[[int], int] | None = None,
    scoring: AffineGap | None = None,
) -> int:
    """Corner bound for *global* band-leaving paths on one side.

    Same half-matrix sweep as :func:`left_entry_scores` but without
    the dead-at-zero clamp: global alignment paths survive negative
    running scores, so clamping would under-bound them.  Besides the
    ``left_seed`` (column-0 entries), an optional ``top_seed(j)``
    injects the recorded boundary-channel value at region cell
    ``(j + band + 1, j)`` — the entry point of a path whose first
    departure crossed the band's lower edge at column ``j``.  Returns
    the relaxed score at the corner ``(tlen, qlen)`` — the only
    endpoint a global path has — or ``NEG_INF`` when the region is
    empty.  (The above-band region is handled by calling this on the
    transposed problem.)
    """
    from repro.align.fullmatrix import NEG_INF

    if scoring is None:
        scoring = relaxed_edit_scoring()
    if scoring.gap_open != 0 or scoring.gap_extend_ins != 0:
        raise ValueError(
            "left-entry DP requires zero-cost insertions "
            "(free horizontal propagation)"
        )
    query = np.asarray(query, dtype=np.int64)
    target = np.asarray(target, dtype=np.int64)
    qlen = len(query)
    tlen = len(target)
    if tlen <= band:
        return NEG_INF
    m = scoring.match
    x = scoring.mismatch
    ge_d = scoring.gap_extend_del

    prev = np.full(qlen + 1, NEG_INF, dtype=np.int64)
    for i in range(band + 1, tlen + 1):
        base = np.full(qlen + 1, NEG_INF, dtype=np.int64)
        base[0] = left_seed(i)
        live = prev > NEG_INF // 2
        if live.any():
            up = np.where(live, prev - ge_d, NEG_INF)
            np.maximum(base, up, out=base)
            sub = np.where(target[i - 1] == query, m, -x)
            diag = np.where(live[:-1], prev[:-1] + sub, NEG_INF)
            np.maximum(base[1:], diag, out=base[1:])
        bj = i - band - 1
        if top_seed is not None and 0 <= bj <= qlen:
            base[bj] = max(int(base[bj]), top_seed(bj))
        prev = np.maximum.accumulate(base)
    return int(prev[qlen])


def upper_entry_scores(
    query: np.ndarray,
    target: np.ndarray,
    band: int,
    row_seed: Callable[[int], int],
    boundary_seed: Callable[[int], int],
    scoring: AffineGap | None = None,
) -> LeftEntryScores:
    """The above-band mirror of :func:`left_entry_scores`.

    Extension-mode (dead-at-zero) relaxed sweep over everything a path
    can touch after first leaving the band *upward*: all rows, columns
    ``>= band + 1``.  ``row_seed(j)`` injects the exact init-row
    arrival values at ``(0, j)`` (an insertion run along the top edge);
    ``boundary_seed(i)`` injects the recorded upper-edge F value at
    entry cell ``(i, i + band + 1)``.  Because insertions are free the
    rows are non-decreasing, so ``last_column[i]`` bounds such a path
    ending anywhere in row ``i`` — the readout the local-target check
    (and a hardware twin of the edit machine) needs.
    """
    if scoring is None:
        scoring = relaxed_edit_scoring()
    if scoring.gap_open != 0 or scoring.gap_extend_ins != 0:
        raise ValueError(
            "upper-entry DP requires zero-cost insertions "
            "(free horizontal propagation)"
        )
    query = np.asarray(query, dtype=np.int64)
    target = np.asarray(target, dtype=np.int64)
    qlen = len(query)
    tlen = len(target)
    if qlen <= band:
        return LeftEntryScores(np.zeros(0, dtype=np.int64), 0)
    m = scoring.match
    x = scoring.mismatch
    ge_d = scoring.gap_extend_del

    lo = band + 1
    width = qlen - lo + 1
    last_column = np.zeros(tlen + 1, dtype=np.int64)
    base0 = np.array(
        [max(0, row_seed(j)) for j in range(lo, qlen + 1)],
        dtype=np.int64,
    )
    prev = np.maximum.accumulate(base0)
    last_column[0] = int(prev[-1])
    for i in range(1, tlen + 1):
        base = np.zeros(width, dtype=np.int64)
        np.maximum(base, prev - ge_d, out=base)
        sub = np.where(target[i - 1] == query[lo:qlen], m, -x)
        diag = np.where(prev[:-1] > 0, prev[:-1] + sub, 0)
        np.maximum(base[1:], diag, out=base[1:])
        bcol = i + band + 1
        if lo <= bcol <= qlen:
            idx = bcol - lo
            base[idx] = max(int(base[idx]), boundary_seed(i), 0)
        prev = np.maximum.accumulate(np.maximum(base, 0))
        last_column[i] = int(prev[-1])
    return LeftEntryScores(
        last_column, int(last_column.max(initial=0))
    )


def upper_entry_scores_global(
    query: np.ndarray,
    target: np.ndarray,
    band: int,
    row_seed: Callable[[int], int],
    boundary_seed: Callable[[int], int],
    scoring: AffineGap | None = None,
) -> int:
    """Corner bound for global paths that first leave the band upward.

    The mirror of :func:`left_entry_scores_global` for the above-band
    region ``{j - i > band}``: every cell such a path can later touch
    has column ``j >= band + 1``, so the sweep covers all rows but only
    those columns.  ``row_seed(j)`` injects the init-row entry values
    at ``(0, j)``; ``boundary_seed(i)`` injects the recorded F-channel
    value at region cell ``(i, i + band + 1)``.

    The free direction stays horizontal (original insertions), so
    vertical moves cost the full deletion extension — this matters:
    transposing the below-sweep instead would hand out free original
    deletions and let the bound ride down onto the true alignment's
    diagonal, degenerating the check.
    """
    from repro.align.fullmatrix import NEG_INF

    if scoring is None:
        scoring = relaxed_edit_scoring()
    if scoring.gap_open != 0 or scoring.gap_extend_ins != 0:
        raise ValueError(
            "upper-entry DP requires zero-cost insertions "
            "(free horizontal propagation)"
        )
    query = np.asarray(query, dtype=np.int64)
    target = np.asarray(target, dtype=np.int64)
    qlen = len(query)
    tlen = len(target)
    if qlen <= band:
        return NEG_INF
    m = scoring.match
    x = scoring.mismatch
    ge_d = scoring.gap_extend_del

    lo = band + 1  # leftmost column of the domain
    width = qlen - lo + 1
    prev = np.full(width, NEG_INF, dtype=np.int64)
    # Row 0: seeds along the init row, propagated by free insertions.
    base0 = np.array(
        [row_seed(j) for j in range(lo, qlen + 1)], dtype=np.int64
    )
    prev = np.maximum.accumulate(base0)
    for i in range(1, tlen + 1):
        base = np.full(width, NEG_INF, dtype=np.int64)
        live = prev > NEG_INF // 2
        if live.any():
            np.maximum(
                base, np.where(live, prev - ge_d, NEG_INF), out=base
            )
            # Diagonal into column c consumes query[c-1]; column lo's
            # diagonal predecessor (column lo-1) is in the band and out
            # of this sweep's scope by construction.
            sub = np.where(target[i - 1] == query[lo:qlen], m, -x)
            diag = np.where(live[:-1], prev[:-1] + sub, NEG_INF)
            np.maximum(base[1:], diag, out=base[1:])
        bcol = i + band + 1
        if lo <= bcol <= qlen:
            idx = bcol - lo
            base[idx] = max(int(base[idx]), boundary_seed(i))
        prev = np.maximum.accumulate(base)
    return int(prev[-1])


def left_entry_scores_reference(
    query: np.ndarray,
    target: np.ndarray,
    band: int,
    left_seed: Callable[[int], int] | int,
    scoring: AffineGap | None = None,
) -> LeftEntryScores:
    """Loop-based oracle for :func:`left_entry_scores` (tests only)."""
    if scoring is None:
        scoring = relaxed_edit_scoring()
    query = np.asarray(query, dtype=np.int64)
    target = np.asarray(target, dtype=np.int64)
    qlen = len(query)
    tlen = len(target)
    if tlen <= band:
        return LeftEntryScores(np.zeros(0, dtype=np.int64), 0)
    seed = left_seed if callable(left_seed) else (lambda _i: int(left_seed))
    m = scoring.match
    x = scoring.mismatch
    ge_d = scoring.gap_extend_del
    ge_i = scoring.gap_extend_ins

    scores: dict[tuple[int, int], int] = {}
    for i in range(band + 1, tlen + 1):
        for j in range(qlen + 1):
            cands = [0]
            if j == 0:
                cands.append(seed(i))
            up = scores.get((i - 1, j))
            if up is not None:
                cands.append(up - ge_d)
            left = scores.get((i, j - 1))
            if left is not None:
                cands.append(left - ge_i)
            dg = scores.get((i - 1, j - 1))
            if dg is not None and dg > 0:
                match = int(target[i - 1]) == int(query[j - 1])
                cands.append(dg + (m if match else -x))
            scores[(i, j)] = max(cands)

    rows = tlen - band
    last = np.zeros(rows, dtype=np.int64)
    for r, i in enumerate(range(band + 1, tlen + 1)):
        last[r] = scores[(i, qlen)]
    return LeftEntryScores(last, int(last.max(initial=0)))
