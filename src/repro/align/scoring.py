"""Scoring schemes for the alignment kernels.

Three schemes appear in the paper:

* :class:`AffineGap` — the production scoring used by BWA-MEM and by the
  SeedEx BSW cores (paper Section II-A, Eq. 1-3).  The BWA-MEM default is
  ``{m: 1, x: -4, go: -6, ge: -1}``.
* :func:`edit_scoring` — plain Levenshtein-style scoring
  ``{m: 1, x: -1, go: 0, ge: -1}`` (paper Section IV-B).
* :func:`relaxed_edit_scoring` — the edit machine's scheme
  ``{m: 1, x: -1, go: 0, ge(ins): 0, ge(del): -1}``; zero-penalty
  insertions let local scores propagate horizontally so a single
  augmentation unit can decode every delta-encoded score.

Penalties are stored as non-negative magnitudes; the DP kernels subtract
them.  :meth:`AffineGap.dominates` captures the admissibility relation
the edit-distance check relies on: for every alignment path the relaxed
(or plain) edit score is >= the affine-gap score.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AffineGap:
    """Affine-gap scoring ``s = {m, x, go, ge}`` with split gap extension.

    ``gap_extend_ins`` applies to horizontal moves (consuming a query
    character; an insertion with respect to the reference) and
    ``gap_extend_del`` to vertical moves (consuming a reference
    character).  Symmetric schemes set both to the same value; the
    relaxed edit scheme used by the edit machine sets the insertion
    extension to zero.
    """

    match: int = 1
    mismatch: int = 4
    gap_open: int = 6
    gap_extend: int = 1
    gap_extend_ins: int | None = None
    gap_extend_del: int | None = None

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError("match reward must be positive")
        for name in ("mismatch", "gap_open", "gap_extend"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be a non-negative magnitude")
        if self.gap_extend_ins is None:
            object.__setattr__(self, "gap_extend_ins", self.gap_extend)
        if self.gap_extend_del is None:
            object.__setattr__(self, "gap_extend_del", self.gap_extend)
        if self.gap_extend_ins < 0 or self.gap_extend_del < 0:
            raise ValueError("gap extensions must be non-negative magnitudes")

    @property
    def is_symmetric(self) -> bool:
        """True when insertions and deletions extend at the same cost."""
        return self.gap_extend_ins == self.gap_extend_del

    def substitution(self, a: int, b: int) -> int:
        """Score of aligning base codes ``a`` and ``b`` (N never matches)."""
        from repro.genome.sequence import AMBIGUOUS_CODE

        if a == AMBIGUOUS_CODE or b == AMBIGUOUS_CODE:
            return -self.mismatch
        return self.match if a == b else -self.mismatch

    def gap_cost(self, length: int, *, deletion: bool = True) -> int:
        """Total (positive) penalty of a gap of ``length`` characters."""
        if length <= 0:
            return 0
        extend = self.gap_extend_del if deletion else self.gap_extend_ins
        return self.gap_open + extend * length

    def dominates(self, other: "AffineGap") -> bool:
        """True if this scheme scores every path at least as high as
        ``other`` does.

        Used to verify admissibility: the edit-check scheme must
        dominate the production affine-gap scheme for the optimality
        proof of Section III-D to hold.
        """
        return (
            self.match >= other.match
            and self.mismatch <= other.mismatch
            and self.gap_open <= other.gap_open
            and self.gap_extend_ins <= other.gap_extend_ins
            and self.gap_extend_del <= other.gap_extend_del
        )

    def doubled_gap(self) -> "AffineGap":
        """The paper's global-alignment threshold substitution.

        Section III-A: "The formulation above can be easily extended for
        global alignment by replacing go with 2go and ge with 2ge."
        """
        return AffineGap(
            match=self.match,
            mismatch=self.mismatch,
            gap_open=2 * self.gap_open,
            gap_extend=2 * self.gap_extend,
            gap_extend_ins=2 * self.gap_extend_ins,
            gap_extend_del=2 * self.gap_extend_del,
        )


BWA_MEM_SCORING = AffineGap(match=1, mismatch=4, gap_open=6, gap_extend=1)
"""BWA-MEM's default scheme; used by all paper experiments (Section VI)."""


def edit_scoring() -> AffineGap:
    """Plain edit-distance scoring ``{m:1, x:-1, go:0, ge:-1}``."""
    return AffineGap(match=1, mismatch=1, gap_open=0, gap_extend=1)


def relaxed_edit_scoring() -> AffineGap:
    """The edit machine's relaxed scheme with zero-penalty insertions."""
    return AffineGap(
        match=1,
        mismatch=1,
        gap_open=0,
        gap_extend=1,
        gap_extend_ins=0,
        gap_extend_del=1,
    )
