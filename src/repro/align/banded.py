"""Banded seed-extension kernel (the BSW algorithm of paper Section II).

This is the production implementation: a row-vectorized banded DP with
the exact semantics of the dense oracle in
:mod:`repro.align.fullmatrix` (the two are tested bit-equivalent).  It
adds the three things the SeedEx architecture needs beyond plain
scores:

* the **band** parameter ``w`` — only cells with ``|i - j| <= w`` are
  computed, giving the ``O(N*w)`` complexity of Figure 3/4;
* the **boundary E-scores**: the E-channel values that would flow from
  the band's lower edge into the below-band "shaded" region, consumed
  by the E-score check of Section III-C;
* BWA-MEM-style **early termination**: the live column window shrinks
  as rows go dead and the row loop stops when nothing is live.  Unlike
  the paper's speculative hardware rendition (modelled in
  :mod:`repro.hw.bsw_core`), this software version is lossless — it
  carries trailing F-gap runs explicitly, so pruned and unpruned runs
  produce identical scores.

``extend(query, target, scoring, h0)`` with ``w=None`` computes the
full band and is the "full-band rerun" kernel of the paper's workflow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.scoring import AffineGap
from repro.genome.sequence import AMBIGUOUS_CODE


class BatchShapeError(ValueError):
    """A batch call's ``queries``/``targets``/``h0s`` lists disagree.

    Every batch kernel promises results *in input order, one per
    job* — a silent ``zip`` truncation would break that contract
    invisibly, so mismatched list lengths raise this typed error
    instead.  Subclasses :class:`ValueError` so pre-existing callers
    that caught the old untyped error keep working.
    """


def check_batch_shapes(queries, targets, h0s) -> int:
    """Validate the parallel batch lists; return the job count."""
    n = len(queries)
    if not (n == len(targets) == len(h0s)):
        raise BatchShapeError(
            "queries, targets, h0s must align: got "
            f"{n}/{len(targets)}/{len(h0s)} entries"
        )
    return n


@dataclass(frozen=True)
class ExtensionResult:
    """Scores and check inputs produced by one banded extension.

    ``lscore``/``lpos`` are the best local extension score and its cell;
    ``gscore``/``gpos`` the best to-end (semi-global) score and its
    target row, with ``gpos = -1`` when no in-band path consumes the
    whole query.  ``boundary_e[j]`` is the E-score entering the shaded
    region at query column ``j`` (empty when the band covers the whole
    matrix).  ``max_off`` is the band-demand proxy BWA-MEM reports.
    """

    lscore: int
    lpos: tuple[int, int]
    gscore: int
    gpos: int
    max_off: int
    band: int
    h0: int
    qlen: int
    tlen: int
    boundary_e: np.ndarray
    cells_computed: int
    terminated_early: bool
    boundary_f: np.ndarray | None = None
    """Upper-boundary F caps; ``None`` only transiently at construction
    — ``__post_init__`` replaces it with a zero array of the right
    length, so consumers always see an ``np.ndarray``."""

    def __post_init__(self) -> None:
        if self.boundary_f is None:
            object.__setattr__(
                self,
                "boundary_f",
                np.zeros(
                    upper_boundary_length(self.qlen, self.tlen, self.band),
                    dtype=np.int64,
                ),
            )

    @property
    def is_full_band(self) -> bool:
        """True when the band covered every cell of the matrix."""
        return self.band >= max(self.qlen, self.tlen)

    def scores(self) -> tuple[int, tuple[int, int], int, int]:
        """The bit-equivalence tuple: (lscore, lpos, gscore, gpos)."""
        return (self.lscore, self.lpos, self.gscore, self.gpos)


def full_band_for(qlen: int, tlen: int) -> int:
    """The band that makes a banded run identical to the dense oracle."""
    return max(qlen, tlen)


def boundary_length(qlen: int, tlen: int, band: int) -> int:
    """Number of columns on the shaded region's top boundary.

    The shaded region is ``{(i, j): i - j > band}``; its top boundary
    cells sit on the diagonal ``i - j = band + 1`` at columns
    ``j = 0 .. min(qlen, tlen - band - 1)``.
    """
    if tlen <= band:
        return 0
    return min(qlen, tlen - band - 1) + 1


def upper_boundary_length(qlen: int, tlen: int, band: int) -> int:
    """Rows on the above-band region's left boundary (the mirror).

    The above region is ``{(i, j): j - i > band}``; it is entered at
    cells ``(i, i + band + 1)`` for rows ``i = 0 .. min(tlen, qlen -
    band - 1)``.
    """
    if qlen <= band:
        return 0
    return min(tlen, qlen - band - 1) + 1


def extend(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int,
    w: int | None = None,
    prune: bool = True,
) -> ExtensionResult:
    """Run one banded seed extension.

    ``w=None`` (or any ``w >= max(qlen, tlen)``) computes the full
    matrix.  ``prune=False`` disables the live-window optimization; the
    result is identical either way (the optimization is lossless).
    """
    if h0 < 0:
        raise ValueError("h0 must be non-negative")
    query = np.asarray(query, dtype=np.int64)
    target = np.asarray(target, dtype=np.int64)
    qlen = len(query)
    tlen = len(target)
    if w is None:
        w = full_band_for(qlen, tlen)
    if w < 0:
        raise ValueError("band must be non-negative")

    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    m = scoring.match
    x = scoring.mismatch

    n_boundary = boundary_length(qlen, tlen, w)
    boundary_e = np.zeros(n_boundary, dtype=np.int64)
    if n_boundary > 0 and w == 0:
        # Degenerate band: the first shaded cell is (1, 0) and its
        # incoming E extends row 0's seed cell — the row loop below
        # captures at bj = i - w from i >= 1 only, so row 0's capture
        # must happen here (mirrors globalband.global_align).
        boundary_e[0] = max(0, h0 - go - ge_d)
    n_upper = upper_boundary_length(qlen, tlen, w)
    boundary_f = np.zeros(n_upper, dtype=np.int64)
    if n_upper > 0:
        # Row 0: the F value entering (0, w+1) extends the init gap.
        boundary_f[0] = max(0, h0 - go - (w + 1) * ge_i)

    # Row 0: decaying F-gap from the seed score, clamped dead at zero.
    h_prev = np.zeros(qlen + 1, dtype=np.int64)
    e_prev = np.zeros(qlen + 1, dtype=np.int64)
    h_prev[0] = h0
    row0_hi = min(qlen, w)
    if row0_hi >= 1:
        j_idx = np.arange(1, row0_hi + 1, dtype=np.int64)
        h_prev[1 : row0_hi + 1] = np.maximum(0, h0 - go - j_idx * ge_i)

    lscore = h0
    lpos = (0, 0)
    gscore = 0
    gpos = -1
    max_off = 0
    cells = row0_hi + 1
    if qlen <= w and h_prev[qlen] > gscore:
        gscore = int(h_prev[qlen])
        gpos = 0

    live = np.flatnonzero(h_prev > 0)
    beg = int(live[0]) if live.size else 1
    end = min(qlen, int(live[-1]) + 1) if live.size else 0

    terminated_early = False
    h_row = np.zeros(qlen + 1, dtype=np.int64)
    e_row = np.zeros(qlen + 1, dtype=np.int64)

    for i in range(1, tlen + 1):
        lo = max(0, i - w)
        hi = min(qlen, i + w)
        lo2 = max(lo, beg)
        hi2 = min(hi, end)
        init_col = lo == 0 and i <= w
        if lo2 > hi2 and not init_col:
            terminated_early = True
            break

        h_row.fill(0)
        e_row.fill(0)

        if init_col:
            init = max(0, h0 - go - i * ge_d)
            h_row[0] = init
            e_row[0] = init

        if lo2 <= hi2:
            # E channel: vertical moves from the previous row.
            seg = slice(lo2, hi2 + 1)
            e_row[seg] = np.maximum(
                0, np.maximum(h_prev[seg] - go, e_prev[seg]) - ge_d
            )
            if init_col and lo2 == 0:
                e_row[0] = h_row[0]

            # Diagonal contribution; dead predecessors stay dead.
            scan_lo = 0 if init_col else lo2
            width = hi2 + 1 - scan_lo
            g = np.zeros(width, dtype=np.int64)
            d_lo = max(1, scan_lo)
            if d_lo <= hi2:
                pred = h_prev[d_lo - 1 : hi2]
                # N never matches anything, itself included — the same
                # semantics as AffineGap.substitution and the dense
                # oracle.
                tc = target[i - 1]
                sub = np.where(
                    (tc == query[d_lo - 1 : hi2]) & (tc != AMBIGUOUS_CODE),
                    m,
                    -x,
                )
                g[d_lo - scan_lo :] = np.where(pred > 0, pred + sub, 0)
            np.maximum(g, e_row[scan_lo : hi2 + 1], out=g)
            if init_col:
                g[0] = max(int(g[0]), int(h_row[0]))

            # F channel as a running max-plus scan over G (lossless; see
            # DESIGN.md for the dominance argument).
            cols = np.arange(scan_lo, hi2 + 1, dtype=np.int64)
            run = np.maximum.accumulate(g - go + cols * ge_i)
            f = np.zeros(width, dtype=np.int64)
            if width > 1:
                f[1:] = np.maximum(0, run[:-1] - cols[1:] * ge_i)
            h_row[scan_lo : hi2 + 1] = np.maximum(np.maximum(g, f), 0)
            cells += width

            # Lossless trailing-F carry: if the live window ended before
            # the band edge, a positive F gap may still run rightward.
            if hi2 < hi:
                src = max(int(g[-1]) - go, int(f[-1]))
                if src > 0:
                    if ge_i == 0:
                        reach = hi - hi2
                    else:
                        reach = min(hi - hi2, (src - 1) // ge_i + 1)
                    if reach >= 1:
                        steps = np.arange(1, reach + 1, dtype=np.int64)
                        vals = src - steps * ge_i
                        vals = vals[vals > 0]
                        h_row[hi2 + 1 : hi2 + 1 + vals.size] = vals
                        cells += int(vals.size)

        # Boundary E-score: the value entering shaded cell (i+1, j) at
        # column j = i - w, derived from this row's H/E channels.
        bj = i - w
        if 0 <= bj < n_boundary and i + 1 <= tlen:
            boundary_e[bj] = max(
                0, max(int(h_row[bj]) - go, int(e_row[bj])) - ge_d
            )

        # Upper-boundary F: a (slightly conservative, hence still
        # admissible) cap on the F channel entering above-band cell
        # (i, i + w + 1), reconstructed from the row's H values.
        if 1 <= i < n_upper:
            seg_h = h_row[lo : hi + 1]
            cols = np.arange(lo, hi + 1, dtype=np.int64)
            best_src = int(np.max(seg_h + cols * ge_i)) if seg_h.size else 0
            boundary_f[i] = max(
                0, best_src - go - (i + w + 1) * ge_i
            )

        # Score accumulators (strict improvement => earliest position).
        row_slice = h_row[lo : hi + 1]
        if row_slice.size:
            best = int(row_slice.max())
            if best > lscore:
                best_j = lo + int(np.argmax(row_slice))
                lscore = best
                lpos = (i, best_j)
                max_off = max(max_off, abs(best_j - i))
        if hi == qlen and h_row[qlen] > gscore:
            gscore = int(h_row[qlen])
            gpos = i

        h_prev, h_row = h_row, h_prev
        e_prev, e_row = e_row, e_prev

        if prune:
            live = np.flatnonzero(h_prev > 0)
            if live.size == 0:
                if i < tlen:
                    terminated_early = True
                break
            beg = int(live[0])
            end = min(qlen, int(live[-1]) + 1)
        else:
            beg, end = 0, qlen

    return ExtensionResult(
        lscore=lscore,
        lpos=lpos,
        gscore=gscore,
        gpos=gpos,
        max_off=max_off,
        band=w,
        h0=h0,
        qlen=qlen,
        tlen=tlen,
        boundary_e=boundary_e,
        cells_computed=cells,
        terminated_early=terminated_early,
        boundary_f=boundary_f,
    )
