"""Alignment substrate: DP kernels shared by the whole reproduction.

Public surface:

* :mod:`repro.align.scoring` — scoring schemes;
* :mod:`repro.align.banded` — the production banded extension kernel;
* :mod:`repro.align.fullmatrix` — the dense oracle and traceback;
* :mod:`repro.align.editdp` — edit-distance kernels and the
  shaded-region extension used by the edit check;
* :mod:`repro.align.cigar` — CIGAR utilities.
"""

from repro.align.banded import ExtensionResult, extend, full_band_for
from repro.align.cigar import Cigar
from repro.align.scoring import (
    BWA_MEM_SCORING,
    AffineGap,
    edit_scoring,
    relaxed_edit_scoring,
)

__all__ = [
    "AffineGap",
    "BWA_MEM_SCORING",
    "Cigar",
    "ExtensionResult",
    "edit_scoring",
    "extend",
    "full_band_for",
    "relaxed_edit_scoring",
]
