"""Adaptive banding: the guarantee-free alternative (paper Sec II-A).

Adaptive banded aligners (the paper cites Suzuki-Kasahara and
Liao et al.) keep a fixed-width band but let it *drift*: each row the
band re-centers on the best-scoring column of the previous row.  This
tracks a single dominant alignment path with far fewer cells than a
static band of the demand's width — but nothing proves the tracked
path is optimal, which is exactly the gap SeedEx's checks close.

This implementation exists as a baseline: the comparison harness
(``benchmarks/bench_baseline_adaptive.py``) counts how often adaptive
banding silently returns a suboptimal score on workloads where SeedEx
is exact by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.scoring import AffineGap
from repro.genome.sequence import AMBIGUOUS_CODE


@dataclass(frozen=True)
class AdaptiveResult:
    """Scores from one adaptive-band extension (no guarantee)."""

    lscore: int
    gscore: int
    gpos: int
    band: int
    cells_computed: int
    drift: int
    """How far the band center wandered off the main diagonal."""


def adaptive_extend(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int,
    band: int,
) -> AdaptiveResult:
    """Extension with a drifting band of half-width ``band``.

    Row ``i``'s window is centered on the previous row's best column;
    out-of-window cells are dead.  Same dead-at-zero extension
    semantics as the static kernels.
    """
    if h0 < 0:
        raise ValueError("h0 must be non-negative")
    if band < 1:
        raise ValueError("band must be at least 1")
    query = np.asarray(query, dtype=np.int64)
    target = np.asarray(target, dtype=np.int64)
    qlen = len(query)
    tlen = len(target)
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    m = scoring.match
    x = scoring.mismatch

    h_prev = np.zeros(qlen + 1, dtype=np.int64)
    e_prev = np.zeros(qlen + 1, dtype=np.int64)
    h_prev[0] = h0
    hi0 = min(qlen, band)
    if hi0 >= 1:
        j_idx = np.arange(1, hi0 + 1, dtype=np.int64)
        h_prev[1 : hi0 + 1] = np.maximum(0, h0 - go - j_idx * ge_i)

    lscore = h0
    gscore = 0
    gpos = -1
    if qlen <= band and h_prev[qlen] > 0:
        gscore, gpos = int(h_prev[qlen]), 0
    center = 0
    max_drift = 0
    cells = hi0 + 1

    h_row = np.zeros(qlen + 1, dtype=np.int64)
    e_row = np.zeros(qlen + 1, dtype=np.int64)
    for i in range(1, tlen + 1):
        # Drift toward the previous row's argmax, at most one column
        # per row (the classic adaptive rule: the band slides, it does
        # not jump — jumping chases spurious off-path matches).
        if h_prev.max() > 0:
            desired = int(h_prev.argmax())
            if desired > center:
                center += 1
        else:
            center += 1
        max_drift = max(max_drift, abs(center - (i - 1)))
        lo = max(0, center - band + 1)
        hi = min(qlen, center + band)
        h_row.fill(0)
        e_row.fill(0)
        if lo == 0 and i <= band:
            init = max(0, h0 - go - i * ge_d)
            h_row[0] = init
            e_row[0] = init
        lo2 = max(lo, 1)
        if lo2 <= hi:
            seg = slice(lo2, hi + 1)
            e_row[seg] = np.maximum(
                0, np.maximum(h_prev[seg] - go, e_prev[seg]) - ge_d
            )
            tc = target[i - 1]
            # N never matches anything, itself included.
            sub = np.where(
                (tc == query[lo2 - 1 : hi]) & (tc != AMBIGUOUS_CODE), m, -x
            )
            pred = h_prev[lo2 - 1 : hi]
            diag = np.where(pred > 0, pred + sub, 0)
            g = np.maximum(diag, e_row[seg])
            cols = np.arange(lo2, hi + 1, dtype=np.int64)
            seed_f = (
                h_row[lo2 - 1] if lo2 - 1 == 0 else 0
            )
            shifted = np.concatenate(
                [[seed_f - go + (lo2 - 1) * ge_i], g - go + cols * ge_i]
            )
            run = np.maximum.accumulate(shifted)
            f = np.maximum(0, run[:-1] - cols * ge_i)
            h_row[seg] = np.maximum(np.maximum(g, f), 0)
            cells += hi - lo2 + 1

        best = int(h_row.max())
        if best > lscore:
            lscore = best
        if hi == qlen and h_row[qlen] > gscore:
            gscore = int(h_row[qlen])
            gpos = i
        if best == 0 and h_row[0] == 0:
            break  # everything dead: adaptive window lost the path
        h_prev, h_row = h_row, h_prev
        e_prev, e_row = e_row, e_prev

    return AdaptiveResult(
        lscore=lscore,
        gscore=gscore,
        gpos=gpos,
        band=band,
        cells_computed=cells,
        drift=max_drift,
    )
