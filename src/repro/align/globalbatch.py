"""Lockstep banded global fills for batched inter-seed gaps.

The long-read pipeline's scalar path fills each inter-seed gap with
one :class:`~repro.core.globalcheck.GlobalSeedEx` call — a narrow
banded global alignment, a sound optimality check, and a full-band
rerun when the check fails.  This module is the batched rendition:
whole *waves* of gap jobs, collected across chains and reads, sweep
together in an inter-sequence lockstep fill (jobs × band columns),
shape-bucketed the way the striped extension kernel buckets its
batches.

The optimality check here is the band-edge bound the overlap kernel
uses (:mod:`repro.align.overlapdp`), specialized to global mode: a
band-leaving path first exits through a band-edge diagonal cell
``(i, j)`` carrying at most the banded value there, and its remaining
climb to the corner gains at most ``min(tlen - i, qlen - j) * match``
(the corner needs both sequences fully consumed).  The bound is
admissible, so a passing check proves the banded corner score *is*
the full-band score; failing jobs escalate through a geometric band
ladder (:func:`fill_gaps_guaranteed`) and finish, at the latest, at
full band.  Every returned score therefore equals
:func:`repro.align.globalband.global_align` at full band —
bit-identical to what the scalar path's checked fills return, which
is what keeps the batched long-read SAM byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.fullmatrix import NEG_INF
from repro.align.overlapdp import _DEAD, _shape_class
from repro.align.scoring import AffineGap
from repro.genome.sequence import AMBIGUOUS_CODE

ESCALATION_FACTOR = 4
"""Band multiplier between rungs of the escalation ladder."""


@dataclass(frozen=True)
class GlobalFillResult:
    """One banded global fill and its band-edge check inputs."""

    score: int
    band: int
    qlen: int
    tlen: int
    bound: int
    cells_computed: int

    @property
    def is_full_band(self) -> bool:
        """True when the band covered every cell of the matrix."""
        return self.band >= max(self.qlen, self.tlen)

    @property
    def optimal(self) -> bool:
        """True when the banded corner is provably the dense optimum."""
        if self.is_full_band:
            return True
        return self.score > _DEAD and self.score >= self.bound


@dataclass(frozen=True)
class GapFillOutcome:
    """A guaranteed-optimal gap fill: final result plus its ladder."""

    result: GlobalFillResult
    band_requested: int
    escalations: int

    @property
    def rerun(self) -> bool:
        """True when the first speculation's check failed."""
        return self.escalations > 0


def _clamp_band(qlen: int, tlen: int, w: int | None) -> int:
    """The effective band: wide enough to hold the global corner."""
    if w is None:
        return max(qlen, tlen)
    if w < 0:
        raise ValueError("band must be non-negative")
    return max(w, abs(tlen - qlen))


def fill_global_scalar(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    w: int | None = None,
) -> GlobalFillResult:
    """Reference per-cell banded global fill with edge-bound capture.

    The band is clamped to ``max(w, |tlen - qlen|)`` so the corner is
    always reachable (the same clamp ``GlobalSeedEx`` applies).
    """
    query = np.asarray(query, dtype=np.int64)
    target = np.asarray(target, dtype=np.int64)
    qlen, tlen = len(query), len(target)
    w = _clamp_band(qlen, tlen, w)
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    m = scoring.match

    H = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    E = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    F = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    H[0][0] = 0
    cells = 1
    for j in range(1, min(qlen, w) + 1):
        F[0][j] = H[0][j] = -(go + j * ge_i)
        cells += 1
    for i in range(1, min(tlen, w) + 1):
        E[i][0] = H[i][0] = -(go + i * ge_d)
        cells += 1
    for i in range(1, tlen + 1):
        for j in range(max(1, i - w), min(qlen, i + w) + 1):
            E[i][j] = max(H[i - 1][j] - go, E[i - 1][j]) - ge_d
            F[i][j] = max(H[i][j - 1] - go, F[i][j - 1]) - ge_i
            diag = H[i - 1][j - 1] + scoring.substitution(
                int(target[i - 1]), int(query[j - 1])
            )
            H[i][j] = max(diag, E[i][j], F[i][j])
            cells += 1

    score = int(H[tlen][qlen])
    bound = NEG_INF
    if w < max(qlen, tlen):
        for i in range(tlen + 1):
            for j in (i - w, i + w):
                if 0 <= j <= qlen and H[i][j] > _DEAD:
                    cand = int(H[i][j]) + min(tlen - i, qlen - j) * m
                    if cand > bound:
                        bound = cand
    return GlobalFillResult(
        score=score, band=w, qlen=qlen, tlen=tlen, bound=bound,
        cells_computed=cells,
    )


def fill_global_batch(
    queries: list[np.ndarray],
    targets: list[np.ndarray],
    scoring: AffineGap,
    w: int | None = None,
) -> list[GlobalFillResult]:
    """Fill many global gap jobs in inter-sequence lockstep.

    Jobs are bucketed by ``(shape_class(qlen), shape_class(tlen))``;
    each bucket sweeps every job together.  Per-job results are
    bit-identical to :func:`fill_global_scalar` on
    ``(score, band, bound, optimal)``; ``cells_computed`` reflects the
    bucket's padded schedule.
    """
    if len(queries) != len(targets):
        raise ValueError("queries and targets must align")
    out: list[GlobalFillResult | None] = [None] * len(queries)
    buckets: dict[tuple[int, int], list[int]] = {}
    for k, (q, t) in enumerate(zip(queries, targets)):
        key = (_shape_class(len(q)), _shape_class(len(t)))
        buckets.setdefault(key, []).append(k)
    for idx in buckets.values():
        for k, res in zip(
            idx,
            _lockstep_bucket(
                [queries[k] for k in idx],
                [targets[k] for k in idx],
                scoring,
                w,
            ),
        ):
            out[k] = res
    return [r for r in out if r is not None]


def _lockstep_bucket(
    queries: list[np.ndarray],
    targets: list[np.ndarray],
    scoring: AffineGap,
    w: int | None,
) -> list[GlobalFillResult]:
    """One bucket's lockstep global sweep over a shared padded shape."""
    n = len(queries)
    qlens = np.array([len(q) for q in queries], dtype=np.int64)
    tlens = np.array([len(t) for t in targets], dtype=np.int64)
    qmax = int(qlens.max())
    tmax = int(tlens.max())
    bands = np.array(
        [_clamp_band(int(ql), int(tl), w) for ql, tl in zip(qlens, tlens)],
        dtype=np.int64,
    )
    ws = int(bands.max())
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    m = scoring.match
    x = scoring.mismatch

    qpad = np.full((n, max(1, qmax)), AMBIGUOUS_CODE, dtype=np.int64)
    tpad = np.full((n, max(1, tmax)), AMBIGUOUS_CODE, dtype=np.int64)
    for k, (q, t) in enumerate(zip(queries, targets)):
        qpad[k, : len(q)] = q
        tpad[k, : len(t)] = t

    cols = np.arange(qmax + 1, dtype=np.int64)
    h_prev = np.full((n, qmax + 1), NEG_INF, dtype=np.int64)
    e_prev = np.full((n, qmax + 1), NEG_INF, dtype=np.int64)
    h_prev[:, 0] = 0
    row0 = -(go + cols[1:] * ge_i)
    mask0 = (cols[None, 1:] <= bands[:, None]) & (
        cols[None, 1:] <= qlens[:, None]
    )
    h_prev[:, 1:] = np.where(mask0, row0[None, :], NEG_INF)

    score = np.full(n, NEG_INF, dtype=np.int64)
    banded = bands < np.maximum(qlens, tlens)
    jobs = np.arange(n)
    sel = tlens == 0
    score[sel] = h_prev[jobs, qlens][sel]
    bound = np.full(n, NEG_INF, dtype=np.int64)
    sel = banded & (bands <= qlens)
    if sel.any():
        edge = h_prev[jobs, np.minimum(bands, qmax)]
        cand = edge + np.minimum(tlens, qlens - bands) * m
        bound[sel] = cand[sel]

    h_row = np.empty_like(h_prev)
    e_row = np.empty_like(e_prev)
    for i in range(1, tmax + 1):
        lo = max(0, i - ws)
        hi = min(qmax, i + ws)
        h_row.fill(NEG_INF)
        e_row.fill(NEG_INF)
        col0 = (i <= bands) & (i <= tlens)
        h_row[col0, 0] = -(go + i * ge_d)
        e_row[col0, 0] = h_row[col0, 0]

        lo2 = max(lo, 1)
        if lo2 <= hi:
            seg = slice(lo2, hi + 1)
            e_row[:, seg] = (
                np.maximum(h_prev[:, seg] - go, e_prev[:, seg]) - ge_d
            )
            tc = tpad[:, i - 1][:, None]
            qseg = qpad[:, lo2 - 1 : hi]
            sub = np.where((tc == qseg) & (tc != AMBIGUOUS_CODE), m, -x)
            diag = h_prev[:, lo2 - 1 : hi] + sub
            g = np.maximum(diag, e_row[:, seg])
            # Mask G to each job's *own* band before the F scan: a
            # wider bucket-mate's sweep computes cells left of this
            # job's band whose E channel drops in from the previous
            # row's edge, and an unmasked run-max would chain that
            # into in-band F — the band-clamp asymmetry the sweep
            # tests pin down.
            own = np.abs(cols[None, seg] - i) <= bands[:, None]
            own &= cols[None, seg] <= qlens[:, None]
            g = np.where(own, g, NEG_INF)
            src = np.empty((n, hi - lo2 + 2), dtype=np.int64)
            src[:, 0] = np.where(
                (lo2 == 1) & (i <= bands), h_row[:, 0], NEG_INF
            )
            src[:, 1:] = g
            ccols = cols[lo2 - 1 : hi + 1]
            run = np.maximum.accumulate(
                src - go + ccols[None, :] * ge_i, axis=1
            )
            f = run[:, :-1] - ccols[None, 1:] * ge_i
            h_row[:, seg] = np.where(
                own, np.maximum(g, f), NEG_INF
            )
            e_row[:, seg] = np.where(own, e_row[:, seg], NEG_INF)

        live = i <= tlens
        corner = live & (tlens == i)
        if corner.any():
            score[corner] = h_row[jobs, np.minimum(qlens, qmax)][corner]
        for j_edge in (i - bands, i + bands):
            je = np.clip(j_edge, 0, qmax)
            sel = (
                live
                & banded
                & (j_edge >= 0)
                & (j_edge <= qlens)
                & (h_row[jobs, je] > _DEAD)
            )
            cand = h_row[jobs, je] + np.minimum(tlens - i, qlens - je) * m
            bound[sel] = np.maximum(bound[sel], cand[sel])

        h_prev, h_row = h_row, h_prev
        e_prev, e_row = e_row, e_prev

    cells = 0
    for i in range(tmax + 1):
        lo = max(0, i - ws)
        hi = min(qmax, i + ws)
        if lo <= hi:
            cells += hi - lo + 1
    return [
        GlobalFillResult(
            score=int(score[k]),
            band=int(bands[k]),
            qlen=int(qlens[k]),
            tlen=int(tlens[k]),
            bound=int(bound[k]),
            cells_computed=cells,
        )
        for k in range(n)
    ]


def fill_gaps_guaranteed(
    queries: list[np.ndarray],
    targets: list[np.ndarray],
    scoring: AffineGap,
    band: int,
    escalation: int = ESCALATION_FACTOR,
) -> list[GapFillOutcome]:
    """Batched gap fills with adaptive band escalation.

    Every job starts at ``band``; jobs whose band-edge check fails
    rerun together at ``band * escalation``, then the stragglers at
    full band (where the check is vacuous).  Returned scores always
    equal the dense full-band optimum.
    """
    if escalation < 2:
        raise ValueError("escalation factor must be at least 2")
    n = len(queries)
    out: list[GapFillOutcome | None] = [None] * n
    pending = list(range(n))
    rung_band: int | None = band
    rungs = 0
    while pending:
        res = fill_global_batch(
            [queries[k] for k in pending],
            [targets[k] for k in pending],
            scoring,
            w=rung_band,
        )
        failures: list[int] = []
        for k, r in zip(pending, res):
            if r.optimal:
                out[k] = GapFillOutcome(
                    result=r, band_requested=band, escalations=rungs
                )
            else:
                failures.append(k)
        pending = failures
        if not pending:
            break
        rungs += 1
        next_band = rung_band * escalation if rung_band else None
        widest = max(
            max(len(queries[k]), len(targets[k])) for k in pending
        )
        if next_band is None or next_band >= widest:
            rung_band = None  # full band: the ladder's last rung
        else:
            rung_band = next_band
    return [o for o in out if o is not None]
