"""Dense dynamic-programming oracle.

This module is the single source of truth for the DP semantics used
throughout the repository (see DESIGN.md, "DP semantics").  It fills the
whole ``(tlen+1) x (qlen+1)`` matrix with explicit loops and keeps the
H/E/F channels, so it is slow but obviously correct.  The production
kernels in :mod:`repro.align.banded` are tested for bit-equivalence
against this oracle.

Extension mode (the BWA-MEM ``ksw_extend`` convention):

* rows ``i = 0..tlen`` index the reference/target, columns
  ``j = 0..qlen`` the query; cell ``(0, 0)`` carries the seed score
  ``h0``;
* a cell with ``H <= 0`` is *dead* — scores never restart from zero, so
  every positive score traces back to the seed at the origin;
* ``lscore`` is the best score over all cells (the local / soft-clip
  extension score) and ``gscore`` the best score in the last column
  (query fully consumed; the semi-global "to-end" score);
* ties break toward the smallest ``i``, then smallest ``j`` (row-major
  first strict improvement), matching the accelerator's accumulators.

Global mode is plain Needleman-Wunsch with affine gaps: no dead cells,
scores may go negative, and the score of interest is ``H[tlen][qlen]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.cigar import Cigar
from repro.align.scoring import AffineGap

NEG_INF = -(10**9)
"""Effectively minus infinity for integer DP (safe from overflow)."""


@dataclass(frozen=True)
class DenseMatrices:
    """Full H/E/F channels plus derived scores for one extension."""

    h: np.ndarray
    e: np.ndarray
    f: np.ndarray
    lscore: int
    lpos: tuple[int, int]
    gscore: int
    gpos: int
    max_off: int

    @property
    def tlen(self) -> int:
        """Target (reference) length of this matrix."""
        return self.h.shape[0] - 1

    @property
    def qlen(self) -> int:
        """Query length of this matrix."""
        return self.h.shape[1] - 1


def fill_extension(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int,
) -> DenseMatrices:
    """Fill the full extension matrix (reference oracle, no pruning).

    ``query`` and ``target`` are encoded base arrays.  ``h0`` is the
    incoming seed score; it must be positive for any extension to be
    live.
    """
    if h0 < 0:
        raise ValueError("h0 must be non-negative")
    qlen = len(query)
    tlen = len(target)
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    m = scoring.match

    h = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
    e = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
    f = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)

    h[0][0] = h0
    for j in range(1, qlen + 1):
        f[0][j] = max(0, h0 - go - j * ge_i)
        h[0][j] = f[0][j]
    for i in range(1, tlen + 1):
        e[i][0] = max(0, h0 - go - i * ge_d)
        h[i][0] = e[i][0]

    for i in range(1, tlen + 1):
        for j in range(1, qlen + 1):
            diag = 0
            if h[i - 1][j - 1] > 0:
                diag = h[i - 1][j - 1] + scoring.substitution(
                    int(target[i - 1]), int(query[j - 1])
                )
            e[i][j] = max(0, max(h[i - 1][j] - go, e[i - 1][j]) - ge_d)
            f[i][j] = max(0, max(h[i][j - 1] - go, f[i][j - 1]) - ge_i)
            h[i][j] = max(diag, e[i][j], f[i][j], 0)

    lscore, lpos, gscore, gpos, max_off = scan_scores(h, h0, qlen, m)
    return DenseMatrices(h, e, f, lscore, lpos, gscore, gpos, max_off)


def scan_scores(
    h: np.ndarray, h0: int, qlen: int, match: int
) -> tuple[int, tuple[int, int], int, int, int]:
    """Derive lscore/gscore/positions with the canonical tie-breaking.

    Row-major scan; updates only on strict improvement, so ties resolve
    to the smallest ``i`` then smallest ``j``.  ``max_off`` tracks the
    largest diagonal offset ``|j - i|`` at which the running local best
    improved — the same band-demand proxy BWA-MEM's kernel reports.
    """
    tlen = h.shape[0] - 1
    lscore = h0
    lpos = (0, 0)
    gscore = 0
    gpos = -1
    max_off = 0
    for i in range(tlen + 1):
        row = h[i]
        best_j = -1
        best = lscore
        for j in range(qlen + 1):
            if row[j] > best:
                best = int(row[j])
                best_j = j
        if best_j >= 0:
            lscore = best
            lpos = (i, best_j)
            max_off = max(max_off, abs(best_j - i))
        if row[qlen] > gscore:
            gscore = int(row[qlen])
            gpos = i
    return lscore, lpos, gscore, gpos, max_off


def fill_global(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int = 0,
) -> np.ndarray:
    """Fill the full global (Needleman-Wunsch, affine gap) matrix.

    Returns the H channel; the global score is ``h[tlen][qlen]``.
    Unreachable E/F states are ``NEG_INF``.
    """
    qlen = len(query)
    tlen = len(target)
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del

    h = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    e = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    f = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)

    h[0][0] = h0
    for j in range(1, qlen + 1):
        f[0][j] = h0 - go - j * ge_i
        h[0][j] = f[0][j]
    for i in range(1, tlen + 1):
        e[i][0] = h0 - go - i * ge_d
        h[i][0] = e[i][0]

    for i in range(1, tlen + 1):
        for j in range(1, qlen + 1):
            diag = h[i - 1][j - 1] + scoring.substitution(
                int(target[i - 1]), int(query[j - 1])
            )
            e[i][j] = max(h[i - 1][j] - go, e[i - 1][j]) - ge_d
            f[i][j] = max(h[i][j - 1] - go, f[i][j - 1]) - ge_i
            h[i][j] = max(diag, e[i][j], f[i][j])

    return h


def traceback_global(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int = 0,
) -> Cigar:
    """Trace the optimal *global* path from corner to corner.

    Used by the long-read fill aligner: the gap between two chained
    seeds is globally aligned and its trace stitched into the read's
    CIGAR.  Dense fill — fine for the short inter-seed gaps.
    """
    qlen = len(query)
    tlen = len(target)
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del

    h = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    e = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    f = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    h[0][0] = h0
    for j in range(1, qlen + 1):
        f[0][j] = h0 - go - j * ge_i
        h[0][j] = f[0][j]
    for i in range(1, tlen + 1):
        e[i][0] = h0 - go - i * ge_d
        h[i][0] = e[i][0]
    for i in range(1, tlen + 1):
        for j in range(1, qlen + 1):
            diag = h[i - 1][j - 1] + scoring.substitution(
                int(target[i - 1]), int(query[j - 1])
            )
            e[i][j] = max(h[i - 1][j] - go, e[i - 1][j]) - ge_d
            f[i][j] = max(h[i][j - 1] - go, f[i][j - 1]) - ge_i
            h[i][j] = max(diag, e[i][j], f[i][j])

    ops: list[tuple[int, str]] = []
    i, j = tlen, qlen
    state = "H"
    while i > 0 or j > 0:
        if state == "H":
            cur = h[i][j]
            if i > 0 and j > 0:
                sub = scoring.substitution(int(target[i - 1]), int(query[j - 1]))
                if cur == h[i - 1][j - 1] + sub:
                    ops.append((1, "M"))
                    i -= 1
                    j -= 1
                    continue
            if i > 0 and cur == e[i][j]:
                state = "E"
                continue
            if j > 0 and cur == f[i][j]:
                state = "F"
                continue
            raise AssertionError("broken global traceback")
        if state == "E":
            ops.append((1, "D"))
            if i == 1 or e[i][j] == h[i - 1][j] - go - ge_d:
                state = "H"
            i -= 1
            continue
        ops.append((1, "I"))
        if j == 1 or f[i][j] == h[i][j - 1] - go - ge_i:
            state = "H"
        j -= 1

    ops.reverse()
    return Cigar.from_ops(ops)


def traceback_extension(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int,
    end: tuple[int, int],
) -> Cigar:
    """Trace the optimal path from the origin to ``end = (i, j)``.

    The paper performs traceback on the host, once per read, for the
    winning extension only (Section II-A); this dense implementation is
    that host-side step.  The trace covers query ``[0, j)`` and target
    ``[0, i)``; any unconsumed query suffix is the caller's to soft-clip.
    """
    mats = fill_extension(query, target, scoring, h0)
    i, j = end
    if not (0 <= i <= mats.tlen and 0 <= j <= mats.qlen):
        raise ValueError("traceback endpoint out of range")
    if mats.h[i][j] <= 0:
        raise ValueError("cannot trace back from a dead cell")
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del

    ops: list[tuple[int, str]] = []
    state = "H"
    while i > 0 or j > 0:
        if state == "H":
            cur = mats.h[i][j]
            if i > 0 and j > 0 and mats.h[i - 1][j - 1] > 0:
                sub = scoring.substitution(int(target[i - 1]), int(query[j - 1]))
                if cur == mats.h[i - 1][j - 1] + sub:
                    ops.append((1, "M"))
                    i -= 1
                    j -= 1
                    continue
            if i > 0 and cur == mats.e[i][j]:
                state = "E"
                continue
            if j > 0 and cur == mats.f[i][j]:
                state = "F"
                continue
            raise AssertionError("broken traceback: no predecessor matches")
        if state == "E":
            ops.append((1, "D"))
            prev_from_h = mats.h[i - 1][j] - go - ge_d
            if mats.e[i][j] == prev_from_h:
                state = "H"
            i -= 1
            continue
        # state == "F"
        ops.append((1, "I"))
        prev_from_h = mats.h[i][j - 1] - go - ge_i
        if mats.f[i][j] == prev_from_h:
            state = "H"
        j -= 1

    ops.reverse()
    return Cigar.from_ops(ops)
