"""Dense dynamic-programming oracle.

This module is the single source of truth for the DP semantics used
throughout the repository (see DESIGN.md, "DP semantics").  It fills the
whole ``(tlen+1) x (qlen+1)`` matrix with explicit loops and keeps the
H/E/F channels, so it is slow but obviously correct.  The production
kernels in :mod:`repro.align.banded` are tested for bit-equivalence
against this oracle.

Extension mode (the BWA-MEM ``ksw_extend`` convention):

* rows ``i = 0..tlen`` index the reference/target, columns
  ``j = 0..qlen`` the query; cell ``(0, 0)`` carries the seed score
  ``h0``;
* a cell with ``H <= 0`` is *dead* — scores never restart from zero, so
  every positive score traces back to the seed at the origin;
* ``lscore`` is the best score over all cells (the local / soft-clip
  extension score) and ``gscore`` the best score in the last column
  (query fully consumed; the semi-global "to-end" score);
* ties break toward the smallest ``i``, then smallest ``j`` (row-major
  first strict improvement), matching the accelerator's accumulators.

Global mode is plain Needleman-Wunsch with affine gaps: no dead cells,
scores may go negative, and the score of interest is ``H[tlen][qlen]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.cigar import Cigar
from repro.align.scoring import AffineGap

NEG_INF = -(10**9)
"""Effectively minus infinity for integer DP (safe from overflow)."""


@dataclass(frozen=True)
class DenseMatrices:
    """Full H/E/F channels plus derived scores for one extension."""

    h: np.ndarray
    e: np.ndarray
    f: np.ndarray
    lscore: int
    lpos: tuple[int, int]
    gscore: int
    gpos: int
    max_off: int

    @property
    def tlen(self) -> int:
        """Target (reference) length of this matrix."""
        return self.h.shape[0] - 1

    @property
    def qlen(self) -> int:
        """Query length of this matrix."""
        return self.h.shape[1] - 1


def fill_extension(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int,
) -> DenseMatrices:
    """Fill the full extension matrix (reference oracle, no pruning).

    ``query`` and ``target`` are encoded base arrays.  ``h0`` is the
    incoming seed score; it must be positive for any extension to be
    live.
    """
    if h0 < 0:
        raise ValueError("h0 must be non-negative")
    qlen = len(query)
    tlen = len(target)
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    m = scoring.match

    h = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
    e = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
    f = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)

    h[0][0] = h0
    for j in range(1, qlen + 1):
        f[0][j] = max(0, h0 - go - j * ge_i)
        h[0][j] = f[0][j]
    for i in range(1, tlen + 1):
        e[i][0] = max(0, h0 - go - i * ge_d)
        h[i][0] = e[i][0]

    for i in range(1, tlen + 1):
        for j in range(1, qlen + 1):
            diag = 0
            if h[i - 1][j - 1] > 0:
                diag = h[i - 1][j - 1] + scoring.substitution(
                    int(target[i - 1]), int(query[j - 1])
                )
            e[i][j] = max(0, max(h[i - 1][j] - go, e[i - 1][j]) - ge_d)
            f[i][j] = max(0, max(h[i][j - 1] - go, f[i][j - 1]) - ge_i)
            h[i][j] = max(diag, e[i][j], f[i][j], 0)

    lscore, lpos, gscore, gpos, max_off = scan_scores(h, h0, qlen, m)
    return DenseMatrices(h, e, f, lscore, lpos, gscore, gpos, max_off)


def _substitution_table(
    scoring: AffineGap, max_code: int
) -> np.ndarray:
    """Dense ``(code, code) -> score`` lookup built from the scoring
    scheme's own :meth:`~repro.align.scoring.AffineGap.substitution`,
    so vectorized fills cannot drift from the scalar oracle."""
    size = max_code + 1
    table = np.empty((size, size), dtype=np.int64)
    for a in range(size):
        for b in range(size):
            table[a, b] = scoring.substitution(a, b)
    return table


def _scan_scores_vectorized(
    h: np.ndarray, h0: int
) -> tuple[int, tuple[int, int], int, int, int]:
    """Vectorized :func:`scan_scores` (same accumulator semantics).

    Each row contributes at most one update — its max at the first
    column achieving it, taken only when it strictly beats the running
    best — exactly like the scalar loop, so ties resolve identically.
    """
    qlen = h.shape[1] - 1
    row_best = h.max(axis=1)
    row_arg = h.argmax(axis=1)
    running = np.maximum.accumulate(np.maximum(row_best, h0))
    prev = np.empty_like(running)
    prev[0] = h0
    prev[1:] = running[:-1]
    improved = np.flatnonzero(row_best > prev)
    if improved.size:
        last = int(improved[-1])
        lscore = int(row_best[last])
        lpos = (last, int(row_arg[last]))
        max_off = int(np.abs(row_arg[improved] - improved).max())
    else:
        lscore, lpos, max_off = h0, (0, 0), 0
    col = h[:, qlen]
    gscore = int(col.max())
    if gscore > 0:
        gpos = int(col.argmax())
    else:
        gscore, gpos = 0, -1
    return lscore, lpos, gscore, gpos, max_off


_BATCH_MAX_CELLS = 2_000_000
"""Cells per lockstep fill chunk; bounds peak matrix memory."""


def fill_extension_batch(
    queries: list[np.ndarray],
    targets: list[np.ndarray],
    scoring: AffineGap,
    h0s: list[int],
    max_cells: int = _BATCH_MAX_CELLS,
) -> list[DenseMatrices]:
    """Fill many extension matrices in lockstep (host traceback wave).

    The paper's host runs traceback for each read's winning extension
    only; the batched pipeline collects those winners into one wave
    and fills all their dense matrices together, vectorizing across
    jobs x columns.  Per-job H/E/F channels and derived scores are
    bit-identical to :func:`fill_extension` (property-tested in
    ``tests/align/test_fullmatrix_batch.py``); jobs are chunked so no
    more than ``max_cells`` padded cells are in flight at once.
    """
    n = len(queries)
    if not (n == len(targets) == len(h0s)):
        raise ValueError("queries, targets, h0s must align")
    out: list[DenseMatrices] = []
    start = 0
    while start < n:
        stop = start + 1
        max_q = len(queries[start]) + 1
        max_t = len(targets[start]) + 1
        while stop < n:
            grow_q = max(max_q, len(queries[stop]) + 1)
            grow_t = max(max_t, len(targets[stop]) + 1)
            if (stop + 1 - start) * grow_q * grow_t > max_cells:
                break
            max_q, max_t = grow_q, grow_t
            stop += 1
        out.extend(
            _fill_chunk(
                queries[start:stop],
                targets[start:stop],
                scoring,
                h0s[start:stop],
            )
        )
        start = stop
    return out


def _fill_chunk(
    queries: list[np.ndarray],
    targets: list[np.ndarray],
    scoring: AffineGap,
    h0s: list[int],
) -> list[DenseMatrices]:
    """One lockstep fill over jobs padded to a shared matrix shape.

    Padded cells sit strictly right of / below every job's real
    matrix, and the recurrence only looks left and up, so they can
    never influence a real cell; each job's channels are sliced back
    out at the end.
    """
    for h0 in h0s:
        if h0 < 0:
            raise ValueError("h0 must be non-negative")
    n = len(queries)
    qlens = np.array([len(q) for q in queries], dtype=np.int64)
    tlens = np.array([len(t) for t in targets], dtype=np.int64)
    max_q = int(qlens.max())
    max_t = int(tlens.max())
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del

    qpad = np.zeros((n, max(1, max_q)), dtype=np.int64)
    tpad = np.zeros((n, max(1, max_t)), dtype=np.int64)
    for k, (q, t) in enumerate(zip(queries, targets)):
        qpad[k, : len(q)] = q
        tpad[k, : len(t)] = t
    max_code = int(max(qpad.max(initial=0), tpad.max(initial=0)))
    sub_table = _substitution_table(scoring, max_code)
    h0v = np.array(h0s, dtype=np.int64)

    big_h = np.zeros((n, max_t + 1, max_q + 1), dtype=np.int64)
    big_e = np.zeros((n, max_t + 1, max_q + 1), dtype=np.int64)
    big_f = np.zeros((n, max_t + 1, max_q + 1), dtype=np.int64)

    cols = np.arange(max_q + 1, dtype=np.int64)
    if max_q:
        row0 = np.maximum(0, h0v[:, None] - go - cols[None, 1:] * ge_i)
        big_f[:, 0, 1:] = row0
        big_h[:, 0, 1:] = row0
    big_h[:, 0, 0] = h0v
    if max_t:
        rows = np.arange(1, max_t + 1, dtype=np.int64)
        col0 = np.maximum(0, h0v[:, None] - go - rows[None, :] * ge_d)
        big_e[:, 1:, 0] = col0
        big_h[:, 1:, 0] = col0

    for i in range(1, max_t + 1):
        h_prev = big_h[:, i - 1, :]
        e_prev = big_e[:, i - 1, :]
        init = big_h[:, i, 0]

        e_row = np.maximum(0, np.maximum(h_prev - go, e_prev) - ge_d)
        e_row[:, 0] = init

        # G = the non-F part of H: diagonal (dead predecessors stay
        # dead) vs the E channel; column 0 is the init value.
        sub = sub_table[tpad[:, i - 1][:, None], qpad]
        g = np.empty((n, max_q + 1), dtype=np.int64)
        g[:, 0] = init
        g[:, 1:] = np.maximum(
            np.where(h_prev[:, :-1] > 0, h_prev[:, :-1] + sub, 0),
            e_row[:, 1:],
        )

        # F channel as a running max-plus scan over G.  Exact, not
        # just dominant: f[j] = max(0, max_{k<j} G[k] - go - (j-k)*ge)
        # is the closed form of the per-cell recurrence because the
        # 0-clamp and the H-vs-F max both collapse (see banded.extend).
        run = np.maximum.accumulate(g - go + cols[None, :] * ge_i, axis=1)
        f_row = big_f[:, i, :]
        f_row[:, 1:] = np.maximum(0, run[:, :-1] - cols[None, 1:] * ge_i)
        f_row[:, 0] = 0

        h_row = np.maximum(np.maximum(g, f_row), 0)
        h_row[:, 0] = init
        big_e[:, i, :] = e_row
        big_h[:, i, :] = h_row

    out: list[DenseMatrices] = []
    for k in range(n):
        tl = int(tlens[k])
        ql = int(qlens[k])
        h = big_h[k, : tl + 1, : ql + 1].copy()
        e = big_e[k, : tl + 1, : ql + 1].copy()
        f = big_f[k, : tl + 1, : ql + 1].copy()
        lscore, lpos, gscore, gpos, max_off = _scan_scores_vectorized(
            h, int(h0v[k])
        )
        out.append(
            DenseMatrices(h, e, f, lscore, lpos, gscore, gpos, max_off)
        )
    return out


def scan_scores(
    h: np.ndarray, h0: int, qlen: int, match: int
) -> tuple[int, tuple[int, int], int, int, int]:
    """Derive lscore/gscore/positions with the canonical tie-breaking.

    Row-major scan; updates only on strict improvement, so ties resolve
    to the smallest ``i`` then smallest ``j``.  ``max_off`` tracks the
    largest diagonal offset ``|j - i|`` at which the running local best
    improved — the same band-demand proxy BWA-MEM's kernel reports.
    """
    tlen = h.shape[0] - 1
    lscore = h0
    lpos = (0, 0)
    gscore = 0
    gpos = -1
    max_off = 0
    for i in range(tlen + 1):
        row = h[i]
        best_j = -1
        best = lscore
        for j in range(qlen + 1):
            if row[j] > best:
                best = int(row[j])
                best_j = j
        if best_j >= 0:
            lscore = best
            lpos = (i, best_j)
            max_off = max(max_off, abs(best_j - i))
        if row[qlen] > gscore:
            gscore = int(row[qlen])
            gpos = i
    return lscore, lpos, gscore, gpos, max_off


def fill_global(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int = 0,
) -> np.ndarray:
    """Fill the full global (Needleman-Wunsch, affine gap) matrix.

    Returns the H channel; the global score is ``h[tlen][qlen]``.
    Unreachable E/F states are ``NEG_INF``.
    """
    qlen = len(query)
    tlen = len(target)
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del

    h = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    e = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    f = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)

    h[0][0] = h0
    for j in range(1, qlen + 1):
        f[0][j] = h0 - go - j * ge_i
        h[0][j] = f[0][j]
    for i in range(1, tlen + 1):
        e[i][0] = h0 - go - i * ge_d
        h[i][0] = e[i][0]

    for i in range(1, tlen + 1):
        for j in range(1, qlen + 1):
            diag = h[i - 1][j - 1] + scoring.substitution(
                int(target[i - 1]), int(query[j - 1])
            )
            e[i][j] = max(h[i - 1][j] - go, e[i - 1][j]) - ge_d
            f[i][j] = max(h[i][j - 1] - go, f[i][j - 1]) - ge_i
            h[i][j] = max(diag, e[i][j], f[i][j])

    return h


def traceback_global(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int = 0,
) -> Cigar:
    """Trace the optimal *global* path from corner to corner.

    Used by the long-read fill aligner: the gap between two chained
    seeds is globally aligned and its trace stitched into the read's
    CIGAR.  Dense fill — fine for the short inter-seed gaps.
    """
    qlen = len(query)
    tlen = len(target)
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del

    h = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    e = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    f = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    h[0][0] = h0
    for j in range(1, qlen + 1):
        f[0][j] = h0 - go - j * ge_i
        h[0][j] = f[0][j]
    for i in range(1, tlen + 1):
        e[i][0] = h0 - go - i * ge_d
        h[i][0] = e[i][0]
    for i in range(1, tlen + 1):
        for j in range(1, qlen + 1):
            diag = h[i - 1][j - 1] + scoring.substitution(
                int(target[i - 1]), int(query[j - 1])
            )
            e[i][j] = max(h[i - 1][j] - go, e[i - 1][j]) - ge_d
            f[i][j] = max(h[i][j - 1] - go, f[i][j - 1]) - ge_i
            h[i][j] = max(diag, e[i][j], f[i][j])

    ops: list[tuple[int, str]] = []
    i, j = tlen, qlen
    state = "H"
    while i > 0 or j > 0:
        if state == "H":
            cur = h[i][j]
            if i > 0 and j > 0:
                sub = scoring.substitution(int(target[i - 1]), int(query[j - 1]))
                if cur == h[i - 1][j - 1] + sub:
                    ops.append((1, "M"))
                    i -= 1
                    j -= 1
                    continue
            if i > 0 and cur == e[i][j]:
                state = "E"
                continue
            if j > 0 and cur == f[i][j]:
                state = "F"
                continue
            raise AssertionError("broken global traceback")
        if state == "E":
            ops.append((1, "D"))
            if i == 1 or e[i][j] == h[i - 1][j] - go - ge_d:
                state = "H"
            i -= 1
            continue
        ops.append((1, "I"))
        if j == 1 or f[i][j] == h[i][j - 1] - go - ge_i:
            state = "H"
        j -= 1

    ops.reverse()
    return Cigar.from_ops(ops)


def traceback_extension(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int,
    end: tuple[int, int],
) -> Cigar:
    """Trace the optimal path from the origin to ``end = (i, j)``.

    The paper performs traceback on the host, once per read, for the
    winning extension only (Section II-A); this dense implementation is
    that host-side step.  The trace covers query ``[0, j)`` and target
    ``[0, i)``; any unconsumed query suffix is the caller's to soft-clip.
    """
    mats = fill_extension(query, target, scoring, h0)
    return traceback_path(mats, query, target, scoring, end)


def traceback_path(
    mats: DenseMatrices,
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    end: tuple[int, int],
) -> Cigar:
    """Walk an already-filled matrix from the origin to ``end``.

    Split out of :func:`traceback_extension` so the batched pipeline
    can fill a whole wave of winners' matrices in lockstep
    (:func:`fill_extension_batch`) and then walk each one here.
    """
    i, j = end
    if not (0 <= i <= mats.tlen and 0 <= j <= mats.qlen):
        raise ValueError("traceback endpoint out of range")
    if mats.h[i][j] <= 0:
        raise ValueError("cannot trace back from a dead cell")
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del

    ops: list[tuple[int, str]] = []
    state = "H"
    while i > 0 or j > 0:
        if state == "H":
            cur = mats.h[i][j]
            if i > 0 and j > 0 and mats.h[i - 1][j - 1] > 0:
                sub = scoring.substitution(int(target[i - 1]), int(query[j - 1]))
                if cur == mats.h[i - 1][j - 1] + sub:
                    ops.append((1, "M"))
                    i -= 1
                    j -= 1
                    continue
            if i > 0 and cur == mats.e[i][j]:
                state = "E"
                continue
            if j > 0 and cur == mats.f[i][j]:
                state = "F"
                continue
            raise AssertionError("broken traceback: no predecessor matches")
        if state == "E":
            ops.append((1, "D"))
            prev_from_h = mats.h[i - 1][j] - go - ge_d
            if mats.e[i][j] == prev_from_h:
                state = "H"
            i -= 1
            continue
        # state == "F"
        ops.append((1, "I"))
        prev_from_h = mats.h[i][j - 1] - go - ge_i
        if mats.f[i][j] == prev_from_h:
            state = "H"
        j -= 1

    ops.reverse()
    return Cigar.from_ops(ops)
