"""Banded global (Needleman-Wunsch, affine gap) alignment.

The second alignment mode SeedEx targets (paper footnote 1): fully
end-to-end alignment, the kernel minimap2-style long-read aligners use
to *fill* the gaps between chained seeds (paper Section VII-D, "Long
Reads").  Unlike extension mode there are no dead cells — scores may
go negative — and the only score of interest is the corner
``H[tlen][qlen]``.

For the global optimality checks the kernel records, along both band
edges, the exact channel values a band-leaving path must carry:

* ``lower_e[j]`` — the E value entering below-band cell ``(j+w+1, j)``;
* ``upper_f[i]`` — the F value entering above-band cell ``(i, i+w+1)``.

Bit-equivalence with the dense oracle
(:func:`repro.align.fullmatrix.fill_global`) is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.fullmatrix import NEG_INF
from repro.align.scoring import AffineGap
from repro.genome.sequence import AMBIGUOUS_CODE


@dataclass(frozen=True)
class GlobalResult:
    """One banded global alignment and its check inputs."""

    score: int
    band: int
    h0: int
    qlen: int
    tlen: int
    lower_e: np.ndarray
    upper_f: np.ndarray
    cells_computed: int

    @property
    def is_full_band(self) -> bool:
        """True when the band covered every cell of the matrix."""
        return self.band >= max(self.qlen, self.tlen)


def lower_boundary_length(qlen: int, tlen: int, band: int) -> int:
    """Columns on the below-band region's top boundary (as extension)."""
    if tlen <= band:
        return 0
    return min(qlen, tlen - band - 1) + 1


def upper_boundary_length(qlen: int, tlen: int, band: int) -> int:
    """Rows on the above-band region's left boundary (the mirror)."""
    if qlen <= band:
        return 0
    return min(tlen, qlen - band - 1) + 1


def global_align(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int = 0,
    w: int | None = None,
) -> GlobalResult:
    """Banded global alignment score with boundary-channel capture.

    ``w=None`` computes the full matrix.  The configuration is
    rejected when the corner lies outside the band (no global path
    would fit).
    """
    query = np.asarray(query, dtype=np.int64)
    target = np.asarray(target, dtype=np.int64)
    qlen = len(query)
    tlen = len(target)
    if w is None:
        w = max(qlen, tlen)
    if w < 0:
        raise ValueError("band must be non-negative")
    if abs(tlen - qlen) > w:
        raise ValueError(
            "global endpoint outside the band; increase the band"
        )
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    m = scoring.match
    x = scoring.mismatch

    n_lower = lower_boundary_length(qlen, tlen, w)
    n_upper = upper_boundary_length(qlen, tlen, w)
    lower_e = np.full(n_lower, NEG_INF, dtype=np.int64)
    upper_f = np.full(n_upper, NEG_INF, dtype=np.int64)

    h_prev = np.full(qlen + 1, NEG_INF, dtype=np.int64)
    e_prev = np.full(qlen + 1, NEG_INF, dtype=np.int64)
    h_prev[0] = h0
    hi0 = min(qlen, w)
    if hi0 >= 1:
        j_idx = np.arange(1, hi0 + 1, dtype=np.int64)
        h_prev[1 : hi0 + 1] = h0 - go - j_idx * ge_i
    cells = hi0 + 1

    # Row 0's upper-edge F capture: F entering cell (0, w+1) comes from
    # extending the initialization gap.
    if n_upper > 0:
        upper_f[0] = h0 - go - (w + 1) * ge_i
    if n_lower > 0 and w == 0:
        # Degenerate band: the below-region boundary starts at row 1.
        lower_e[0] = h0 - go - ge_d

    h_row = np.full(qlen + 1, NEG_INF, dtype=np.int64)
    e_row = np.full(qlen + 1, NEG_INF, dtype=np.int64)
    for i in range(1, tlen + 1):
        lo = max(0, i - w)
        hi = min(qlen, i + w)
        h_row.fill(NEG_INF)
        e_row.fill(NEG_INF)

        if lo == 0 and i <= w:
            h_row[0] = h0 - go - i * ge_d
            e_row[0] = h_row[0]

        lo2 = max(lo, 1)
        if lo2 <= hi:
            seg = slice(lo2, hi + 1)
            e_row[seg] = np.maximum(h_prev[seg] - go, e_prev[seg]) - ge_d
            tc = target[i - 1]
            # N never matches anything, itself included.
            sub = np.where(
                (tc == query[lo2 - 1 : hi]) & (tc != AMBIGUOUS_CODE), m, -x
            )
            diag = h_prev[lo2 - 1 : hi] + sub
            g = np.maximum(diag, e_row[seg])
            # F scan: the only possible left influx into the segment is
            # the init column (lo == 0); out-of-band columns carry none.
            src = np.empty(hi - lo2 + 2, dtype=np.int64)
            src[0] = h_row[lo2 - 1] if lo2 - 1 == 0 and i <= w else NEG_INF
            src[1:] = g
            cols = np.arange(lo2 - 1, hi + 1, dtype=np.int64)
            run = np.maximum.accumulate(src - go + cols * ge_i)
            f = run[:-1] - cols[1:] * ge_i
            h_row[seg] = np.maximum(g, f)
            cells += hi - lo2 + 1

        # Boundary captures.
        bj = i - w
        if 0 <= bj < n_lower and i + 1 <= tlen:
            lower_e[bj] = max(
                int(h_row[bj]) - go, int(e_row[bj])
            ) - ge_d
        bi = i
        if bi < n_upper and i + w + 1 <= qlen:
            # F entering (i, i+w+1) extends from band cell (i, i+w).
            f_at_edge = _f_value_at(h_row, i, i + w, go, ge_i, w)
            upper_f[bi] = f_at_edge

        h_prev, h_row = h_row, h_prev
        e_prev, e_row = e_row, e_prev

    score = int(h_prev[qlen])
    return GlobalResult(
        score=score,
        band=w,
        h0=h0,
        qlen=qlen,
        tlen=tlen,
        lower_e=lower_e,
        upper_f=upper_f,
        cells_computed=cells,
    )


def _f_value_at(
    h_row: np.ndarray, i: int, j_edge: int, go: int, ge_i: int, w: int
) -> int:
    """F entering the cell right of ``(i, j_edge)``.

    Reconstructed from the row's H values: the F channel into column
    ``j_edge + 1`` is the best ``H[i][k] - go - (j_edge + 1 - k)*ge_i``
    over in-band columns ``k <= j_edge``.
    """
    lo = max(0, i - w)
    best = NEG_INF
    for k in range(lo, j_edge + 1):
        if h_row[k] <= NEG_INF // 2:
            continue
        cand = int(h_row[k]) - go - (j_edge + 1 - k) * ge_i
        if cand > best:
            best = cand
    return best
