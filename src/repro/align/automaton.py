"""Levenshtein automata: the automata-based alternative's substrate.

The paper's related work (GenAx [8] and the automata processors
[46]-[50]) matches reads with Levenshtein automata instead of DP
arrays.  GenAx's Silla generalizes them to be string-independent, at
the cost of ``O(K^2)`` states for edit budget ``K`` — the quadratic
scaling that Figure 18 contrasts with SeedEx's linear PE count
(``w = 2K + 1`` band needs ``O(K)`` PEs).

This module implements the classic nondeterministic Levenshtein
automaton with bit-parallel simulation, both as a working recognizer
("is string b within edit distance k of pattern a?") and as the state
accounting behind the area argument:

* :class:`LevenshteinAutomaton` — feed characters, query acceptance;
  equivalence with the DP edit distance is property-tested;
* :func:`nfa_state_count` — ``(|pattern|+1) x (k+1)`` NFA states, the
  per-string machine the older works bake into hardware;
* :func:`silla_state_count` — the string-independent automaton's
  ``O(K^2)`` lag x error state space, the quantity that makes Sillax
  16x bigger than SeedEx at equal capability.
"""

from __future__ import annotations

import numpy as np


class LevenshteinAutomaton:
    """NFA recognizing strings within edit distance ``k`` of a pattern.

    States are (position, errors) pairs simulated bit-parallel: one
    integer bitmask per error level, bit ``i`` = "a path consumed
    ``i`` pattern characters".  Feeding a character applies the
    match / substitution / insertion transitions plus the deletion
    epsilon-closure.
    """

    def __init__(self, pattern: np.ndarray, k: int) -> None:
        if k < 0:
            raise ValueError("edit budget k must be non-negative")
        self.pattern = np.asarray(pattern, dtype=np.int64)
        self.k = k
        self.m = len(self.pattern)
        # Character bitmasks: bit i set when pattern[i] == c.
        self._masks: dict[int, int] = {}
        for i, c in enumerate(self.pattern):
            self._masks[int(c)] = self._masks.get(int(c), 0) | (1 << i)
        self.reset()

    def reset(self) -> None:
        """Return to the start state (nothing consumed, zero errors)."""
        levels = [1 << 0]
        for _ in range(self.k):
            levels.append(0)
        self._levels = self._deletion_closure(levels)

    def _deletion_closure(self, levels: list[int]) -> list[int]:
        # (i, e) -> (i+1, e+1): consuming a pattern char for free costs
        # one error; iterate once per level (it is a DAG over e).
        out = list(levels)
        for e in range(1, self.k + 1):
            out[e] |= out[e - 1] << 1
        full = (1 << (self.m + 1)) - 1
        return [lvl & full for lvl in out]

    def feed(self, c: int) -> None:
        """Consume one input character."""
        mask = self._masks.get(int(c), 0)
        old = self._levels
        new = [0] * (self.k + 1)
        # Match: advance at the same error level.
        for e in range(self.k + 1):
            new[e] = (old[e] & mask) << 1
        # Substitution (advance) and insertion (stay), +1 error.
        for e in range(1, self.k + 1):
            new[e] |= (old[e - 1] << 1) | old[e - 1]
        self._levels = self._deletion_closure(new)

    @property
    def alive(self) -> bool:
        """Whether any state is still reachable."""
        return any(self._levels)

    @property
    def accepts(self) -> bool:
        """Whether the input consumed so far is within distance k."""
        bit = 1 << self.m
        return any(lvl & bit for lvl in self._levels)

    def min_errors(self) -> int | None:
        """Smallest error level accepting, or None."""
        bit = 1 << self.m
        for e, lvl in enumerate(self._levels):
            if lvl & bit:
                return e
        return None


def within_distance(a: np.ndarray, b: np.ndarray, k: int) -> bool:
    """True iff ``levenshtein(a, b) <= k``, via the automaton."""
    auto = LevenshteinAutomaton(a, k)
    for c in np.asarray(b, dtype=np.int64):
        auto.feed(int(c))
        if not auto.alive:
            return False
    return auto.accepts


def automaton_extend(
    query: np.ndarray, target: np.ndarray, k: int
) -> tuple[int | None, int]:
    """Semi-global edit-distance extension via the automaton.

    The automata-based kernels score a read by streaming reference
    characters through a machine built from the query; this is that
    computation: feed ``target`` one character at a time and track the
    best (fewest-errors) step at which the whole query has been
    consumed.  Returns ``(best_distance, best_end)`` — the minimal
    edit distance of the query against any prefix-anchored target
    span, and the target position where it ends — or ``(None, -1)``
    when no alignment fits the budget ``k``.

    Cross-validated against the DP edit distance in the tests; the
    point of keeping it here is to make the Figure 18 comparison's
    baseline *runnable*, not just a constant.
    """
    auto = LevenshteinAutomaton(query, k)
    best: int | None = auto.min_errors()  # empty target: pure deletions
    best_end = 0 if best is not None else -1
    for j, c in enumerate(np.asarray(target, dtype=np.int64), start=1):
        auto.feed(int(c))
        if not auto.alive:
            break
        e = auto.min_errors()
        if e is not None and (best is None or e < best):
            best = e
            best_end = j
    return best, best_end


def nfa_state_count(pattern_length: int, k: int) -> int:
    """States of the per-string NFA: (m+1) x (k+1).

    This is what string-*dependent* automata hardware must program per
    read — the paper's "prohibitive reprogramming cost".
    """
    return (pattern_length + 1) * (k + 1)


def silla_state_count(k: int) -> int:
    """States of a string-independent local Levenshtein automaton.

    Position-relative (lag) encoding needs a (2k+1) lag window at each
    of (k+1) error levels — the O(K^2) scaling GenAx's Silla pays and
    the reason Figure 18's extension array is 16x larger than SeedEx
    at K=32 (band w = 2K+1).
    """
    if k < 0:
        raise ValueError("edit budget k must be non-negative")
    return (2 * k + 1) * (k + 1)


def seedex_pe_count(k: int) -> int:
    """PEs a banded array needs for the same capability (w = 2k+1)."""
    return 2 * k + 1
