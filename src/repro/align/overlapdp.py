"""Banded suffix-prefix overlap alignment (OLC/assembly mode).

The third alignment shape SeedEx's speculate-and-test scheme covers
(paper Section VII-D): dovetail overlap detection for assembly.  A
candidate overlap aligns the *suffix* of read A (the query ``x``)
against the *prefix* of read B (the target ``y``):

* the start is anchored — cell ``(0, 0)`` scores zero, and leading
  characters of either sequence cost real gap penalties (no free
  ride into the overlap);
* the query must be fully consumed — only last-column cells
  ``H[i][qlen]`` are candidate ends;
* the target end is free — the best last-column cell wins, ties
  toward the smallest ``i``, and ``tlen - i`` is B's unaligned
  overhang.

Like global mode there are no dead cells and scores go negative.
The banded fill records, along both band-edge diagonals
``|i - j| = w``, the exact in-band value a band-leaving path must
carry at its *first* exit.  From an edge cell ``(i, j)`` any
continuation to a last-column end gains at most
``(qlen - j) * match`` (each remaining query character is consumed
by at most one match; target-only moves never gain), so

    ``bound = max over edge cells of  H[i][j] + (qlen - j) * match``

is an admissible bound on every band-leaving path.  When the banded
score meets it, the banded result is provably the dense full-matrix
optimum; otherwise the caller reruns at full band
(:func:`overlap_with_guarantee`).  Soundness and bit-equivalence with
a dense oracle are swept exhaustively in
``tests/align/test_overlap_boundaries.py``.

Three renditions share these exact semantics: a scalar reference
(:func:`overlap_scalar`), a row-vectorized form (:func:`overlap_band`),
and an inter-sequence lockstep batch (:func:`overlap_batch_lockstep`)
that shape-buckets jobs the way the striped extension kernel does.
All are bit-identical on ``(score, t_end, bound, optimal)``; only
``cells_computed`` reflects the backend's own schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.fullmatrix import NEG_INF
from repro.align.scoring import AffineGap
from repro.genome.sequence import AMBIGUOUS_CODE

_DEAD = NEG_INF // 2
"""Values at or below this are treated as unreachable (drifted NEG_INF)."""

_MIN_SHAPE_CLASS = 16
"""Smallest lockstep padding class (mirrors the striped kernel's)."""


@dataclass(frozen=True)
class OverlapResult:
    """One banded overlap fill and its optimality-check inputs.

    ``score``/``t_end`` are the best in-band last-column cell (ties to
    the smallest row); ``t_end == -1`` means no in-band path consumes
    the whole query.  ``bound`` is the band-edge admissible bound on
    any band-leaving path (``NEG_INF`` when the band is full).
    """

    score: int
    t_end: int
    band: int
    qlen: int
    tlen: int
    bound: int
    cells_computed: int

    @property
    def is_full_band(self) -> bool:
        """True when the band covered every cell of the matrix."""
        return self.band >= max(self.qlen, self.tlen)

    @property
    def optimal(self) -> bool:
        """True when the banded score is provably the dense optimum."""
        if self.is_full_band:
            return True
        return self.t_end >= 0 and self.score >= self.bound


@dataclass(frozen=True)
class OverlapOutcome:
    """A guaranteed-optimal overlap: speculation plus any rerun."""

    result: OverlapResult
    band_requested: int
    rerun: bool


def _resolve_band(qlen: int, tlen: int, w: int | None) -> int:
    if w is None:
        return max(qlen, tlen)
    if w < 0:
        raise ValueError("band must be non-negative")
    return w


def overlap_scalar(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    w: int | None = None,
) -> OverlapResult:
    """Reference per-cell fill of the banded overlap matrix.

    Slow but obviously the semantics above; the vectorized renditions
    are conformance-tested against it.  ``w=None`` fills the whole
    matrix (trivially optimal).
    """
    query = np.asarray(query, dtype=np.int64)
    target = np.asarray(target, dtype=np.int64)
    qlen, tlen = len(query), len(target)
    w = _resolve_band(qlen, tlen, w)
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    m = scoring.match

    H = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    E = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    F = np.full((tlen + 1, qlen + 1), NEG_INF, dtype=np.int64)
    H[0][0] = 0
    cells = 1
    for j in range(1, min(qlen, w) + 1):
        F[0][j] = H[0][j] = -(go + j * ge_i)
        cells += 1
    for i in range(1, min(tlen, w) + 1):
        E[i][0] = H[i][0] = -(go + i * ge_d)
        cells += 1
    for i in range(1, tlen + 1):
        for j in range(max(1, i - w), min(qlen, i + w) + 1):
            E[i][j] = max(H[i - 1][j] - go, E[i - 1][j]) - ge_d
            F[i][j] = max(H[i][j - 1] - go, F[i][j - 1]) - ge_i
            diag = H[i - 1][j - 1] + scoring.substitution(
                int(target[i - 1]), int(query[j - 1])
            )
            H[i][j] = max(diag, E[i][j], F[i][j])
            cells += 1

    score, t_end = NEG_INF, -1
    for i in range(max(0, qlen - w), min(tlen, qlen + w) + 1):
        if H[i][qlen] > _DEAD and (t_end < 0 or H[i][qlen] > score):
            score, t_end = int(H[i][qlen]), i

    bound = NEG_INF
    if w < max(qlen, tlen):
        for i in range(tlen + 1):
            for j in (i - w, i + w):
                if 0 <= j <= qlen and H[i][j] > _DEAD:
                    cand = int(H[i][j]) + (qlen - j) * m
                    if cand > bound:
                        bound = cand
    return OverlapResult(
        score=score, t_end=t_end, band=w, qlen=qlen, tlen=tlen,
        bound=bound, cells_computed=cells,
    )


def overlap_band(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    w: int | None = None,
) -> OverlapResult:
    """Row-vectorized banded overlap fill (the wavefront backend's form).

    Bit-identical to :func:`overlap_scalar` on every observable field;
    the F channel uses the exact running-max closed form the global
    kernel uses (``F[j] = max over k < j of src[k] - go - (j-k)*ge``).
    """
    query = np.asarray(query, dtype=np.int64)
    target = np.asarray(target, dtype=np.int64)
    qlen, tlen = len(query), len(target)
    w = _resolve_band(qlen, tlen, w)
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    m = scoring.match
    x = scoring.mismatch

    h_prev = np.full(qlen + 1, NEG_INF, dtype=np.int64)
    e_prev = np.full(qlen + 1, NEG_INF, dtype=np.int64)
    h_prev[0] = 0
    hi0 = min(qlen, w)
    if hi0 >= 1:
        j_idx = np.arange(1, hi0 + 1, dtype=np.int64)
        h_prev[1 : hi0 + 1] = -(go + j_idx * ge_i)
    cells = hi0 + 1

    score, t_end = NEG_INF, -1
    if qlen <= w and int(h_prev[qlen]) > _DEAD:
        score, t_end = int(h_prev[qlen]), 0
    bound = NEG_INF
    banded = w < max(qlen, tlen)
    if banded and w <= qlen:
        bound = int(h_prev[w]) + (qlen - w) * m

    h_row = np.full(qlen + 1, NEG_INF, dtype=np.int64)
    e_row = np.full(qlen + 1, NEG_INF, dtype=np.int64)
    for i in range(1, tlen + 1):
        lo = max(0, i - w)
        hi = min(qlen, i + w)
        h_row.fill(NEG_INF)
        e_row.fill(NEG_INF)
        if lo == 0 and i <= w:
            h_row[0] = -(go + i * ge_d)
            e_row[0] = h_row[0]
            cells += 1

        lo2 = max(lo, 1)
        if lo2 <= hi:
            seg = slice(lo2, hi + 1)
            e_row[seg] = np.maximum(h_prev[seg] - go, e_prev[seg]) - ge_d
            tc = target[i - 1]
            # N never matches anything, itself included.
            sub = np.where(
                (tc == query[lo2 - 1 : hi]) & (tc != AMBIGUOUS_CODE), m, -x
            )
            diag = h_prev[lo2 - 1 : hi] + sub
            g = np.maximum(diag, e_row[seg])
            src = np.empty(hi - lo2 + 2, dtype=np.int64)
            src[0] = h_row[0] if lo2 == 1 and i <= w else NEG_INF
            src[1:] = g
            cols = np.arange(lo2 - 1, hi + 1, dtype=np.int64)
            run = np.maximum.accumulate(src - go + cols * ge_i)
            f = run[:-1] - cols[1:] * ge_i
            h_row[seg] = np.maximum(g, f)
            cells += hi - lo2 + 1

        if lo <= qlen <= hi:
            cand = int(h_row[qlen])
            if cand > _DEAD and (t_end < 0 or cand > score):
                score, t_end = cand, i
        if banded:
            for j in (i - w, i + w):
                if 0 <= j <= qlen and lo <= j <= hi:
                    v = int(h_row[j])
                    if v > _DEAD:
                        bound = max(bound, v + (qlen - j) * m)

        h_prev, h_row = h_row, h_prev
        e_prev, e_row = e_row, e_prev

    if t_end < 0:
        score = NEG_INF
    return OverlapResult(
        score=score, t_end=t_end, band=w, qlen=qlen, tlen=tlen,
        bound=bound, cells_computed=cells,
    )


def _shape_class(length: int) -> int:
    """Next power-of-two padding class, floored at 16 (striped idiom)."""
    cls = _MIN_SHAPE_CLASS
    while cls < length:
        cls <<= 1
    return cls


def overlap_batch_lockstep(
    queries: list[np.ndarray],
    targets: list[np.ndarray],
    scoring: AffineGap,
    w: int | None = None,
) -> list[OverlapResult]:
    """Fill many overlap jobs in inter-sequence lockstep.

    Jobs are bucketed by ``(shape_class(qlen), shape_class(tlen))`` and
    every job of a bucket sweeps together, vectorizing across jobs ×
    band columns; results come back in input order, bit-identical to
    :func:`overlap_scalar` per job.  Padded query/target tails use the
    ambiguous code (never matches) and live strictly outside each
    job's own matrix, so they cannot influence a real cell; captures
    are masked to each job's true dimensions.
    """
    if len(queries) != len(targets):
        raise ValueError("queries and targets must align")
    out: list[OverlapResult | None] = [None] * len(queries)
    buckets: dict[tuple[int, int], list[int]] = {}
    for k, (q, t) in enumerate(zip(queries, targets)):
        key = (_shape_class(len(q)), _shape_class(len(t)))
        buckets.setdefault(key, []).append(k)
    for idx in buckets.values():
        for k, res in zip(
            idx,
            _lockstep_bucket(
                [queries[k] for k in idx],
                [targets[k] for k in idx],
                scoring,
                w,
            ),
        ):
            out[k] = res
    return [r for r in out if r is not None]


def _lockstep_bucket(
    queries: list[np.ndarray],
    targets: list[np.ndarray],
    scoring: AffineGap,
    w: int | None,
) -> list[OverlapResult]:
    """One bucket's lockstep sweep over jobs padded to a shared shape."""
    n = len(queries)
    qlens = np.array([len(q) for q in queries], dtype=np.int64)
    tlens = np.array([len(t) for t in targets], dtype=np.int64)
    qmax = int(qlens.max())
    tmax = int(tlens.max())
    bands = np.array(
        [_resolve_band(int(ql), int(tl), w) for ql, tl in zip(qlens, tlens)],
        dtype=np.int64,
    )
    # The sweep itself runs at the widest band any job asked for; a
    # cell outside a job's own band is never *read* for that job
    # because captures and the per-job band mask use its own width.
    if w is None:
        ws = int(bands.max())
    else:
        ws = w
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    m = scoring.match
    x = scoring.mismatch

    qpad = np.full((n, max(1, qmax)), AMBIGUOUS_CODE, dtype=np.int64)
    tpad = np.full((n, max(1, tmax)), AMBIGUOUS_CODE, dtype=np.int64)
    for k, (q, t) in enumerate(zip(queries, targets)):
        qpad[k, : len(q)] = q
        tpad[k, : len(t)] = t

    cols = np.arange(qmax + 1, dtype=np.int64)
    in_band = np.abs(cols[None, :] - 0) <= bands[:, None]  # row 0

    h_prev = np.full((n, qmax + 1), NEG_INF, dtype=np.int64)
    e_prev = np.full((n, qmax + 1), NEG_INF, dtype=np.int64)
    h_prev[:, 0] = 0
    row0 = -(go + cols[1:] * ge_i)
    mask0 = in_band[:, 1:] & (cols[None, 1:] <= qlens[:, None])
    h_prev[:, 1:] = np.where(mask0, row0[None, :], NEG_INF)

    score = np.full(n, NEG_INF, dtype=np.int64)
    t_end = np.full(n, -1, dtype=np.int64)
    banded = bands < np.maximum(qlens, tlens)
    # Row-0 captures: the last column when it sits in band, and the
    # upper edge cell (0, band).
    sel = (qlens <= bands) & (h_prev[np.arange(n), qlens] > _DEAD)
    score[sel] = h_prev[np.arange(n), qlens][sel]
    t_end[sel] = 0
    bound = np.full(n, NEG_INF, dtype=np.int64)
    sel = banded & (bands <= qlens)
    if sel.any():
        edge = h_prev[np.arange(n), np.minimum(bands, qmax)]
        bound[sel] = edge[sel] + (qlens[sel] - bands[sel]) * m

    h_row = np.empty_like(h_prev)
    e_row = np.empty_like(e_prev)
    jobs = np.arange(n)
    for i in range(1, tmax + 1):
        lo = max(0, i - ws)
        hi = min(qmax, i + ws)
        h_row.fill(NEG_INF)
        e_row.fill(NEG_INF)
        col0 = (i <= bands) & (i <= tlens)
        h_row[col0, 0] = -(go + i * ge_d)
        e_row[col0, 0] = h_row[col0, 0]

        lo2 = max(lo, 1)
        if lo2 <= hi:
            seg = slice(lo2, hi + 1)
            e_row[:, seg] = (
                np.maximum(h_prev[:, seg] - go, e_prev[:, seg]) - ge_d
            )
            tc = tpad[:, i - 1][:, None]
            qseg = qpad[:, lo2 - 1 : hi]
            sub = np.where((tc == qseg) & (tc != AMBIGUOUS_CODE), m, -x)
            diag = h_prev[:, lo2 - 1 : hi] + sub
            g = np.maximum(diag, e_row[:, seg])
            # Mask G to each job's *own* band before the F scan: when
            # bucket-mates run wider bands, cells left of this job's
            # band pick up E values through the previous row's edge,
            # and an unmasked run-max would chain them into in-band F
            # (the band-clamp asymmetry the exhaustive sweep pins).
            own = np.abs(cols[None, seg] - i) <= bands[:, None]
            own &= cols[None, seg] <= qlens[:, None]
            g = np.where(own, g, NEG_INF)
            src = np.empty((n, hi - lo2 + 2), dtype=np.int64)
            src[:, 0] = np.where(
                (lo2 == 1) & (i <= bands), h_row[:, 0], NEG_INF
            )
            src[:, 1:] = g
            ccols = cols[lo2 - 1 : hi + 1]
            run = np.maximum.accumulate(
                src - go + ccols[None, :] * ge_i, axis=1
            )
            f = run[:, :-1] - ccols[None, 1:] * ge_i
            # Blank out-of-own-band cells so the job's recurrence
            # next row reads NEG_INF exactly like the scalar form.
            h_row[:, seg] = np.where(
                own, np.maximum(g, f), NEG_INF
            )
            e_row[:, seg] = np.where(own, e_row[:, seg], NEG_INF)

        live = i <= tlens
        sel = (
            live
            & (np.abs(i - qlens) <= bands)
            & (h_row[jobs, np.minimum(qlens, qmax)] > _DEAD)
        )
        cand = h_row[jobs, np.minimum(qlens, qmax)]
        better = sel & ((t_end < 0) | (cand > score))
        score[better] = cand[better]
        t_end[better] = i
        for j_edge in (i - bands, i + bands):
            je = np.clip(j_edge, 0, qmax)
            sel = (
                live
                & banded
                & (j_edge >= 0)
                & (j_edge <= qlens)
                & (h_row[jobs, je] > _DEAD)
            )
            cand = h_row[jobs, je] + (qlens - je) * m
            bound[sel] = np.maximum(bound[sel], cand[sel])

        h_prev, h_row = h_row, h_prev
        e_prev, e_row = e_row, e_prev

    # Padded-sweep cell count: the bucket's schedule, shared by every
    # job (an execution-shape field, not part of the conformance set).
    cells = 0
    for i in range(tmax + 1):
        lo = max(0, i - ws)
        hi = min(qmax, i + ws)
        if lo <= hi:
            cells += hi - lo + 1
    out = []
    for k in range(n):
        sc = int(score[k]) if int(t_end[k]) >= 0 else NEG_INF
        out.append(
            OverlapResult(
                score=sc,
                t_end=int(t_end[k]),
                band=int(bands[k]),
                qlen=int(qlens[k]),
                tlen=int(tlens[k]),
                bound=int(bound[k]),
                cells_computed=cells,
            )
        )
    return out


def overlap_with_guarantee(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    band: int,
    overlap=overlap_band,
) -> OverlapOutcome:
    """Speculate at ``band``; rerun at full band unless proven optimal.

    The returned score always equals the dense full-matrix optimum —
    either the check proved the narrow fill optimal or the rerun *is*
    the full fill.  ``overlap`` lets callers route through a kernel
    backend's entry point.
    """
    res = overlap(query, target, scoring, band)
    if res.optimal:
        return OverlapOutcome(result=res, band_requested=band, rerun=False)
    full = overlap(query, target, scoring, None)
    return OverlapOutcome(result=full, band_requested=band, rerun=True)
