"""CIGAR strings for alignment traces.

The traceback step (paper Section II-A) reports the trace of edits for
the winning extension only, as a CIGAR string: ``M`` (match/mismatch),
``I`` (insertion to the reference: consumes query), ``D`` (deletion from
the reference: consumes reference), ``S`` (soft clip: consumes query).
"""

from __future__ import annotations

from dataclasses import dataclass

_CONSUMES_QUERY = {"M", "I", "S", "=", "X"}
_CONSUMES_REF = {"M", "D", "=", "X"}
_VALID_OPS = _CONSUMES_QUERY | _CONSUMES_REF


@dataclass(frozen=True)
class Cigar:
    """An immutable, normalized CIGAR (adjacent same-op runs merged)."""

    ops: tuple[tuple[int, str], ...]

    def __post_init__(self) -> None:
        for length, op in self.ops:
            if op not in _VALID_OPS:
                raise ValueError(f"invalid CIGAR op {op!r}")
            if length <= 0:
                raise ValueError("CIGAR run lengths must be positive")

    @classmethod
    def from_ops(cls, ops: list[tuple[int, str]]) -> "Cigar":
        """Build a CIGAR, merging adjacent runs of the same operation."""
        merged: list[tuple[int, str]] = []
        for length, op in ops:
            if length == 0:
                continue
            if merged and merged[-1][1] == op:
                merged[-1] = (merged[-1][0] + length, op)
            else:
                merged.append((length, op))
        return cls(tuple(merged))

    @classmethod
    def parse(cls, text: str) -> "Cigar":
        """Parse a CIGAR string such as ``"55M1I45M"``."""
        if text == "*":
            return cls(())
        ops: list[tuple[int, str]] = []
        num = ""
        for ch in text:
            if ch.isdigit():
                num += ch
            else:
                if not num:
                    raise ValueError(f"malformed CIGAR: {text!r}")
                ops.append((int(num), ch))
                num = ""
        if num:
            raise ValueError(f"trailing digits in CIGAR: {text!r}")
        return cls.from_ops(ops)

    @property
    def query_length(self) -> int:
        """Number of query characters the alignment consumes."""
        return sum(n for n, op in self.ops if op in _CONSUMES_QUERY)

    @property
    def reference_length(self) -> int:
        """Number of reference characters the alignment consumes."""
        return sum(n for n, op in self.ops if op in _CONSUMES_REF)

    @property
    def edit_ops(self) -> int:
        """Total inserted plus deleted characters (gap volume)."""
        return sum(n for n, op in self.ops if op in ("I", "D"))

    def reversed(self) -> "Cigar":
        """The CIGAR of the same alignment read right-to-left."""
        return Cigar(tuple(reversed(self.ops)))

    def __str__(self) -> str:
        if not self.ops:
            return "*"
        return "".join(f"{n}{op}" for n, op in self.ops)
