"""Corruption seams for the persistent index store's chaos suite.

Each function takes an intact artifact and produces a damaged copy of
a specific, realistic kind — a flipped bit inside one section, a
truncated download, a file from a different tool or era, a header
edited after the CRC was computed.  The corruption chaos tests drive
every seam through :func:`repro.index.store.load_index` and assert
two things: the load ladder raises exactly the right typed error, and
no code path ever produces seeds from the damaged bytes.

These helpers are test seams, not general utilities: they operate on
copies (the caller supplies the destination) and are deterministic —
a given seam + artifact always yields the same damaged bytes, so a
failing chaos case replays exactly.
"""

from __future__ import annotations

from pathlib import Path

from repro.index import format as fmt


def _read(src: str | Path) -> bytearray:
    return bytearray(Path(src).read_bytes())


def _write(dst: str | Path, data: bytes | bytearray) -> Path:
    dst = Path(dst)
    dst.write_bytes(bytes(data))
    return dst


def bitflip_section(
    src: str | Path, dst: str | Path, section: str, at: float = 0.5
) -> Path:
    """Flip every bit of one byte inside ``section``.

    ``at`` picks the position as a fraction of the section's length
    (0.5 = the middle byte).  Expected detection:
    :class:`~repro.index.errors.IndexCorruptError` naming ``section``.
    """
    header = fmt.read_header(src)
    meta = header.sections[section]
    data = _read(src)
    offset = meta.offset + min(meta.nbytes - 1, int(meta.nbytes * at))
    data[offset] ^= 0xFF
    return _write(dst, data)


def truncate_at(src: str | Path, dst: str | Path, nbytes: int) -> Path:
    """Keep only the first ``nbytes`` bytes — a torn copy or download.

    Expected detection: :class:`~repro.index.errors.IndexCorruptError`
    (truncated header or a section table pointing past EOF), or
    :class:`~repro.index.errors.IndexVersionError` when even the magic
    is cut short.
    """
    return _write(dst, _read(src)[:nbytes])


def stale_magic(src: str | Path, dst: str | Path) -> Path:
    """Replace the magic bytes — the file is not an index artifact.

    Expected detection: :class:`~repro.index.errors.IndexVersionError`.
    """
    data = _read(src)
    data[: len(fmt.MAGIC)] = b"X" * len(fmt.MAGIC)
    return _write(dst, data)


def stale_version(
    src: str | Path, dst: str | Path, version: int = 999
) -> Path:
    """Rewrite the schema version — an artifact from a different era.

    Expected detection: :class:`~repro.index.errors.IndexVersionError`
    carrying ``found=version`` (the file is never overwritten
    implicitly: it might be valid for other code).
    """
    import struct

    data = _read(src)
    data[8:12] = struct.pack("<I", version)
    return _write(dst, data)


def tamper_header(src: str | Path, dst: str | Path) -> Path:
    """Flip one byte inside the header JSON, leaving its CRC stale.

    Expected detection: :class:`~repro.index.errors.IndexCorruptError`
    with ``section="header"`` — the envelope CRC catches edits to any
    field, including the section table and the recorded fingerprint.
    """
    data = _read(src)
    # Byte 16 is the first header-JSON byte (after magic + two u32s).
    data[16 + 8] ^= 0x01
    return _write(dst, data)
