"""ChaosEngine: route every extension through the faultable datapath.

Wraps any :class:`~repro.aligner.engines.ExtensionEngine` so that each
``extend`` call travels the accelerator's real seams functionally —
job packed into 512-bit memory lines, lines through (possibly
corrupted) DRAM, unpack with CRC verification at the core, compute,
result record packed and CRC-verified on write-back — with a
:class:`~repro.faults.injector.FaultInjector` deciding, per attempt,
whether and where to corrupt.

Every injected fault surfaces as a typed
:class:`~repro.faults.errors.FaultError` (detection), with one
exception: an injection the seam absorbs harmlessly is counted as
tolerated by the injector.  If a corruption ever slips past the CRCs
*and* changes data, the built-in tripwire raises
:class:`~repro.faults.errors.SilentCorruptionError` — the chaos suite
asserts this never happens.
"""

from __future__ import annotations

import numpy as np

from repro.faults.errors import (
    CorruptLineError,
    CorruptRecordError,
    DataCorruptionFault,
    MissingRecordFault,
    SilentCorruptionError,
    StalledStreamFault,
    TransientAcceleratorFault,
)
from repro.faults.injector import (
    LINE_SITES,
    RECORD_SITES,
    FaultInjector,
)
from repro.genome.synth import ExtensionJob
from repro.hw.io_path import ResultRecord, pack_job, unpack_job


class ChaosEngine:
    """An extension engine whose datapath can be corrupted.

    Functionally transparent when no fault fires: pack/unpack are
    exact inverses and the result record round-trips verbatim, so a
    fault-free attempt returns exactly what the inner engine computed.
    """

    def __init__(self, engine, injector: FaultInjector) -> None:
        self.inner = engine
        self.injector = injector
        self.name = f"chaos({engine.name})"

    @property
    def scoring(self):
        """The inner engine's affine-gap scheme (pipeline contract)."""
        return self.inner.scoring

    def extend(self, query, target, h0):
        """One extension through the faultable datapath.

        Raises a :class:`~repro.faults.errors.FaultError` subclass
        when the drawn fault surfaces; the resilient dispatcher owns
        retry/fallback policy.
        """
        injector = self.injector
        site = injector.draw()
        job = ExtensionJob(
            query=np.asarray(query, dtype=np.uint8),
            target=np.asarray(target, dtype=np.uint8),
            h0=int(h0),
        )

        # Input path: job -> memory lines -> (corruptible DRAM) -> core.
        lines = pack_job(job)
        if site in LINE_SITES:
            lines = injector.corrupt_lines(site, lines)
        if site == "stream.stall":
            raise StalledStreamFault(injector.stall_seconds, site=site)
        if site == "batch.transient":
            raise TransientAcceleratorFault(
                "accelerator batch failed transiently", site=site
            )
        try:
            received = unpack_job(lines, tag=job.tag)
        except CorruptLineError as exc:
            if site is None:
                raise  # not injected: a real framing bug, crash loudly
            raise DataCorruptionFault(str(exc), site=site) from exc
        if site in LINE_SITES and not _same_job(job, received):
            raise SilentCorruptionError(
                f"line corruption at {site} evaded the CRC"
            )

        # Compute on what the core actually received.
        result = self.inner.extend(
            received.query, received.target, received.h0
        )

        # Write-back path: result record through the output coalescer.
        record = ResultRecord.from_result(result)
        blob = record.pack()
        if site == "record.drop":
            raise MissingRecordFault(
                "result record dropped by the coalescer", site=site
            )
        if site in RECORD_SITES:
            corrupted = injector.corrupt_record(site, blob)
            blob = corrupted if corrupted is not None else b""
        try:
            received_record = ResultRecord.unpack(blob)
        except CorruptRecordError as exc:
            if site is None:
                raise
            raise DataCorruptionFault(str(exc), site=site) from exc
        if received_record != record:
            raise SilentCorruptionError(
                f"record corruption at {site} evaded the CRC"
            )
        return result


def _same_job(a: ExtensionJob, b: ExtensionJob) -> bool:
    """Field-exact equality of two extension jobs."""
    return (
        a.h0 == b.h0
        and len(a.query) == len(b.query)
        and len(a.target) == len(b.target)
        and bool((a.query == b.query).all())
        and bool((a.target == b.target).all())
    )
