"""Network fault seams for the resident server's client sessions.

The datapath chaos layer (:mod:`repro.faults.injector`) corrupts the
accelerator; this module rehearses the *other* hostile boundary of
``repro serve`` — the clients.  A :class:`NetFaultPlan` is attached to
a :class:`~repro.serve.session.ClientSession` and consulted on every
response send, deterministically (seeded) deciding to

* **disconnect** — tear the connection down right before the write,
  exactly as a client that gave up and closed mid-flight; or
* **stall** — sleep before the write, modelling a client that stopped
  draining its receive buffer.

Both seams exercise the server's core disconnect-tolerance claim: a
vanished or slow client costs one failed ``send`` and nothing else —
no batcher stall, no unbounded buffering, no crash.  Tests assert the
server's shed/served accounting stays exact under an active plan.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class NetFaultPolicy:
    """Seeded probabilities for the client-side fault seams."""

    seed: int = 0
    disconnect_rate: float = 0.0
    """Probability a send is preceded by a client disconnect."""
    stall_rate: float = 0.0
    """Probability a send is preceded by a client stall."""
    stall_s: float = 0.05
    """How long a stalled client blocks its own response."""

    def __post_init__(self) -> None:
        for name in ("disconnect_rate", "stall_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.stall_s < 0:
            raise ValueError("stall_s must be non-negative")


class NetFaultPlan:
    """A live, seeded instance of :class:`NetFaultPolicy`.

    ``before_send(session)`` is the single seam: it returns ``False``
    when the send should be abandoned (the plan disconnected the
    client) and ``True`` when it may proceed — possibly after a stall.
    The RNG is private to the plan, so a seeded serve run replays the
    same disconnect schedule every time.
    """

    def __init__(
        self, policy: NetFaultPolicy | None = None, sleep=time.sleep
    ) -> None:
        self.policy = policy or NetFaultPolicy()
        self._rng = random.Random(self.policy.seed)
        self._sleep = sleep
        self.disconnects = 0
        self.stalls = 0

    def before_send(self, session) -> bool:
        """Apply the seams ahead of one response write."""
        policy = self.policy
        if policy.disconnect_rate and (
            self._rng.random() < policy.disconnect_rate
        ):
            self.disconnects += 1
            session.close()
            return False
        if policy.stall_rate and self._rng.random() < policy.stall_rate:
            self.stalls += 1
            self._sleep(policy.stall_s)
        return True
