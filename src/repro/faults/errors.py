"""Typed fault exceptions: the language of the degradation ladder.

Every failure the simulated datapath can produce is a
:class:`FaultError` subclass carrying the injection ``site`` that
caused it, so the resilience layer can attribute each detected fault
back to its injection and the chaos suite can assert the accounting
invariant *injected == detected + tolerated* (no silent corruption).

The low-level framing errors (:class:`~repro.hw.io_path.CorruptLineError`,
:class:`~repro.hw.io_path.CorruptRecordError`) live with the framing
code in :mod:`repro.hw.io_path`; the chaos engine wraps them into
:class:`DataCorruptionFault` with the injected site attached.
"""

from __future__ import annotations

from repro.hw.io_path import CorruptLineError, CorruptRecordError

__all__ = [
    "CorruptLineError",
    "CorruptRecordError",
    "DataCorruptionFault",
    "DeadLetterError",
    "FaultError",
    "MissingRecordFault",
    "SilentCorruptionError",
    "StalledStreamFault",
    "TransientAcceleratorFault",
]


class FaultError(RuntimeError):
    """Base class of every injectable datapath failure.

    ``site`` names the injection seam (see
    :data:`repro.faults.injector.ALL_SITES`); the resilience ladder
    catches this type and nothing broader, so genuine bugs still
    crash loudly instead of being retried away.
    """

    def __init__(self, message: str, *, site: str) -> None:
        super().__init__(f"{message} [site={site}]")
        self.site = site


class DataCorruptionFault(FaultError):
    """A CRC/framing check caught corrupted lines or records."""


class MissingRecordFault(FaultError):
    """The output coalescer dropped a result record entirely."""


class StalledStreamFault(FaultError):
    """An arbiter input stream stalled for ``seconds`` (simulated).

    The dispatcher compares ``seconds`` against its per-attempt
    timeout: a short stall is absorbed (tolerated), a long one is a
    timeout that consumes a retry.
    """

    def __init__(self, seconds: float, *, site: str) -> None:
        super().__init__(
            f"input stream stalled for {seconds:.3f}s", site=site
        )
        self.seconds = seconds


class TransientAcceleratorFault(FaultError):
    """The accelerator failed one batch/job transiently (retryable)."""


class SilentCorruptionError(RuntimeError):
    """Corruption slipped past every integrity check (the tripwire).

    Never retried: an undetected corruption means the CRC framing has
    a hole, and the only safe reaction is to crash the test loudly.
    """


class DeadLetterError(RuntimeError):
    """A job exhausted the whole degradation ladder.

    Raised after accelerator retries were spent *and* the host rerun
    queue refused the job; the pipeline reacts by marking the read
    unmapped-with-reason rather than crashing.
    """

    def __init__(self, message: str, *, site: str, attempts: int) -> None:
        super().__init__(
            f"{message} [site={site}, attempts={attempts}]"
        )
        self.site = site
        self.attempts = attempts
