"""Fault injection and resilience for the simulated datapath.

SeedEx's correctness story is speculate-and-test: the narrow-band
result is provably optimal or the host reruns it full-band.  This
package makes the *system* around that contract chaos-testable — a
seedable :class:`FaultInjector` corrupts the accelerator at its real
seams (packed memory lines, result records, arbiter streams, batch
dispatch, the host rerun queue), and the
:class:`ResilientDispatcher` survives all of it through a
retry → host-rerun → dead-letter degradation ladder while keeping SAM
output bit-identical to the full-band engine.

See ``docs/resilience.md`` for the failure model and ladder diagram.
"""

from __future__ import annotations

from repro.faults.chaos import ChaosEngine
from repro.faults.errors import (
    DataCorruptionFault,
    DeadLetterError,
    FaultError,
    MissingRecordFault,
    SilentCorruptionError,
    StalledStreamFault,
    TransientAcceleratorFault,
)
from repro.faults.indexfaults import (
    bitflip_section,
    stale_magic,
    stale_version,
    tamper_header,
    truncate_at,
)
from repro.faults.injector import (
    ALL_SITES,
    DATAPATH_SITES,
    FaultInjector,
)
from repro.faults.netfaults import NetFaultPlan, NetFaultPolicy
from repro.faults.resilience import (
    DeadLetter,
    ResilienceStats,
    ResilientDispatcher,
    RetryPolicy,
)

__all__ = [
    "ALL_SITES",
    "ChaosEngine",
    "DATAPATH_SITES",
    "DataCorruptionFault",
    "DeadLetter",
    "DeadLetterError",
    "FaultError",
    "FaultInjector",
    "MissingRecordFault",
    "NetFaultPlan",
    "NetFaultPolicy",
    "ResilienceStats",
    "ResilientDispatcher",
    "RetryPolicy",
    "SilentCorruptionError",
    "StalledStreamFault",
    "TransientAcceleratorFault",
    "bitflip_section",
    "stale_magic",
    "stale_version",
    "tamper_header",
    "truncate_at",
]
