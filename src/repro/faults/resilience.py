"""The resilience layer: retry, timeout, and graceful degradation.

:class:`ResilientDispatcher` wraps any extension engine (typically a
:class:`~repro.faults.chaos.ChaosEngine` over the SeedEx engine) and
guarantees the speculate-and-test contract survives a misbehaving
accelerator.  Per job it walks the degradation ladder:

1. **retry on the accelerator** — bounded attempts with exponential
   backoff plus deterministic jitter; short stream stalls are absorbed
   without consuming a retry, long ones count as timeouts;
2. **rerun full-band on the host** — the paper's escape hatch,
   generalized: any job whose accelerator attempts were exhausted is
   recomputed by the full-band software kernel (always correct);
3. **dead-letter** — only when the host rerun queue itself refuses the
   job: the job is recorded with its failure context and a typed
   :class:`~repro.faults.errors.DeadLetterError` tells the pipeline to
   mark the read unmapped-with-reason.  The dispatcher never crashes
   the pipeline and never silently drops a job.

With no injector attached the dispatcher is a measured no-op: one
counter increment and one histogram observation around the bare
engine call (see ``benchmarks/bench_resilience_overhead.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.faults.errors import (
    DeadLetterError,
    FaultError,
    StalledStreamFault,
)
from repro.faults.injector import ALL_SITES, FaultInjector
from repro.obs import names
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the retry/timeout rung of the ladder.

    ``timeout_s`` is the per-attempt budget a stalled stream is judged
    against; ``backoff_base_s`` doubles per retry up to
    ``backoff_cap_s`` with ``jitter`` (a fraction of the delay)
    randomized to decorrelate retry storms.  ``max_tolerated_stalls``
    bounds how many sub-timeout stalls one job may absorb before they
    escalate to timeouts (an always-stalling stream must not loop).
    """

    max_retries: int = 3
    timeout_s: float = 0.25
    backoff_base_s: float = 0.001
    backoff_cap_s: float = 0.05
    jitter: float = 0.5
    max_tolerated_stalls: int = 8

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    def backoff_seconds(self, attempt: int, rng) -> float:
        """Delay before retry ``attempt`` (1-based), jittered."""
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * 2 ** (attempt - 1),
        )
        return base * (1.0 + self.jitter * float(rng.random()))


class ResilienceStats:
    """Registry-backed accounting of the fault/degradation ladder.

    Follows the :class:`~repro.core.extender.ExtenderStats` pattern: a
    private registry by default, or the process-wide one so
    ``--metrics-out`` and these properties report the same numbers.
    The accounting invariant the chaos suite asserts is
    ``injected == detected + tolerated``.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        reg = self.registry
        self._jobs = reg.counter(
            names.RESILIENCE_JOBS, "jobs through the dispatcher"
        )
        self._retries = reg.counter(
            names.RESILIENCE_RETRIES, "accelerator retries"
        )
        self._timeouts = reg.counter(
            names.RESILIENCE_TIMEOUTS, "per-attempt timeouts"
        )
        self._fallbacks = reg.counter(
            names.RESILIENCE_FALLBACKS, "host full-band fallbacks"
        )
        self._dead_letters = reg.counter(
            names.RESILIENCE_DEAD_LETTERS, "jobs that exhausted the ladder"
        )
        self._attempts = reg.histogram(
            names.RESILIENCE_ATTEMPTS, "accelerator attempts per job"
        )
        self._injected = {
            site: reg.counter(
                names.FAULTS_INJECTED, "faults injected", site=site
            )
            for site in ALL_SITES
        }
        self._detected = {
            site: reg.counter(
                names.FAULTS_DETECTED, "faults detected", site=site
            )
            for site in ALL_SITES
        }
        self._tolerated = {
            site: reg.counter(
                names.FAULTS_TOLERATED, "faults tolerated", site=site
            )
            for site in ALL_SITES
        }

    # -- recording ------------------------------------------------------

    def record_job(self) -> None:
        """Account one job entering the dispatcher."""
        self._jobs.inc()

    def record_injected(self, site: str) -> None:
        """Account one fault injection (the injector's sink hook)."""
        self._injected[site].inc()

    def record_detected(self, site: str) -> None:
        """Account one fault that surfaced as a typed error."""
        self._detected[site].inc()

    def record_tolerated(self, site: str) -> None:
        """Account one fault absorbed without consequence."""
        self._tolerated[site].inc()

    def record_retry(self) -> None:
        """Account one accelerator retry."""
        self._retries.inc()

    def record_timeout(self) -> None:
        """Account one per-attempt timeout."""
        self._timeouts.inc()

    def record_fallback(self) -> None:
        """Account one host full-band fallback."""
        self._fallbacks.inc()

    def record_dead_letter(self) -> None:
        """Account one job that exhausted the whole ladder."""
        self._dead_letters.inc()

    def record_attempts(self, attempts: int) -> None:
        """Observe how many accelerator attempts one job used."""
        self._attempts.observe(attempts)

    # -- façade ---------------------------------------------------------

    @property
    def jobs(self) -> int:
        """Jobs dispatched so far."""
        return self._jobs.value

    @property
    def retries(self) -> int:
        """Accelerator retries so far."""
        return self._retries.value

    @property
    def timeouts(self) -> int:
        """Per-attempt timeouts so far."""
        return self._timeouts.value

    @property
    def fallbacks(self) -> int:
        """Host full-band fallbacks so far."""
        return self._fallbacks.value

    @property
    def dead_letters(self) -> int:
        """Dead-lettered jobs so far."""
        return self._dead_letters.value

    @property
    def detected_total(self) -> int:
        """Detected faults across every site."""
        return sum(c.value for c in self._detected.values())

    @property
    def tolerated_total(self) -> int:
        """Tolerated faults across every site."""
        return sum(c.value for c in self._tolerated.values())

    @property
    def injected_total(self) -> int:
        """Injected faults across every site (mirrored from the injector)."""
        return sum(c.value for c in self._injected.values())

    def accounted(self) -> bool:
        """The invariant: every injection was detected or tolerated."""
        return self.injected_total == (
            self.detected_total + self.tolerated_total
        )


@dataclass(frozen=True)
class DeadLetter:
    """One job that exhausted the degradation ladder, with context."""

    query: np.ndarray = field(repr=False)
    target: np.ndarray = field(repr=False)
    h0: int = 0
    site: str = ""
    attempts: int = 0
    reason: str = ""


class ResilientDispatcher:
    """Engine wrapper that survives an untrusted accelerator.

    Satisfies the :class:`~repro.aligner.engines.ExtensionEngine`
    protocol, so it plugs straight into the aligner pipeline in place
    of the engine it wraps.  ``fallback`` defaults to a lazily-built
    :class:`~repro.aligner.engines.FullBandEngine` sharing the wrapped
    engine's scoring; ``host_queue_capacity`` bounds how many fallback
    reruns the host accepts (``None`` = unbounded, the bit-identity
    configuration).

    ``breaker`` (a :class:`~repro.durability.breaker.CircuitBreaker`)
    adds a fourth behaviour on top of the ladder: after enough
    *consecutive* host fallbacks it trips and subsequent jobs are
    short-circuited straight to the host full-band kernel without
    burning their retry/timeout budget on an accelerator that is
    plainly down, re-probing on the breaker's half-open schedule.
    Output bytes are unchanged either way — the host kernel is the
    ground truth.
    """

    def __init__(
        self,
        engine,
        fallback=None,
        policy: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        registry: MetricsRegistry | None = None,
        sleep=time.sleep,
        host_queue_capacity: int | None = None,
        seed: int = 0,
        breaker=None,
    ) -> None:
        self.engine = engine
        self.fallback = fallback
        self.policy = policy or RetryPolicy()
        self.injector = injector
        self.stats = ResilienceStats(registry)
        self.dead_letters: list[DeadLetter] = []
        self.host_queue_capacity = host_queue_capacity
        self.breaker = breaker
        self.name = f"resilient({engine.name})"
        self._sleep = sleep
        self._rng = np.random.default_rng(seed)
        if injector is not None and injector.sink is None:
            injector.sink = self.stats

    @property
    def scoring(self):
        """The wrapped engine's affine-gap scheme (pipeline contract)."""
        return self.engine.scoring

    def extend(self, query, target, h0):
        """One extension, guaranteed to terminate down the ladder."""
        policy = self.policy
        stats = self.stats
        stats.record_job()
        if self.breaker is not None and not self.breaker.allow():
            # Breaker open: the accelerator is known-bad, so skip the
            # retry ladder entirely and go straight to the host.
            return self._fallback_engine().extend(query, target, h0)
        attempt = 1
        stalls = 0
        last_site = ""
        while True:
            try:
                result = self.engine.extend(query, target, h0)
            except StalledStreamFault as exc:
                if (
                    exc.seconds <= policy.timeout_s
                    and stalls < policy.max_tolerated_stalls
                ):
                    # The stream resumed within budget: wait it out
                    # without consuming a retry.
                    stalls += 1
                    stats.record_tolerated(exc.site)
                    continue
                stats.record_detected(exc.site)
                stats.record_timeout()
                last_site = exc.site
                if attempt > policy.max_retries:
                    break
                stats.record_retry()
                self._backoff(attempt)
                attempt += 1
                continue
            except FaultError as exc:
                stats.record_detected(exc.site)
                last_site = exc.site
                if attempt > policy.max_retries:
                    break
                stats.record_retry()
                self._backoff(attempt)
                attempt += 1
                continue
            stats.record_attempts(attempt)
            if self.breaker is not None:
                self.breaker.record_success()
            return result

        # Rung 2: full-band rerun on the host.
        if self.breaker is not None:
            self.breaker.record_failure()
        if self._host_accepts():
            stats.record_fallback()
            stats.record_attempts(attempt)
            return self._fallback_engine().extend(query, target, h0)

        # Rung 3: dead-letter — recorded, never silently dropped.
        letter = DeadLetter(
            query=np.asarray(query, dtype=np.uint8),
            target=np.asarray(target, dtype=np.uint8),
            h0=int(h0),
            site=last_site,
            attempts=attempt,
            reason="host rerun queue refused the job",
        )
        self.dead_letters.append(letter)
        stats.record_dead_letter()
        raise DeadLetterError(
            "extension exhausted the degradation ladder",
            site=last_site,
            attempts=attempt,
        )

    def _host_accepts(self) -> bool:
        """Whether the host rerun queue takes one more job."""
        if self.injector is not None and self.injector.overflow():
            self.stats.record_detected("queue.overflow")
            return False
        if self.host_queue_capacity is None:
            return True
        return self.stats.fallbacks < self.host_queue_capacity

    def _fallback_engine(self):
        """The host full-band engine, built lazily on first use."""
        if self.fallback is None:
            from repro.aligner.engines import FullBandEngine

            self.fallback = FullBandEngine(self.engine.scoring)
        return self.fallback

    def _backoff(self, attempt: int) -> None:
        """Sleep the jittered exponential backoff for ``attempt``."""
        delay = self.policy.backoff_seconds(attempt, self._rng)
        if delay > 0:
            self._sleep(delay)
