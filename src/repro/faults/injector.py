"""Seedable fault injection at the simulated accelerator's seams.

The :class:`FaultInjector` is the chaos half of the resilience layer:
given a rate and an RNG seed it decides, deterministically, where to
corrupt the datapath — bit flips in packed 512-bit memory lines,
dropped or truncated lines and result records, stalled or reordered
arbiter streams, and transient per-batch accelerator failures.

Design rules:

* **At most one fault per attempt** (:meth:`FaultInjector.draw`), so
  every injection has exactly one observable consequence and the
  accounting invariant *injected == detected + tolerated* is checkable.
* **Determinism**: the same ``(rate, seed, sites)`` produces the same
  fault sequence; retries draw fresh faults in a reproducible order.
* **No observability dependency**: the injector counts into plain
  dicts and mirrors events into an optional duck-typed ``sink``
  (the dispatcher's :class:`~repro.faults.resilience.ResilienceStats`).
"""

from __future__ import annotations

import numpy as np

ALL_SITES = (
    "line.bitflip",
    "line.truncate",
    "line.drop",
    "stream.reorder",
    "stream.stall",
    "batch.transient",
    "record.bitflip",
    "record.truncate",
    "record.drop",
    "queue.overflow",
)
"""Every seam the injector knows how to corrupt."""

DATAPATH_SITES = (
    "line.bitflip",
    "line.truncate",
    "line.drop",
    "stream.reorder",
    "stream.stall",
    "batch.transient",
    "record.bitflip",
    "record.truncate",
    "record.drop",
)
"""Default chaos mix: every seam the ladder can fully absorb.

``queue.overflow`` is opt-in because it breaches the ladder's last
rung (host fallback) and therefore changes observable output —
bit-identity chaos runs must keep it off.
"""

LINE_SITES = frozenset(
    {"line.bitflip", "line.truncate", "line.drop", "stream.reorder"}
)
"""Sites that corrupt the packed input lines of one job."""

RECORD_SITES = frozenset(
    {"record.bitflip", "record.truncate", "record.drop"}
)
"""Sites that corrupt the write-back result record of one job."""


class FaultInjector:
    """Deterministic, seedable corruption source for the datapath.

    ``rate`` is the per-site, per-attempt injection probability; at
    most one site fires per :meth:`draw`.  ``stall_seconds`` is the
    simulated duration of an injected stream stall (the dispatcher
    compares it against its timeout).
    """

    def __init__(
        self,
        rate: float = 0.01,
        seed: int = 0,
        sites: tuple[str, ...] | None = None,
        stall_seconds: float = 1.0,
        sink=None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("fault rate must be in [0, 1]")
        unknown = set(sites or ()) - set(ALL_SITES)
        if unknown:
            raise ValueError(f"unknown fault sites: {sorted(unknown)}")
        self.rate = rate
        self.seed = seed
        self.sites = tuple(sites) if sites is not None else DATAPATH_SITES
        self.stall_seconds = stall_seconds
        self.sink = sink
        self._rng = np.random.default_rng(seed)
        self.injected: dict[str, int] = {}
        self.tolerated: dict[str, int] = {}
        # queue.overflow fires at fallback time, not per attempt.
        self._attempt_sites = tuple(
            s for s in self.sites if s != "queue.overflow"
        )

    # -- bookkeeping ----------------------------------------------------

    @property
    def total_injected(self) -> int:
        """Faults injected so far, across every site."""
        return sum(self.injected.values())

    @property
    def total_tolerated(self) -> int:
        """Injections that were no-ops (absorbed at the seam)."""
        return sum(self.tolerated.values())

    def reset(self) -> None:
        """Restart the RNG stream and zero the counts."""
        self._rng = np.random.default_rng(self.seed)
        self.injected.clear()
        self.tolerated.clear()

    def _record_injected(self, site: str) -> None:
        self.injected[site] = self.injected.get(site, 0) + 1
        if self.sink is not None:
            self.sink.record_injected(site)

    def record_tolerated(self, site: str) -> None:
        """Mark one injected fault as absorbed without detection."""
        self.tolerated[site] = self.tolerated.get(site, 0) + 1
        if self.sink is not None:
            self.sink.record_tolerated(site)

    # -- fault selection ------------------------------------------------

    def draw(self) -> str | None:
        """Pick at most one fault site for this attempt.

        Each active site is rolled in declaration order at ``rate``;
        the first hit wins and is counted as injected.  Draws always
        consume the same number of RNG values, so fault sequences are
        reproducible regardless of outcomes.
        """
        if self.rate == 0.0 or not self._attempt_sites:
            return None
        rolls = self._rng.random(len(self._attempt_sites))
        for site, roll in zip(self._attempt_sites, rolls):
            if roll < self.rate:
                self._record_injected(site)
                return site
        return None

    def overflow(self) -> bool:
        """Roll the host rerun-queue overflow site (fallback time).

        Separate from :meth:`draw` because overflow strikes the
        ladder's last rung, not the per-attempt datapath; it only
        fires when ``queue.overflow`` was opted into ``sites``.
        """
        if "queue.overflow" not in self.sites or self.rate == 0.0:
            return False
        if float(self._rng.random()) < self.rate:
            self._record_injected("queue.overflow")
            return True
        return False

    # -- corruption operators -------------------------------------------

    def corrupt_lines(
        self, site: str, lines: list[bytes]
    ) -> list[bytes]:
        """Apply one line-site fault to a packed job's lines.

        A no-op corruption (reordering a single-line job) is counted
        as tolerated and the lines pass through unchanged.
        """
        if site not in LINE_SITES:
            raise ValueError(f"{site!r} is not a line fault site")
        lines = list(lines)
        if site == "line.bitflip":
            idx = int(self._rng.integers(len(lines)))
            lines[idx] = self._flip_bit(lines[idx])
            return lines
        if site == "line.truncate":
            idx = int(self._rng.integers(len(lines)))
            cut = int(self._rng.integers(len(lines[idx])))
            lines[idx] = lines[idx][:cut]
            return lines
        if site == "line.drop":
            idx = int(self._rng.integers(len(lines)))
            del lines[idx]
            return lines
        # stream.reorder: swap two lines of the stream
        if len(lines) < 2:
            self.record_tolerated(site)
            return lines
        i, j = self._rng.choice(len(lines), size=2, replace=False)
        if lines[int(i)] == lines[int(j)]:
            # Swapping identical lines (repetitive payload) is a
            # no-op no checksum can — or needs to — see.
            self.record_tolerated(site)
            return lines
        lines[int(i)], lines[int(j)] = lines[int(j)], lines[int(i)]
        return lines

    def corrupt_record(self, site: str, blob: bytes) -> bytes | None:
        """Apply one record-site fault; ``None`` means dropped."""
        if site not in RECORD_SITES:
            raise ValueError(f"{site!r} is not a record fault site")
        if site == "record.bitflip":
            return self._flip_bit(blob)
        if site == "record.truncate":
            return blob[: int(self._rng.integers(len(blob)))]
        return None  # record.drop

    def _flip_bit(self, blob: bytes) -> bytes:
        """Flip one uniformly-chosen bit of ``blob``."""
        if not blob:
            return blob
        bit = int(self._rng.integers(len(blob) * 8))
        data = bytearray(blob)
        data[bit // 8] ^= 1 << (bit % 8)
        return bytes(data)
