"""Discover and run the tier-1 benchmark suite plus the accuracy run.

A ``benchmarks/bench_*.py`` module opts into the suite by exporting::

    def tier1_bench(quick: bool = False) -> dict[str, float]:
        ...

returning metric name → value (throughput metrics end in ``_per_s``
so the gate picks them up; anything else is trend-only).  The hooks
deliberately bypass pytest-benchmark: they are plain best-of-N wall
clocks sized for CI, while the pytest harnesses remain the deep
instruments.

The accuracy run is not a hook — it lives here because it is the one
leg every configuration must share bit-for-bit: a fixed-seed,
repeat-free Platinum-like corpus aligned by the batched engine and
graded by the scorecard.  Repeat-free because a 300 bp repeat copied
over a 101 bp read's origin would make "correct locus" ambiguous;
the corpus measures the aligner, not the reference's self-similarity.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path
from typing import Callable

TIER1_HOOK = "tier1_bench"
"""Attribute a benchmark module exports to join ``repro bench``."""

ACCURACY_SEED = 20200613
"""Fixed corpus seed shared with the benchmark conftest."""

ACCURACY_TOLERANCE = 20
"""Correct-locus window of the accuracy run (bases)."""


def default_benchmarks_dir() -> Path:
    """The repo's ``benchmarks/`` directory for a src checkout."""
    return Path(__file__).resolve().parents[3] / "benchmarks"


def discover_benchmarks(
    bench_dir: str | Path | None = None,
) -> list[tuple[str, Callable[[bool], dict]]]:
    """Find every ``bench_*.py`` exporting a :data:`TIER1_HOOK`.

    Modules are imported by file path (the benchmarks directory is
    not a package) in sorted order; modules without the hook are the
    deep pytest-only harnesses and are skipped silently.
    """
    directory = Path(
        default_benchmarks_dir() if bench_dir is None else bench_dir
    )
    if not directory.is_dir():
        return []
    hooks = []
    for path in sorted(directory.glob("bench_*.py")):
        name = f"repro_bench_{path.stem}"
        spec = importlib.util.spec_from_file_location(name, path)
        if spec is None or spec.loader is None:
            continue
        module = importlib.util.module_from_spec(spec)
        # Registered so decorators/dataclasses inside the module can
        # resolve their own module during exec.
        sys.modules[name] = module
        spec.loader.exec_module(module)
        hook = getattr(module, TIER1_HOOK, None)
        if callable(hook):
            hooks.append((path.stem, hook))
    return hooks


def run_tier1(
    quick: bool = False,
    bench_dir: str | Path | None = None,
    log: Callable[[str], None] | None = None,
) -> tuple[dict, list[str]]:
    """Run every discovered hook; returns (metrics, module names).

    A metric name produced by two modules is a suite bug — the trend
    file would silently interleave different measurements — so
    collisions raise.
    """
    metrics: dict[str, float] = {}
    modules: list[str] = []
    for name, hook in discover_benchmarks(bench_dir):
        if log is not None:
            log(f"bench: running {name} (quick={quick})")
        produced = hook(quick)
        for key, value in produced.items():
            if key in metrics:
                raise ValueError(
                    f"benchmark metric {key!r} produced by two modules"
                )
            metrics[key] = float(value)
        modules.append(name)
    return metrics, modules


def accuracy_config(quick: bool = False) -> dict:
    """The accuracy corpus parameters (part of the fingerprint)."""
    return {
        "seed": ACCURACY_SEED,
        "reference_length": 20_000 if quick else 60_000,
        "reads": 120 if quick else 400,
        "profile": "platinum",
        "repeat_fraction": 0.0,
        "engine": "batched",
        "seeding": "kmer",
        "tolerance": ACCURACY_TOLERANCE,
    }


def accuracy_run(
    quick: bool = False, scorecard_out: str | Path | None = None
) -> dict[str, float]:
    """Align the fixed-seed corpus and grade it against its truth.

    Deterministic end to end (derandomized corpus, deterministic
    engine), so any change in the returned rates is a behaviour
    change in the aligner — which is exactly what the gate's
    no-drop rule assumes.
    """
    import numpy as np

    from repro.aligner.engines import BatchedEngine
    from repro.aligner.pipeline import Aligner
    from repro.genome.synth import (
        PLATINUM_LIKE,
        ReadSimulator,
        synthesize_reference,
    )
    from repro.scorecard import TruthRecord, score_records

    cfg = accuracy_config(quick)
    rng = np.random.default_rng(cfg["seed"])
    reference = synthesize_reference(
        cfg["reference_length"], rng, repeat_fraction=0.0
    )
    sim = ReadSimulator(reference, PLATINUM_LIKE, seed=cfg["seed"])
    reads = sim.simulate(cfg["reads"])
    truth = {r.name: TruthRecord.from_read(r) for r in reads}
    aligner = Aligner(reference, BatchedEngine(), seeding=cfg["seeding"])
    records = aligner.align_batched(
        [(r.name, r.codes) for r in reads]
    )
    card = score_records(records, truth, tolerance=cfg["tolerance"])
    if scorecard_out is not None:
        card.write_json(scorecard_out)
    return {
        "accuracy.correct_locus_rate": card.correct_locus_rate,
        "accuracy.unmapped_fraction": card.unmapped_fraction,
        "accuracy.wrong_total": float(
            card.outcomes["wrong_locus"] + card.outcomes["wrong_strand"]
        ),
        "accuracy.reads_scored": float(card.total),
    }


def run_suite(
    quick: bool = False,
    bench_dir: str | Path | None = None,
    log: Callable[[str], None] | None = None,
    scorecard_out: str | Path | None = None,
) -> dict:
    """Run tier-1 benchmarks + the accuracy leg; returns the record.

    The returned record (see :mod:`repro.bench.history`) is not yet
    appended anywhere — the CLI owns the trend file and the gate.
    ``scorecard_out`` additionally writes the accuracy leg's full
    scorecard JSON (the CI artifact).
    """
    from repro.bench.history import new_record

    metrics, modules = run_tier1(quick, bench_dir=bench_dir, log=log)
    if log is not None:
        log("bench: running accuracy corpus")
    metrics.update(accuracy_run(quick, scorecard_out=scorecard_out))
    # Deliberately excludes anything host- or interpreter-specific:
    # the fingerprint keys which records measured the same workload,
    # and the accuracy gate must reach across machines.
    config = {
        "quick": quick,
        "modules": modules,
        "accuracy": accuracy_config(quick),
    }
    return new_record(metrics, config, quick)
