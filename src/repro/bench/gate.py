"""The regression gate: compare one bench record against its baseline.

Two rules, matching how the two metric families behave:

* **throughput** (any metric ending in ``_per_s``, higher is better)
  is compared against the *median* of the most recent matching
  baseline records — same config fingerprint AND same host, because a
  wall clock only means something on the machine that ran it.  A drop
  beyond the tolerance fails; with no comparable baseline the metric
  is skipped with a printed note, never silently.
* **accuracy** (``accuracy.correct_locus_rate``) is deterministic on
  the fixed-seed corpus, so it compares across hosts (fingerprint
  match only) and tolerates *no* drop against the best baseline
  value; an optional absolute floor catches a bad first record.

Everything else in a record (overhead fractions, unmapped rates) is
trend data: recorded, printed, not gated.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

THROUGHPUT_SUFFIX = "_per_s"
"""Metrics with this suffix are gated as throughput (higher better)."""

ACCURACY_METRIC = "accuracy.correct_locus_rate"
"""The no-drop-allowed accuracy metric."""

DEFAULT_MAX_DROP = 0.10
"""Default tolerated fractional throughput drop (the gate's X%)."""

BASELINE_WINDOW = 5
"""Recent matching records the rolling throughput baseline medians."""


@dataclass
class GateResult:
    """Outcome of one ``--check``: pass/fail plus per-metric lines."""

    ok: bool = True
    lines: list[str] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    def fail(self, metric: str, line: str) -> None:
        """Record a failing metric comparison."""
        self.ok = False
        self.failures.append(metric)
        self.lines.append("FAIL  " + line)

    def note(self, line: str) -> None:
        """Record a passing or informational comparison."""
        self.lines.append("  ok  " + line)


def _matching(record: dict, baseline: list[dict], same_host: bool):
    """Baseline records comparable to ``record``, most recent last.

    Comparable means same config fingerprint, same ``quick`` flag
    (a full run must never be gated against quick-run medians — the
    corpora differ by an order of magnitude), and, for throughput,
    same host.
    """
    out = [
        r
        for r in baseline
        if r.get("fingerprint") == record.get("fingerprint")
        and bool(r.get("quick")) == bool(record.get("quick"))
        and (not same_host or r.get("host") == record.get("host"))
    ]
    return out[-BASELINE_WINDOW:]


def check_record(
    record: dict,
    baseline: list[dict],
    max_drop: float = DEFAULT_MAX_DROP,
    min_correct_locus: float | None = None,
) -> GateResult:
    """Gate ``record`` against the ``baseline`` history records.

    Pure over its inputs (no filesystem, no clock) so the regression
    behaviour is directly unit-testable: inject a record with a 10%
    slower kernel and the result must flip to failing.
    """
    if not 0 <= max_drop < 1:
        raise ValueError("max_drop must be in [0, 1)")
    result = GateResult()
    metrics = record.get("metrics", {})

    throughput_base = _matching(record, baseline, same_host=True)
    for name in sorted(metrics):
        if not name.endswith(THROUGHPUT_SUFFIX):
            continue
        values = [
            r["metrics"][name]
            for r in throughput_base
            if name in r.get("metrics", {})
        ]
        if not values:
            result.note(
                f"{name}: {metrics[name]:,.1f} (no same-host baseline "
                "with this fingerprint; not gated)"
            )
            continue
        base = statistics.median(values)
        floor = base * (1.0 - max_drop)
        line = (
            f"{name}: {metrics[name]:,.1f} vs baseline median "
            f"{base:,.1f} over {len(values)} run(s) "
            f"(floor {floor:,.1f} at -{max_drop:.0%})"
        )
        if metrics[name] < floor:
            result.fail(name, line)
        else:
            result.note(line)

    if ACCURACY_METRIC in metrics:
        rate = metrics[ACCURACY_METRIC]
        accuracy_base = _matching(record, baseline, same_host=False)
        values = [
            r["metrics"][ACCURACY_METRIC]
            for r in accuracy_base
            if ACCURACY_METRIC in r.get("metrics", {})
        ]
        if values:
            best = max(values)
            line = (
                f"{ACCURACY_METRIC}: {rate:.4f} vs baseline best "
                f"{best:.4f} (no drop allowed)"
            )
            if rate < best:
                result.fail(ACCURACY_METRIC, line)
            else:
                result.note(line)
        else:
            result.note(
                f"{ACCURACY_METRIC}: {rate:.4f} (no baseline with "
                "this fingerprint; not gated)"
            )
        if min_correct_locus is not None:
            line = (
                f"{ACCURACY_METRIC}: {rate:.4f} vs absolute floor "
                f"{min_correct_locus:.4f}"
            )
            if rate < min_correct_locus:
                result.fail(ACCURACY_METRIC, line)
            else:
                result.note(line)
    elif min_correct_locus is not None:
        result.fail(
            ACCURACY_METRIC,
            f"{ACCURACY_METRIC}: missing from the record but an "
            "absolute floor was requested",
        )
    return result
