"""Unified benchmark suite: one command, one trend file, one gate.

Perf evidence used to live in ad-hoc ``BENCH_*.json`` snapshots with
no history — a kernel PR could slow the pipeline (or vice versa) and
nothing would notice.  This package turns the tier-1 benchmarks plus
a truth-scored accuracy run into a single ``repro bench`` invocation
that appends one schema-versioned record (git rev, timestamp, config
fingerprint, metrics) to ``bench/history.jsonl``:

* **runner** — discovers ``benchmarks/bench_*.py`` modules that
  export a ``tier1_bench(quick)`` hook (kernel throughput, pipeline
  throughput, durability + resilience overhead) and runs a fixed-seed
  accuracy corpus through the scorecard;
* **history** — the append-only JSONL trend file and the config
  fingerprint (reusing the durability journal's canonical-JSON CRC)
  that keys which records are comparable;
* **gate** — ``repro bench --check``: throughput metrics may not drop
  more than the tolerance against the rolling same-host baseline, and
  the correct-locus rate may not drop at all, on pain of a nonzero
  exit.  Wired into CI so every future perf PR is self-verifying.
"""

from __future__ import annotations

from repro.bench.gate import GateResult, check_record
from repro.bench.history import (
    RECORD_SCHEMA,
    append_record,
    config_fingerprint,
    load_records,
    new_record,
)
from repro.bench.runner import discover_benchmarks, run_suite
from repro.bench.timing import best_of

__all__ = [
    "GateResult",
    "RECORD_SCHEMA",
    "append_record",
    "best_of",
    "check_record",
    "config_fingerprint",
    "discover_benchmarks",
    "load_records",
    "new_record",
    "run_suite",
]
