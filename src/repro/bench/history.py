"""The bench trend file: append-only, schema-versioned JSONL.

Each ``repro bench`` run appends exactly one record to
``bench/history.jsonl``.  A record carries everything the gate needs
to decide comparability later — the git revision, the host, and a
CRC fingerprint of the benchmark configuration (corpus sizes, seeds,
quick mode, python version) — plus the measured metrics::

    {"schema": 1, "git_rev": "abc1234", "timestamp": "...Z",
     "host": "runner-3", "quick": true, "fingerprint": "9f2c0b1a",
     "config": {...}, "metrics": {"kernel.numpy.ext_per_s": 52340.1,
     "accuracy.correct_locus_rate": 1.0, ...}}

Records whose fingerprints differ were measured under different
configurations and are never compared; throughput is additionally
only compared within one host (wall clocks do not travel between
machines, accuracy does).
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.durability.journal import payload_crc

RECORD_SCHEMA = 1
"""History record version; bumped only on incompatible changes."""

DEFAULT_HISTORY = Path("bench") / "history.jsonl"
"""Repo-relative default trend file of ``repro bench``."""


def config_fingerprint(config: dict) -> str:
    """Stable hex fingerprint of a benchmark configuration.

    Reuses the durability journal's canonical-JSON CRC so the same
    config always fingerprints identically across runs and hosts.
    """
    return f"{payload_crc(config):08x}"


def git_rev() -> str:
    """The short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def new_record(
    metrics: dict,
    config: dict,
    quick: bool,
    host: str | None = None,
    rev: str | None = None,
    timestamp: float | None = None,
) -> dict:
    """Assemble one history record from a finished suite run.

    ``config`` must contain only JSON-able values that determine what
    was measured (corpus sizes, seeds, module list, python version) —
    it is what the fingerprint hashes, so anything host-specific in it
    would silently split the baseline.
    """
    when = time.time() if timestamp is None else timestamp
    return {
        "schema": RECORD_SCHEMA,
        "git_rev": git_rev() if rev is None else rev,
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(when)
        ),
        "host": platform.node() if host is None else host,
        "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
        "quick": quick,
        "fingerprint": config_fingerprint(config),
        "config": config,
        "metrics": dict(metrics),
    }


def append_record(path: str | Path, record: dict) -> None:
    """Append one record to the JSONL trend file (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_records(path: str | Path) -> list[dict]:
    """Load the trend file; missing file is an empty history.

    Unreadable lines and records from a different schema are skipped
    with a warning on stderr rather than poisoning the gate — an old
    history must never block a new run.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: list[dict] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                print(
                    f"warning: {path}:{lineno}: unreadable history "
                    "line skipped",
                    file=sys.stderr,
                )
                continue
            if (
                not isinstance(record, dict)
                or record.get("schema") != RECORD_SCHEMA
            ):
                print(
                    f"warning: {path}:{lineno}: schema "
                    f"{record.get('schema')!r} record skipped "
                    f"(this reader understands {RECORD_SCHEMA})",
                    file=sys.stderr,
                )
                continue
            records.append(record)
    return records
