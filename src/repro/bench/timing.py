"""Minimal wall-clock timing for tier-1 benchmark hooks.

The pytest-benchmark harness stays the tool for deep, statistically
careful runs; the tier-1 hooks behind ``repro bench`` only need a
best-of-N wall clock that is cheap enough for CI and stable enough
for a 10%-tolerance gate.
"""

from __future__ import annotations

import time
from typing import Callable


def best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Run ``fn`` ``repeats`` times; return the best elapsed seconds.

    Best-of (not mean) because scheduling noise only ever adds time:
    the minimum is the closest observable to the code's true cost.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
