"""The checkpoint journal: completed read windows, committed durably.

A journaled run owns a *run directory*:

```
run-dir/
  manifest.json            # fingerprint + window plan + segment CRCs
  segments/
    window-00000.sam       # SAM body lines of window 0 (no header)
    window-00001.sam
  quarantine.fastq         # poison reads (supervisor, when any)
  quarantine.tsv           # their reasons
  bad_records.tsv          # malformed input records (when quarantined)
```

Each completed window's SAM body is written with the classic durable
sequence — temp file, ``fsync``, atomic ``rename``, directory
``fsync`` — and only then recorded in the manifest (same sequence), so
a crash at any instant leaves either the old manifest or the new one,
never a torn state.  The manifest carries a CRC-32 per segment *and*
one over its own payload; resume re-verifies every segment against its
recorded CRC and silently recomputes any window whose segment is
missing, truncated, or corrupt.

The *fingerprint* pins everything that determines output bytes —
input file hashes, engine recipe, batch size, seeding, bad-record
policy — so ``--resume`` against a drifted configuration is refused
instead of stitching a Frankenstein SAM.  Worker count is deliberately
excluded: windows are the unit of work, so a run interrupted at 4
workers may resume at 1 (or vice versa) with identical output.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro import obs
from repro.genome.sam import SamRecord, write_header
from repro.obs import names

MANIFEST_NAME = "manifest.json"
SEGMENT_DIR = "segments"
MANIFEST_VERSION = 1


class JournalError(RuntimeError):
    """The journal refused an operation (mismatch, reuse, torn state)."""


@dataclass(frozen=True)
class SegmentMeta:
    """Manifest entry for one committed window segment."""

    crc: int
    size: int
    records: int


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tmp + fsync + rename + dir fsync.

    After this returns the bytes are on disk under their final name;
    a crash mid-call leaves either the previous file or nothing, never
    a torn file under ``path``.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry table (best effort off POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _payload_crc(payload: dict) -> int:
    """CRC-32 over the canonical JSON encoding of ``payload``."""
    blob = json.dumps(payload, sort_keys=True).encode()
    return zlib.crc32(blob) & 0xFFFFFFFF


def payload_crc(payload: dict) -> int:
    """CRC-32 over the canonical (sorted-keys) JSON of ``payload``.

    The journal's own integrity checksum, exposed for other
    subsystems that need a stable fingerprint of a small JSON-able
    config — the bench history uses it to tag records with their
    configuration so the regression gate only compares like with like.
    """
    return _payload_crc(payload)


class RunJournal:
    """Checkpoint journal of one alignment run's completed windows."""

    def __init__(
        self,
        run_dir: str | Path,
        fingerprint: dict,
        total_windows: int,
        windows: dict[int, SegmentMeta] | None = None,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.fingerprint = fingerprint
        self.total_windows = int(total_windows)
        self._windows: dict[int, SegmentMeta] = dict(windows or {})

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls, run_dir: str | Path, fingerprint: dict, total_windows: int
    ) -> "RunJournal":
        """Start a fresh journal; refuses a directory that has one.

        An existing manifest means an interrupted run lives here —
        overwriting it silently would destroy resumable work, so the
        caller must either pass ``--resume`` or pick a new directory.
        """
        run_dir = Path(run_dir)
        if (run_dir / MANIFEST_NAME).exists():
            raise JournalError(
                f"{run_dir} already holds a journal manifest; resume it "
                "or choose a fresh --run-dir"
            )
        (run_dir / SEGMENT_DIR).mkdir(parents=True, exist_ok=True)
        journal = cls(run_dir, fingerprint, total_windows)
        journal._write_manifest()
        return journal

    @classmethod
    def resume(
        cls, run_dir: str | Path, fingerprint: dict, total_windows: int
    ) -> tuple["RunJournal", list[int]]:
        """Reopen an interrupted run; returns ``(journal, dropped)``.

        Validates the manifest CRC and the configuration fingerprint,
        then re-verifies every recorded segment on disk; windows whose
        segment is missing or fails its CRC are *dropped* (returned,
        so the caller can report them) and will be recomputed.
        """
        run_dir = Path(run_dir)
        manifest_path = run_dir / MANIFEST_NAME
        if not manifest_path.exists():
            raise JournalError(f"{run_dir} has no journal manifest")
        try:
            wrapper = json.loads(manifest_path.read_text())
            payload = wrapper["payload"]
            crc = wrapper["crc"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise JournalError(
                f"{manifest_path} is not a journal manifest: {exc}"
            ) from exc
        if _payload_crc(payload) != crc:
            raise JournalError(f"{manifest_path} failed its CRC check")
        if payload.get("version") != MANIFEST_VERSION:
            raise JournalError(
                f"{manifest_path} has unsupported version "
                f"{payload.get('version')!r}"
            )
        if payload.get("fingerprint") != fingerprint:
            raise JournalError(
                "run configuration changed since this journal was "
                "written; resume with the original reference/reads/"
                "engine flags or start a fresh --run-dir"
            )
        if payload.get("total_windows") != total_windows:
            raise JournalError(
                f"window plan changed: journal has "
                f"{payload.get('total_windows')} windows, run needs "
                f"{total_windows}"
            )
        journal = cls(run_dir, fingerprint, total_windows)
        dropped: list[int] = []
        for key, meta in payload.get("windows", {}).items():
            window = int(key)
            meta = SegmentMeta(
                crc=meta["crc"], size=meta["size"], records=meta["records"]
            )
            if journal._segment_intact(window, meta):
                journal._windows[window] = meta
            else:
                dropped.append(window)
                try:
                    journal.segment_path(window).unlink()
                except OSError:
                    pass
        if dropped:
            journal._write_manifest()
        return journal, sorted(dropped)

    # -- state ----------------------------------------------------------

    @property
    def completed(self) -> frozenset[int]:
        """Window indices whose segments are committed and verified."""
        return frozenset(self._windows)

    def is_complete(self) -> bool:
        """Whether every window of the plan has a committed segment."""
        return len(self._windows) == self.total_windows

    def segment_path(self, window: int) -> Path:
        """Path of one window's segment file."""
        return self.run_dir / SEGMENT_DIR / f"window-{window:05d}.sam"

    # -- recording ------------------------------------------------------

    def record(self, window: int, records: Iterable[SamRecord]) -> None:
        """Commit one completed window: segment first, then manifest.

        Idempotent — re-recording a committed window is a no-op, so a
        resumed run racing a late journal entry cannot tear state.
        """
        if not 0 <= window < self.total_windows:
            raise JournalError(
                f"window {window} outside plan of {self.total_windows}"
            )
        if window in self._windows:
            return
        body = "".join(rec.to_line() + "\n" for rec in records).encode()
        n_records = body.count(b"\n")
        atomic_write_bytes(self.segment_path(window), body)
        self._windows[window] = SegmentMeta(
            crc=zlib.crc32(body) & 0xFFFFFFFF,
            size=len(body),
            records=n_records,
        )
        self._write_manifest()
        if obs.enabled():
            reg = obs.get_registry()
            reg.counter(
                names.DURABILITY_WINDOWS_JOURNALED, "windows journaled"
            ).inc()
            reg.counter(
                names.DURABILITY_JOURNAL_BYTES, "segment bytes committed"
            ).inc(len(body))

    # -- stitching ------------------------------------------------------

    def stitch_to(
        self,
        out_path: str | Path,
        reference_name: str,
        reference_length: int,
        program_tags: tuple[str, ...] = (),
    ) -> None:
        """Write the final SAM: header + every segment, in window order.

        Byte-identical to an uninterrupted ``write_sam`` of the same
        records.  The output itself is written atomically, so ``--out``
        never holds a half-stitched file.
        """
        if not self.is_complete():
            missing = sorted(
                set(range(self.total_windows)) - set(self._windows)
            )
            raise JournalError(
                f"cannot stitch: {len(missing)} window(s) incomplete "
                f"(first missing: {missing[0]})"
            )
        import io

        head = io.StringIO()
        write_header(
            head, reference_name, reference_length,
            program_tags=program_tags,
        )
        parts = [head.getvalue().encode()]
        for window in range(self.total_windows):
            data = self.segment_path(window).read_bytes()
            meta = self._windows[window]
            if (zlib.crc32(data) & 0xFFFFFFFF) != meta.crc:
                raise JournalError(
                    f"segment for window {window} failed its CRC at "
                    "stitch time"
                )
            parts.append(data)
        atomic_write_bytes(Path(out_path), b"".join(parts))

    # -- internals ------------------------------------------------------

    def _segment_intact(self, window: int, meta: SegmentMeta) -> bool:
        path = self.segment_path(window)
        try:
            data = path.read_bytes()
        except OSError:
            return False
        return (
            len(data) == meta.size
            and (zlib.crc32(data) & 0xFFFFFFFF) == meta.crc
        )

    def _write_manifest(self) -> None:
        payload = {
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "total_windows": self.total_windows,
            "windows": {
                str(window): {
                    "crc": meta.crc,
                    "size": meta.size,
                    "records": meta.records,
                }
                for window, meta in sorted(self._windows.items())
            },
        }
        wrapper = {"payload": payload, "crc": _payload_crc(payload)}
        atomic_write_bytes(
            self.run_dir / MANIFEST_NAME,
            json.dumps(wrapper, sort_keys=True, indent=1).encode(),
        )
