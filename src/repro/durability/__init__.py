"""Durability: checkpointed runs that survive crashes and poison input.

PR 2 made a single extension survive a misbehaving datapath and PR 3
scaled the pipeline across processes; this package makes the whole
*run* durable.  Four cooperating pieces:

* :mod:`repro.durability.journal` — a checkpoint journal of completed
  read-window SAM segments (atomic ``tmp + fsync + rename`` writes, a
  CRC'd manifest), so an interrupted run resumes instead of restarting
  and the stitched output is byte-identical to an uninterrupted run;
* :mod:`repro.durability.supervisor` — the policies, heartbeat board,
  poison plan, and quarantine writer behind the shard supervisor in
  :mod:`repro.aligner.parallel`: dead/hung workers are respawned
  within a bounded budget and a reproducibly-crashing shard is
  bisected down to the offending read, which is quarantined instead
  of taking down the run;
* :mod:`repro.durability.breaker` — a circuit breaker for the
  accelerator path: after enough consecutive host fallbacks the
  dispatcher stops burning per-job timeouts and routes straight to the
  (always correct) host full-band kernel, probing the accelerator on
  a half-open schedule;
* :mod:`repro.durability.runner` — the journaled run driver the CLI
  uses: windowing, resume, graceful SIGINT/SIGTERM drain, and the
  final stitch;
* :mod:`repro.durability.wal` — the request write-ahead log behind
  ``repro serve``: every admitted request hits disk before it is
  queued, so a crashed server can name exactly which requests were
  accepted but never answered.

Everything composes with the chaos layer: a ``--chaos`` run that is
killed and resumed still produces byte-identical SAM.  See
``docs/durability.md``.
"""

from __future__ import annotations

from repro.durability.breaker import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
)
from repro.durability.journal import JournalError, RunJournal
from repro.durability.runner import (
    GracefulShutdown,
    RunInterrupted,
    run_fingerprint,
    run_journaled,
)
from repro.durability.supervisor import (
    PoisonPlan,
    Quarantine,
    SupervisorError,
    SupervisorPolicy,
)
from repro.durability.wal import RequestWAL, WalError, WalReplay

__all__ = [
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "GracefulShutdown",
    "JournalError",
    "PoisonPlan",
    "Quarantine",
    "RequestWAL",
    "RunInterrupted",
    "RunJournal",
    "SupervisorError",
    "SupervisorPolicy",
    "WalError",
    "WalReplay",
    "run_fingerprint",
    "run_journaled",
]
