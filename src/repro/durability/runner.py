"""The journaled run driver: windowing, resume, graceful shutdown.

This is the piece the CLI's durable path (``align --run-dir``) calls
into.  It owns the lifecycle of one run directory:

1. fingerprint the configuration (:func:`run_fingerprint`) so a resume
   against drifted inputs or engine flags is refused;
2. create or resume the :class:`~repro.durability.journal.RunJournal`
   for the window plan;
3. drive :func:`~repro.aligner.parallel.align_supervised` with the
   journal, a :class:`~repro.durability.supervisor.Quarantine` rooted
   in the run directory, and a stop predicate (typically a
   :class:`GracefulShutdown`);
4. stitch the final SAM from the journal when every window committed,
   or raise :class:`RunInterrupted` with a resume hint when the run
   drained early.

The stitched output is byte-identical to an uninterrupted run — the
acceptance bar the kill/resume suites and the CI ``durability`` job
hold it to.
"""

from __future__ import annotations

import dataclasses
import hashlib
import signal
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.durability.journal import RunJournal

_FINGERPRINT_VERSION = 2


class RunInterrupted(RuntimeError):
    """A graceful shutdown drained the run before it finished.

    Carries the run directory and progress so the caller (the CLI)
    can print a resume hint instead of a stack trace; the journal in
    ``run_dir`` already holds every completed window.
    """

    def __init__(self, run_dir: Path, done: int, total: int) -> None:
        self.run_dir = Path(run_dir)
        self.done = done
        self.total = total
        super().__init__(
            f"interrupted after {done}/{total} windows; resume with "
            f"--resume --run-dir {self.run_dir}"
        )


class GracefulShutdown:
    """Context manager turning SIGINT/SIGTERM into a drain request.

    Inside the ``with`` block the first signal sets the flag (the
    supervisor polls it via ``should_stop`` and drains the in-flight
    wave); a second signal restores the previous handler's behaviour,
    so an impatient double Ctrl-C still kills the process.  The
    instance itself is the stop predicate: ``bool(shutdown())``.
    """

    def __init__(
        self, signals: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)
    ) -> None:
        self.signals = signals
        self.requested = False
        self.signal_number: int | None = None
        self._previous: dict[int, object] = {}

    def __call__(self) -> bool:
        """Whether a drain has been requested (the stop predicate)."""
        return self.requested

    def __enter__(self) -> "GracefulShutdown":
        """Install the drain handlers, remembering the old ones."""
        for signum in self.signals:
            self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc_info) -> None:
        """Restore the previous signal handlers."""
        for signum, handler in self._previous.items():
            signal.signal(signum, handler)
        self._previous.clear()

    def _handle(self, signum, frame) -> None:
        if self.requested:
            # Second signal: stop shielding, defer to the old handler.
            previous = self._previous.get(signum)
            signal.signal(signum, previous)
            raise KeyboardInterrupt
        self.requested = True
        self.signal_number = signum


def _file_sha256(path: str | Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def run_fingerprint(
    reference_path: str | Path,
    reads_path: str | Path,
    spec,
    batch_size: int,
    seeding: str,
    on_bad_record: str = "fail",
    index_fingerprint: str | None = None,
) -> dict:
    """The configuration fingerprint pinned into a journal manifest.

    Hashes the input *contents* (not paths — a moved file still
    resumes) and records every engine/windowing flag that shapes the
    output bytes.  Worker count and supervision knobs are deliberately
    absent: windows are the unit of work, so a run may resume at a
    different parallelism with identical output.  ``spec`` is an
    :class:`~repro.aligner.parallel.EngineSpec`.

    ``index_fingerprint`` is the content fingerprint of the persistent
    index artifact the run seeds from (``None`` when seeding
    structures are built in-process).  Pinning it means ``--resume``
    refuses a drifted or swapped index — while a deleted-and-rebuilt
    artifact with identical content still resumes, because the
    fingerprint is content-addressed, not path- or mtime-based.
    """
    return {
        "version": _FINGERPRINT_VERSION,
        "reference_sha256": _file_sha256(reference_path),
        "reads_sha256": _file_sha256(reads_path),
        "engine": dataclasses.asdict(spec),
        "batch_size": int(batch_size),
        "seeding": seeding,
        "on_bad_record": on_bad_record,
        "index": index_fingerprint,
    }


def fingerprint_reads(names_and_codes) -> str:
    """CRC-chain over in-memory reads, for path-less programmatic runs.

    :func:`run_fingerprint` hashes input *files*; tests and library
    callers that built their reads in memory can pin them with this
    instead (stable across processes — names and code bytes only).
    """
    crc = 0
    for name, codes in names_and_codes:
        crc = zlib.crc32(name.encode(), crc)
        crc = zlib.crc32(bytes(bytearray(codes)), crc)
    return f"{crc & 0xFFFFFFFF:08x}"


@dataclass
class RunReport:
    """What one :func:`run_journaled` call accomplished."""

    run_dir: Path
    total_windows: int
    skipped_windows: int = 0
    dropped_windows: list[int] = field(default_factory=list)
    restarts: int = 0
    quarantined: list[str] = field(default_factory=list)
    resumed: bool = False


def run_journaled(
    run_dir: str | Path,
    reference,
    reads,
    fingerprint: dict,
    out_path: str | Path,
    reference_name: str,
    spec=None,
    workers: int = 1,
    batch_size: int = 4096,
    resume: bool = False,
    policy=None,
    poison=None,
    should_stop=None,
    start_method: str | None = None,
    program_tags: tuple[str, ...] = (),
    **aligner_options,
) -> RunReport:
    """Drive one journaled, supervised alignment run to a stitched SAM.

    Creates (or, with ``resume=True``, reopens and validates) the
    journal in ``run_dir``, aligns the missing windows under the shard
    supervisor, and stitches ``out_path`` from the journal when the
    plan is complete.  Raises :class:`RunInterrupted` if ``should_stop``
    drained the run first — everything finished so far is journaled and
    a later call with ``resume=True`` picks up where this one stopped.

    ``reads`` are ``(name, codes)`` pairs (or ``FastqRecord``-like
    objects); ``program_tags`` extends the stitched SAM's ``@PG`` line;
    all other knobs are forwarded to
    :func:`~repro.aligner.parallel.align_supervised`.
    """
    from repro.aligner.parallel import _normalize_reads, align_supervised
    from repro.durability.supervisor import Quarantine

    run_dir = Path(run_dir)
    normalized = _normalize_reads(reads)
    if batch_size < 1:
        raise ValueError("batch size must be at least 1")
    total_windows = max(
        1, -(-len(normalized) // batch_size)
    ) if normalized else 0
    if resume:
        journal, dropped = RunJournal.resume(
            run_dir, fingerprint, total_windows
        )
    else:
        journal = RunJournal.create(run_dir, fingerprint, total_windows)
        dropped = []
    skipped = len(journal.completed)
    quarantine = Quarantine(run_dir)
    aligner_options.setdefault("reference_name", reference_name)

    result = align_supervised(
        reference,
        normalized,
        spec=spec,
        workers=workers,
        batch_size=batch_size,
        policy=policy,
        poison=poison,
        quarantine=quarantine,
        journal=journal,
        should_stop=should_stop,
        start_method=start_method,
        **aligner_options,
    )
    if result.interrupted or not journal.is_complete():
        raise RunInterrupted(
            run_dir, done=len(journal.completed), total=total_windows
        )
    journal.stitch_to(
        out_path, reference_name, len(reference),
        program_tags=program_tags,
    )
    return RunReport(
        run_dir=run_dir,
        total_windows=total_windows,
        skipped_windows=skipped,
        dropped_windows=dropped,
        restarts=result.restarts,
        quarantined=list(result.quarantined),
        resumed=resume,
    )
