"""Write-ahead request log for the resident alignment server.

The checkpoint journal (:mod:`repro.durability.journal`) makes a
*batch run* resumable; this module makes a *server crash* accountable.
``repro serve --wal-dir`` appends one CRC-framed JSON line per event:

``admit``
    written (and flushed) *before* the request enters the admission
    queue — a request that might consume work is on disk first;
``done``
    written after the response for that request was handed to the
    socket layer (sent or the client was found disconnected — either
    way the server is finished with it).

After a crash, :meth:`RequestWAL.scan` replays the log: every
``admit`` without a matching ``done`` names a request that was
accepted but never answered — exactly the set a restarted server (or
an operator) must report as lost.  The reverse direction is
deliberately conservative: a crash between sending a response and
logging ``done`` lists an answered request as lost, which is the safe
over-report (at-least-once accounting).

Framing: ``<crc32-hex8> <json>\\n`` per line, CRC over the JSON bytes.
A torn final line (the crash was mid-write) fails its CRC and is
skipped — a torn tail must never poison the replay.  Durability
matches the rest of the repo's posture: lines are flushed to the OS on
every ``admit`` (surviving any process death, SIGKILL included) and
``fsync``'d opportunistically per wave (bounding loss on power cuts).
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path

WAL_NAME = "requests.wal"
"""File name of the request WAL inside its directory."""

WAL_VERSION = 1
"""Record schema version stamped into every line."""


class WalError(RuntimeError):
    """The WAL refused an operation (unwritable directory, bad path)."""


@dataclass
class WalReplay:
    """What :meth:`RequestWAL.scan` found in an existing log."""

    admitted: dict[str, dict] = field(default_factory=dict)
    completed: set[str] = field(default_factory=set)
    torn_lines: int = 0

    @property
    def lost(self) -> list[dict]:
        """Admit records with no matching ``done`` (admission order)."""
        return [
            record
            for rid, record in self.admitted.items()
            if rid not in self.completed
        ]


def _frame(payload: dict) -> bytes:
    blob = json.dumps(payload, sort_keys=True).encode()
    crc = zlib.crc32(blob) & 0xFFFFFFFF
    return f"{crc:08x} ".encode() + blob + b"\n"


def _unframe(line: bytes) -> dict | None:
    """Decode one framed line; ``None`` when torn or corrupt."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    blob = line[9:].rstrip(b"\n")
    if (zlib.crc32(blob) & 0xFFFFFFFF) != crc:
        return None
    try:
        payload = json.loads(blob)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


class RequestWAL:
    """Append-only admitted/answered accounting for one server run.

    Single-writer by design: the server's reader threads call
    :meth:`admit` under the admission lock and the batcher thread
    calls :meth:`done`; an internal mutex keeps interleaved appends
    line-atomic regardless.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            self._handle = open(self.path, "ab")
        except OSError as exc:
            raise WalError(f"cannot open WAL {self.path}: {exc}") from exc
        self._lock = threading.Lock()
        self._seq = 0

    @classmethod
    def open_dir(cls, wal_dir: str | Path) -> "RequestWAL":
        """Open (creating) the canonical WAL inside ``wal_dir``.

        An existing log from a crashed run is rotated aside to
        ``requests.wal.prev`` first — :func:`scan` it (the server does,
        reporting lost requests at startup) before it is overwritten by
        the *next* restart.
        """
        wal_dir = Path(wal_dir)
        try:
            wal_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise WalError(f"cannot create {wal_dir}: {exc}") from exc
        path = wal_dir / WAL_NAME
        if path.exists():
            os.replace(path, path.with_suffix(".wal.prev"))
        return cls(path)

    # -- writing --------------------------------------------------------

    def admit(self, rid: str, client: str, name: str) -> int:
        """Log one admitted request *before* it is queued; flushed."""
        with self._lock:
            self._seq += 1
            seq = self._seq
            self._handle.write(
                _frame(
                    {
                        "v": WAL_VERSION,
                        "op": "admit",
                        "seq": seq,
                        "id": rid,
                        "client": client,
                        "name": name,
                    }
                )
            )
            self._handle.flush()
        return seq

    def done(self, rid: str) -> None:
        """Log one answered request (response already handed off)."""
        with self._lock:
            self._handle.write(
                _frame({"v": WAL_VERSION, "op": "done", "id": rid})
            )
            self._handle.flush()

    def sync(self) -> None:
        """``fsync`` the log (the server calls this once per wave)."""
        with self._lock:
            try:
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass

    def close(self) -> None:
        """Flush and close the underlying file."""
        with self._lock:
            try:
                self._handle.flush()
                self._handle.close()
            except (OSError, ValueError):
                pass

    # -- replay ---------------------------------------------------------

    @staticmethod
    def scan(path: str | Path) -> WalReplay:
        """Replay a WAL file into admitted/completed/lost sets.

        Missing file scans as empty; torn or corrupt lines are counted
        and skipped (the final line of a crashed run is expected to be
        torn sometimes — that is what the CRC framing is for).
        """
        replay = WalReplay()
        path = Path(path)
        if not path.exists():
            return replay
        with open(path, "rb") as handle:
            for line in handle:
                payload = _unframe(line)
                if payload is None:
                    replay.torn_lines += 1
                    continue
                if payload.get("v") != WAL_VERSION:
                    replay.torn_lines += 1
                    continue
                rid = payload.get("id")
                if not isinstance(rid, str):
                    replay.torn_lines += 1
                    continue
                if payload.get("op") == "admit":
                    replay.admitted.setdefault(rid, payload)
                elif payload.get("op") == "done":
                    replay.completed.add(rid)
        return replay
