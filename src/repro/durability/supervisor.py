"""Supervision primitives: heartbeats, poison plans, quarantine.

The shard supervisor itself — the process-management loop — lives
with the multiprocessing code in :mod:`repro.aligner.parallel`
(:func:`~repro.aligner.parallel.align_supervised`); this module holds
its building blocks so they stay unit-testable without spawning a
single process:

* :class:`SupervisorPolicy` — restart budget, heartbeat cadence, the
  crash count at which a shard is declared poisoned and bisected;
* :class:`HeartbeatBoard` — a shared array of last-beat timestamps
  workers update from a daemon thread; the parent reads it to tell a
  *hung* worker (process alive, heart stopped) from a *dead* one
  (``exitcode`` set, e.g. SIGKILL);
* :class:`PoisonPlan` — deterministic chaos tooling in the spirit of
  :class:`~repro.faults.injector.FaultInjector`: names reads that
  crash (``kill``), crash exactly once (``kill_once``, via an on-disk
  marker so the retry survives), raise (``raise``), or wedge the
  worker (``hang``).  The crash-path suites drive the supervisor with
  these;
* :class:`Quarantine` — the sidecar writer: poison reads land in
  ``quarantine.fastq`` plus a ``quarantine.tsv`` reason file, and the
  run emits them unmapped with ``XF:Z:quarantined`` instead of dying.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.genome.sequence import decode

QUARANTINE_TAG = "XF:Z:quarantined"
"""SAM tag on reads isolated by poison-shard bisection."""

KILL = "kill"
KILL_ONCE = "kill_once"
RAISE = "raise"
HANG = "hang"
POISON_MODES = (KILL, KILL_ONCE, RAISE, HANG)
"""The poison behaviours :class:`PoisonPlan` can assign to a read."""


class SupervisorError(RuntimeError):
    """The supervisor could not keep the run alive (budget exhausted)."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs of the shard supervisor.

    ``max_restarts`` bounds worker respawns across the whole run (a
    crash loop must not spin forever); ``crash_threshold`` is how many
    times one task may crash before it is declared poisoned and
    bisected; ``heartbeat_interval`` is the worker beat cadence and
    ``hung_timeout`` how long a silent heart is tolerated before the
    worker is killed and its task re-dispatched; ``poll_interval`` is
    the parent's result-queue poll granularity.
    """

    max_restarts: int = 8
    crash_threshold: int = 2
    heartbeat_interval: float = 0.2
    hung_timeout: float = 30.0
    poll_interval: float = 0.05
    shutdown_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.crash_threshold < 1:
            raise ValueError("crash_threshold must be >= 1")
        if self.heartbeat_interval <= 0 or self.hung_timeout <= 0:
            raise ValueError("heartbeat timings must be positive")


class HeartbeatBoard:
    """Shared last-beat timestamps, one slot per worker.

    Built on a lock-free ``multiprocessing`` double array: workers
    write their own slot from a daemon thread, the parent only reads.
    Timestamps are ``time.time()`` — one host, one clock.
    """

    def __init__(self, ctx, workers: int) -> None:
        self._array = ctx.Array("d", [time.time()] * workers, lock=False)

    def beat(self, slot: int) -> None:
        """Record one heartbeat for ``slot`` (worker-side)."""
        self._array[slot] = time.time()

    def touch(self, slot: int) -> None:
        """Reset ``slot`` to *now* (parent-side, at spawn/respawn)."""
        self._array[slot] = time.time()

    def age(self, slot: int) -> float:
        """Seconds since ``slot`` last beat (parent-side)."""
        return time.time() - self._array[slot]

    def start_thread(
        self, slot: int, interval: float
    ) -> threading.Event:
        """Start the worker-side beat thread; returns its stop event.

        The thread is a daemon: a worker that exits (or is killed)
        stops beating, which is exactly the signal the parent needs.
        Chaos hooks (``PoisonPlan`` ``hang`` mode) set the returned
        event to simulate a wedged process whose heart has stopped.
        """
        stop = threading.Event()

        def _beat() -> None:
            while not stop.is_set():
                self.beat(slot)
                stop.wait(interval)

        thread = threading.Thread(
            target=_beat, name=f"heartbeat-{slot}", daemon=True
        )
        thread.start()
        return stop


@dataclass(frozen=True)
class PoisonPlan:
    """Deterministic read-level crash injection for the supervisor.

    ``modes`` maps read names to a poison behaviour; everything is
    picklable so the plan ships to workers with their task.  The
    ``kill_once`` mode needs ``marker_dir``: the first encounter
    drops a marker file *before* dying, so the re-dispatched task
    sails through — modelling a transient crash rather than a poison
    read.
    """

    modes: dict[str, str] = field(default_factory=dict)
    marker_dir: str | None = None

    def __post_init__(self) -> None:
        for name, mode in self.modes.items():
            if mode not in POISON_MODES:
                raise ValueError(
                    f"unknown poison mode {mode!r} for read {name!r}"
                )
        if KILL_ONCE in self.modes.values() and self.marker_dir is None:
            raise ValueError("kill_once poison needs a marker_dir")

    def apply(self, name: str, heartbeat_stop=None) -> None:
        """Trigger the read's poison behaviour, if it has one.

        Called by the worker as it picks up each read.  ``kill`` and
        ``kill_once`` SIGKILL the worker process (no cleanup, exactly
        like the OOM killer); ``raise`` throws an ordinary exception;
        ``hang`` stops the heartbeat thread (``heartbeat_stop``) and
        sleeps forever, simulating a wedged process.
        """
        mode = self.modes.get(name)
        if mode is None:
            return
        if mode == KILL_ONCE:
            marker = Path(self.marker_dir) / f"killed-{name}"
            if marker.exists():
                return
            marker.touch()
            os.kill(os.getpid(), signal.SIGKILL)
        elif mode == KILL:
            os.kill(os.getpid(), signal.SIGKILL)
        elif mode == RAISE:
            raise RuntimeError(f"poison read {name!r} raised")
        elif mode == HANG:
            if heartbeat_stop is not None:
                heartbeat_stop.set()
            time.sleep(3600.0)


class Quarantine:
    """Writer for poison reads: ``quarantine.fastq`` + reason sidecar.

    Appends, deduplicating by read name, so a window re-run after an
    interrupt does not duplicate its quarantine entries.  Reads are
    written as plain FASTQ (placeholder ``I`` qualities — the pipeline
    does not thread qualities) so they can be re-fed to an aligner
    directly for offline triage.
    """

    FASTQ = "quarantine.fastq"
    SIDECAR = "quarantine.tsv"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._seen: set[str] = set()
        sidecar = self.directory / self.SIDECAR
        if sidecar.exists():
            for line in sidecar.read_text().splitlines():
                if line and not line.startswith("#"):
                    self._seen.add(line.split("\t", 1)[0])

    @property
    def names(self) -> frozenset[str]:
        """Names of every read quarantined so far (including on disk)."""
        return frozenset(self._seen)

    def add(self, name: str, codes: np.ndarray, reason: str) -> bool:
        """Quarantine one read; returns False if already present."""
        if name in self._seen:
            return False
        self._seen.add(name)
        sequence = decode(np.asarray(codes, dtype=np.uint8))
        with open(self.directory / self.FASTQ, "a") as handle:
            handle.write(
                f"@{name}\n{sequence}\n+\n{'I' * len(sequence)}\n"
            )
        sidecar = self.directory / self.SIDECAR
        fresh = not sidecar.exists()
        with open(sidecar, "a") as handle:
            if fresh:
                handle.write("# read\treason\n")
            handle.write(f"{name}\t{reason}\n")
        return True
