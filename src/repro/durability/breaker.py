"""Circuit breaker for the accelerator path of the resilience ladder.

The :class:`~repro.faults.resilience.ResilientDispatcher` already
guarantees every job terminates — retry, host full-band rerun, dead
letter — but a *persistently* broken accelerator makes that guarantee
expensive: every job burns its full retry/timeout budget before the
inevitable host fallback.  The breaker turns that repeated discovery
into state:

* **closed** — normal operation; consecutive host fallbacks are
  counted, and ``failure_threshold`` of them in a row trip the breaker
  **open**;
* **open** — jobs are *short-circuited* straight to the host full-band
  kernel (always correct, so SAM output is unchanged) without touching
  the accelerator; after ``probe_interval`` short-circuited jobs the
  breaker arms a probe and goes **half-open**;
* **half-open** — exactly one probe job is allowed onto the
  accelerator: success closes the breaker, another fallback re-opens
  it with the probe interval backed off (doubled, capped).

The schedule is counted in *jobs*, not wall-clock seconds, so breaker
behaviour is deterministic for a fixed input — the property the chaos
byte-identity suites rely on.  State changes are recorded as
:class:`BreakerEvent` entries and mirrored into the metrics registry
(``resilience.breaker.*``, see ``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import names
from repro.obs.metrics import MetricsRegistry


class BreakerState:
    """The three breaker states, as string constants."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


_STATE_GAUGE = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


@dataclass(frozen=True)
class BreakerPolicy:
    """Knobs of the breaker state machine.

    ``failure_threshold`` consecutive host fallbacks trip the breaker;
    while open, every ``probe_interval`` short-circuited jobs arm one
    half-open probe; each failed probe multiplies the interval by
    ``probe_backoff`` up to ``probe_interval_cap`` (an accelerator
    that stays broken is probed ever more rarely).
    """

    failure_threshold: int = 5
    probe_interval: int = 32
    probe_backoff: float = 2.0
    probe_interval_cap: int = 512

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        if self.probe_backoff < 1.0:
            raise ValueError("probe_backoff must be >= 1.0")


@dataclass(frozen=True)
class BreakerEvent:
    """One state change: job index, old state, new state."""

    job: int
    old: str
    new: str


class CircuitBreaker:
    """Job-count-scheduled circuit breaker (closed/open/half-open).

    Single-threaded by design — one breaker guards one dispatcher in
    one process.  Callers ask :meth:`allow` before an accelerator
    attempt and report the job-level outcome with
    :meth:`record_success` / :meth:`record_failure` (a *failure* is a
    job that fell back to the host, not an individual retry).
    """

    def __init__(
        self,
        policy: BreakerPolicy | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self.registry = registry
        self.state = BreakerState.CLOSED
        self.events: list[BreakerEvent] = []
        self.jobs = 0
        self.short_circuits = 0
        self.probes = 0
        self.trips = 0
        self._consecutive_failures = 0
        self._interval = self.policy.probe_interval
        self._until_probe = 0
        self._set_state_gauge()

    # -- the dispatcher-facing protocol ---------------------------------

    def allow(self) -> bool:
        """Whether the next job may attempt the accelerator.

        ``False`` means short-circuit: route the job straight to the
        host full-band kernel.  While open, each denied job advances
        the probe countdown; the job that reaches it becomes the
        half-open probe and is allowed through.
        """
        self.jobs += 1
        if self.state == BreakerState.CLOSED:
            return True
        if self.state == BreakerState.OPEN:
            self._until_probe -= 1
            if self._until_probe <= 0:
                self._transition(BreakerState.HALF_OPEN)
                self.probes += 1
                self._count(names.RESILIENCE_BREAKER_PROBES, "probes")
                return True
            self.short_circuits += 1
            self._count(
                names.RESILIENCE_BREAKER_SHORT_CIRCUITS, "short circuits"
            )
            return False
        # Half-open with the probe still in flight cannot happen in the
        # single-threaded dispatcher, but fail safe: keep short-circuiting.
        self.short_circuits += 1
        self._count(
            names.RESILIENCE_BREAKER_SHORT_CIRCUITS, "short circuits"
        )
        return False

    def record_success(self) -> None:
        """One job's accelerator attempt ultimately succeeded."""
        self._consecutive_failures = 0
        if self.state == BreakerState.HALF_OPEN:
            # Probe passed: recover, and reset the probe backoff.
            self._interval = self.policy.probe_interval
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """One job exhausted its accelerator attempts (host fallback)."""
        if self.state == BreakerState.HALF_OPEN:
            # Probe failed: back off the probe schedule and re-open.
            self._interval = min(
                self.policy.probe_interval_cap,
                max(
                    self._interval + 1,
                    int(self._interval * self.policy.probe_backoff),
                ),
            )
            self._open()
            return
        if self.state == BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.policy.failure_threshold:
                self.trips += 1
                self._open()

    # -- internals ------------------------------------------------------

    def _open(self) -> None:
        self._until_probe = self._interval
        self._consecutive_failures = 0
        self._transition(BreakerState.OPEN)

    def _transition(self, new: str) -> None:
        old = self.state
        if old == new:
            return
        self.state = new
        self.events.append(BreakerEvent(job=self.jobs, old=old, new=new))
        if self.registry is not None:
            self.registry.counter(
                names.RESILIENCE_BREAKER_TRANSITIONS,
                "breaker state changes",
                to=new,
            ).inc()
        self._set_state_gauge()

    def _set_state_gauge(self) -> None:
        if self.registry is not None:
            self.registry.gauge(
                names.RESILIENCE_BREAKER_STATE,
                "breaker state (0=closed, 1=half-open, 2=open)",
            ).set(_STATE_GAUGE[self.state])

    def _count(self, name: str, help_text: str) -> None:
        if self.registry is not None:
            self.registry.counter(name, help_text).inc()
