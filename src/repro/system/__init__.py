"""Host + FPGA system integration models (paper Sections V, VII-B)."""

from repro.system.events import simulate_timeline, threads_to_saturate
from repro.system.fpga import F1Instance
from repro.system.host import RerunBudget, time_software_kernel
from repro.system.scheduler import figure17_table, model_configuration

__all__ = [
    "F1Instance",
    "RerunBudget",
    "figure17_table",
    "model_configuration",
    "simulate_timeline",
    "threads_to_saturate",
    "time_software_kernel",
]
