"""AWS F1 platform model (paper Table I, Section V-A).

Static description of the f1.2xlarge deployment target plus the
XDMA/OCL transfer model the batching simulation uses.  All constants
come from the paper or AWS's published instance specs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants as paper


@dataclass(frozen=True)
class F1Instance:
    """The baseline system configuration (Table I)."""

    name: str = "f1.2xlarge"
    vcpus: int = paper.F1_VCPUS
    host_dram_gib: int = paper.F1_DRAM_GIB
    fpga_dram_gib: int = paper.FPGA_DRAM_GIB
    fpga_logic_elements: int = paper.FPGA_LOGIC_ELEMENTS
    memory_channels: int = 4
    pcie_gen3_lanes: int = 16
    seedex_clock_hz: float = 1e9 / paper.FPGA_CLOCK_NS
    seeding_clock_hz: float = 1e9 / paper.SEEDING_CLOCK_NS

    @property
    def pcie_bandwidth_bytes_per_s(self) -> float:
        """PCIe gen3 x16: ~12 GB/s effective."""
        return 12e9

    @property
    def channel_bandwidth_bytes_per_s(self) -> float:
        """One DDR4-2133 channel: ~17 GB/s peak."""
        return 17e9


@dataclass(frozen=True)
class BatchTransfer:
    """Cost model of moving one extension batch over XDMA."""

    jobs: int
    bytes_per_job: int = 96  # 3-bit packed query+target+metadata

    @property
    def total_bytes(self) -> int:
        """Payload size of the batch."""
        return self.jobs * self.bytes_per_job

    def transfer_seconds(self, instance: F1Instance) -> float:
        """Host-to-FPGA DMA time for this batch."""
        latency = 20e-6  # DMA setup + doorbell round trip
        return latency + self.total_bytes / instance.pcie_bandwidth_bytes_per_s

    def result_seconds(self, instance: F1Instance) -> float:
        """Results coalesce 5:1 into memory lines before readback."""
        result_bytes = self.jobs * 64 // 5
        return 10e-6 + result_bytes / instance.pcie_bandwidth_bytes_per_s


def pcie_is_bottleneck(
    instance: F1Instance, throughput_ext_per_s: float
) -> bool:
    """Check the paper's claim that PCIe bandwidth is underutilized."""
    bytes_per_s = throughput_ext_per_s * BatchTransfer(1).bytes_per_job
    return bytes_per_s > instance.pcie_bandwidth_bytes_per_s
