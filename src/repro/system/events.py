"""Discrete-event simulation of the FPGA driving protocol (Fig 12).

The steady-state model in :mod:`repro.aligner.batching` answers "who
is the bottleneck"; this simulator replays the actual protocol the
paper describes — seeding threads produce batches, FPGA threads
package and DMA them, take the FPGA lock, issue ``batch_start``, poll
for ``batch_done``, release the lock and read results back, with
multiple threads interleaving so transfers hide under the locked
compute — and reports the timeline quantities the paper argues about:
FPGA occupancy, lock wait, and end-to-end throughput.

The two models are cross-validated in ``tests/system/test_events.py``:
their steady-state throughputs agree.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro import constants as paper
from repro import obs
from repro.hw import timing
from repro.obs import names
from repro.system.fpga import BatchTransfer, F1Instance


@dataclass(frozen=True)
class TimelineEvent:
    """One protocol step, for inspection/plotting."""

    time: float
    kind: str
    thread: int
    batch: int


@dataclass
class TimelineReport:
    """What the event simulation measured."""

    events: list[TimelineEvent]
    finished_batches: int
    batch_size: int
    makespan: float
    fpga_busy: float
    total_lock_wait: float

    @property
    def throughput_ext_per_s(self) -> float:
        """Extensions per second over the whole timeline."""
        if self.makespan <= 0:
            return 0.0
        return self.finished_batches * self.batch_size / self.makespan

    @property
    def fpga_utilization(self) -> float:
        """Fraction of the makespan the device computed."""
        return self.fpga_busy / self.makespan if self.makespan else 0.0

    @property
    def mean_lock_wait(self) -> float:
        """Average FPGA-lock wait per batch (seconds)."""
        if not self.finished_batches:
            return 0.0
        return self.total_lock_wait / self.finished_batches


@dataclass(order=True)
class _Wake:
    time: float
    seq: int
    thread: int = field(compare=False)
    batch: int = field(compare=False)
    phase: str = field(compare=False)


def simulate_timeline(
    n_batches: int = 40,
    batch_size: int = 4096,
    fpga_threads: int = 2,
    producer_ext_per_s: float | None = None,
    fpga_ext_per_s: float | None = None,
    instance: F1Instance | None = None,
) -> TimelineReport:
    """Run the protocol for ``n_batches`` batches.

    ``producer_ext_per_s`` is the seeding-side job rate (None =
    effectively infinite, isolating the FPGA-side pipeline);
    ``fpga_ext_per_s`` the device compute rate (default: the
    calibrated model's 43.9 M ext/s).
    """
    if n_batches < 1 or fpga_threads < 1:
        raise ValueError("need at least one batch and one thread")
    inst = instance or F1Instance()
    fpga_rate = fpga_ext_per_s or timing.fpga_throughput()
    transfer = BatchTransfer(batch_size)
    t_in = transfer.transfer_seconds(inst)
    t_out = transfer.result_seconds(inst)
    t_compute = batch_size / fpga_rate

    def batch_ready(b: int) -> float:
        if producer_ext_per_s is None:
            return 0.0
        return (b + 1) * batch_size / producer_ext_per_s

    events: list[TimelineEvent] = []
    seq = itertools.count()
    heap: list[_Wake] = []
    next_batch = 0
    lock_free_at = 0.0
    fpga_busy = 0.0
    total_lock_wait = 0.0
    finished = 0
    makespan = 0.0

    # Each thread starts by claiming a batch.
    for th in range(min(fpga_threads, n_batches)):
        b = next_batch
        next_batch += 1
        heapq.heappush(
            heap, _Wake(batch_ready(b), next(seq), th, b, "package")
        )

    while heap:
        wake = heapq.heappop(heap)
        t, th, b, phase = wake.time, wake.thread, wake.batch, wake.phase
        if phase == "package":
            events.append(TimelineEvent(t, "dma_in_start", th, b))
            heapq.heappush(
                heap, _Wake(t + t_in, next(seq), th, b, "acquire")
            )
        elif phase == "acquire":
            start = max(t, lock_free_at)
            total_lock_wait += start - t
            events.append(TimelineEvent(start, "batch_start", th, b))
            lock_free_at = start + t_compute
            fpga_busy += t_compute
            heapq.heappush(
                heap, _Wake(lock_free_at, next(seq), th, b, "readback")
            )
        elif phase == "readback":
            events.append(TimelineEvent(t, "batch_done", th, b))
            done = t + t_out
            events.append(TimelineEvent(done, "results_read", th, b))
            finished += 1
            makespan = max(makespan, done)
            if next_batch < n_batches:
                nb = next_batch
                next_batch += 1
                heapq.heappush(
                    heap,
                    _Wake(
                        max(done, batch_ready(nb)),
                        next(seq),
                        th,
                        nb,
                        "package",
                    ),
                )
    report = TimelineReport(
        events=events,
        finished_batches=finished,
        batch_size=batch_size,
        makespan=makespan,
        fpga_busy=fpga_busy,
        total_lock_wait=total_lock_wait,
    )
    if obs.enabled():
        reg = obs.get_registry()
        reg.gauge(
            names.SYSTEM_FPGA_UTILIZATION, "device busy fraction"
        ).set(report.fpga_utilization)
        reg.gauge(
            names.SYSTEM_LOCK_WAIT_MEAN, "mean lock wait per batch"
        ).set(report.mean_lock_wait)
        reg.gauge(
            names.SYSTEM_THROUGHPUT, "timeline throughput"
        ).set(report.throughput_ext_per_s)
        reg.gauge(
            names.SYSTEM_BATCHES_FINISHED, "batches completed"
        ).set(report.finished_batches)
    return report


def threads_to_saturate(
    batch_size: int = 4096,
    max_threads: int = 8,
    instance: F1Instance | None = None,
) -> int:
    """Fewest FPGA threads keeping the device above 95% busy.

    The paper interleaves multiple FPGA threads "to conceal FPGA
    execution latency"; this sweep reproduces how few suffice.
    """
    for k in range(1, max_threads + 1):
        report = simulate_timeline(
            n_batches=60,
            batch_size=batch_size,
            fpga_threads=k,
            instance=instance,
        )
        if report.fpga_utilization >= 0.95:
            return k
    return max_threads


RERUN_OVERLAP_NOTE = paper.RERUN_RATE
