"""Host-CPU side: software kernel timing and the rerun budget.

The host plays two roles in the SeedEx system: it runs the software
pipeline stages (seeding, SAM output) and it *reruns* the ~2% of
extensions whose optimality checks failed, using the full-band
software kernel.  This module measures the real software kernel on
this machine (Figure 3's curve is produced from these measurements)
and models the rerun budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.genome.synth import ExtensionJob
from repro.obs import names


@dataclass(frozen=True)
class KernelTiming:
    """Measured software-kernel performance at one band setting."""

    band: int
    seconds_per_extension: float
    cells_per_extension: float

    @property
    def extensions_per_second(self) -> float:
        """Measured kernel rate at this band."""
        return 1.0 / self.seconds_per_extension


def time_software_kernel(
    jobs: list[ExtensionJob],
    band: int | None,
    scoring: AffineGap = BWA_MEM_SCORING,
    repeats: int = 1,
) -> KernelTiming:
    """Wall-clock the banded software kernel over a job corpus."""
    if not jobs:
        raise ValueError("need at least one job to time")
    if repeats < 1:
        raise ValueError("repeats must be >= 1 (got %d)" % repeats)
    if band is not None and band < 1:
        raise ValueError(
            "band must be >= 1 or None for the full band (got %d)" % band
        )
    cells = 0
    with obs.span(names.SPAN_HOST_KERNEL, band=band or -1):
        start = time.perf_counter()
        for _ in range(repeats):
            cells = 0
            for job in jobs:
                res = banded.extend(
                    job.query, job.target, scoring, job.h0, w=band
                )
                cells += res.cells_computed
        elapsed = time.perf_counter() - start
    n = len(jobs) * repeats
    effective_band = band if band is not None else -1
    return KernelTiming(
        band=effective_band,
        seconds_per_extension=elapsed / n,
        cells_per_extension=cells / len(jobs),
    )


@dataclass(frozen=True)
class RerunBudget:
    """Host-side cost of the failed-check reruns.

    The paper overlaps reruns with FPGA batches and reports negligible
    overhead; this model quantifies when that holds: the host keeps up
    as long as rerun demand (failed fraction x full-band kernel time)
    stays under the thread budget reserved for it.
    """

    rerun_fraction: float
    host_threads: int
    full_band_seconds_per_extension: float
    fpga_throughput_ext_per_s: float

    @property
    def rerun_demand_ext_per_s(self) -> float:
        """Rerun work arriving from the accelerator."""
        return self.rerun_fraction * self.fpga_throughput_ext_per_s

    @property
    def host_capacity_ext_per_s(self) -> float:
        """Full-band extensions the host can absorb."""
        return self.host_threads / self.full_band_seconds_per_extension

    @property
    def host_keeps_up(self) -> bool:
        """True when reruns fully overlap with FPGA batches."""
        return self.host_capacity_ext_per_s >= self.rerun_demand_ext_per_s

    @property
    def overhead_fraction(self) -> float:
        """Extra wall time when the host cannot fully overlap."""
        if self.host_keeps_up:
            return 0.0
        return (
            self.rerun_demand_ext_per_s / self.host_capacity_ext_per_s - 1.0
        )

    def with_faults(
        self, fault_rate: float, max_retries: int
    ) -> "RerunBudget":
        """The budget under injected datapath faults.

        See :func:`fault_adjusted_rerun_fraction` for the model: the
        extra host demand is the jobs whose accelerator retries all
        faulted and therefore degrade to the full-band rerun.
        """
        return RerunBudget(
            rerun_fraction=fault_adjusted_rerun_fraction(
                self.rerun_fraction, fault_rate, max_retries
            ),
            host_threads=self.host_threads,
            full_band_seconds_per_extension=(
                self.full_band_seconds_per_extension
            ),
            fpga_throughput_ext_per_s=self.fpga_throughput_ext_per_s,
        )


def fault_adjusted_rerun_fraction(
    base_fraction: float, fault_rate: float, max_retries: int
) -> float:
    """Host rerun fraction once datapath faults join the check failures.

    A job degrades to the host when every accelerator attempt (the
    first try plus ``max_retries`` retries) faults — probability
    ``fault_rate ** (1 + max_retries)`` under independent per-attempt
    faults.  Those jobs add to the paper's ~2% check-failure reruns;
    jobs already rerunning cannot degrade twice.
    """
    if not 0.0 <= base_fraction <= 1.0:
        raise ValueError("base rerun fraction must be in [0, 1]")
    if not 0.0 <= fault_rate < 1.0:
        raise ValueError("fault rate must be in [0, 1)")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    escalated = fault_rate ** (1 + max_retries)
    return base_fraction + (1.0 - base_fraction) * escalated
