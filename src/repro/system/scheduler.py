"""End-to-end application model (paper Figure 17, Section VII-B).

Models BWA-MEM and BWA-MEM2 as staged software pipelines and replays
the paper's four acceleration configurations:

* ``baseline``            — stock software;
* ``software-seedex``     — the w=5 software SeedEx (narrow software
  kernel + full-band reruns), the paper's motivation data point;
* ``seedex-fpga``         — seed extension offloaded to the FPGA,
  software seeding becomes the bottleneck;
* ``seeding+seedex-fpga`` — both accelerators on the FPGA.

Stage fractions are calibrated so the baseline splits reproduce the
paper's published speedups exactly (the paper's own Figure 17 is a
normalized breakdown, not absolute times); the FPGA-side times come
from the throughput model, and the host rerun budget from
:mod:`repro.system.host`.  The harness prints paper-vs-model speedups
for all four configurations on both aligners.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants as paper
from repro.hw import timing


@dataclass(frozen=True)
class StageBreakdown:
    """Normalized time split of a software aligner (baseline = 1.0).

    Calibrated from the paper's reported speedups: removing extension
    yields the SeedEx-only speedup, removing seeding and extension
    leaves the unaccelerated remainder (see Figure 17 discussion).
    """

    name: str
    seeding: float
    extension: float
    other: float

    @property
    def total(self) -> float:
        """Sum of the stage fractions (1.0 for a baseline)."""
        return self.seeding + self.extension + self.other


def bwa_mem_breakdown() -> StageBreakdown:
    """BWA-MEM's calibrated baseline stage split."""
    ext = 1.0 - 1.0 / paper.SPEEDUP_SEEDEX_ONLY_BWAMEM
    other = 1.0 / paper.SPEEDUP_FULL_BWAMEM
    return StageBreakdown(
        "BWA-MEM", seeding=1.0 - ext - other, extension=ext, other=other
    )


def bwa_mem2_breakdown() -> StageBreakdown:
    """BWA-MEM2's calibrated baseline stage split."""
    ext = 1.0 - 1.0 / paper.SPEEDUP_SEEDEX_ONLY_BWAMEM2
    other = 1.0 / paper.SPEEDUP_FULL_BWAMEM2
    return StageBreakdown(
        "BWA-MEM2", seeding=1.0 - ext - other, extension=ext, other=other
    )


@dataclass(frozen=True)
class EndToEndResult:
    """One configuration's normalized time and derived speedup."""

    aligner: str
    configuration: str
    seeding_time: float
    extension_time: float
    other_time: float
    rerun_time: float

    @property
    def total(self) -> float:
        """Normalized end-to-end time of this configuration."""
        # Seeding/extension overlap through the producer-consumer
        # batching; the serial view below is the paper's breakdown
        # convention (stages stacked, accelerated parts shrink).
        return (
            self.seeding_time
            + self.extension_time
            + self.other_time
            + self.rerun_time
        )

    def speedup_over(self, baseline: "EndToEndResult") -> float:
        """Speedup of this configuration over a baseline run."""
        return baseline.total / self.total


SOFTWARE_SEEDEX_KERNEL_SPEEDUP_DEFAULT = paper.SOFTWARE_SEEDEX_KERNEL_SPEEDUP


def model_configuration(
    breakdown: StageBreakdown,
    configuration: str,
    rerun_fraction: float = paper.RERUN_RATE,
    software_kernel_speedup: float = SOFTWARE_SEEDEX_KERNEL_SPEEDUP_DEFAULT,
    fault_rate: float = 0.0,
    max_retries: int = 3,
) -> EndToEndResult:
    """Normalized end-to-end time of one configuration.

    ``rerun_fraction`` may come from a measured corpus (the harnesses
    pass the rate their checker actually observed).  ``fault_rate``
    models an unreliable accelerator datapath: jobs whose attempts
    (1 + ``max_retries``) all fault degrade to the host full-band
    rerun, growing the rerun remainder per
    :func:`repro.system.host.fault_adjusted_rerun_fraction`, and every
    faulted attempt re-occupies the FPGA, inflating the accelerated
    extension time by the expected attempt count.
    """
    from repro.system.host import fault_adjusted_rerun_fraction

    seeding = breakdown.seeding
    extension = breakdown.extension
    other = breakdown.other
    rerun = 0.0

    effective_rerun = fault_adjusted_rerun_fraction(
        rerun_fraction, fault_rate, max_retries
    )
    # Expected accelerator attempts per job under independent
    # per-attempt faults (geometric, truncated at max_retries+1).
    attempts = (
        (1.0 - fault_rate ** (1 + max_retries)) / (1.0 - fault_rate)
        if fault_rate
        else 1.0
    )

    if configuration == "baseline":
        pass
    elif configuration == "software-seedex":
        extension = extension / software_kernel_speedup
    elif configuration == "seedex-fpga":
        # FPGA extension throughput dwarfs software: the visible cost
        # is the host-side rerun remainder (overlapped, so only the
        # non-overlappable fraction shows) plus driver time.
        rerun = extension * effective_rerun
        extension = extension * 0.01 * attempts
    elif configuration == "seeding+seedex-fpga":
        rerun = extension * effective_rerun
        extension = extension * 0.01 * attempts
        seeding = seeding * 0.02
    else:
        raise ValueError(f"unknown configuration {configuration!r}")

    return EndToEndResult(
        aligner=breakdown.name,
        configuration=configuration,
        seeding_time=seeding,
        extension_time=extension,
        other_time=other,
        rerun_time=rerun,
    )


def figure17_table(
    rerun_fraction: float = paper.RERUN_RATE,
    software_kernel_speedup: float = SOFTWARE_SEEDEX_KERNEL_SPEEDUP_DEFAULT,
) -> list[tuple[EndToEndResult, float | None]]:
    """All (configuration, paper-reported speedup) rows of Figure 17."""
    rows: list[tuple[EndToEndResult, float | None]] = []
    reported = {
        ("BWA-MEM", "baseline"): 1.0,
        ("BWA-MEM", "seedex-fpga"): paper.SPEEDUP_SEEDEX_ONLY_BWAMEM,
        ("BWA-MEM", "seeding+seedex-fpga"): paper.SPEEDUP_FULL_BWAMEM,
        ("BWA-MEM2", "baseline"): 1.0,
        ("BWA-MEM2", "software-seedex"): (
            paper.SOFTWARE_SEEDEX_APP_SPEEDUP_BWAMEM2
        ),
        ("BWA-MEM2", "seedex-fpga"): paper.SPEEDUP_SEEDEX_ONLY_BWAMEM2,
        ("BWA-MEM2", "seeding+seedex-fpga"): paper.SPEEDUP_FULL_BWAMEM2,
    }
    for breakdown in (bwa_mem_breakdown(), bwa_mem2_breakdown()):
        for config in (
            "baseline",
            "software-seedex",
            "seedex-fpga",
            "seeding+seedex-fpga",
        ):
            row = model_configuration(
                breakdown,
                config,
                rerun_fraction,
                software_kernel_speedup,
            )
            rows.append((row, reported.get((breakdown.name, config))))
    return rows


def reads_per_second_combined() -> float:
    """Throughput of the combined seeding+SeedEx FPGA (paper: 1.5 M).

    Extension throughput divided by extensions-per-read, capped by the
    seeding accelerator which the paper matched to the same rate.
    """
    ext_rate = timing.fpga_throughput(
        n_bsw_cores=12, band=paper.DEFAULT_BAND
    )
    return min(ext_rate / paper.EXTENSIONS_PER_READ, 1.5e6)
