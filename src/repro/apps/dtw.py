"""Banded dynamic time warping with a SeedEx-style optimality check.

Paper Section VII-D: DTW with a Sakoe-Chiba band is "conceptually
similar to the banded Needleman-Wunsch", and the SeedEx check idea —
speculate on a narrow band, test with admissible bounds, rerun on
failure — transfers directly.  DTW *minimizes*, so the bounds flip:

* while filling the band, record the exact prefix cost at every cell
  on the band's edges (the analogue of the boundary E-scores);
* any warp path that leaves the band must pass through an edge cell
  and then pay at least the sum of per-row minimum step costs for the
  rows it still has to cross (an admissible lower bound, the analogue
  of the all-match assumption);
* if that lower bound meets or exceeds the banded cost, no outside
  path can be cheaper and the banded result is provably optimal.

``dtw_with_guarantee`` packages the speculate-check-rerun loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

INF = float("inf")


def _step_costs(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.abs(x[:, None] - y[None, :]).astype(float)


def full_dtw(x: np.ndarray, y: np.ndarray) -> float:
    """Classic O(nm) DTW distance (the rerun / oracle kernel)."""
    return banded_dtw(x, y, band=max(len(x), len(y)))[0]


def banded_dtw(
    x: np.ndarray, y: np.ndarray, band: int
) -> tuple[float, np.ndarray, np.ndarray]:
    """Sakoe-Chiba banded DTW.

    Returns ``(cost, upper_edge, lower_edge)`` where the edge arrays
    hold the exact accumulated cost at the band's boundary diagonals
    (``i - j = -band`` and ``i - j = +band``), indexed by row — the
    values any band-leaving warp path must pass through.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    n, m = len(x), len(y)
    if n == 0 or m == 0:
        raise ValueError("DTW inputs must be non-empty")
    if band < abs(n - m):
        raise ValueError(
            "band narrower than the length difference: no warp path "
            "fits inside it"
        )
    cost = _step_costs(x, y)
    acc = np.full((n, m), INF)
    upper_edge = np.full(n, INF)  # cells with j - i = band
    lower_edge = np.full(n, INF)  # cells with i - j = band
    for i in range(n):
        lo = max(0, i - band)
        hi = min(m - 1, i + band)
        for j in range(lo, hi + 1):
            best = INF
            if i == 0 and j == 0:
                best = 0.0
            if i > 0 and acc[i - 1][j] < best:
                best = acc[i - 1][j]
            if j > 0 and acc[i][j - 1] < best:
                best = acc[i][j - 1]
            if i > 0 and j > 0 and acc[i - 1][j - 1] < best:
                best = acc[i - 1][j - 1]
            if best < INF:
                acc[i][j] = best + cost[i][j]
        if i + band <= m - 1:
            upper_edge[i] = acc[i][i + band]
        if i - band >= 0:
            lower_edge[i] = acc[i][i - band]
    return float(acc[n - 1][m - 1]), upper_edge, lower_edge


@dataclass(frozen=True)
class DtwCheck:
    """The check's verdict and its bound (for reporting)."""

    cost_nb: float
    outside_lower_bound: float

    @property
    def optimal(self) -> bool:
        """No outside path can be strictly cheaper."""
        return self.outside_lower_bound >= self.cost_nb


def dtw_optimality_check(
    x: np.ndarray,
    y: np.ndarray,
    band: int,
    cost_nb: float,
    upper_edge: np.ndarray,
    lower_edge: np.ndarray,
) -> DtwCheck:
    """Lower-bound every band-leaving warp path.

    A path leaving through edge cell ``(i, j)`` has already paid the
    exact in-band prefix ``acc[i][j]`` and must still traverse rows
    ``i+1 .. n-1``, paying at least each row's minimum step cost —
    admissible because every warp path visits every row at least once
    and step costs are non-negative.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    n = len(x)
    cost = _step_costs(x, y)
    row_min = cost.min(axis=1)
    suffix = np.concatenate([np.cumsum(row_min[::-1])[::-1], [0.0]])
    bound = INF
    for i in range(n):
        for edge in (upper_edge[i], lower_edge[i]):
            if edge < INF:
                cand = edge + suffix[i + 1]
                if cand < bound:
                    bound = cand
    return DtwCheck(cost_nb=cost_nb, outside_lower_bound=bound)


@dataclass(frozen=True)
class DtwResult:
    cost: float
    band: int
    optimal_by_check: bool
    rerun: bool


def dtw_with_guarantee(
    x: np.ndarray, y: np.ndarray, band: int
) -> DtwResult:
    """Speculate on a narrow band; rerun full DTW if the check fails.

    The returned cost always equals :func:`full_dtw`'s (property-
    tested); the check only decides whether the cheap banded run was
    already provably optimal.
    """
    cost_nb, upper, lower = banded_dtw(x, y, band)
    check = dtw_optimality_check(x, y, band, cost_nb, upper, lower)
    if check.optimal:
        return DtwResult(cost_nb, band, True, False)
    return DtwResult(full_dtw(x, y), band, False, True)
