"""All-vs-all suffix-prefix overlap detection on the overlap kernel.

Long-read assemblers (OLC: overlap-layout-consensus) start from every
dovetail overlap between reads — read A's suffix aligned to read B's
prefix.  That is a banded semi-global DP with exactly the shape of
the paper's fill kernels, so it goes through the same speculate-and-
test contract: every candidate pair is verified on a *narrow* band
(:meth:`~repro.kernels.KernelBackend.overlap_batch`), the band-edge
bound proves most verdicts optimal, and the failures rerun at full
band — the reported overlaps always equal the full-band oracle on the
same job geometry.

The driver is the classic two-stage shape:

1. **candidates** — a k-mer index over all reads votes on diagonals:
   a k-mer at position ``pa`` of A and ``pb`` of B implies A's suffix
   starting at ``pa - pb`` overlaps B's prefix.  Pairs with enough
   votes on one diagonal survive (repeat k-mers are capped, so a
   low-complexity read cannot go quadratic);
2. **verify** — surviving pairs become overlap jobs (query = A's
   suffix from the voted diagonal, target = B's prefix plus band
   slack), dispatched in batches through the selected kernel backend.

Output is a PAF-like TSV (:meth:`Overlap.to_line`), sorted by
``(a_name, b_name, a_start)`` so runs are byte-comparable across
kernels and batch sizes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.kernels import get_kernel
from repro.obs import names

_ENCODE_BASE = 4
"""Codes 0-3 are real bases; AMBIGUOUS_CODE (4) never indexes."""


@dataclass(frozen=True)
class OverlapParams:
    """Knobs of the overlap driver.

    ``accept`` is the score floor as a fraction of a perfect overlap
    (``match * query_length``); ``band`` is the verification band —
    sound at any width thanks to the full-band rerun, narrow widths
    just rerun more.
    """

    k: int = 15
    min_shared: int = 3
    min_overlap: int = 50
    accept: float = 0.5
    band: int = 31
    max_occurrences: int = 16
    batch_size: int = 512


@dataclass(frozen=True)
class Overlap:
    """One accepted suffix-prefix overlap, PAF-flavoured.

    ``a_start``/``a_end`` index read A (the suffix side, ``a_end ==
    a_len`` by construction); ``b_start``/``b_end`` index read B (the
    prefix side, ``b_start == 0``).  ``proved`` is True when the
    narrow band proved the score optimal without a rerun.
    """

    a_name: str
    a_len: int
    a_start: int
    a_end: int
    b_name: str
    b_len: int
    b_start: int
    b_end: int
    score: int
    band_used: int
    proved: bool

    def to_line(self) -> str:
        """Tab-separated PAF-like row (strand is always ``+``)."""
        return "\t".join(
            str(field)
            for field in (
                self.a_name, self.a_len, self.a_start, self.a_end,
                "+",
                self.b_name, self.b_len, self.b_start, self.b_end,
                self.score, self.band_used,
                "proved" if self.proved else "rerun",
            )
        )


@dataclass(frozen=True)
class _Candidate:
    """A voted pair before verification: A[a_start:] vs B[:t_hi]."""

    a: int
    b: int
    a_start: int


def _index_reads(
    reads: list[tuple[str, np.ndarray]], params: OverlapParams
) -> dict[int, list[tuple[int, int]]]:
    """Hash every k-mer of every read to ``(read, position)`` lists.

    K-mers containing an ambiguous base are skipped (they cannot
    produce a match under the scoring model anyway) and k-mers seen in
    more than ``max_occurrences`` places are dropped entirely — the
    standard repeat guard that keeps all-vs-all candidate generation
    near-linear.
    """
    k = params.k
    table: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for idx, (_, codes) in enumerate(reads):
        if len(codes) < k:
            continue
        arr = np.asarray(codes, dtype=np.int64)
        powers = _ENCODE_BASE ** np.arange(k - 1, -1, -1, dtype=np.int64)
        windows = np.lib.stride_tricks.sliding_window_view(arr, k)
        keys = windows @ powers
        clean = (windows < _ENCODE_BASE).all(axis=1)
        for pos in np.flatnonzero(clean):
            table[int(keys[pos])].append((idx, int(pos)))
    return {
        key: hits
        for key, hits in table.items()
        if len(hits) <= params.max_occurrences
    }


def _vote_candidates(
    reads: list[tuple[str, np.ndarray]],
    table: dict[int, list[tuple[int, int]]],
    params: OverlapParams,
) -> list[_Candidate]:
    """Diagonal voting: the ordered pairs worth verifying.

    For an ordered pair ``(a, b)`` every shared k-mer votes for the
    diagonal ``pa - pb`` — the start of A's overlapping suffix.  Only
    non-negative diagonals describe an A-suffix/B-prefix overlap; the
    symmetric ordering handles the rest.  The winning diagonal is the
    most-voted one (ties to the *smallest*, i.e. the longest overlap),
    and it must leave at least ``min_overlap`` suffix.
    """
    votes: dict[tuple[int, int], dict[int, int]] = defaultdict(
        lambda: defaultdict(int)
    )
    for hits in table.values():
        for a, pa in hits:
            for b, pb in hits:
                if a == b:
                    continue
                diag = pa - pb
                if diag < 0:
                    continue
                votes[(a, b)][diag] += 1
    out: list[_Candidate] = []
    for (a, b), diags in sorted(votes.items()):
        best_diag, best_votes = min(
            diags.items(), key=lambda item: (-item[1], item[0])
        )
        if best_votes < params.min_shared:
            continue
        if len(reads[a][1]) - best_diag < params.min_overlap:
            continue
        out.append(_Candidate(a=a, b=b, a_start=best_diag))
    return out


def find_overlaps(
    reads: list[tuple[str, np.ndarray]],
    params: OverlapParams | None = None,
    scoring: AffineGap = BWA_MEM_SCORING,
    kernel=None,
) -> list[Overlap]:
    """Detect every accepted pairwise overlap among ``reads``.

    ``reads`` are ``(name, codes)`` pairs.  Verification runs on the
    selected kernel backend in batches; any job whose narrow-band
    verdict is not proved optimal reruns at full band, so the emitted
    scores and endpoints are kernel- and band-independent.
    """
    params = params or OverlapParams()
    backend = get_kernel(kernel)
    with obs.span(names.SPAN_OVERLAP_RUN, reads=len(reads)):
        table = _index_reads(reads, params)
        candidates = _vote_candidates(reads, table, params)
        if obs.enabled():
            obs.get_registry().counter(
                names.OVERLAP_CANDIDATES_TOTAL,
                "pairs promoted to verification",
            ).inc(len(candidates))
        out: list[Overlap] = []
        reruns = 0
        for lo in range(0, len(candidates), params.batch_size):
            wave = candidates[lo : lo + params.batch_size]
            accepted, wave_reruns = _verify_wave(
                reads, wave, params, scoring, backend
            )
            out.extend(accepted)
            reruns += wave_reruns
        if obs.enabled():
            reg = obs.get_registry()
            reg.counter(
                names.OVERLAP_ACCEPTED_TOTAL, "overlaps accepted"
            ).inc(len(out))
            if reruns:
                reg.counter(
                    names.OVERLAP_RERUNS_TOTAL,
                    "overlap jobs rerun at full band",
                ).inc(reruns)
    out.sort(key=lambda o: (o.a_name, o.b_name, o.a_start))
    return out


def _verify_wave(
    reads: list[tuple[str, np.ndarray]],
    wave: list[_Candidate],
    params: OverlapParams,
    scoring: AffineGap,
    backend,
) -> tuple[list[Overlap], int]:
    """Verify one batch of candidates; returns (accepted, reruns).

    The speculate-and-test step: narrow-band ``overlap_batch`` first,
    then one full-band ``overlap_batch`` over exactly the jobs whose
    band-edge bound failed to prove optimality.
    """
    queries = []
    targets = []
    for cand in wave:
        query = reads[cand.a][1][cand.a_start :]
        t_hi = min(len(reads[cand.b][1]), len(query) + params.band)
        target = reads[cand.b][1][:t_hi]
        queries.append(np.ascontiguousarray(query))
        targets.append(np.ascontiguousarray(target))
    with obs.span(names.SPAN_OVERLAP_WAVE, jobs=len(wave)):
        results = backend.overlap_batch(
            queries, targets, scoring, w=params.band
        )
        retry = [i for i, res in enumerate(results) if not res.optimal]
        if retry:
            full = backend.overlap_batch(
                [queries[i] for i in retry],
                [targets[i] for i in retry],
                scoring,
                w=None,
            )
            for i, res in zip(retry, full):
                results[i] = res
    retried = set(retry)
    accepted: list[Overlap] = []
    for i, (cand, res) in enumerate(zip(wave, results)):
        if res.t_end < 0 or res.t_end < params.min_overlap:
            continue
        qlen = len(queries[i])
        if res.score < int(params.accept * scoring.match * qlen):
            continue
        a_name, a_codes = reads[cand.a]
        b_name, b_codes = reads[cand.b]
        accepted.append(
            Overlap(
                a_name=a_name,
                a_len=len(a_codes),
                a_start=cand.a_start,
                a_end=len(a_codes),
                b_name=b_name,
                b_len=len(b_codes),
                b_start=0,
                b_end=res.t_end,
                score=res.score,
                band_used=res.band,
                proved=i not in retried,
            )
        )
    return accepted, len(retried)


def write_overlaps(handle, overlaps: list[Overlap]) -> None:
    """Write the sorted PAF-like TSV, one row per overlap."""
    for overlap in overlaps:
        handle.write(overlap.to_line() + "\n")
