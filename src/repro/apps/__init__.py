"""Beyond genomics: the SeedEx check applied to other banded DPs.

Paper Section VII-D argues the speculate-and-test scheme generalizes
to any DP whose computation has single-dimension locality; these
modules demonstrate it on dynamic time warping and longest common
subsequence.
"""

from repro.apps.dtw import banded_dtw, dtw_with_guarantee
from repro.apps.lcs import banded_lcs, lcs_with_guarantee

__all__ = [
    "banded_dtw",
    "banded_lcs",
    "dtw_with_guarantee",
    "lcs_with_guarantee",
]
