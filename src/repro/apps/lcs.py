"""Banded longest-common-subsequence with a SeedEx-style check.

Paper Section VII-D: LCS "can also be solved with a similar dynamic
programming algorithm ... similar to the Smith-Waterman".  The banded
variant computes only cells with ``|i - j| <= band``; the optimality
check mirrors the E-score check's structure for a maximization DP
with unit match reward:

* record the exact LCS value at every band-edge cell;
* a path leaving through edge cell ``(i, j)`` can still gain at most
  ``min(n - i, m - j)`` matches (each match consumes one character of
  both strings) — an admissible upper bound;
* if no edge cell's bound beats the banded LCS value, the banded
  value is provably the true LCS length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def full_lcs(a: np.ndarray, b: np.ndarray) -> int:
    """Classic O(nm) LCS length (the rerun / oracle kernel)."""
    return banded_lcs(a, b, band=max(len(a), len(b)))[0]


def banded_lcs(
    a: np.ndarray, b: np.ndarray, band: int
) -> tuple[int, list[tuple[int, int, int]]]:
    """LCS restricted to the band ``|i - j| <= band``.

    Returns ``(length, edge_cells)`` where ``edge_cells`` holds
    ``(i, j, value)`` for every cell on the band's two edge diagonals
    — the exact in-band prefix values a band-leaving alignment must
    pass through.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    n, m = len(a), len(b)
    if band < 0:
        raise ValueError("band must be non-negative")
    prev = np.zeros(m + 1, dtype=np.int64)
    edges: list[tuple[int, int, int]] = []
    if band <= m:
        edges.append((0, band, 0))
    for i in range(1, n + 1):
        cur = np.zeros(m + 1, dtype=np.int64)
        lo = max(1, i - band)
        hi = min(m, i + band)
        for j in range(lo, hi + 1):
            if a[i - 1] == b[j - 1]:
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = max(prev[j], cur[j - 1])
        if i + band <= m:
            edges.append((i, i + band, int(cur[i + band])))
        if 0 <= i - band <= m:
            edges.append((i, i - band, int(cur[i - band])))
        prev = cur
    return int(prev[min(m, n + band)]), edges


@dataclass(frozen=True)
class LcsCheck:
    """The check's verdict and its bound."""

    lcs_nb: int
    outside_upper_bound: int

    @property
    def optimal(self) -> bool:
        """No band-leaving alignment can be strictly longer."""
        return self.outside_upper_bound <= self.lcs_nb


def lcs_optimality_check(
    n: int,
    m: int,
    lcs_nb: int,
    edges: list[tuple[int, int, int]],
) -> LcsCheck:
    """Upper-bound every band-leaving common subsequence."""
    bound = 0
    for i, j, value in edges:
        cand = value + min(n - i, m - j)
        if cand > bound:
            bound = cand
    return LcsCheck(lcs_nb=lcs_nb, outside_upper_bound=bound)


@dataclass(frozen=True)
class LcsResult:
    length: int
    band: int
    optimal_by_check: bool
    rerun: bool


def lcs_with_guarantee(
    a: np.ndarray, b: np.ndarray, band: int
) -> LcsResult:
    """Speculate on a narrow band; rerun full LCS if the check fails.

    The returned length always equals :func:`full_lcs`'s (property-
    tested); passing the check just proves the banded run sufficed.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    length, edges = banded_lcs(a, b, band)
    check = lcs_optimality_check(len(a), len(b), length, edges)
    if check.optimal:
        return LcsResult(length, band, True, False)
    return LcsResult(full_lcs(a, b), band, False, True)
