"""Unified observability: metrics registry + span tracer.

One process-wide :class:`~repro.obs.metrics.MetricsRegistry` and one
:class:`~repro.obs.tracing.Tracer` back every measurement the
repository reports — Figure 14 passing rates, per-stage latencies,
cells filled, simulator occupancy.  See ``docs/observability.md`` for
the full metric/span catalog.

Usage::

    from repro import obs
    from repro.obs import names

    obs.enable()                          # attach the collectors
    with obs.span(names.SPAN_EXTEND_NARROW):
        ...                               # timed + traced
    if obs.enabled():                     # guard non-span metrics
        obs.get_registry().counter(names.ALIGNER_READS_TOTAL).inc()
    obs.get_registry().write_json("metrics.json")
    obs.get_tracer().export_chrome("trace.json")   # Perfetto-loadable

Design rule: instrumentation must be near-zero-cost while disabled.
``span()`` returns a shared no-op object without touching the clock,
and every non-span instrumentation site is expected to guard itself
with :func:`enabled` — so a pipeline with no exporter attached runs
the exact same arithmetic as an uninstrumented one.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
)
from repro.obs.tracing import NOOP_SPAN, Span, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "P2Quantile",
    "Span",
    "SpanRecord",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "get_tracer",
    "reset",
    "span",
    "traced",
]

_REGISTRY = MetricsRegistry()
_TRACER = Tracer(registry=_REGISTRY)
_ENABLED = False


def enabled() -> bool:
    """True when collectors are attached (instrumentation is live)."""
    return _ENABLED


def enable() -> None:
    """Attach the collectors: spans record, guarded metrics update."""
    global _ENABLED
    _ENABLED = True
    _TRACER.enable()


def disable() -> None:
    """Detach the collectors: spans become no-ops again."""
    global _ENABLED
    _ENABLED = False
    _TRACER.disable()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


def get_tracer() -> Tracer:
    """The process-wide span tracer."""
    return _TRACER


def span(name: str, **labels):
    """Time a block under ``name`` (no-op while disabled)."""
    return _TRACER.span(name, **labels)


def traced(name: str, **labels):
    """Decorator: run the wrapped callable inside :func:`span`."""
    return _TRACER.traced(name, **labels)


def reset() -> None:
    """Zero the global registry and discard collected spans."""
    _REGISTRY.reset()
    _TRACER.reset()
