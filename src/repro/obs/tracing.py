"""Lightweight span tracing with Chrome-trace export.

``tracer.span("extend.narrow")`` is a context manager (and decorator,
via :meth:`Tracer.traced`) that records nested wall-clock timings on a
per-thread stack.  The collected spans export to the Chrome trace
event format, loadable in ``chrome://tracing`` or Perfetto, and — when
a :class:`~repro.obs.metrics.MetricsRegistry` is attached — every
finished span ``x.y`` also observes the latency histogram
``x.y.seconds``, so traces and metrics stay in agreement.

Cost model: when the tracer is disabled, ``span()`` returns a shared
no-op context manager without touching the clock — the hot path pays
one attribute check and one function call.  When enabled, records are
bounded by ``max_records`` (oldest kept, overflow counted) so a long
benchmark session cannot grow memory without bound.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: what ran, when, for how long, under what."""

    name: str
    start: float
    duration: float
    depth: int
    thread_id: int
    labels: dict = field(default_factory=dict)


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    duration = 0.0
    """Disabled spans report zero duration."""

    def __enter__(self) -> "_NoopSpan":
        """No-op."""
        return self

    def __exit__(self, *exc) -> bool:
        """No-op; never swallows exceptions."""
        return False


NOOP_SPAN = _NoopSpan()
"""The singleton no-op span (exposed for tests)."""


class Span:
    """A live span: measures wall clock between enter and exit.

    Exception-safe: the duration is recorded and the stack popped even
    when the body raises; the exception always propagates.
    """

    __slots__ = ("tracer", "name", "labels", "start", "duration", "depth")

    def __init__(self, tracer: "Tracer", name: str, labels: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.labels = labels
        self.start = 0.0
        self.duration = 0.0
        self.depth = 0

    def __enter__(self) -> "Span":
        """Start the clock and push onto the per-thread span stack."""
        stack = self.tracer._stack()
        self.depth = len(stack)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        """Stop the clock, record the span, pop the stack."""
        self.duration = time.perf_counter() - self.start
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self.tracer._finish(self)
        return False


class Tracer:
    """Collects spans; exports Chrome-trace JSON; feeds a registry."""

    def __init__(self, registry=None, max_records: int = 200_000) -> None:
        self.enabled = False
        self.registry = registry
        self.max_records = max_records
        self._records: list[SpanRecord] = []
        self._dropped = 0
        self._local = threading.local()
        self._origin = time.perf_counter()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **labels) -> Span | _NoopSpan:
        """A context manager timing ``name``; no-op while disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, labels)

    def traced(self, name: str, **labels):
        """Decorator form: wrap a callable in :meth:`span`."""

        def decorate(func):
            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                with self.span(name, **labels):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    def _finish(self, span: Span) -> None:
        if len(self._records) >= self.max_records:
            self._dropped += 1
        else:
            self._records.append(
                SpanRecord(
                    name=span.name,
                    start=span.start - self._origin,
                    duration=span.duration,
                    depth=span.depth,
                    thread_id=threading.get_ident(),
                    labels=span.labels,
                )
            )
        if self.registry is not None:
            self.registry.histogram(
                span.name + ".seconds",
                "wall-clock latency of the span",
            ).observe(span.duration)

    # -- inspection -----------------------------------------------------

    @property
    def records(self) -> list[SpanRecord]:
        """Finished spans, in completion order."""
        return self._records

    @property
    def dropped(self) -> int:
        """Spans discarded after ``max_records`` was reached."""
        return self._dropped

    def span_names(self) -> set[str]:
        """Distinct names among the collected spans."""
        return {r.name for r in self._records}

    def last(self, name: str) -> SpanRecord | None:
        """Most recently finished span named ``name``, if any."""
        for record in reversed(self._records):
            if record.name == name:
                return record
        return None

    # -- lifecycle ------------------------------------------------------

    def enable(self) -> None:
        """Start collecting spans."""
        self.enabled = True

    def disable(self) -> None:
        """Stop collecting spans (already-collected records remain)."""
        self.enabled = False

    def reset(self) -> None:
        """Discard collected spans and restart the time origin."""
        self._records = []
        self._dropped = 0
        self._origin = time.perf_counter()

    # -- export ---------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The collected spans in Chrome trace event format.

        Complete events (``ph: "X"``) with microsecond timestamps;
        loadable in ``chrome://tracing`` and Perfetto.
        """
        pid = os.getpid()
        events = [
            {
                "name": r.name,
                "cat": "repro",
                "ph": "X",
                "ts": r.start * 1e6,
                "dur": r.duration * 1e6,
                "pid": pid,
                "tid": r.thread_id,
                "args": dict(r.labels, depth=r.depth),
            }
            for r in self._records
        ]
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_spans": self._dropped},
        }

    def export_chrome(self, path: str) -> None:
        """Write :meth:`chrome_trace` as JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")
