"""Process-wide metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` is the single source of truth for every
quantitative claim the repository makes at runtime — check passing
rates (Figure 14), cells filled, stage latencies, simulator occupancy.
The primitives are deliberately zero-dependency and JSON-native so a
snapshot can be diffed, archived next to a benchmark run, or pretty
printed by ``repro.cli stats``.

Histograms keep two complementary views of a distribution: fixed
buckets (cheap, mergeable, Prometheus-style cumulative counts) and
streaming quantile estimates via the P² algorithm (Jain & Chlamtac,
CACM 1985) — constant memory, no sample retention, accurate to a few
percent on smooth distributions.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Iterable, Mapping

DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    float(10**e) for e in range(-6, 7)
)
"""Geometric bucket ladder spanning microseconds to megacells."""

TRACKED_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)
"""Quantiles every histogram estimates online."""


def _render_key(name: str, labels: Mapping[str, object]) -> str:
    """Canonical registry key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _parse_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`_render_key`: ``name{k=v,...}`` -> (name, labels).

    Label values come back as strings — good enough for re-keying a
    registry, since :func:`_render_key` stringifies values anyway.
    """
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels: dict[str, str] = {}
    for part in inner.split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "description", "labels", "_value")

    def __init__(
        self,
        name: str,
        description: str = "",
        labels: Mapping[str, object] | None = None,
    ) -> None:
        self.name = name
        self.description = description
        self.labels = dict(labels or {})
        self._value = 0

    @property
    def value(self) -> int | float:
        """Current count."""
        return self._value

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self._value += amount

    def reset(self) -> None:
        """Zero the count."""
        self._value = 0

    def snapshot(self) -> int | float:
        """JSON-able value for the registry snapshot."""
        return self._value


class Gauge:
    """A value that can go up and down (occupancy, queue depth)."""

    __slots__ = ("name", "description", "labels", "_value")

    def __init__(
        self,
        name: str,
        description: str = "",
        labels: Mapping[str, object] | None = None,
    ) -> None:
        self.name = name
        self.description = description
        self.labels = dict(labels or {})
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Raise the gauge by ``amount``."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the gauge by ``amount``."""
        self._value -= amount

    def reset(self) -> None:
        """Return the gauge to zero."""
        self._value = 0.0

    def snapshot(self) -> float:
        """JSON-able value for the registry snapshot."""
        return self._value


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm.

    Five markers track the running quantile without retaining samples;
    until five observations arrive the exact small-sample quantile is
    returned.
    """

    __slots__ = ("q", "_initial", "_heights", "_pos", "_want", "_step")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = q
        self._initial: list[float] = []
        self._heights: list[float] | None = None
        self._pos: list[float] = []
        self._want: list[float] = []
        self._step: list[float] = []

    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        if self._heights is None:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                q = self.q
                self._pos = [0.0, 1.0, 2.0, 3.0, 4.0]
                self._want = [0.0, 2 * q, 4 * q, 2 + 2 * q, 4.0]
                self._step = [0.0, q / 2, q, (1 + q) / 2, 1.0]
            return
        h, n = self._heights, self._pos
        if x < h[0]:
            h[0] = x
            cell = 0
        elif x >= h[4]:
            h[4] = x
            cell = 3
        else:
            cell = 0
            for i in range(1, 5):
                if x < h[i]:
                    cell = i - 1
                    break
        for i in range(cell + 1, 5):
            n[i] += 1
        for i in range(5):
            self._want[i] += self._step[i]
        for i in (1, 2, 3):
            drift = self._want[i] - n[i]
            if (drift >= 1 and n[i + 1] - n[i] > 1) or (
                drift <= -1 and n[i - 1] - n[i] < -1
            ):
                d = 1.0 if drift > 0 else -1.0
                cand = self._parabolic(i, d)
                if not h[i - 1] < cand < h[i + 1]:
                    cand = self._linear(i, d)
                h[i] = cand
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate (NaN before any observation)."""
        if self._heights is not None:
            return self._heights[2]
        if not self._initial:
            return math.nan
        ordered = sorted(self._initial)
        idx = min(len(ordered) - 1, int(self.q * len(ordered)))
        return ordered[idx]


class Histogram:
    """Fixed-bucket distribution with streaming quantile estimates."""

    __slots__ = (
        "name",
        "description",
        "labels",
        "buckets",
        "_bucket_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_quantiles",
    )

    def __init__(
        self,
        name: str,
        description: str = "",
        labels: Mapping[str, object] | None = None,
        buckets: Iterable[float] | None = None,
    ) -> None:
        self.name = name
        self.description = description
        self.labels = dict(labels or {})
        self.buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))
        if not self.buckets:
            raise ValueError("need at least one bucket bound")
        self._reset_state()

    def _reset_state(self) -> None:
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._quantiles = {q: P2Quantile(q) for q in TRACKED_QUANTILES}

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._count += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        self._bucket_counts[idx] += 1
        for est in self._quantiles.values():
            est.add(value)

    @property
    def count(self) -> int:
        """Observations recorded."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Arithmetic mean (0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Streaming estimate for a tracked quantile (p50/p90/p99)."""
        if q not in self._quantiles:
            raise KeyError(
                f"quantile {q} not tracked; tracked: {TRACKED_QUANTILES}"
            )
        return self._quantiles[q].value()

    def reset(self) -> None:
        """Forget every observation."""
        self._reset_state()

    def snapshot(self) -> dict:
        """JSON-able summary: moments, buckets, quantile estimates."""
        buckets = {
            f"{bound:g}": self._bucket_counts[i]
            for i, bound in enumerate(self.buckets)
        }
        buckets["+inf"] = self._bucket_counts[-1]
        empty = self._count == 0
        quantiles = {}
        for q, est in self._quantiles.items():
            value = None if empty else est.value()
            # Absorbed observations bypass the streaming estimators
            # (quantile sketches are not mergeable), so a non-empty
            # histogram may still have an empty estimator.
            if value is not None and math.isnan(value):
                value = None
            quantiles[f"p{int(q * 100)}"] = value
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": None if empty else self._min,
            "max": None if empty else self._max,
            "buckets": buckets,
            "quantiles": quantiles,
        }

    def absorb(self, snap: Mapping) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Counts, sums, extrema, and bucket totals merge exactly;
        streaming quantile estimators cannot be merged and keep
        reflecting only locally-observed values (rendered ``None``
        when nothing was observed locally).  Bucket bounds that this
        histogram does not know about land in the overflow bucket.
        """
        count = int(snap.get("count", 0))
        if count == 0:
            return
        self._count += count
        self._sum += float(snap.get("sum", 0.0))
        if snap.get("min") is not None:
            self._min = min(self._min, float(snap["min"]))
        if snap.get("max") is not None:
            self._max = max(self._max, float(snap["max"]))
        mine = {f"{bound:g}": i for i, bound in enumerate(self.buckets)}
        for key, n in (snap.get("buckets") or {}).items():
            idx = mine.get(key, len(self.buckets))
            self._bucket_counts[idx] += int(n)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create home for every metric in one process (or scope).

    Metrics are keyed by ``(name, labels)``; asking twice returns the
    same object, asking for the same key with a different kind raises.
    ``snapshot()`` renders the whole registry as plain JSON-able dicts
    and ``reset()`` zeroes everything in place (object identity is
    preserved, so cached metric handles stay valid).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, tuple[str, object]] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, kind: str, name: str, description, labels, **kw):
        key = _render_key(name, labels)
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                have_kind, obj = existing
                if have_kind != kind:
                    raise ValueError(
                        f"{key} already registered as a {have_kind}"
                    )
                return obj
            obj = _KINDS[kind](name, description, labels, **kw)
            self._metrics[key] = (kind, obj)
            return obj

    def counter(
        self, name: str, description: str = "", **labels
    ) -> Counter:
        """Get or create the counter ``name`` with the given labels."""
        return self._get_or_create("counter", name, description, labels)

    def gauge(self, name: str, description: str = "", **labels) -> Gauge:
        """Get or create the gauge ``name`` with the given labels."""
        return self._get_or_create("gauge", name, description, labels)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Iterable[float] | None = None,
        **labels,
    ) -> Histogram:
        """Get or create the histogram ``name`` with the given labels."""
        return self._get_or_create(
            "histogram", name, description, labels, buckets=buckets
        )

    def __iter__(self):
        """Yield ``(key, kind, metric)`` triples in creation order."""
        for key, (kind, obj) in self._metrics.items():
            yield key, kind, obj

    def __len__(self) -> int:
        """Number of registered metrics."""
        return len(self._metrics)

    def snapshot(self) -> dict:
        """The whole registry as a JSON-able dict, grouped by kind."""
        out: dict[str, dict] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for key, kind, obj in self:
            out[kind + "s"][key] = obj.snapshot()
        return out

    def reset(self) -> None:
        """Zero every metric in place."""
        for _, _, obj in self:
            obj.reset()

    def absorb_snapshot(self, snap: Mapping) -> None:
        """Merge a :meth:`snapshot` from another registry into this one.

        This is how a sharded run folds per-worker measurements back
        into the parent process: counters add, gauges take the
        incoming value (last-write-wins — shard-level levels are not
        meaningfully summable), histograms merge via
        :meth:`Histogram.absorb`.  Metrics the parent has never seen
        are created on the fly from the snapshot keys.
        """
        for key, value in (snap.get("counters") or {}).items():
            name, labels = _parse_key(key)
            self.counter(name, **labels).inc(value)
        for key, value in (snap.get("gauges") or {}).items():
            name, labels = _parse_key(key)
            self.gauge(name, **labels).set(value)
        for key, hist_snap in (snap.get("histograms") or {}).items():
            name, labels = _parse_key(key)
            self.histogram(name, **labels).absorb(hist_snap)

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize :meth:`snapshot` to a JSON string."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        """Write :meth:`to_json` to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
