"""Canonical metric and span names: the observability catalog.

Every metric or span emitted anywhere in the repository must use a
constant from this module.  Names follow the ``dot.case`` convention
(lowercase segments joined by dots, underscores allowed inside a
segment) and every name must have a row in the catalog table of
``docs/observability.md`` — both properties are enforced by
``tools/check_metric_names.py``.

Spans double as latency metrics: when tracing is enabled, a finished
span ``x.y`` also observes the histogram ``x.y.seconds`` in the
attached registry, so the catalog lists the span name once and the
derived histogram is implied.
"""

from __future__ import annotations

# -- spans (each also emits the histogram "<name>.seconds") -------------

SPAN_EXTEND_NARROW = "extend.narrow"
"""Narrow-band speculative fill of one extension."""

SPAN_EXTEND_CHECK = "extend.check"
"""The whole Figure 6 optimality-check workflow for one extension."""

SPAN_EXTEND_RERUN = "extend.rerun"
"""Full-band rerun of an extension that failed its checks."""

SPAN_EXTEND_BATCH = "extend.batch"
"""One batched (lockstep) narrow-band kernel invocation."""

SPAN_CHECK_THRESHOLD = "check.threshold"
"""S1/S2 threshold computation and classification (cases a/b)."""

SPAN_CHECK_ESCORE = "check.escore"
"""The E-score bound on top-entering paths (case c, first check)."""

SPAN_CHECK_EDIT = "check.edit"
"""The edit-distance bound on left-entering paths (case c, second)."""

SPAN_CHECK_ABOVE = "check.above"
"""The above-band sweep (local-target workflow only)."""

SPAN_ALIGNER_READ = "aligner.read"
"""One read aligned end to end (seed, chain, extend, traceback)."""

SPAN_ALIGNER_SEED = "aligner.seed"
"""Seeding one read orientation (SMEM or k-mer lookup)."""

SPAN_ALIGNER_CHAIN = "aligner.chain"
"""Chaining and filtering the seeds of one orientation."""

SPAN_ALIGNER_EXTEND = "aligner.extend"
"""Left+right extension of one chain through the engine."""

SPAN_ALIGNER_TRACEBACK = "aligner.traceback"
"""Host-side traceback of the winning candidate."""

SPAN_HOST_KERNEL = "host.kernel"
"""One software-kernel timing sweep (Figure 3 measurements)."""

SPAN_PIPELINE_WINDOW = "pipeline.batch.window"
"""One window of reads through the deferred-extension scheduler."""

SPAN_PIPELINE_WAVE = "pipeline.batch.wave"
"""One lockstep extension wave (labels: ``side``, ``jobs``)."""

SPAN_PIPELINE_LONGREAD_WINDOW = "pipeline.longread.window"
"""One window of long reads through the three-wave scheduler."""

SPAN_PIPELINE_LONGREAD_FILL_WAVE = "pipeline.longread.fill.wave"
"""One cross-read lockstep gap-fill ladder (labels: ``jobs``)."""

SPAN_OVERLAP_RUN = "overlap.run"
"""One all-vs-all overlap detection run (candidates + verification)."""

SPAN_OVERLAP_WAVE = "overlap.verify.wave"
"""One batched overlap-verification wave (labels: ``jobs``)."""

SPAN_INDEX_BUILD = "index.build"
"""Building one persistent index artifact (SA + FM + k-mer + write)."""

SPAN_INDEX_LOAD = "index.load"
"""Opening one index artifact through the load ladder."""

SPAN_INDEX_VERIFY = "index.verify"
"""CRC-verifying every section of one index artifact."""

# -- counters -----------------------------------------------------------

EXTENSIONS_TOTAL = "seedex.extensions.total"
"""Extensions pushed through the speculate-and-test workflow."""

CHECK_OUTCOME = "seedex.check.outcome"
"""Check decisions by terminal outcome (labels: ``outcome``)."""

CELLS_NARROW = "seedex.cells.narrow"
"""DP cells filled by the narrow-band speculation."""

CELLS_RERUN = "seedex.cells.rerun"
"""DP cells filled by full-band reruns."""

ENGINE_EXTENSIONS = "engine.extensions"
"""Extensions served per engine (labels: ``engine``)."""

ENGINE_CELLS = "engine.cells"
"""DP cells filled per engine (labels: ``engine``)."""

ALIGNER_READS_TOTAL = "aligner.reads.total"
"""Reads entering the end-to-end aligner."""

ALIGNER_READS_UNMAPPED = "aligner.reads.unmapped"
"""Reads that produced no alignment candidate."""

ALIGNER_SEEDS_TOTAL = "aligner.seeds.total"
"""Seeds found across both orientations of every read."""

ALIGNER_CHAINS_KEPT = "aligner.chains.kept"
"""Chains surviving the filter across every read."""

ALIGNER_CANDIDATES_TOTAL = "aligner.candidates.total"
"""Fully-extended alignment candidates scored."""

ALIGNER_READS_DEGRADED = "aligner.reads.degraded"
"""Reads left unmapped because an extension exhausted the ladder."""

FAULTS_INJECTED = "faults.injected"
"""Faults the chaos injector planted (labels: ``site``)."""

FAULTS_DETECTED = "faults.detected"
"""Injected faults that surfaced as typed errors (labels: ``site``)."""

FAULTS_TOLERATED = "faults.tolerated"
"""Injected faults absorbed without consequence (labels: ``site``)."""

RESILIENCE_JOBS = "resilience.jobs.total"
"""Jobs entering the resilient dispatcher."""

RESILIENCE_RETRIES = "resilience.retries.total"
"""Accelerator retries taken by the dispatcher."""

RESILIENCE_TIMEOUTS = "resilience.timeouts.total"
"""Per-attempt timeouts (stalls past the deadline)."""

RESILIENCE_FALLBACKS = "resilience.fallbacks.host"
"""Jobs degraded to the host full-band rerun."""

RESILIENCE_DEAD_LETTERS = "resilience.dead_letters.total"
"""Jobs that exhausted the whole degradation ladder."""

PIPELINE_BATCH_WAVES = "pipeline.batch.waves"
"""Extension waves dispatched by the scheduler (labels: ``side``)."""

PIPELINE_BATCH_JOBS = "pipeline.batch.jobs"
"""Extension jobs entering a wave (labels: ``side``)."""

PIPELINE_BATCH_JOBS_DEGRADED = "pipeline.batch.jobs.degraded"
"""Wave jobs that exhausted the resilience ladder individually."""

PIPELINE_BATCH_CACHE_HITS = "pipeline.batch.cache.hits"
"""Extension jobs answered from the result cache."""

PIPELINE_BATCH_CACHE_MISSES = "pipeline.batch.cache.misses"
"""Extension jobs that had to be computed (then cached)."""

PIPELINE_SHARD_READS = "pipeline.shard.reads"
"""Reads aligned per shard of a sharded run (labels: ``shard``)."""

PIPELINE_SHARD_SNAPSHOTS_MERGED = "pipeline.shard.snapshots_merged"
"""Per-worker metric snapshots folded into the parent registry."""

PIPELINE_SHARD_RESTARTS = "pipeline.shard.restarts"
"""Worker processes the supervisor respawned after a crash or hang."""

PIPELINE_SHARD_HEARTBEATS_MISSED = "pipeline.shard.heartbeats.missed"
"""Workers killed for missing their heartbeat deadline."""

PIPELINE_READS_QUARANTINED = "pipeline.reads.quarantined"
"""Poison reads isolated by bisection and emitted unmapped."""

PIPELINE_INPUT_BAD_RECORDS = "pipeline.input.bad_records"
"""Malformed FASTQ records skipped under ``--on-bad-record quarantine``."""

PIPELINE_LONGREAD_READS = "pipeline.longread.reads"
"""Long reads entering the batched three-wave scheduler."""

PIPELINE_LONGREAD_FILL_JOBS = "pipeline.longread.fill.jobs"
"""Inter-seed gap fills dispatched through the lockstep ladder."""

PIPELINE_LONGREAD_FILL_ESCALATIONS = "pipeline.longread.fill.escalations"
"""Gap fills whose narrow band failed the check and climbed the ladder."""

OVERLAP_CANDIDATES_TOTAL = "overlap.candidates.total"
"""Read pairs the shared-seed pre-filter promoted to verification."""

OVERLAP_ACCEPTED_TOTAL = "overlap.accepted.total"
"""Verified overlaps that met the acceptance threshold."""

OVERLAP_RERUNS_TOTAL = "overlap.reruns.total"
"""Overlap jobs rerun at full band after failing the edge bound."""

PAIRED_RESCUE_WAVES = "paired.rescue.waves"
"""Mate-rescue extension waves dispatched by the batched paired path."""

PAIRED_RESCUE_JOBS = "paired.rescue.jobs"
"""Mate-rescue candidate extensions entering a rescue wave."""

RESILIENCE_BREAKER_TRANSITIONS = "resilience.breaker.transitions"
"""Circuit-breaker state changes (labels: ``to``)."""

RESILIENCE_BREAKER_SHORT_CIRCUITS = "resilience.breaker.short_circuits"
"""Jobs routed straight to the host while the breaker was open."""

RESILIENCE_BREAKER_PROBES = "resilience.breaker.probes"
"""Half-open probe jobs allowed through to the accelerator."""

KERNEL_EXTENSIONS = "kernel.extensions"
"""Extension jobs served per DP kernel backend (labels: ``kernel``)."""

KERNEL_BUCKET_TOTAL = "kernel.bucket_total"
"""Shape buckets the striped kernel swept (one per distinct class)."""

KERNEL_BUCKET_PAD_CELLS = "kernel.bucket_pad_cells"
"""DP cells spent on bucket padding (padded minus useful cells)."""

KERNEL_FALLBACK_TOTAL = "kernel.fallback_total"
"""Batch jobs the striped kernel routed to the per-job fallback."""

DURABILITY_WINDOWS_JOURNALED = "durability.windows.journaled"
"""Read windows whose SAM segment was committed to the journal."""

DURABILITY_WINDOWS_SKIPPED = "durability.windows.skipped"
"""Windows a resumed run skipped because their segment was intact."""

DURABILITY_JOURNAL_BYTES = "durability.journal.bytes"
"""Segment bytes committed to the checkpoint journal."""

SCORE_READS_TOTAL = "score.reads.total"
"""Reads graded against a truth sidecar."""

SCORE_READS_OUTCOME = "score.reads.outcome"
"""Scored reads by outcome class (labels: ``outcome``)."""

SCORE_MAPQ_READS = "score.mapq.reads"
"""Mapped scored reads per MAPQ bin (labels: ``bin``, ``outcome``)."""

SCORE_BAND_READS = "score.band.reads"
"""Scored reads per true-band bucket (labels: ``bucket``, ``outcome``)."""

SERVE_REQUESTS_TOTAL = "serve.requests.total"
"""Requests the server parsed, by verb (labels: ``verb``)."""

SERVE_REQUESTS_SHED = "serve.requests.shed"
"""Requests rejected before batching (labels: ``reason``)."""

SERVE_REQUESTS_TIMEOUT = "serve.requests.timeout"
"""Admitted requests dropped at pop time for an expired deadline."""

SERVE_REQUESTS_SERVED = "serve.requests.served"
"""ALIGN requests answered with a SAM line."""

SERVE_CLIENT_DISCONNECTS = "serve.client.disconnects"
"""Responses abandoned because the client had vanished."""

SERVE_WAL_RECORDS = "serve.wal.records"
"""Write-ahead log records appended (labels: ``op``)."""

INDEX_LOADS = "index.loads.total"
"""Index artifacts opened successfully (labels: ``mode``)."""

INDEX_REBUILDS = "index.rebuilds.total"
"""Artifacts rebuilt after a load refusal (``--rebuild-index``)."""

INDEX_VERIFY_FAILURES = "index.verify.failures"
"""Load-ladder refusals by error kind (labels: ``kind``)."""

# -- histograms ---------------------------------------------------------

CELLS_PER_EXTENSION = "seedex.cells.per_extension"
"""DP cells filled by one extension (labels: ``stage``)."""

ALIGNER_SEEDS_PER_READ = "aligner.seeds.per_read"
"""Seeds found for one read (both orientations)."""

ALIGNER_CHAINS_PER_READ = "aligner.chains.per_read"
"""Chains kept for one read (both orientations)."""

RESILIENCE_ATTEMPTS = "resilience.attempts.per_job"
"""Accelerator attempts one job needed before success/fallback."""

PIPELINE_BATCH_WAVE_JOBS = "pipeline.batch.wave.jobs"
"""Jobs carried by one wave (labels: ``side``)."""

PIPELINE_BATCH_WAVE_CLASSES = "pipeline.batch.wave.shape_classes"
"""Distinct striped-kernel shape classes in one wave (labels:
``side``) — the wave scheduler's bucket density: 1 means the whole
wave packs into a single dense sweep group."""

KERNEL_BUCKET_JOBS = "kernel.bucket_jobs"
"""Jobs packed into one striped-kernel shape bucket."""

SERVE_BATCH_READS = "serve.batch.reads"
"""Reads carried by one server micro-batch wave."""

SERVE_REQUEST_SECONDS = "serve.request.seconds"
"""Admission-to-response latency of one served ALIGN request."""

# -- gauges -------------------------------------------------------------

SYSTEM_FPGA_UTILIZATION = "system.fpga.utilization"
"""Fraction of the simulated makespan the device computed (Fig 12)."""

SYSTEM_LOCK_WAIT_MEAN = "system.lock_wait.mean_seconds"
"""Mean FPGA-lock wait per batch in the protocol simulation."""

SYSTEM_THROUGHPUT = "system.throughput.ext_per_s"
"""End-to-end throughput of the simulated timeline."""

SYSTEM_BATCHES_FINISHED = "system.batches.finished"
"""Batches the simulated timeline completed."""

RESILIENCE_OVERHEAD = "resilience.overhead.fraction"
"""Measured dispatcher overhead with faults disabled (<1% target)."""

RESILIENCE_BREAKER_STATE = "resilience.breaker.state"
"""Circuit-breaker state (0=closed, 1=half-open, 2=open)."""

PIPELINE_SHARD_WORKERS = "pipeline.shard.workers"
"""Worker processes the sharded runner fanned out to."""

KERNEL_ACTIVE = "kernel.active"
"""Set to 1 for the DP kernel backend a run selected (labels: ``kernel``)."""

SCORE_CORRECT_LOCUS_RATE = "score.correct_locus.rate"
"""Correct-locus rate of the most recent scored run."""

SCORE_TOLERANCE = "score.tolerance.bases"
"""Position tolerance window the scorecard used (bases)."""

SERVE_QUEUE_DEPTH = "serve.queue.depth"
"""Admission-queue depth sampled at each wave pop."""

SERVE_CLIENTS_ACTIVE = "serve.clients.active"
"""Client connections currently open."""

INDEX_ARTIFACT_BYTES = "index.artifact.bytes"
"""On-disk size of the most recently built or loaded artifact."""


def all_names() -> dict[str, str]:
    """Map constant identifier -> metric/span name string.

    The lint tool iterates this to validate naming convention and
    catalog coverage; instrumentation sites import the constants.
    """
    return {
        key: value
        for key, value in globals().items()
        if key.isupper() and isinstance(value, str)
    }
