"""Passing-rate sweeps (paper Figure 14, Section VII-A).

For each band setting, run every extension of a corpus through the
narrow-band kernel and the optimality checks, and report the fraction
admitted by thresholding alone versus by the full check chain.  The
paper's chosen operating point — band 41, 71.76% threshold-only,
98.19% overall, roughly one job in three visiting the edit machine —
comes from exactly this sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.core.checker import (
    CheckConfig,
    CheckOutcome,
    OptimalityChecker,
)
from repro.genome.synth import ExtensionJob


@dataclass(frozen=True)
class PassingPoint:
    """Check outcomes at one band setting."""

    band: int
    total: int
    outcome_counts: dict[CheckOutcome, int]

    def rate(self, *outcomes: CheckOutcome) -> float:
        """Fraction of jobs landing in the given outcomes."""
        if not self.total:
            return 0.0
        return (
            sum(self.outcome_counts.get(o, 0) for o in outcomes)
            / self.total
        )

    @property
    def threshold_only(self) -> float:
        """Admitted by case b alone (the paper's 'thresholding' line)."""
        return self.rate(CheckOutcome.PASS_S2)

    @property
    def overall(self) -> float:
        """Admitted by the full chain (the paper's SeedEx line)."""
        return self.rate(CheckOutcome.PASS_S2, CheckOutcome.PASS_CHECKS)

    @property
    def edit_check_boost(self) -> float:
        """Extra admissions the E-score + edit checks contribute."""
        return self.overall - self.threshold_only

    @property
    def edit_machine_demand(self) -> float:
        """Fraction of jobs that occupied the edit machine."""
        return self.rate(CheckOutcome.PASS_CHECKS, CheckOutcome.FAIL_EDIT)


def passing_point(
    jobs: list[ExtensionJob],
    band: int,
    scoring: AffineGap = BWA_MEM_SCORING,
    config: CheckConfig | None = None,
) -> PassingPoint:
    """Run the checker over a corpus at one band setting.

    The narrow-band runs go through the batched lockstep kernel; the
    checks (and any edit-machine DPs they trigger) run per job.
    """
    from repro.align.batchdp import extend_batch

    checker = OptimalityChecker(scoring, config)
    counts: dict[CheckOutcome, int] = {}
    results = extend_batch(
        [j.query for j in jobs],
        [j.target for j in jobs],
        [j.h0 for j in jobs],
        scoring,
        w=band,
    )
    for job, res in zip(jobs, results):
        decision = checker.check(job.query, job.target, res)
        counts[decision.outcome] = counts.get(decision.outcome, 0) + 1
    return PassingPoint(band=band, total=len(jobs), outcome_counts=counts)


def passing_sweep(
    jobs: list[ExtensionJob],
    bands: list[int],
    scoring: AffineGap = BWA_MEM_SCORING,
    config: CheckConfig | None = None,
) -> list[PassingPoint]:
    """Figure 14's x-axis sweep."""
    return [passing_point(jobs, band, scoring, config) for band in bands]
