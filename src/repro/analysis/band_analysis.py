"""Band-demand analysis (paper Section II-B, Figures 2 and 3).

Two band notions drive the SeedEx design point:

* the **estimated band** — BWA-MEM's a-priori conservative bound,
  proportional to the query length (the largest gap whose penalty the
  maximum attainable score could still absorb);
* the **used band** — the a-posteriori minimal band that reproduces
  the full-band result bit-for-bit.

Figure 2's gap between the two distributions (38% of extensions
*estimated* to need w > 40, yet 98% actually needing w <= 10) is the
paper's motivation; :func:`band_distribution` reproduces both
histograms from a synthetic corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align import banded
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.genome.synth import ExtensionJob

FIG2_BUCKETS = ((0, 10), (11, 20), (21, 40), (41, 10**9))
FIG2_BUCKET_LABELS = ("0-10", "11-20", "21-40", ">40")


def estimated_band(
    qlen: int, scoring: AffineGap = BWA_MEM_SCORING, h0: int = 0
) -> int:
    """BWA-MEM's conservative a-priori band estimate.

    The largest insertion (or deletion) that could appear in an
    optimal alignment: a gap longer than this costs more than every
    query character matching could earn back.
    """
    earn = qlen * scoring.match + h0 - scoring.gap_open
    ge = min(scoring.gap_extend_ins, scoring.gap_extend_del)
    if ge == 0:
        return qlen
    return max(0, min(qlen, earn // ge + 1))


def minimal_band(
    job: ExtensionJob, scoring: AffineGap = BWA_MEM_SCORING
) -> int:
    """The a-posteriori "used" band: the smallest ``w`` whose banded
    result equals the full-band result bit-for-bit.

    Galloping search up from w=1, then bisection; monotonicity holds
    because growing the band only adds paths.
    """
    full = banded.extend(job.query, job.target, scoring, job.h0)
    target = full.scores()

    def matches(w: int) -> bool:
        res = banded.extend(job.query, job.target, scoring, job.h0, w=w)
        return res.scores() == target

    hi = 1
    cap = max(len(job.query), len(job.target))
    while hi < cap and not matches(hi):
        hi *= 2
    hi = min(hi, cap)
    lo = hi // 2 if hi > 1 else 0
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if matches(mid):
            hi = mid
        else:
            lo = mid
    return hi


@dataclass(frozen=True)
class BandDistribution:
    """Bucketed histogram of band demand over a corpus (Figure 2)."""

    labels: tuple[str, ...]
    estimated: tuple[float, ...]
    used: tuple[float, ...]

    def fraction_used_at_most(self, w: int) -> float:
        """Convenience for the paper's '98% need w<=10' style claims."""
        total = 0.0
        for (lo, hi), frac in zip(FIG2_BUCKETS, self.used):
            if hi <= w:
                total += frac
        return total


def band_distribution(
    jobs: list[ExtensionJob], scoring: AffineGap = BWA_MEM_SCORING
) -> BandDistribution:
    """Estimated-vs-used band histograms over an extension corpus."""
    if not jobs:
        raise ValueError("need at least one job")
    est_counts = [0] * len(FIG2_BUCKETS)
    used_counts = [0] * len(FIG2_BUCKETS)
    for job in jobs:
        # BWA-MEM estimates from the query length alone (the seed
        # score does not enter its max_ins/max_del formula).
        est = estimated_band(len(job.query), scoring)
        used = minimal_band(job, scoring)
        est_counts[_bucket(est)] += 1
        used_counts[_bucket(used)] += 1
    n = len(jobs)
    return BandDistribution(
        labels=FIG2_BUCKET_LABELS,
        estimated=tuple(c / n for c in est_counts),
        used=tuple(c / n for c in used_counts),
    )


def _bucket(w: int) -> int:
    for idx, (lo, hi) in enumerate(FIG2_BUCKETS):
        if lo <= w <= hi:
            return idx
    raise AssertionError("bucket ranges cover all non-negative bands")
