"""Workload analysis and experiment harness helpers."""

from repro.analysis.band_analysis import (
    band_distribution,
    estimated_band,
    minimal_band,
)
from repro.analysis.passing import passing_point, passing_sweep
from repro.analysis.report import (
    PaperComparison,
    comparison_table,
    format_table,
    print_table,
)

__all__ = [
    "PaperComparison",
    "band_distribution",
    "comparison_table",
    "estimated_band",
    "format_table",
    "minimal_band",
    "passing_point",
    "passing_sweep",
    "print_table",
]
