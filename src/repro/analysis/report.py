"""Experiment reporting: aligned tables and paper-vs-measured rows.

Shared by the benchmark harnesses: every experiment prints its result
through :func:`print_table` so stdout reads like the paper's tables,
and :class:`PaperComparison` keeps the paper-reported value next to
the measured/model value with a relative error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    """Print a titled, aligned table to stdout."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (terminal-friendly plots).

    Used by the benchmark harnesses so distribution figures (2, 14)
    read as charts on stdout, not just tables.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return ""
    peak = max(max(values), 1e-12)
    label_w = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(width * value / peak))
        lines.append(
            f"{str(label).rjust(label_w)} | {bar} {value:.3g}{unit}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class PaperComparison:
    """One paper-vs-measured line of EXPERIMENTS.md."""

    metric: str
    paper: float
    measured: float

    @property
    def relative_error(self) -> float:
        """abs(measured - paper) / abs(paper)."""
        if self.paper == 0:
            return 0.0 if self.measured == 0 else float("inf")
        return abs(self.measured - self.paper) / abs(self.paper)

    def row(self) -> tuple[str, float, float, str]:
        """The printable (metric, paper, measured, err%) tuple."""
        return (
            self.metric,
            self.paper,
            self.measured,
            f"{100 * self.relative_error:.1f}%",
        )


def comparison_table(
    title: str, comparisons: Iterable[PaperComparison]
) -> None:
    """Print paper-vs-measured rows with relative errors."""
    print_table(
        title,
        ("metric", "paper", "measured", "rel err"),
        [c.row() for c in comparisons],
    )
