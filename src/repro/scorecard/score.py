"""Score a SAM run against a truth sidecar.

The grader is deliberately simple and deterministic: every SAM record
with a truth row lands in exactly one outcome class, and every rate
the scorecard reports is a ratio of those integer counts — no
sampling, no thresholds beyond the position tolerance window.

A mapped read is **correct** when it sits on the true strand within
``tolerance + indel_span`` bases of its true origin: the simulator's
structural indels legitimately shift the leftmost mapped base, so the
window widens by the read's own indel span rather than punishing the
aligner for the read's biology.  Wrong-strand placements are counted
separately from wrong-locus ones — they fail differently (a
reverse-complement palindrome versus a repeat copy).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.genome.sam import FLAG_SECONDARY, SamRecord
from repro.scorecard.truth import TruthRecord, read_truth

SCORECARD_SCHEMA = 1
"""Version stamped into every ``scorecard.json``."""

DEFAULT_TOLERANCE = 20
"""Base tolerance window (bases) around the true mapping position."""

OUTCOMES = (
    "correct",
    "wrong_locus",
    "wrong_strand",
    "unmapped",
    "degraded",
    "quarantined",
)
"""Every scored read lands in exactly one of these classes."""

_DEGRADED_TAG = "XF:Z:degraded_extension"
_QUARANTINED_TAG = "XF:Z:quarantined"

_BAND_EDGES = ((0, 0), (1, 2), (3, 5), (6, 10), (11, 20))
UNKNOWN_BUCKET = "unknown"
"""Band bucket for reads whose truth row has no edit counts."""


def mapq_bin(mapq: int) -> str:
    """The calibration bin label for a reported MAPQ (``"0"``,
    ``"1-9"``, ..., ``"50-59"``, ``"60"``)."""
    if mapq <= 0:
        return "0"
    if mapq >= 60:
        return "60"
    lo = (mapq // 10) * 10
    if lo == 0:
        return "1-9"
    return f"{lo}-{lo + 9}"


def band_bucket(indel_span: int | None) -> str:
    """The band-demand bucket for a read's true indel span."""
    if indel_span is None:
        return UNKNOWN_BUCKET
    for lo, hi in _BAND_EDGES:
        if lo <= indel_span <= hi:
            return str(lo) if lo == hi else f"{lo}-{hi}"
    return "21+"


@dataclass
class Scorecard:
    """Accuracy accounting for one aligned run against its truth.

    ``total`` counts primary SAM records that had a truth row;
    ``missing_truth`` and ``truth_unseen`` are the two directions of
    sidecar/run mismatch (a record without truth, a truth row whose
    read never surfaced).  ``mapq`` holds ``correct``/``wrong`` counts
    per reported-MAPQ bin for mapped reads; ``band`` holds
    ``correct``/``total`` per true-indel-span bucket for all scored
    reads (unmapped reads count against their bucket).
    """

    tolerance: int = DEFAULT_TOLERANCE
    total: int = 0
    missing_truth: int = 0
    truth_unseen: int = 0
    outcomes: dict[str, int] = field(
        default_factory=lambda: {outcome: 0 for outcome in OUTCOMES}
    )
    mapq: dict[str, dict[str, int]] = field(default_factory=dict)
    band: dict[str, dict[str, int]] = field(default_factory=dict)

    # -- derived rates --------------------------------------------------

    def _fraction(self, outcome: str) -> float:
        return self.outcomes[outcome] / self.total if self.total else 0.0

    @property
    def correct_locus_rate(self) -> float:
        """Correct placements over all scored reads (0 when empty)."""
        return self._fraction("correct")

    @property
    def unmapped_fraction(self) -> float:
        """Plain-unmapped reads over all scored reads."""
        return self._fraction("unmapped")

    @property
    def degraded_fraction(self) -> float:
        """Ladder-exhausted (``XF:Z:degraded_extension``) fraction."""
        return self._fraction("degraded")

    @property
    def quarantined_fraction(self) -> float:
        """Poison-read (``XF:Z:quarantined``) fraction."""
        return self._fraction("quarantined")

    # -- scoring --------------------------------------------------------

    def grade(self, record: SamRecord, truth: TruthRecord | None) -> str:
        """Fold one primary record into the counts; returns its outcome
        (or ``"missing_truth"`` when no truth row exists)."""
        if truth is None:
            self.missing_truth += 1
            return "missing_truth"
        self.total += 1
        if record.is_unmapped:
            if _DEGRADED_TAG in record.tags:
                outcome = "degraded"
            elif _QUARANTINED_TAG in record.tags:
                outcome = "quarantined"
            else:
                outcome = "unmapped"
        elif record.is_reverse != truth.reverse:
            outcome = "wrong_strand"
        else:
            window = self.tolerance + (truth.indel_span or 0)
            if abs(record.pos - truth.true_pos) <= window:
                outcome = "correct"
            else:
                outcome = "wrong_locus"
        self.outcomes[outcome] += 1
        if not record.is_unmapped:
            cell = self.mapq.setdefault(
                mapq_bin(record.mapq), {"correct": 0, "wrong": 0}
            )
            cell["correct" if outcome == "correct" else "wrong"] += 1
        bucket = self.band.setdefault(
            band_bucket(truth.indel_span), {"correct": 0, "total": 0}
        )
        bucket["total"] += 1
        if outcome == "correct":
            bucket["correct"] += 1
        return outcome

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        """The schema-versioned JSON payload of ``scorecard.json``."""
        return {
            "schema": SCORECARD_SCHEMA,
            "tolerance": self.tolerance,
            "total": self.total,
            "missing_truth": self.missing_truth,
            "truth_unseen": self.truth_unseen,
            "outcomes": dict(self.outcomes),
            "rates": {
                "correct_locus": self.correct_locus_rate,
                "unmapped": self.unmapped_fraction,
                "degraded": self.degraded_fraction,
                "quarantined": self.quarantined_fraction,
            },
            "mapq": {k: dict(v) for k, v in sorted(self.mapq.items())},
            "band": {k: dict(v) for k, v in sorted(self.band.items())},
        }

    def write_json(self, path: str | Path) -> None:
        """Write :meth:`to_dict` to ``path`` (pretty-printed)."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def summary(self) -> str:
        """One human line: the rates a run operator scans first."""
        wrong = (
            self.outcomes["wrong_locus"] + self.outcomes["wrong_strand"]
        )
        return (
            f"scorecard: correct-locus {self.correct_locus_rate:.1%} "
            f"({self.outcomes['correct']}/{self.total} scored, "
            f"tol ±{self.tolerance}), {wrong} wrong, "
            f"unmapped {self.unmapped_fraction:.1%}, "
            f"degraded {self.degraded_fraction:.1%}, "
            f"quarantined {self.quarantined_fraction:.1%}"
        )

    # -- observability --------------------------------------------------

    def publish(self, registry) -> None:
        """Emit the scorecard through a
        :class:`~repro.obs.metrics.MetricsRegistry` under the
        catalogued ``score.*`` names.  Call once per scored run —
        counters accumulate.
        """
        from repro.obs import names

        registry.counter(
            names.SCORE_READS_TOTAL, "reads scored against truth"
        ).inc(self.total)
        for outcome, count in self.outcomes.items():
            if count:
                registry.counter(
                    names.SCORE_READS_OUTCOME,
                    "scored reads by outcome",
                    outcome=outcome,
                ).inc(count)
        if self.missing_truth:
            registry.counter(
                names.SCORE_READS_OUTCOME,
                "scored reads by outcome",
                outcome="missing_truth",
            ).inc(self.missing_truth)
        registry.gauge(
            names.SCORE_CORRECT_LOCUS_RATE,
            "correct-locus rate of the last scored run",
        ).set(self.correct_locus_rate)
        registry.gauge(
            names.SCORE_TOLERANCE,
            "position tolerance window of the last scored run",
        ).set(self.tolerance)
        for bin_label, cell in self.mapq.items():
            for outcome in ("correct", "wrong"):
                if cell[outcome]:
                    registry.counter(
                        names.SCORE_MAPQ_READS,
                        "mapped reads per MAPQ calibration bin",
                        bin=bin_label,
                        outcome=outcome,
                    ).inc(cell[outcome])
        for bucket, cell in self.band.items():
            registry.counter(
                names.SCORE_BAND_READS,
                "scored reads per true-band-demand bucket",
                bucket=bucket,
                outcome="correct",
            ).inc(cell["correct"])
            wrong = cell["total"] - cell["correct"]
            if wrong:
                registry.counter(
                    names.SCORE_BAND_READS,
                    "scored reads per true-band-demand bucket",
                    bucket=bucket,
                    outcome="wrong",
                ).inc(wrong)


def score_records(
    records: Iterable[SamRecord],
    truth: Mapping[str, TruthRecord],
    tolerance: int = DEFAULT_TOLERANCE,
) -> Scorecard:
    """Grade an in-memory record stream against a truth mapping.

    Secondary records are skipped (the scorecard grades one placement
    per read); ``truth_unseen`` counts sidecar rows whose read never
    produced a primary record.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    card = Scorecard(tolerance=tolerance)
    seen: set[str] = set()
    for record in records:
        if record.flag & FLAG_SECONDARY:
            continue
        card.grade(record, truth.get(record.qname))
        seen.add(record.qname)
    card.truth_unseen = sum(1 for name in truth if name not in seen)
    return card


def score_sam(
    sam_path: str | Path,
    truth: Mapping[str, TruthRecord] | str | Path,
    tolerance: int = DEFAULT_TOLERANCE,
) -> Scorecard:
    """Grade a SAM file on disk; ``truth`` is a mapping or a sidecar
    path.  Header lines are skipped; scoring never writes anything, so
    the SAM is untouched."""
    if not isinstance(truth, Mapping):
        truth = read_truth(truth)

    def _records() -> Iterable[SamRecord]:
        with open(sam_path) as handle:
            for line in handle:
                if line.startswith("@") or not line.strip():
                    continue
                yield SamRecord.from_line(line)

    return score_records(_records(), truth, tolerance=tolerance)
