"""The truth sidecar: where each simulated read actually came from.

A ``.truth.tsv`` is written next to a simulated FASTQ and carries one
row per read — its true 0-based origin on the reference, its strand,
and the edit budget the simulator spent on it.  The format is a plain
TSV behind a versioned header so the scorecard can refuse a sidecar
it does not understand::

    #repro-truth	v1
    #read	true_pos	strand	subs	ins	dels
    read0000001	4711	+	1	0	0
    pair000001/2	9023	-	-	-	-

Edit columns may be ``-`` (unknown): the paired-end simulator tracks
positions but not per-mate edit counts, and reads with unknown edits
simply fall into the ``unknown`` band bucket and get no indel-span
allowance on their tolerance window.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, TextIO

TRUTH_VERSION = 1
"""Sidecar format version; bumped only on incompatible changes."""

_MAGIC = "#repro-truth"
_COLUMNS = "#read\ttrue_pos\tstrand\tsubs\tins\tdels"
_UNKNOWN = "-"


class TruthError(ValueError):
    """A sidecar could not be parsed (bad magic, version, or row)."""


@dataclass(frozen=True)
class TruthRecord:
    """Ground truth for one simulated read.

    ``true_pos`` is the 0-based reference offset the read was sampled
    at; ``reverse`` marks reverse-strand reads.  The edit counts are
    ``None`` when the generator did not track them (paired-end mates).
    """

    name: str
    true_pos: int
    reverse: bool
    substitutions: int | None = None
    insertions: int | None = None
    deletions: int | None = None

    @property
    def indel_span(self) -> int | None:
        """Inserted+deleted bases — the read's true band demand."""
        if self.insertions is None or self.deletions is None:
            return None
        return self.insertions + self.deletions

    @classmethod
    def from_read(cls, read) -> "TruthRecord":
        """Build from a :class:`~repro.genome.synth.SimulatedRead`
        (or anything with the same truth attributes)."""
        return cls(
            name=read.name,
            true_pos=int(read.true_pos),
            reverse=bool(read.reverse),
            substitutions=int(read.substitutions),
            insertions=int(read.insertions),
            deletions=int(read.deletions),
        )

    def to_row(self) -> str:
        """Render the record as one sidecar TSV row."""
        def cell(value: int | None) -> str:
            return _UNKNOWN if value is None else str(value)

        return "\t".join(
            (
                self.name,
                str(self.true_pos),
                "-" if self.reverse else "+",
                cell(self.substitutions),
                cell(self.insertions),
                cell(self.deletions),
            )
        )


def truth_path_for(reads_path: str | Path) -> Path:
    """The canonical sidecar path for a FASTQ: ``<reads>.truth.tsv``."""
    reads_path = Path(reads_path)
    return reads_path.with_name(reads_path.name + ".truth.tsv")


def write_truth(
    handle: TextIO, records: Iterable[TruthRecord]
) -> int:
    """Write the sidecar header plus one row per record; returns the
    row count."""
    handle.write(f"{_MAGIC}\tv{TRUTH_VERSION}\n")
    handle.write(_COLUMNS + "\n")
    n = 0
    for record in records:
        handle.write(record.to_row() + "\n")
        n += 1
    return n


def _parse_edit(cell: str, path: str, line: int) -> int | None:
    if cell == _UNKNOWN:
        return None
    try:
        value = int(cell)
    except ValueError as exc:
        raise TruthError(
            f"{path}:{line}: edit count {cell!r} is not an integer"
        ) from exc
    if value < 0:
        raise TruthError(f"{path}:{line}: negative edit count {value}")
    return value


def read_truth(path: str | Path) -> dict[str, TruthRecord]:
    """Parse a sidecar into ``{read name: truth}``.

    Raises :class:`TruthError` on a missing/unknown header, a
    malformed row, or a duplicate read name — a scoring run against a
    half-understood sidecar would produce confidently wrong numbers.
    """
    path = Path(path)
    records: dict[str, TruthRecord] = {}
    with open(path) as handle:
        first = handle.readline().rstrip("\n")
        fields = first.split("\t")
        if len(fields) != 2 or fields[0] != _MAGIC:
            raise TruthError(
                f"{path}: not a truth sidecar (missing "
                f"'{_MAGIC}' header)"
            )
        if fields[1] != f"v{TRUTH_VERSION}":
            raise TruthError(
                f"{path}: unsupported sidecar version {fields[1]!r} "
                f"(this reader understands v{TRUTH_VERSION})"
            )
        for lineno, line in enumerate(handle, start=2):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            cells = line.split("\t")
            if len(cells) != 6:
                raise TruthError(
                    f"{path}:{lineno}: expected 6 columns, got "
                    f"{len(cells)}"
                )
            name, pos, strand, subs, ins, dels = cells
            if strand not in ("+", "-"):
                raise TruthError(
                    f"{path}:{lineno}: strand must be '+' or '-', "
                    f"got {strand!r}"
                )
            if name in records:
                raise TruthError(
                    f"{path}:{lineno}: duplicate read name {name!r}"
                )
            try:
                true_pos = int(pos)
            except ValueError as exc:
                raise TruthError(
                    f"{path}:{lineno}: true_pos {pos!r} is not an "
                    "integer"
                ) from exc
            records[name] = TruthRecord(
                name=name,
                true_pos=true_pos,
                reverse=strand == "-",
                substitutions=_parse_edit(subs, str(path), lineno),
                insertions=_parse_edit(ins, str(path), lineno),
                deletions=_parse_edit(dels, str(path), lineno),
            )
    return records
