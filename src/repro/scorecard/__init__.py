"""Truth-driven accuracy scoring: the quality half of observability.

The pipeline's differential suites prove *bit-identity* against its
own full-band oracle, but bit-identity says nothing about whether
reads land where they came from.  This package closes that loop, in
the spirit of bcbio-nextgen's validate blocks: the read simulator
already records every read's true origin
(:class:`~repro.genome.synth.SimulatedRead`), so a run can be scored
against a *truth sidecar* — a ``.truth.tsv`` written next to the
simulated FASTQ — and graded on

* **correct-locus rate**: mapped within a tolerance window of the
  true position, on the true strand;
* **MAPQ calibration**: empirical accuracy per reported-MAPQ bin
  (a MAPQ-60 bin should be ~always right; a miscalibrated mapper
  shows high-confidence wrong placements here);
* **failure fractions**: unmapped, degraded (resilience ladder
  exhausted, ``XF:Z:degraded_extension``), and quarantined
  (``XF:Z:quarantined``) — including under ``--chaos``;
* **per-band-bucket accuracy**: accuracy sliced by the read's true
  indel span (its genuine band demand), so wide-band reads — the
  paper's hard 2% — are visible instead of averaged away.

Everything is published through the ``obs`` registry under the
``score.*`` namespace (catalogued in ``docs/observability.md``) and
serialized as a schema-versioned ``scorecard.json``.  Scoring is
strictly read-only over the SAM stream: output bytes are identical
with scoring on or off.
"""

from __future__ import annotations

from repro.scorecard.score import (
    SCORECARD_SCHEMA,
    Scorecard,
    band_bucket,
    mapq_bin,
    score_records,
    score_sam,
)
from repro.scorecard.truth import (
    TRUTH_VERSION,
    TruthError,
    TruthRecord,
    read_truth,
    truth_path_for,
    write_truth,
)

__all__ = [
    "SCORECARD_SCHEMA",
    "Scorecard",
    "TRUTH_VERSION",
    "TruthError",
    "TruthRecord",
    "band_bucket",
    "mapq_bin",
    "read_truth",
    "score_records",
    "score_sam",
    "truth_path_for",
    "write_truth",
]
