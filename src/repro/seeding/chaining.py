"""Seed chaining: group co-linear seeds into alignment candidates.

Between seeding and extension, BWA-MEM chains seeds that lie on nearby
reference diagonals in consistent order, then extends the best chains
only.  This is the standard O(n^2) weighted chaining DP over seeds
sorted by query position, with BWA-like gating on diagonal drift and
gap size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.seeding.mems import Seed


@dataclass
class Chain:
    """An ordered, co-linear group of seeds."""

    seeds: list[Seed] = field(default_factory=list)
    score: int = 0

    @property
    def anchor(self) -> Seed:
        """The longest seed: the one extension grows from."""
        return max(self.seeds, key=lambda s: (s.length, -s.qbegin))

    @property
    def qbegin(self) -> int:
        """First query position covered by the chain."""
        return min(s.qbegin for s in self.seeds)

    @property
    def qend(self) -> int:
        """One past the last query position covered."""
        return max(s.qend for s in self.seeds)

    @property
    def rbegin(self) -> int:
        """Leftmost reference position of the chain."""
        return min(s.rbegin for s in self.seeds)

    @property
    def diagonal(self) -> int:
        """The anchor seed's reference diagonal."""
        return self.anchor.diagonal


def chain_seeds(
    seeds: list[Seed],
    max_gap: int = 100,
    max_diagonal_drift: int = 50,
) -> list[Chain]:
    """Chain seeds into candidates, best chain first.

    Two seeds may chain when the later one starts after the earlier in
    both query and reference, the implied gap is at most ``max_gap``,
    and their diagonals differ by at most ``max_diagonal_drift``.
    Chain score is total seed coverage minus a small drift penalty.
    """
    if not seeds:
        return []
    order = sorted(seeds, key=lambda s: (s.qbegin, s.rbegin))
    n = len(order)
    best = [s.length for s in order]
    back = [-1] * n
    for i in range(n):
        si = order[i]
        for j in range(i):
            sj = order[j]
            if sj.qend > si.qbegin or sj.rbegin + sj.length > si.rbegin:
                continue
            qgap = si.qbegin - sj.qend
            rgap = si.rbegin - (sj.rbegin + sj.length)
            if qgap > max_gap or rgap > max_gap:
                continue
            drift = abs(si.diagonal - sj.diagonal)
            if drift > max_diagonal_drift:
                continue
            cand = best[j] + si.length - min(drift, si.length - 1)
            if cand > best[i]:
                best[i] = cand
                back[i] = j
    # Collect chains greedily from the best unconsumed tails.
    consumed = [False] * n
    chains = []
    for i in sorted(range(n), key=lambda k: -best[k]):
        if consumed[i]:
            continue
        members = []
        k = i
        while k != -1 and not consumed[k]:
            consumed[k] = True
            members.append(order[k])
            k = back[k]
        members.reverse()
        chains.append(Chain(seeds=members, score=best[i]))
    chains.sort(key=lambda c: -c.score)
    return chains


def filter_chains(
    chains: list[Chain],
    max_chains: int = 3,
    min_score_fraction: float = 0.5,
) -> list[Chain]:
    """Keep the strongest chains, as BWA-MEM does before extension."""
    if not chains:
        return []
    cutoff = chains[0].score * min_score_fraction
    kept = [c for c in chains if c.score >= cutoff]
    return kept[:max_chains]
