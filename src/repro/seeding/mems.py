"""Maximal-exact-match seeding (the SMEM-style front end).

BWA-MEM seeds alignment with supermaximal exact matches; this module
produces the equivalent seed set from the FM-index: for every query
end position, the longest exact match ending there, filtered to the
matches not contained in a longer one.

The classic monotonicity makes this linear-ish: if ``s(e)`` is the
smallest start such that ``query[s:e]`` occurs in the reference, then
``s`` is non-decreasing in ``e``, so matches ending at successive
positions can only shrink from the left.  A match ``[s(e), e)`` is
supermaximal exactly when ``s(e+1) > s(e)`` (or ``e`` is the query
end) — extending right forces giving up the left edge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.seeding.fmindex import FMIndex, Interval


@dataclass(frozen=True)
class Seed:
    """One exact match: query [qbegin, qend) == reference
    [rbegin, rbegin + length)."""

    qbegin: int
    qend: int
    rbegin: int

    @property
    def length(self) -> int:
        """Length of the exact match."""
        return self.qend - self.qbegin

    @property
    def diagonal(self) -> int:
        """Reference diagonal; co-linear seeds share it."""
        return self.rbegin - self.qbegin


@dataclass(frozen=True)
class Mem:
    """A supermaximal match and its FM interval (before placement)."""

    qbegin: int
    qend: int
    interval: Interval

    @property
    def length(self) -> int:
        """Length of the supermaximal match."""
        return self.qend - self.qbegin


def find_smems(
    index: FMIndex,
    query: np.ndarray,
    min_seed_length: int = 19,
) -> list[Mem]:
    """Supermaximal exact matches of ``query`` against the index.

    ``min_seed_length`` is BWA-MEM's default 19; shorter matches are
    noise and dropped.
    """
    query = np.asarray(query, dtype=np.int64)
    qlen = len(query)
    out: list[Mem] = []
    prev_start = None
    for e in range(1, qlen + 1):
        start, iv = _longest_backward(index, query, e)
        if start is None:
            continue
        is_supermaximal = False
        if e == qlen:
            is_supermaximal = True
        else:
            nxt, _ = _longest_backward(index, query, e + 1)
            is_supermaximal = nxt is None or nxt > start
        if is_supermaximal and e - start >= min_seed_length:
            if prev_start is None or start > prev_start:
                out.append(Mem(start, e, iv))
                prev_start = start
    return out


def _longest_backward(
    index: FMIndex, query: np.ndarray, end: int
) -> tuple[int | None, Interval]:
    """Smallest start s such that query[s:end] occurs; its interval."""
    iv = index.whole()
    start = end
    best: Interval | None = None
    for s in range(end - 1, -1, -1):
        c = int(query[s])
        if c >= 4:
            break  # ambiguous base ends the match
        nxt = index.backward_extend(iv, c)
        if nxt.is_empty:
            break
        iv = nxt
        start = s
        best = iv
    if best is None:
        return None, Interval(0, 0)
    return start, best


def place_seeds(
    index: FMIndex,
    mems: list[Mem],
    max_occurrences: int = 32,
) -> list[Seed]:
    """Resolve MEM intervals to reference positions.

    MEMs hitting more than ``max_occurrences`` places are dropped, as
    BWA-MEM does: ubiquitous repeats are useless anchors.
    """
    seeds = []
    for mem in mems:
        if mem.interval.width > max_occurrences:
            continue
        for pos in index.locate(mem.interval):
            seeds.append(Seed(mem.qbegin, mem.qend, pos))
    seeds.sort(key=lambda s: (s.qbegin, s.rbegin))
    return seeds


def seed_read(
    index: FMIndex,
    query: np.ndarray,
    min_seed_length: int = 19,
    max_occurrences: int = 32,
) -> list[Seed]:
    """SMEM generation + placement in one call."""
    return place_seeds(
        index,
        find_smems(index, query, min_seed_length),
        max_occurrences,
    )
