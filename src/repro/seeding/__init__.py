"""Seeding substrate: suffix array, FM-index, MEMs, k-mers, chaining."""

from repro.seeding.chaining import Chain, chain_seeds, filter_chains
from repro.seeding.fmindex import FMIndex
from repro.seeding.kmer_index import KmerIndex
from repro.seeding.mems import Seed, find_smems, seed_read
from repro.seeding.suffixarray import build_suffix_array

__all__ = [
    "Chain",
    "FMIndex",
    "KmerIndex",
    "Seed",
    "build_suffix_array",
    "chain_seeds",
    "filter_chains",
    "find_smems",
    "seed_read",
]
