"""FM-index: BWT-based backward search with sampled-SA locate.

BWA-MEM's seeding walks an FM-index of the reference; this is the
from-scratch substrate equivalent.  Supports the standard operations:

* :meth:`FMIndex.backward_extend` — one backward-search step,
  prepending a character to the current match;
* :meth:`FMIndex.count` / :meth:`FMIndex.interval` — occurrences of a
  pattern;
* :meth:`FMIndex.locate` — reference positions of an interval via the
  sampled suffix array and LF-mapping walks.

The alphabet is the 4 base codes; references must be N-free (the
synthetic references are).  A sentinel (code 4 here, sorting *before*
the bases as in the classic construction) terminates the text.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.seeding.suffixarray import build_suffix_array

ALPHABET = 4


@dataclass(frozen=True)
class Interval:
    """Half-open BWT interval; ``width`` is the occurrence count."""

    lo: int
    hi: int

    @property
    def width(self) -> int:
        """Number of occurrences in the interval."""
        return self.hi - self.lo

    @property
    def is_empty(self) -> bool:
        """True when the interval matches nothing."""
        return self.hi <= self.lo


class FMIndex:
    """FM-index over an encoded, N-free reference."""

    def __init__(
        self,
        text: np.ndarray,
        sa_sample_rate: int = 8,
        sa: np.ndarray | None = None,
    ) -> None:
        text = np.asarray(text, dtype=np.uint8)
        if text.size == 0:
            raise ValueError("cannot index an empty reference")
        if text.max(initial=0) >= ALPHABET:
            raise ValueError("reference must be N-free for FM indexing")
        if sa_sample_rate < 1:
            raise ValueError("sa_sample_rate must be >= 1")
        self.n = len(text)
        self._sample_rate = sa_sample_rate

        # Full SA (kept only long enough to build BWT + samples); the
        # index artifact builder passes its own copy in so the array is
        # computed once and also serialized.
        if sa is None:
            sa = build_suffix_array(text)
        # Conceptual rotation order: sentinel suffix first, then sa.
        # BWT[r] = text[sa_full[r] - 1]; sentinel occupies row 0.
        sa_full = np.concatenate([[self.n], sa])
        prev = sa_full - 1
        self._sentinel_row = int(np.flatnonzero(prev == -1)[0])
        bwt = np.where(prev >= 0, text[np.clip(prev, 0, None)], 0)
        self._bwt = bwt.astype(np.uint8)

        # C array: C[c] = number of rotations starting with a symbol
        # strictly smaller than c (sentinel counts as the smallest).
        counts = np.bincount(text, minlength=ALPHABET)
        self._c = np.zeros(ALPHABET + 1, dtype=np.int64)
        self._c[0] = 1
        for c in range(1, ALPHABET + 1):
            self._c[c] = self._c[c - 1] + counts[c - 1]

        # Occ checkpoints: cumulative counts per symbol, prefix form.
        occ = np.zeros((self.n + 2, ALPHABET), dtype=np.int64)
        onehot = np.zeros((self.n + 1, ALPHABET), dtype=np.int64)
        rows = np.arange(self.n + 1)
        mask = rows != self._sentinel_row
        onehot[rows[mask], self._bwt[mask]] = 1
        np.cumsum(onehot, axis=0, out=occ[1:])
        self._occ = occ

        # Sampled SA for locate(): parallel sorted (row -> position)
        # arrays rather than a dict, so the tables serialize into the
        # persistent index artifact and load back zero-copy.
        rows_sampled = np.flatnonzero(sa_full % sa_sample_rate == 0)
        self._sample_rows = rows_sampled.astype(np.int64)
        self._sample_pos = sa_full[rows_sampled].astype(np.int64)

    @classmethod
    def from_tables(
        cls,
        *,
        n: int,
        sample_rate: int,
        sentinel_row: int,
        bwt: np.ndarray,
        c: np.ndarray,
        occ: np.ndarray,
        sample_rows: np.ndarray,
        sample_pos: np.ndarray,
    ) -> "FMIndex":
        """Adopt prebuilt tables without recomputing anything.

        The persistent index store (:mod:`repro.index`) loads the
        tables as ``numpy.memmap`` views; every query operation reads
        them in place, so a loaded index never copies the artifact's
        pages.  Callers are responsible for table consistency — the
        store verifies per-section CRCs before handing tables over.
        """
        self = cls.__new__(cls)
        self.n = int(n)
        self._sample_rate = int(sample_rate)
        self._sentinel_row = int(sentinel_row)
        self._bwt = bwt
        self._c = c
        self._occ = occ
        self._sample_rows = sample_rows
        self._sample_pos = sample_pos
        return self

    def tables(self) -> dict[str, np.ndarray]:
        """The index's array-valued tables, keyed for serialization."""
        return {
            "bwt": self._bwt,
            "c": self._c,
            "occ": self._occ,
            "sample_rows": self._sample_rows,
            "sample_pos": self._sample_pos,
        }

    def scalars(self) -> dict[str, int]:
        """The index's scalar parameters, keyed for serialization."""
        return {
            "n": self.n,
            "sample_rate": self._sample_rate,
            "sentinel_row": self._sentinel_row,
        }

    def whole(self) -> Interval:
        """The interval of the empty pattern (all rotations)."""
        return Interval(0, self.n + 1)

    def _occ_at(self, row: int, c: int) -> int:
        return int(self._occ[row][c])

    def backward_extend(self, interval: Interval, c: int) -> Interval:
        """Prepend symbol ``c``: interval of ``c + current pattern``."""
        if not 0 <= c < ALPHABET:
            raise ValueError(f"symbol {c} outside alphabet")
        lo = self._c[c] + self._occ_at(interval.lo, c)
        hi = self._c[c] + self._occ_at(interval.hi, c)
        return Interval(int(lo), int(hi))

    def interval(self, pattern: np.ndarray) -> Interval:
        """Backward-search a whole pattern."""
        iv = self.whole()
        for c in reversed(np.asarray(pattern, dtype=np.int64)):
            iv = self.backward_extend(iv, int(c))
            if iv.is_empty:
                return iv
        return iv

    def count(self, pattern: np.ndarray) -> int:
        """Occurrences of a pattern in the reference."""
        return self.interval(pattern).width

    def _lf(self, row: int) -> int:
        """One LF-mapping step (row of the preceding character)."""
        if row == self._sentinel_row:
            return 0
        c = int(self._bwt[row])
        return int(self._c[c] + self._occ_at(row, c))

    def _sampled_pos(self, row: int) -> int | None:
        """Sampled SA position of ``row``, or ``None`` if unsampled."""
        idx = int(np.searchsorted(self._sample_rows, row))
        if idx < len(self._sample_rows) and int(
            self._sample_rows[idx]
        ) == row:
            return int(self._sample_pos[idx])
        return None

    def locate(self, interval: Interval, limit: int | None = None) -> list[int]:
        """Reference positions of an interval's occurrences (sorted)."""
        out = []
        for row in range(interval.lo, interval.hi):
            if limit is not None and len(out) >= limit:
                break
            r = row
            steps = 0
            sampled = self._sampled_pos(r)
            while sampled is None:
                r = self._lf(r)
                steps += 1
                sampled = self._sampled_pos(r)
            pos = sampled + steps
            if pos < self.n:  # skip the sentinel pseudo-position
                out.append(pos)
        return sorted(out)

    def find(self, pattern: np.ndarray, limit: int | None = None) -> list[int]:
        """All start positions of ``pattern`` in the reference."""
        iv = self.interval(pattern)
        if iv.is_empty:
            return []
        return self.locate(iv, limit)
